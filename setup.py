"""Legacy setup shim.

The environment has no `wheel` package and no network access, so
PEP 517/660 editable installs (which need bdist_wheel) cannot run.
`python setup.py develop` (or `pip install -e . --no-build-isolation`
on toolchains that have wheel) installs the package from src/.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
