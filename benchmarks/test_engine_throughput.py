"""Generator vs record/replay engine throughput (DESIGN.md §11).

Writes ``BENCH_engine.json`` at the repo root — the performance
trajectory file for the execution engine.  Each cell of a fixed spec
matrix is run under both engines and timed (best of ``REPS``); the
recorded stream is warmed first, so the replay numbers measure the
steady-state sweep cost the engine was built for: the record phase is
paid once per workload, then every (protocol, config) cell replays the
packed arrays.

Two cell groups:

* ``warm`` — hit-dominated configurations (large cache, wide lines,
  long scheduling quantum): the per-reference CPU loop dominates wall
  time, which is exactly what the span-batched replay driver collapses.
  The headline ``warm_sweep`` aggregate must stay ≥ 5x.
* ``wt-bound`` — lazy-release-consistency cells on the same warm
  machine, where coalescing-buffer write-through traffic bounds both
  engines; these keep the trajectory honest about protocol-limited
  sweeps (replay still must not be slower).

The per-cell ``replay faster than generator`` assertion is the CI
smoke gate; cells were chosen with ≥ 1.4x margin so scheduler noise on
shared runners does not flake it.
"""

import json
import time
from pathlib import Path

from benchmarks.conftest import record, timed
from repro.harness.spec import ExperimentSpec
from repro.program.stream import clear_stream_cache

OUT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

REPS = 3

WARM = (("cache_size", 1 << 20), ("line_size", 512), ("quantum", 8000))
WARM_SHORT_Q = (("cache_size", 1 << 20), ("line_size", 512), ("quantum", 2000))
WT_BOUND = (("cache_size", 1 << 20), ("line_size", 256), ("quantum", 8000))

#: (group, app, protocol, config overrides) — the fixed spec matrix.
CELLS = [
    ("warm", "gauss", "sc", WARM),
    ("warm", "gauss", "erc", WARM),
    ("warm", "gauss", "sc", WARM_SHORT_Q),
    ("wt-bound", "gauss", "lrc", WT_BOUND),
    ("wt-bound", "fft", "lrc", WT_BOUND),
    ("wt-bound", "gauss", "tardis", WT_BOUND),
]


def _aggregate(cells):
    cycles = sum(c["cycles"] for c in cells)
    gen = sum(c["generator_s"] for c in cells)
    rep = sum(c["replay_s"] for c in cells)
    return {
        "cells": len(cells),
        "cycles": cycles,
        "generator_cps": round(cycles / gen),
        "replay_cps": round(cycles / rep),
        "speedup": round(gen / rep, 2),
    }


def test_engine_throughput():
    out = []
    for group, app, proto, over in CELLS:
        spec = ExperimentSpec(app, proto, n_procs=4, small=False, overrides=over)
        clear_stream_cache()
        t0 = time.perf_counter()
        spec.recorded_stream()  # cold: one record phase per workload
        record_s = time.perf_counter() - t0
        result, gen_t = timed(lambda: spec.run(engine="generator"), REPS)
        _, rep_t = timed(lambda: spec.run(engine="replay"), REPS)
        gen_s, rep_s = gen_t["min_s"], rep_t["min_s"]
        cell = {
            "group": group,
            "app": app,
            "protocol": proto,
            "n_procs": 4,
            "overrides": dict(over),
            "cycles": result.exec_time,
            "references": result.stats.references,
            "record_s": round(record_s, 4),
            "generator_s": gen_s,
            "generator_median_s": gen_t["median_s"],
            "replay_s": rep_s,
            "replay_median_s": rep_t["median_s"],
            "generator_cps": round(result.exec_time / gen_s),
            "replay_cps": round(result.exec_time / rep_s),
            "speedup": round(gen_s / rep_s, 2),
        }
        out.append(cell)
        # CI smoke gate: replay must never lose to the generator path.
        assert rep_s < gen_s, f"replay slower than generator on {app}/{proto}"

    warm = _aggregate([c for c in out if c["group"] == "warm"])
    payload = {
        "benchmark": "engine_throughput",
        "engines": ("generator", "replay"),
        "reps": REPS,
        "cells": out,
        "warm_sweep": warm,
        "overall": _aggregate(out),
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")

    text = (
        f"Engine throughput: warm-cache sweep {warm['speedup']}x "
        f"({warm['generator_cps'] / 1e6:.1f}M -> "
        f"{warm['replay_cps'] / 1e6:.1f}M cycles/s), "
        f"overall {payload['overall']['speedup']}x -> {OUT.name}"
    )
    print("\n" + text)
    record(text)
