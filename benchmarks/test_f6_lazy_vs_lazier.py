"""Figure 6: normalized execution time, lazy vs lazy-extended.

Paper shape: "For all but one of the applications the lazier version of
the protocol has poorer overall performance... The exception to this
observation is fft" (barrier-time combining of deferred notices).
"""

from benchmarks.conftest import N_PROCS, SMALL, once, record
from repro.harness import figure6_lazier


def test_f6_lazy_vs_lazier(benchmark):
    data, text = once(benchmark, lambda: figure6_lazier(n_procs=N_PROCS, small=SMALL))
    print("\n" + text)
    record(text)
    if SMALL or N_PROCS < 32:
        return  # shape assertions are calibrated at experiment scale
    worse = [app for app, row in data.items() if row["lrc-ext"] > row["lrc"]]
    # Deferring notices to releases does not pay off for most programs.
    assert len(worse) >= 4, f"lazy-ext only lost on {worse}"
    # And never helps dramatically: the miss-rate benefit cannot recoup
    # the synchronization cost by a wide margin anywhere.
    for app, row in data.items():
        assert row["lrc-ext"] >= row["lrc"] * 0.90, (app, row)
