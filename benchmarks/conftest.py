"""Shared benchmark configuration.

``REPRO_BENCH_PROCS`` scales the simulated machine (default 64, the
paper's size); ``REPRO_BENCH_SMALL=1`` switches to the small presets for
quick smoke runs of the harness.

Simulation results are memoized inside :mod:`repro.harness.experiments`,
so artifacts that share underlying runs (Figure 4 and Figure 5, say)
trigger each simulation once per pytest session.  Two further knobs use
the experiment engine:

* ``REPRO_BENCH_JOBS=N`` (N > 1) prefetches every table/figure
  simulation through the parallel runner at session start, fanning the
  (app, protocol, machine) matrix out over N worker processes;
* ``REPRO_RESULTS_DIR=path`` persists results in an on-disk store, so
  repeated benchmark sessions skip simulations entirely (parallel,
  serial and stored results are bit-identical — DESIGN.md §7).
"""

import os
import time

import pytest

N_PROCS = int(os.environ.get("REPRO_BENCH_PROCS", "64"))
SMALL = os.environ.get("REPRO_BENCH_SMALL", "0") == "1"
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def pytest_sessionstart(session):
    if JOBS > 1:
        from repro.harness.experiments import all_artifact_specs, prefetch

        prefetch(
            all_artifact_specs(n_procs=N_PROCS, small=SMALL), jobs=JOBS
        )


@pytest.fixture(scope="session")
def bench_procs():
    return N_PROCS


@pytest.fixture(scope="session")
def bench_small():
    return SMALL


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def timed(fn, reps=3):
    """Run ``fn`` ``reps`` times; return ``(last_result, timing)``.

    ``timing`` reports wall-time variance — ``{"reps", "min_s",
    "median_s"}`` — so a BENCH cell carries both the best case (the
    conventional headline, least scheduler noise) and the median (the
    stability check: a median far off the min flags a noisy host).
    Every throughput trajectory file (``BENCH_engine.json``,
    ``BENCH_pdes.json``) reports through this one helper so their
    numbers are comparable.
    """
    times = []
    out = None
    for _ in range(reps):
        t0 = time.perf_counter()
        out = fn()
        times.append(time.perf_counter() - t0)
    times.sort()
    return out, {
        "reps": reps,
        "min_s": round(times[0], 4),
        "median_s": round(times[reps // 2], 4),
    }


#: Reproduced tables/figures, emitted after the run (pytest captures
#: per-test stdout of passing tests; the summary hook below does not).
ARTIFACTS = []


def record(text: str) -> None:
    ARTIFACTS.append(text)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not ARTIFACTS:
        return
    terminalreporter.write_sep(
        "=", f"reproduced paper artifacts ({N_PROCS} processors"
        + (", small presets)" if SMALL else ")")
    )
    for text in ARTIFACTS:
        terminalreporter.write_line(text)
        terminalreporter.write_line("")
