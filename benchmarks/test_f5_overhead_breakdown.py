"""Figure 5: overhead breakdown (cpu / read / write-buffer / sync).

Paper shape: "the lazy consistency protocol reduces read latency and
write buffer stalls, but has increased synchronization overhead."
"""

from benchmarks.conftest import N_PROCS, SMALL, once, record
from repro.harness import figure5_breakdown


def test_f5_overhead_breakdown(benchmark):
    data, text = once(benchmark, lambda: figure5_breakdown(n_procs=N_PROCS, small=SMALL))
    print("\n" + text)
    record(text)
    if SMALL or N_PROCS < 32:
        return  # shape assertions are calibrated at experiment scale
    wins = 0
    for app, rows in data.items():
        lrc, erc, sc = rows["lrc"], rows["erc"], rows["sc"]
        # SC normalizes to 1.0 by construction.
        assert abs(sum(sc.values()) - 1.0) < 1e-9
        # The lazy protocol all but eliminates write-buffer stalls
        # (immediate retirement on read-only lines).
        assert lrc["write"] <= erc["write"] + 1e-9, app
        assert lrc["write"] < 0.02, app
        # CPU work is protocol-independent (same reference streams).
        assert abs(lrc["cpu"] - erc["cpu"]) / max(erc["cpu"], 1e-9) < 0.05, app
        if lrc["sync"] > erc["sync"]:
            wins += 1
    # Increased synchronization time under laziness is the common case.
    assert wins >= 4, f"lazy sync exceeded eager sync in only {wins}/7 apps"
