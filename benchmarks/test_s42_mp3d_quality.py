"""Section 4.2: mp3d quality-of-solution under stale (lazy) reads.

Paper: after 10 steps, the Y and Z components of the cumulative velocity
vector differed by less than 0.1% between the software-cached (lazy) and
sequentially consistent versions, while the X component (the wind
direction, where the races matter) differed by 6.7%.
"""

from benchmarks.conftest import once, record
from repro.apps.mp3d_quality import quality_divergence


def test_s42_mp3d_quality(benchmark):
    div = once(benchmark, lambda: quality_divergence(steps=10))
    text = (
        "Section 4.2 mp3d quality of solution (lazy vs SC propagation)\n"
        + "\n".join(f"  {axis}: {v * 100:.3f}% divergence" for axis, v in div.items())
    )
    print("\n" + text)
    record(text)
    # The solution diverges measurably along the wind (X) axis but stays
    # tiny on the transverse axes — the paper's result (X: 6.7%, Y/Z
    # under 0.1%).  Measured here: X ~14%, Y/Z well under 0.1%.
    assert 0.01 < div["X"] < 0.30
    assert div["Y"] < 0.005 and div["Z"] < 0.005
    assert div["X"] > 10 * max(div["Y"], div["Z"]), "X (wind) axis diverges most"
