"""Conformance-fuzzer throughput benchmarks (DESIGN.md §9).

The fuzzer's value ceiling is iterations per unit time: these benchmarks
time the three pieces a campaign is made of — program generation, the
sequential oracle, and a full differential iteration across all four
protocols — so regressions in fuzz throughput show up next to the
simulator benchmarks they gate.
"""

from benchmarks.conftest import once, record
from repro.conformance import fuzz_iteration, generate, interpret

PROCS = 8
N_OPS = 120


def test_generator_throughput(benchmark):
    def run():
        total = 0
        for seed in range(50):
            total += generate(seed, PROCS, n_ops=N_OPS).op_count()
        return total

    ops = once(benchmark, run)
    text = f"Fuzz generator: 50 programs ({PROCS}p, ~{N_OPS} ops/proc), {ops} ops total"
    print("\n" + text)
    record(text)
    assert ops > 50 * N_OPS  # budget is per processor; programs exceed it


def test_oracle_throughput(benchmark):
    specs = [generate(seed, PROCS, n_ops=N_OPS) for seed in range(20)]

    def run():
        results = [interpret(s) for s in specs]
        assert all(r.ok for r in results)
        return len(results)

    n = once(benchmark, run)
    text = f"Sequential oracle: {n} programs interpreted and race-checked"
    print("\n" + text)
    record(text)


def test_differential_iteration(benchmark):
    def run():
        return fuzz_iteration(
            0, seed=0, n_procs=PROCS, n_ops=N_OPS,
            protocols=("sc", "erc", "lrc", "lrc-ext", "tardis"),
        )

    failures = once(benchmark, run)
    text = "Differential iteration: 1 program x 5 protocols, oracle-clean"
    print("\n" + text)
    record(text)
    assert failures == []
