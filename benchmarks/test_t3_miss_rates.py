"""Table 3: miss rates under eager / lazy / lazy-ext.

Paper shape: "In all cases the lazy variants exhibit the same or lower
miss rate than the eager implementation" for the apps with false
sharing, and the same for the rest.  We allow a small tolerance: the
protocols perturb interleavings, so identical workloads can differ by a
few hundredths of a percentage point.
"""

from benchmarks.conftest import N_PROCS, SMALL, once, record
from repro.harness import table3_miss_rates


def test_t3_miss_rates(benchmark):
    data, text = once(benchmark, lambda: table3_miss_rates(n_procs=N_PROCS, small=SMALL))
    print("\n" + text)
    record(text)
    if SMALL or N_PROCS < 32:
        return  # shape assertions are calibrated at experiment scale
    # The false-sharing apps see reductions under the lazy protocol.
    assert data["mp3d"]["lrc"] < data["mp3d"]["erc"]
    assert data["locusroute"]["lrc"] < data["locusroute"]["erc"]
    assert data["fft"]["lrc"] < data["fft"]["erc"]
    # No app's lazy miss rate exceeds eager by more than a small margin.
    for app, d in data.items():
        assert d["lrc"] <= d["erc"] * 1.10, (app, d)
    # The lazier protocol's rate is never meaningfully above plain lazy.
    for app, d in data.items():
        assert d["lrc-ext"] <= d["lrc"] * 1.10, (app, d)
