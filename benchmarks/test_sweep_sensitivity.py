"""Section 4.3 text: latency / bandwidth / line-size sensitivity.

Paper shape: "as latency and bandwidth increase the performance gap
between the lazy and eager protocols decreases, with the lazy protocol
maintaining a modest performance advantage over all latency/bandwidth
combinations.  Longer cache lines increase the performance gap... since
they induce higher degrees of false sharing."
"""

from benchmarks.conftest import once, record
from repro.harness import sensitivity_sweep


def test_sweep_sensitivity_mp3d(benchmark):
    rows, text = once(benchmark, lambda: sensitivity_sweep(app="mp3d", n_procs=16))
    print("\n" + text)
    record(text)
    by = {r["variant"]: r["ratio"] for r in rows}
    # Lazy at least matches eager on the mp3d baseline at this scale.
    assert by["baseline"] <= 1.02
    # Longer lines widen the lazy advantage; shorter lines shrink it —
    # the paper's central line-size trend.
    assert by["256-byte lines"] <= by["baseline"] + 0.02
    assert by["64-byte lines"] >= by["256-byte lines"]


def test_sweep_sensitivity_locusroute(benchmark):
    rows, text = once(
        benchmark, lambda: sensitivity_sweep(app="locusroute", n_procs=16)
    )
    print("\n" + text)
    record(text)
    by = {r["variant"]: r["ratio"] for r in rows}
    # The line-size trend: false sharing grows with the block, and with
    # it the benefit of lazy invalidation.
    assert by["256-byte lines"] <= by["64-byte lines"] + 0.02
