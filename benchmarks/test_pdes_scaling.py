"""Sharded PDES scaling (DESIGN.md §14).

Writes ``BENCH_pdes.json`` at the repo root — the performance
trajectory file for the time-windowed sharded scheduler.  Each cell
runs one 64/256/1024-node service workload serially and with
``REPRO_PDES_SHARDS`` in-process shards, asserts the results are
bit-identical, and reports:

* ``cycles_per_sec`` — simulated cycles over measured wall time.  On a
  single-core host the sharded number *includes* the serialization of
  the per-epoch shard windows, so it trails serial slightly (windowing
  overhead), and is reported as the honest single-core measurement.
* ``aggregate_cycles_per_sec`` — simulated cycles over the *critical
  path* ``max(sim.busy)``: the per-shard window execution times are
  measured independently (see ``ShardedSimulator.busy``), and within an
  epoch the windows are mutually independent by the lookahead proof, so
  their maximum is the window wall time a host with ``>= shards`` cores
  pays.  This is the projected multi-core throughput (barrier
  bookkeeping excluded; it is ``O(shards)`` per epoch against
  ``O(events)`` windows), labeled ``projected`` in the artifact.

The crossover artifact mirrors the F8/F9 shape at 256 nodes: where the
serial engine's single-stream rate crosses the sharded engine's
aggregate rate, and the smallest measured node count past the crossover.

CI smoke overrides ``REPRO_PDES_NODES`` (e.g. ``16,32``) to keep the
matrix small; the ≥2x acceptance gate only arms at experiment scale
(256 nodes, ≥4 shards).
"""

import json
import os
from pathlib import Path

from benchmarks.conftest import record, timed
from repro.harness.spec import ExperimentSpec

OUT = Path(__file__).resolve().parent.parent / "BENCH_pdes.json"

NODES = tuple(
    int(n) for n in os.environ.get("REPRO_PDES_NODES", "64,256,1024").split(",")
)
SHARDS = int(os.environ.get("REPRO_PDES_SHARDS", "4"))
PROTOCOLS = ("lrc", "tardis")
APP = "kvstore"
REPS = 3


def _canon(result) -> str:
    return json.dumps(result.to_dict(), sort_keys=True)


def test_pdes_scaling(monkeypatch):
    # The spec layer must not pick up ambient shard settings: serial
    # cells are the baseline, sharded cells pass shards explicitly.
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    monkeypatch.delenv("REPRO_SHARD_BACKEND", raising=False)
    cells = []
    for n in NODES:
        shards = min(SHARDS, n)
        for proto in PROTOCOLS:
            spec = ExperimentSpec(APP, proto, n_procs=n, small=True)
            stream = spec.recorded_stream()  # record once, replay per rep

            serial_res, serial_t = timed(
                lambda: spec.machine_config(shards=1).build().replay(stream),
                REPS,
            )
            state = {}

            def sharded():
                m = spec.machine_config(shards=shards).build()
                r = m.replay(stream)
                state["busy"] = list(m.sim.busy)
                state["epochs"] = m.sim.epochs
                return r

            sharded_res, sharded_t = timed(sharded, REPS)
            assert _canon(sharded_res) == _canon(serial_res), (
                f"sharded run diverged from serial on {APP}/{proto} n={n}"
            )
            cycles = serial_res.exec_time
            busy_max = max(state["busy"])
            serial_cps = cycles / serial_t["min_s"]
            aggregate_cps = cycles / busy_max
            cells.append({
                "app": APP,
                "protocol": proto,
                "n_procs": n,
                "shards": shards,
                "cycles": cycles,
                "epochs": state["epochs"],
                "serial": {
                    **serial_t,
                    "cycles_per_sec": round(serial_cps),
                },
                "sharded": {
                    **sharded_t,
                    "cycles_per_sec": round(cycles / sharded_t["min_s"]),
                    "busy_max_s": round(busy_max, 4),
                    "busy_sum_s": round(sum(state["busy"]), 4),
                    "aggregate_cycles_per_sec": round(aggregate_cps),
                    "aggregate_is_projected": True,
                },
                "speedup_aggregate": round(aggregate_cps / serial_cps, 2),
            })

    # F8/F9-style crossover artifact: serial single-stream rate vs
    # sharded aggregate rate as the machine grows.
    past = [c["n_procs"] for c in cells if c["speedup_aggregate"] > 1.0]
    crossover = {
        "at_nodes": 256,
        "cells": {
            f"{c['protocol']}@{c['n_procs']}": c["speedup_aggregate"]
            for c in cells
        },
        "first_winning_n": min(past) if past else None,
    }
    payload = {
        "benchmark": "pdes_scaling",
        "app": APP,
        "nodes": list(NODES),
        "shards": SHARDS,
        "reps": REPS,
        "cells": cells,
        "crossover": crossover,
    }
    OUT.write_text(json.dumps(payload, indent=2) + "\n")

    at256 = [c for c in cells if c["n_procs"] == 256]
    if at256 and SHARDS >= 4:
        best = max(at256, key=lambda c: c["speedup_aggregate"])
        # Acceptance gate: the sharded engine's projected aggregate rate
        # must at least double the serial rate at 256 nodes.
        assert best["speedup_aggregate"] >= 2.0, (
            f"aggregate speedup {best['speedup_aggregate']}x < 2x at 256 "
            f"nodes ({best['protocol']})"
        )
        text = (
            f"PDES crossover @256 nodes ({APP}): serial "
            f"{best['serial']['cycles_per_sec'] / 1e6:.2f}M cycles/s vs "
            f"{best['shards']}-shard aggregate "
            f"{best['sharded']['aggregate_cycles_per_sec'] / 1e6:.2f}M "
            f"(projected, {best['speedup_aggregate']}x; "
            f"{best['protocol']}) -> {OUT.name}"
        )
    else:
        text = f"PDES scaling smoke (nodes={list(NODES)}) -> {OUT.name}"
    print("\n" + text)
    record(text)
