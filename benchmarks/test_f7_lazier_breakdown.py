"""Figure 7: overhead breakdown, lazy vs lazy-extended.

Paper shape: "the lazy-ext protocol improves the miss latency
experienced by the programs, but increases the amount of time spent
waiting for synchronization."
"""

from benchmarks.conftest import N_PROCS, SMALL, once, record
from repro.harness import figure7_lazier_breakdown


def test_f7_lazier_breakdown(benchmark):
    data, text = once(
        benchmark, lambda: figure7_lazier_breakdown(n_procs=N_PROCS, small=SMALL)
    )
    print("\n" + text)
    record(text)
    if SMALL or N_PROCS < 32:
        return  # shape assertions are calibrated at experiment scale
    sync_up = 0
    for app, rows in data.items():
        lrc, ext = rows["lrc"], rows["lrc-ext"]
        if ext["sync"] >= lrc["sync"] * 0.98:
            sync_up += 1
        # Write-buffer stalls stay negligible under both lazy variants.
        assert ext["write"] < 0.02, app
    assert sync_up >= 4, "deferred notices should load the sync bucket"
