"""Table 2: miss classification under eager release consistency.

Shape checks (the paper's Table 2): the false-sharing component is
substantial for locusroute / blu / mp3d / barnes and near-zero for
cholesky / fft / gauss; gauss and fft are eviction-dominated.
"""

from benchmarks.conftest import N_PROCS, SMALL, once, record
from repro.harness import table2_miss_classification


def test_t2_miss_classification(benchmark):
    data, text = once(
        benchmark, lambda: table2_miss_classification(n_procs=N_PROCS, small=SMALL)
    )
    print("\n" + text)
    record(text)
    if SMALL or N_PROCS < 32:
        return  # shape assertions are calibrated at experiment scale
    # Apps the paper lists as false-sharing candidates show real false
    # sharing; the others show almost none.
    assert data["locusroute"]["false"] > 5.0
    assert data["blu"]["false"] > 5.0
    assert data["cholesky"]["false"] < 5.0
    assert data["fft"]["false"] < 5.0
    assert data["gauss"]["false"] < 5.0
    # Gauss and fft carry the large eviction components (paper: 75% and
    # 54%; smaller here because the scaled fft chunks fit caches better).
    assert data["gauss"]["eviction"] > 30.0
    assert data["fft"]["eviction"] > 10.0
    # Write-permission misses are a visible component everywhere the
    # paper reports them large (blu, cholesky, fft, locusroute, mp3d).
    for app in ("blu", "cholesky", "mp3d"):
        assert data[app]["write"] > 5.0
    # Percentages add up.
    for app, p in data.items():
        assert abs(sum(p.values()) - 100.0) < 1e-6, app
