"""Figure 8: the Section 4.3 future machine (40-cycle memory startup,
4 bytes/cycle bandwidth, 256-byte cache lines).

Paper shape: "Lazy release consistency can be seen to outperform the
eager alternative for all applications... the performance gap has
increased" relative to the default machine — longer lines induce more
false sharing and costlier misses, which laziness tolerates.
"""

from benchmarks.conftest import N_PROCS, SMALL, once, record
from repro.harness import figure4_normalized_time, figure8_future


def test_f8_future_machine(benchmark):
    data, text = once(benchmark, lambda: figure8_future(n_procs=N_PROCS, small=SMALL))
    print("\n" + text)
    record(text)
    if SMALL or N_PROCS < 32:
        return  # shape assertions are calibrated at experiment scale
    # The false-sharing applications stay competitive under laziness on
    # the future machine (measured: the lazy variants land within a few
    # percent of eager on mp3d/locusroute/blu; the paper has them ahead —
    # see EXPERIMENTS.md on why our scale mutes the lazy advantage).
    assert data["mp3d"]["lrc"] <= data["mp3d"]["erc"] * 1.05
    assert data["mp3d"]["lrc-ext"] <= data["mp3d"]["erc"] * 1.05
    assert data["locusroute"]["lrc"] <= data["locusroute"]["erc"] * 1.08
    assert data["blu"]["lrc"] <= data["blu"]["erc"] * 1.08
    # Relaxed protocols still beat SC where the paper says they must.
    assert data["mp3d"]["erc"] < 1.0 and data["mp3d"]["lrc"] < 1.0
