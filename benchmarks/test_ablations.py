"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper: they quantify the sensitivity of the lazy
protocol's advantage to (a) write-notice processing cost, (b) the
coalescing-buffer depth, and (c) the interleaving quantum of the
simulator (a fidelity check: results should be stable across quanta).
"""

from benchmarks.conftest import once, record
from repro.harness import clear_cache, run_experiment


def _ratio(app, n_procs=16, **over):
    erc = run_experiment(app, "erc", n_procs=n_procs, small=False, **over)
    lrc = run_experiment(app, "lrc", n_procs=n_procs, small=False, **over)
    return lrc.exec_time / erc.exec_time


def test_ablation_notice_cost(benchmark):
    """How expensive can write-notice processing get before lazy loses?"""

    def run():
        return {c: _ratio("mp3d", notice_cost=c) for c in (1, 4, 16, 64)}

    ratios = once(benchmark, run)
    text = "Ablation: write-notice cost vs lazy/eager ratio (mp3d, 16p)\n" + "\n".join(
        f"  notice_cost={c:>3}: lazy/eager = {r:.3f}" for c, r in ratios.items())
    print("\n" + text)
    record(text)
    # At this scale (16p, full preset) mp3d sits near lazy/eager parity
    # at the paper's 4-cycle cost — within half a percent of 1.0, where
    # legitimate protocol changes (e.g. the message-reordering fixes of
    # DESIGN.md §9, which add same-block write-through/read ordering
    # stalls) move the point across 1.0.  The ablation's claim is the
    # shape: pricier notices erode the lazy advantage.
    assert ratios[4] < 1.01
    assert ratios[64] > ratios[4]
    assert ratios[64] >= ratios[1] - 0.02


def test_ablation_coalescing_depth(benchmark):
    """Release stalls vs traffic: the 16-entry coalescing buffer choice."""

    def run():
        return {d: _ratio("mp3d", cbuf_entries=d) for d in (1, 4, 16, 64)}

    ratios = once(benchmark, run)
    text = "Ablation: coalescing-buffer depth vs lazy/eager ratio (mp3d, 16p)\n" + "\n".join(
        f"  cbuf_entries={d:>3}: lazy/eager = {r:.3f}" for d, r in ratios.items())
    print("\n" + text)
    record(text)
    # A single-entry buffer degrades the write-through design noticeably
    # relative to the paper's 16 entries.
    assert ratios[16] <= ratios[1] + 0.05


def test_ablation_quantum_stability(benchmark):
    """Simulator fidelity: the CPU quantum must not change conclusions."""

    def run():
        out = {}
        for q in (50, 200, 800):
            out[q] = _ratio("locusroute", quantum=q)
        return out

    ratios = once(benchmark, run)
    text = "Ablation: scheduler quantum vs lazy/eager ratio (locusroute, 16p)\n" + "\n".join(
        f"  quantum={q:>4}: lazy/eager = {r:.3f}" for q, r in ratios.items())
    print("\n" + text)
    record(text)
    vals = list(ratios.values())
    assert max(vals) - min(vals) < 0.08, "conclusion should be quantum-stable"
