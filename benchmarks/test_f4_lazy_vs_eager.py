"""Figure 4: normalized execution time, lazy vs eager RC.

Paper shape: both relaxed protocols beat sequential consistency; the
lazy protocol's advantage over eager is largest for mp3d (17%) and
locusroute (13%); fft and cholesky are close to parity.
"""

from benchmarks.conftest import N_PROCS, SMALL, once, record
from repro.harness import figure4_normalized_time


def test_f4_lazy_vs_eager(benchmark):
    data, text = once(
        benchmark, lambda: figure4_normalized_time(n_procs=N_PROCS, small=SMALL)
    )
    print("\n" + text)
    record(text)
    if SMALL or N_PROCS < 32:
        return  # shape assertions are calibrated at experiment scale
    # Eager RC never loses to SC; lazy RC stays within a modest band
    # (measured: barnes/fft are the worst cases at ~1.10 of SC — see
    # EXPERIMENTS.md for the paper-vs-measured discussion).
    for app, row in data.items():
        assert row["erc"] < 1.02, (app, row)
        assert row["lrc"] < 1.15, (app, row)
    # The paper's headline winner mp3d favors laziness outright, and
    # locusroute's lazy variant beats its own SC baseline.
    assert data["mp3d"]["lrc"] < data["mp3d"]["erc"]
    assert data["locusroute"]["lrc"] < 1.0
    # Nothing degrades catastrophically under the lazy protocol.
    for app, row in data.items():
        assert row["lrc"] <= row["erc"] * 1.25, (app, row)
