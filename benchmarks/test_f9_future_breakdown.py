"""Figure 9: overhead breakdown on the future machine.

Paper shape: "the lazy protocols trade increased synchronization time
for decreased read latency and write buffer stall time."
"""

from benchmarks.conftest import N_PROCS, SMALL, once, record
from repro.harness import figure9_future_breakdown


def test_f9_future_breakdown(benchmark):
    data, text = once(
        benchmark, lambda: figure9_future_breakdown(n_procs=N_PROCS, small=SMALL)
    )
    print("\n" + text)
    record(text)
    if SMALL or N_PROCS < 32:
        return  # shape assertions are calibrated at experiment scale
    for app, rows in data.items():
        # Lazy write-buffer stalls stay near zero even with 256-byte lines.
        assert rows["lrc"]["write"] < 0.03, app
        assert rows["lrc"]["write"] <= rows["erc"]["write"] + 1e-9, app
        # SC normalizes to 1.0.
        assert abs(sum(rows["sc"].values()) - 1.0) < 1e-9
    # The sync-for-read-latency trade shows up in most applications.
    trades = sum(
        1
        for rows in data.values()
        if rows["lrc"]["sync"] >= rows["erc"]["sync"] * 0.95
    )
    assert trades >= 4
