"""Table 1: system parameters, plus the Section 3 worked cost example."""

from benchmarks.conftest import once, record
from repro.config import SystemConfig
from repro.harness import table1


def test_t1_parameters(benchmark):
    text = once(benchmark, table1)
    print("\n" + text)
    record(text)
    # The Section 3 example: a 10-hop fill costs exactly 272 cycles.
    c = SystemConfig.paper()
    assert c.line_fill_cost(0, 5 * 8 + 5) == 272
    assert "272" in text
