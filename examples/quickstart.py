#!/usr/bin/env python
"""Quickstart: simulate one application under every protocol.

Runs the Gauss kernel on a 16-processor machine under sequential
consistency, eager RC, lazy RC (the paper's contribution), the lazier
deferred-notice variant, and Tardis timestamp coherence, then prints
execution times, miss rates and the four-bucket overhead breakdown of
Figure 5.

    python examples/quickstart.py
"""

from repro import SystemConfig, simulate
from repro.apps import Gauss
from repro.protocols import all_names
from repro.stats.report import breakdown_bar, format_table

PROTOCOLS = list(all_names())


def main() -> None:
    config = SystemConfig.scaled(n_procs=16, cache_size=8 * 1024)
    print(f"machine: {config.n_procs} processors, "
          f"{config.cache_size // 1024} KB caches, "
          f"{config.line_size}-byte lines\n")

    results = {}
    for proto in PROTOCOLS:
        results[proto] = simulate(Gauss, config, proto, n=64)

    base = results["sc"].exec_time
    rows = []
    for proto in PROTOCOLS:
        r = results[proto]
        rows.append(
            [
                proto,
                r.exec_time,
                f"{r.exec_time / base:.3f}",
                f"{r.miss_rate * 100:.2f}%",
                r.traffic.total_messages,
            ]
        )
    print(
        format_table(
            ["protocol", "cycles", "normalized", "miss rate", "messages"],
            rows,
            title="Gauss, 64x64, 16 processors",
        )
    )

    print("\ncycle breakdown (#=cpu r=read w=write-buffer s=sync):")
    sc_total = results["sc"].stats.total_cycles
    for proto in PROTOCOLS:
        b = results[proto].breakdown()
        print(f"  {proto:8s} |{breakdown_bar(b, width=60, total=sc_total)}|")


if __name__ == "__main__":
    main()
