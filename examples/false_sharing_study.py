#!/usr/bin/env python
"""False-sharing study: why lazy release consistency wins.

Builds a custom workload (not one of the paper's seven) directly against
the public Machine API: processors repeatedly read and update disjoint
words that share cache lines — pure false sharing — with progressively
rarer synchronization.  Under eager RC every write invalidates the other
sharers immediately; under lazy RC invalidations wait for the next
acquire, so the advantage should grow as synchronization gets rarer.

    python examples/false_sharing_study.py
"""

from repro import Machine, SystemConfig
from repro.program.ops import ACQUIRE, BARRIER, COMPUTE, RELEASE, RW_RUN
from repro.stats.report import format_table


def build_program(seg, pid, n_procs, rounds, work_per_sync):
    """Each processor owns every n_procs-th word of a shared region."""
    def prog():
        for r in range(rounds):
            for _ in range(work_per_sync):
                # Touch 64 of my words, interleaved with everyone else's
                # words in the same lines: classic false sharing.
                yield (RW_RUN, seg.base + pid * 8, 64, n_procs * 8)
                yield (COMPUTE, 200)
            yield (ACQUIRE, pid % 4)
            yield (COMPUTE, 50)
            yield (RELEASE, pid % 4)
        yield (BARRIER, 0)
    return prog()


def run(proto, work_per_sync, n=8):
    m = Machine(SystemConfig.scaled(n_procs=n, cache_size=8 * 1024), protocol=proto)
    seg = m.space.alloc(1 << 16, "shared")
    progs = [build_program(seg, p, n, rounds=10, work_per_sync=work_per_sync) for p in range(n)]
    return m.run(progs)


def main() -> None:
    rows = []
    for work in (1, 2, 4, 8):
        erc = run("erc", work)
        lrc = run("lrc", work)
        rows.append(
            [
                work,
                f"{erc.miss_rate * 100:.2f}%",
                f"{lrc.miss_rate * 100:.2f}%",
                f"{lrc.exec_time / erc.exec_time:.3f}",
            ]
        )
    print(
        format_table(
            ["sweeps/sync", "eager miss", "lazy miss", "lazy/eager time"],
            rows,
            title="False sharing: laziness pays off as sync gets rarer",
        )
    )
    print(
        "\nEach row quadruples the false-sharing work between lock\n"
        "operations. Eager RC pays an invalidation storm per sweep;\n"
        "lazy RC batches all of it into one invalidation per acquire."
    )


if __name__ == "__main__":
    main()
