#!/usr/bin/env python
"""Protocol anatomy: trace the lifecycle of one shared cache line.

Drives a producer/consumer pair by hand through the public Machine API
and inspects the lazy directory after each phase — the Figure 1 state
machine in action (UNCACHED -> DIRTY -> WEAK -> SHARED -> UNCACHED).

    python examples/protocol_anatomy.py
"""

from repro import Machine, SystemConfig
from repro.directory.entry import dir_state_name
from repro.network.messages import MsgType
from repro.program.ops import BARRIER, COMPUTE, READ, WRITE

PHASES = [
    "producer cached the line exclusively (write miss)",
    "consumer read the dirty line: WEAK, writer notified",
    "consumer re-synchronized: invalidated + relinquished",
    "producer evicted nothing; final directory state",
]


def main() -> None:
    m = Machine(SystemConfig.scaled(n_procs=2, cache_size=8 * 1024), protocol="lrc")
    seg = m.space.alloc(4096, "line")
    block = seg.base >> m.config.line_shift
    home = m.nodes[m.home_of(block)]

    checkpoints = []

    def snap(label):
        e = home.directory.entries.get(block)
        if e is None:
            checkpoints.append((label, "UNCACHED", set(), set()))
        else:
            checkpoints.append(
                (label, dir_state_name(e.state), set(e.sharers), set(e.writers))
            )

    def producer(pid):
        yield (READ, seg.base)
        yield (WRITE, seg.base)
        yield (COMPUTE, 5000)
        snap("after producer write")
        yield (BARRIER, 0)
        yield (COMPUTE, 20000)
        yield (BARRIER, 1)
        snap("after consumer resync")

    def consumer(pid):
        yield (COMPUTE, 8000)
        yield (READ, seg.base)       # reads the dirty line: 2 hops, WEAK
        yield (COMPUTE, 2000)
        snap("after consumer read")
        yield (BARRIER, 0)           # acquire semantics: invalidate
        yield (BARRIER, 1)

    m.run([producer(0), consumer(1)])

    print("Lazy directory lifecycle of one line (Figure 1):\n")
    for label, state, sharers, writers in checkpoints:
        print(f"  {label:28s} state={state:8s} sharers={sorted(sharers)} writers={sorted(writers)}")

    t = m.fabric.stats
    print("\nmessages on the wire:")
    for mt, count in sorted(t.count.items()):
        print(f"  {MsgType(mt).name:15s} {count}")
    print("\nNote the absence of FORWARD/OWNER_DATA: the lazy protocol's")
    print("reads are always served by the home's (write-through) memory.")


if __name__ == "__main__":
    main()
