#!/usr/bin/env python
"""Regenerate the paper's tables and figures from the command line.

    python examples/paper_figures.py --procs 16 --small       # quick pass
    python examples/paper_figures.py --procs 64               # full scale
    python examples/paper_figures.py --only f4 t3 --procs 16 --small
    python examples/paper_figures.py --procs 16 --small --jobs 4

Artifacts: t1 t2 t3 f4 f5 f6 f7 f8 f9 quality sweep

``--jobs N`` fans the simulations out over N worker processes through
the experiment engine (``repro.harness.runner``); the equivalent
``python -m repro figures`` subcommand adds a persistent on-disk result
store on top.
"""

import argparse

from repro.apps.mp3d_quality import quality_divergence
from repro.harness import (
    all_artifact_specs,
    figure4_normalized_time,
    figure5_breakdown,
    figure6_lazier,
    figure7_lazier_breakdown,
    figure8_future,
    figure9_future_breakdown,
    prefetch,
    sensitivity_sweep,
    table1,
    table2_miss_classification,
    table3_miss_rates,
)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--procs", type=int, default=16)
    ap.add_argument("--small", action="store_true", help="use the small presets")
    ap.add_argument("--only", nargs="*", default=None, help="subset of artifacts")
    ap.add_argument("--jobs", type=int, default=1,
                    help="parallel worker processes for the simulations")
    args = ap.parse_args()
    n, small = args.procs, args.small

    artifacts = {
        "t1": lambda: table1(),
        "t2": lambda: table2_miss_classification(n, small)[1],
        "t3": lambda: table3_miss_rates(n, small)[1],
        "f4": lambda: figure4_normalized_time(n, small)[1],
        "f5": lambda: figure5_breakdown(n, small)[1],
        "f6": lambda: figure6_lazier(n, small)[1],
        "f7": lambda: figure7_lazier_breakdown(n, small)[1],
        "f8": lambda: figure8_future(n, small)[1],
        "f9": lambda: figure9_future_breakdown(n, small)[1],
        "quality": lambda: "Section 4.2 mp3d quality (lazy vs SC):\n"
        + "\n".join(
            f"  {k}: {v * 100:.3f}%" for k, v in quality_divergence(steps=10).items()
        ),
        "sweep": lambda: sensitivity_sweep(app="mp3d", n_procs=min(n, 16), small=small)[1],
    }
    wanted = args.only or list(artifacts)
    if args.jobs > 1:
        # Warm the in-process memo in parallel; rendering below is then free.
        # ("quality" runs its own comparison and is not spec-shaped.)
        keys = [k for k in wanted if k != "quality"]
        prefetch(all_artifact_specs(keys, n_procs=n, small=small), jobs=args.jobs)
    for key in wanted:
        print(artifacts[key]())
        print("=" * 72)


if __name__ == "__main__":
    main()
