"""Shared address space and data placement.

A bump allocator hands out page-aligned segments; each page is assigned a
home node at allocation time.  The directory entry for a block "resides
at the block's home node — the node whose main memory contains the
block's page" (Section 2).

Placement policies:

* ``"striped"`` (default) — consecutive pages round-robin across nodes,
  the common default for scientific allocators.
* ``"blocked"``  — the segment is split into one contiguous chunk per
  node (good for partitioned per-processor data).
* an integer    — the whole segment lives on that node.
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.config import SystemConfig


class Segment:
    """A named, page-aligned allocation in the shared address space."""

    __slots__ = ("name", "base", "size", "elem_size")

    def __init__(self, name: str, base: int, size: int, elem_size: int = 8) -> None:
        self.name = name
        self.base = base
        self.size = size
        self.elem_size = elem_size

    @property
    def end(self) -> int:
        return self.base + self.size

    def addr(self, index: int) -> int:
        """Byte address of element ``index``."""
        a = self.base + index * self.elem_size
        if a >= self.end or index < 0:
            raise IndexError(
                f"{self.name}[{index}] out of bounds (size {self.size} bytes)"
            )
        return a

    def addr_unchecked(self, index: int) -> int:
        """Hot-path address computation without bounds checking."""
        return self.base + index * self.elem_size

    @property
    def n_elems(self) -> int:
        return self.size // self.elem_size

    def __repr__(self) -> str:
        return f"Segment({self.name!r}, base={self.base:#x}, size={self.size})"


class BlockHomeLookup:
    """Picklable ``block -> home node id`` map (hot-path callable).

    Holds the *live* ``page_home`` list by reference — it grows as the
    space allocates — plus the constant block→page shift.
    """

    __slots__ = ("page_home", "shift")

    def __init__(self, page_home: List[int], shift: int) -> None:
        self.page_home = page_home
        self.shift = shift

    def __call__(self, block: int) -> int:
        return self.page_home[block >> self.shift]

    def __getstate__(self):
        return (self.page_home, self.shift)

    def __setstate__(self, state):
        self.page_home, self.shift = state


class AddressSpace:
    """Bump allocator plus the page -> home-node map."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.page_size = config.page_size
        self._page_shift = config.page_size.bit_length() - 1
        self._line_shift = config.line_shift
        self._next = config.page_size  # keep page 0 unmapped (null guard)
        self._next_rr_node = 0
        self.page_home: Dict[int, int] = {}
        self.segments: List[Segment] = []

    def alloc(
        self,
        nbytes: int,
        name: str = "",
        home: Union[str, int] = "striped",
        elem_size: int = 8,
    ) -> Segment:
        """Allocate ``nbytes`` (rounded up to whole pages)."""
        if nbytes <= 0:
            raise ValueError("allocation size must be positive")
        pages = -(-nbytes // self.page_size)
        base = self._next
        self._next += pages * self.page_size
        first_page = base >> self._page_shift
        n = self.config.n_procs
        if home == "striped":
            for p in range(pages):
                self.page_home[first_page + p] = self._next_rr_node
                self._next_rr_node = (self._next_rr_node + 1) % n
        elif home == "blocked":
            # ceil-sized chunks so every page gets a home even when
            # pages does not divide evenly.
            chunk = -(-pages // n)
            for p in range(pages):
                self.page_home[first_page + p] = min(p // chunk, n - 1)
        elif isinstance(home, int):
            if not (0 <= home < n):
                raise ValueError(f"home node {home} out of range")
            for p in range(pages):
                self.page_home[first_page + p] = home
        else:
            raise ValueError(f"unknown placement policy {home!r}")
        seg = Segment(name or f"seg{len(self.segments)}", base, pages * self.page_size, elem_size)
        self.segments.append(seg)
        return seg

    def home_of_block(self, block: int) -> int:
        """Home node of a cache block (block = byte_addr >> line_shift)."""
        page = (block << self._line_shift) >> self._page_shift
        try:
            return self.page_home[page]
        except KeyError:
            raise KeyError(
                f"access to unallocated address {block << self._line_shift:#x}"
            ) from None

    def home_of_addr(self, addr: int) -> int:
        return self.page_home[addr >> self._page_shift]

    def build_block_home_lookup(self):
        """Return a fast ``block -> home`` callable for the hot path.

        A :class:`BlockHomeLookup` value object rather than a closure:
        the callable is reachable from every protocol object, so it must
        be *picklable* for machine checkpoints (DESIGN.md §15).  It
        shares ``page_home`` by reference, so allocations made after the
        lookup was built are still visible through it.
        """
        return BlockHomeLookup(self.page_home, self._page_shift - self._line_shift)

    @property
    def bytes_allocated(self) -> int:
        return self._next - self.page_size


class RecordingAddressSpace(AddressSpace):
    """An address space that logs every allocation it hands out.

    The log — ``(nbytes, name, home, elem_size)`` per :meth:`alloc` call,
    in order — is the piece of app construction a
    :class:`~repro.program.stream.RecordedStream` must carry so a replay
    machine can reproduce identical segment bases *and* page-home
    assignments without re-running any application Python.  Allocation is
    deterministic (bump pointer + policy), so replaying the log against a
    fresh :class:`AddressSpace` built from an equivalent config yields a
    bit-identical ``page_home`` map.
    """

    def __init__(self, config: SystemConfig) -> None:
        super().__init__(config)
        self.alloc_log: List[tuple] = []

    def alloc(
        self,
        nbytes: int,
        name: str = "",
        home: Union[str, int] = "striped",
        elem_size: int = 8,
    ) -> Segment:
        seg = super().alloc(nbytes, name, home, elem_size)
        self.alloc_log.append((nbytes, seg.name, home, elem_size))
        return seg


def apply_alloc_log(space: AddressSpace, alloc_log) -> None:
    """Replay a recorded allocation log into ``space``."""
    for nbytes, name, home, elem_size in alloc_log:
        space.alloc(nbytes, name, home, elem_size)
