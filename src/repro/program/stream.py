"""Recorded reference streams: the record half of the record/replay engine.

An application's reference streams are a pure function of its parameters
and a handful of config fields (:data:`STREAM_CONFIG_FIELDS`): every app
pre-computes its random inputs in ``setup()`` and its ``program(pid)``
generators never observe machine state.  That purity is what makes the
record/replay split sound: execute the app's Python **once**, pack the
yielded ops into structure-of-arrays numpy columns, and drive any number
of (protocol, config, fault-plan) simulations from the arrays without
ever resuming an application generator again.

A :class:`RecordedStream` holds

* four parallel columns over all processors' ops — ``op`` (uint8 opcode),
  ``a`` / ``b`` / ``c`` (int64 operands: addr/sync-id/gap, count, stride;
  unused operands are zero) — with CSR-style ``starts`` offsets
  delimiting each processor's slice, and
* the app's allocation log (from
  :class:`~repro.program.address_space.RecordingAddressSpace`), so a
  replay machine reproduces identical segment bases and page-home
  assignments without running app code.

Streams are content-addressed two ways:

* :func:`stream_key` — the *request* key, computed from
  ``(app, params, stream-relevant config fields)`` before any recording
  happens; it indexes the in-process memo and the result store.
* :meth:`RecordedStream.fingerprint` — the *content* hash over the
  packed arrays and the allocation log; persisted alongside the arrays
  and re-checked on load, so a corrupt or stale cache entry reads as a
  miss, never as a wrong replay.

The replay side — slot-based per-processor cursors feeding
``core.machine``'s run loop — lives in :mod:`repro.engine.replay`.
"""

from __future__ import annotations

import hashlib
import io
import json
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.program.ops import FENCE, RUN_OPS, SCALAR_ARITY

#: Bumped whenever the recorded format or the meaning of a stream key
#: changes; old cached streams then no longer collide with new ones.
STREAM_VERSION = 1

#: The :class:`~repro.config.SystemConfig` fields a reference stream may
#: depend on.  Apps allocate (``page_size``), pad to cache lines
#: (``line_size``, ``word_size``), partition work (``n_procs``) and seed
#: their RNGs (``seed``) — and nothing else: latency/bandwidth/cache-size
#: parameters shape *timing*, not the streams, which is exactly why one
#: recording serves a whole protocol × machine sweep.
STREAM_CONFIG_FIELDS = ("n_procs", "line_size", "page_size", "word_size", "seed")

_RUN_SET = frozenset(RUN_OPS)


class RecordedStream:
    """Structure-of-arrays recording of one app's reference streams.

    ``meta`` snapshots the :data:`STREAM_CONFIG_FIELDS` the record phase
    ran under; :meth:`repro.core.machine.Machine.replay` validates the
    structural subset against its own config, so a stream can never be
    silently replayed on a machine with a different geometry.
    """

    __slots__ = (
        "op", "a", "b", "c", "starts", "alloc_log", "meta",
        "_tuples", "_fp", "_compiled",
    )

    def __init__(self, op, a, b, c, starts, alloc_log, meta) -> None:
        self.op = np.asarray(op, dtype=np.uint8)
        self.a = np.asarray(a, dtype=np.int64)
        self.b = np.asarray(b, dtype=np.int64)
        self.c = np.asarray(c, dtype=np.int64)
        self.starts = np.asarray(starts, dtype=np.int64)
        self.alloc_log: List[Tuple] = [tuple(entry) for entry in alloc_log]
        self.meta: Dict = dict(meta)
        self._tuples: List[Optional[list]] = [None] * self.n_procs
        self._fp: Optional[str] = None
        #: Per-proc micro-programs compiled by :mod:`repro.engine.replay`
        #: (block-span decomposition); cached here because the spans
        #: depend only on the stream itself, so one compilation serves
        #: every replay of this stream in the process.
        self._compiled: Optional[list] = None

    # -- shape ----------------------------------------------------------------

    @property
    def n_procs(self) -> int:
        return len(self.starts) - 1

    @property
    def n_ops(self) -> int:
        return len(self.op)

    def proc_slice(self, pid: int) -> slice:
        return slice(int(self.starts[pid]), int(self.starts[pid + 1]))

    def __len__(self) -> int:
        return self.n_ops

    def __repr__(self) -> str:
        return (
            f"RecordedStream(procs={self.n_procs}, ops={self.n_ops}, "
            f"allocs={len(self.alloc_log)})"
        )

    # -- recording ------------------------------------------------------------

    @classmethod
    def record(cls, app) -> "RecordedStream":
        """Run every ``app.program(pid)`` generator to exhaustion once.

        The app must have been built against a recording
        :class:`~repro.apps.common.AppContext` (the default), so its
        allocations are captured alongside its ops.
        """
        global RECORDINGS
        RECORDINGS += 1
        n_procs = app.n_procs
        ops: List[int] = []
        av: List[int] = []
        bv: List[int] = []
        cv: List[int] = []
        starts = [0]
        for pid in range(n_procs):
            for tup in app.program(pid):
                kind = tup[0]
                if kind in _RUN_SET:
                    if len(tup) != 4:
                        raise ValueError(
                            f"malformed run op from {app.name!r}: {tup!r}"
                        )
                    ops.append(kind)
                    av.append(tup[1])
                    bv.append(tup[2])
                    cv.append(tup[3])
                else:
                    arity = SCALAR_ARITY.get(kind)
                    if arity is None or len(tup) != arity:
                        raise ValueError(
                            f"unrecordable op from {app.name!r}: {tup!r}"
                        )
                    ops.append(kind)
                    av.append(tup[1] if arity == 2 else 0)
                    bv.append(0)
                    cv.append(0)
            starts.append(len(ops))
        meta = {f: getattr(app.cfg, f) for f in STREAM_CONFIG_FIELDS}
        return cls(ops, av, bv, cv, starts, app.ctx.alloc_log, meta)

    # -- replay materialization -------------------------------------------------

    def tuples(self, pid: int) -> list:
        """Processor ``pid``'s ops as the exact tuple forms the run loop
        consumes, materialized from the columns once and cached.

        The cached list is shared (read-only) by every replay of this
        stream in the process — a protocol × config sweep materializes
        each processor's ops exactly once.
        """
        cached = self._tuples[pid]
        if cached is not None:
            return cached
        sl = self.proc_slice(pid)
        out: list = []
        push = out.append
        run_set = _RUN_SET
        fence = FENCE
        for kind, x, y, z in zip(
            self.op[sl].tolist(),
            self.a[sl].tolist(),
            self.b[sl].tolist(),
            self.c[sl].tolist(),
        ):
            if kind in run_set:
                push((kind, x, y, z))
            elif kind == fence:
                push((fence,))
            else:
                push((kind, x))
        self._tuples[pid] = out
        return out

    # -- identity / persistence -------------------------------------------------

    def fingerprint(self) -> str:
        """Stable content hash of the packed stream (hex, filename-safe)."""
        if self._fp is None:
            h = hashlib.sha256()
            h.update(f"stream_version={STREAM_VERSION};".encode())
            h.update(json.dumps(self.meta, sort_keys=True).encode())
            h.update(json.dumps(self.alloc_log, sort_keys=False).encode())
            for col in (self.op, self.a, self.b, self.c, self.starts):
                h.update(str(col.dtype).encode())
                h.update(np.ascontiguousarray(col).tobytes())
            self._fp = h.hexdigest()[:24]
        return self._fp

    def to_bytes(self) -> bytes:
        """The stream as a self-describing ``.npz`` byte blob."""
        buf = io.BytesIO()
        meta = json.dumps(
            {
                "stream_version": STREAM_VERSION,
                "alloc_log": self.alloc_log,
                "meta": self.meta,
                "fingerprint": self.fingerprint(),
            }
        )
        np.savez_compressed(
            buf,
            op=self.op,
            a=self.a,
            b=self.b,
            c=self.c,
            starts=self.starts,
            meta=np.frombuffer(meta.encode(), dtype=np.uint8),
        )
        return buf.getvalue()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "RecordedStream":
        """Inverse of :meth:`to_bytes`; raises on any corruption."""
        with np.load(io.BytesIO(blob)) as z:
            meta = json.loads(z["meta"].tobytes().decode())
            if meta["stream_version"] != STREAM_VERSION:
                raise ValueError(
                    f"stream version {meta['stream_version']} != {STREAM_VERSION}"
                )
            stream = cls(
                z["op"], z["a"], z["b"], z["c"], z["starts"],
                meta["alloc_log"], meta["meta"],
            )
        if stream.fingerprint() != meta["fingerprint"]:
            raise ValueError("stream content does not match its fingerprint")
        return stream


#: Count of record-phase executions this process has performed.  Tests
#: (and the cache-hit acceptance criterion) assert a warm sweep leaves
#: this unchanged.
RECORDINGS = 0


def _canon(value):
    """Canonical JSON-able form of an app parameter value."""
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    if isinstance(value, dict):
        return {str(k): _canon(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    return value


def stream_key(app_name: str, params: Dict, config) -> str:
    """Content address of the stream a record phase *would* produce.

    SHA-256 over the app name, its canonicalized parameters and the
    stream-relevant config fields (:data:`STREAM_CONFIG_FIELDS`) — the
    complete set of inputs the record phase consumes.  Configs differing
    only in timing parameters map to the same key, so one recording
    serves an entire sweep.
    """
    payload = {
        "stream_version": STREAM_VERSION,
        "app": app_name,
        "params": {str(k): _canon(v) for k, v in sorted(params.items())},
        "config": {f: getattr(config, f) for f in STREAM_CONFIG_FIELDS},
    }
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()[:24]


#: In-process stream memo (LRU-bounded: fuzz campaigns record thousands
#: of distinct programs; sweeps reuse a handful of app streams).
_MEMO: "OrderedDict[str, RecordedStream]" = OrderedDict()
_MEMO_CAP = 128


def clear_stream_cache() -> None:
    """Drop the in-process stream memo (on-disk copies are untouched)."""
    _MEMO.clear()


def _memoize(key: str, stream: RecordedStream) -> RecordedStream:
    _MEMO[key] = stream
    _MEMO.move_to_end(key)
    while len(_MEMO) > _MEMO_CAP:
        _MEMO.popitem(last=False)
    return stream


def recorded_stream(
    app_name: str, params: Dict, config, store=None
) -> RecordedStream:
    """The recorded stream for ``(app, params, config)``, recording at
    most once.

    Lookup order: in-process memo, then ``store`` (when given a
    :class:`~repro.results.store.ResultStore`), then a fresh record
    phase — whose result is written back to both tiers.
    """
    key = stream_key(app_name, params, config)
    hit = _MEMO.get(key)
    if hit is not None:
        _MEMO.move_to_end(key)
        return hit
    if store is not None:
        stored = store.load_stream(key)
        if stored is not None:
            return _memoize(key, stored)
    from repro.apps import APPS
    from repro.apps.common import AppContext

    app = APPS[app_name](AppContext(config), **params)
    stream = RecordedStream.record(app)
    if store is not None:
        store.save_stream(key, stream)
    return _memoize(key, stream)
