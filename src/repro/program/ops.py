"""Reference-stream op encoding.

Programs yield plain tuples whose first element is one of the integer
opcodes below.  Tuples (not objects) keep the processor's dispatch loop
allocation-free on the hot path.

Scalar ops::

    (READ, addr)              read one word at byte address addr
    (WRITE, addr)             write one word
    (COMPUTE, cycles)         local computation, no memory references
    (ACQUIRE, lock_id)        lock acquire (acquire semantics)
    (RELEASE, lock_id)        lock release (release semantics)
    (BARRIER, barrier_id)     global barrier (release + acquire semantics)
    (FENCE,)                  release + acquire semantics without a lock

Run ops (amortize generator overhead over regular loops)::

    (READ_RUN, base, count, stride)    read count words at base + i*stride
    (WRITE_RUN, base, count, stride)   write count words
    (RW_RUN, base, count, stride)      read-modify-write count words
"""

READ = 0
WRITE = 1
READ_RUN = 2
WRITE_RUN = 3
RW_RUN = 4
COMPUTE = 5
#: Internal continuation opcode: an RW_RUN element whose read completed
#: (miss fill) but whose write is still owed.  Never yielded by programs.
RW_RESUME = 10
#: Pairwise (producer/consumer) synchronization: SET_FLAG has release
#: semantics (prior writes perform first), WAIT_FLAG has acquire
#: semantics (pending invalidations are processed on the way out).
SET_FLAG = 11
WAIT_FLAG = 12
ACQUIRE = 6
RELEASE = 7
BARRIER = 8
FENCE = 9

#: Scalar opcodes an application may yield, mapped to tuple arity
#: (opcode included).  ``RW_RESUME`` is deliberately absent: it is an
#: internal continuation form, never part of a recordable stream.
SCALAR_ARITY = {
    READ: 2,
    WRITE: 2,
    COMPUTE: 2,
    ACQUIRE: 2,
    RELEASE: 2,
    BARRIER: 2,
    FENCE: 1,
    SET_FLAG: 2,
    WAIT_FLAG: 2,
}

#: Run opcodes: ``(kind, base, count, stride)``.
RUN_OPS = (READ_RUN, WRITE_RUN, RW_RUN)

_NAMES = {
    READ: "READ",
    WRITE: "WRITE",
    READ_RUN: "READ_RUN",
    WRITE_RUN: "WRITE_RUN",
    RW_RUN: "RW_RUN",
    COMPUTE: "COMPUTE",
    ACQUIRE: "ACQUIRE",
    RELEASE: "RELEASE",
    BARRIER: "BARRIER",
    FENCE: "FENCE",
    RW_RESUME: "RW_RESUME",
    SET_FLAG: "SET_FLAG",
    WAIT_FLAG: "WAIT_FLAG",
}


def op_name(code: int) -> str:
    return _NAMES[code]
