"""Program-driven front end.

Applications are per-processor Python generators that *execute the real
algorithm's control flow* and emit its shared-memory reference stream —
the role MINT plays for the paper.  The op encoding lives in
:mod:`repro.program.ops`; the shared address space and data-placement
machinery in :mod:`repro.program.address_space`.
"""

from repro.program.ops import (
    ACQUIRE,
    BARRIER,
    COMPUTE,
    FENCE,
    READ,
    READ_RUN,
    RELEASE,
    RW_RUN,
    WRITE,
    WRITE_RUN,
    op_name,
)
from repro.program.address_space import AddressSpace, Segment

__all__ = [
    "READ",
    "WRITE",
    "READ_RUN",
    "WRITE_RUN",
    "RW_RUN",
    "COMPUTE",
    "ACQUIRE",
    "RELEASE",
    "BARRIER",
    "FENCE",
    "op_name",
    "AddressSpace",
    "Segment",
]
