"""Reliable delivery over a faulty interconnect.

:class:`ReliableFabric` is the fabric the machine uses when an *active*
:class:`~repro.faults.plan.FaultPlan` is attached.  It keeps the plain
fabric's timing model (endpoint contention at the NICs, per-hop transit,
payload serialization) and layers a NIC-boundary recovery protocol on
top, so every coherence protocol (sc/erc/lrc/lrc-ext) survives injected
faults *unmodified*:

* **Sequencing.**  Every (src, dst, channel) pair is an independent
  ordered stream; each logical message gets the stream's next sequence
  number when it enters the sender NIC.
* **Dedup + reordering buffer.**  The receiver delivers a stream's
  messages to the protocol strictly in sequence order, exactly once:
  duplicates (injected, or retransmits of already-delivered messages)
  are counted and discarded; out-of-order arrivals (delay jitter) are
  stashed until the gap fills.  This restores precisely the delivery
  semantics the protocols already rely on from the plain fabric —
  per-channel FIFO, exactly-once — while faults perturb only *timing*.
* **Ack/retransmit.**  Every arrival is answered with a cumulative ack
  (all sequence numbers below the ack value are received).  The sender
  retransmits unacked messages on a timeout with exponential backoff;
  a message that exhausts ``plan.max_retries`` raises a structured
  :class:`~repro.faults.watchdog.SimulationStall` instead of looping
  forever.  Acks travel the same faulty network (droppable, delayable)
  — loss of an ack just causes a retransmit that the receiver dedups.

Accounting: logical traffic is recorded once per ``send`` under the
message's own type, so paper-figure bandwidth numbers keep their
meaning; recovery overhead is visible separately as ``RD_ACK`` messages
and the ``retransmits``/``dup_drops``/``*_injected`` counters on
:class:`~repro.network.messages.MessageStats`.  When faults are off this
module is never imported — the machine uses the plain fabric and pays
zero overhead.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.config import SystemConfig
from repro.engine.simulator import Simulator
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.watchdog import SimulationStall
from repro.network.fabric import Fabric
from repro.network.messages import DATA_BEARING, MsgType

#: Cap on the retransmit backoff exponent (rto << 6 = 64x the base).
_BACKOFF_CAP = 6

#: A duplicate copy trails the original by this many cycles.
_DUP_GAP = 1


class _Pending:
    """One unacked logical message at the sender."""

    __slots__ = ("mtype", "size", "handler", "args", "attempts")

    def __init__(self, mtype: MsgType, size: int, handler: Callable, args: tuple):
        self.mtype = mtype
        self.size = size
        self.handler = handler
        self.args = args
        self.attempts = 0  # completed transmissions beyond the first


class _SendChannel:
    """Sender-side state of one (src, dst, channel) stream."""

    __slots__ = ("next_seq", "pending")

    def __init__(self) -> None:
        self.next_seq = 0
        self.pending: Dict[int, _Pending] = {}


class _RecvChannel:
    """Receiver-side state of one (src, dst, channel) stream."""

    __slots__ = ("expected", "stash")

    def __init__(self) -> None:
        self.expected = 0
        self.stash: Dict[int, _Pending] = {}


class ReliableFabric(Fabric):
    """The plain fabric plus fault injection and reliable delivery."""

    def __init__(self, config: SystemConfig, sim: Simulator, plan: FaultPlan) -> None:
        super().__init__(config, sim)
        self.plan = plan
        self.injector = FaultInjector(plan)
        # Base retransmit timeout: a generous multiple of the worst-case
        # uncontended round trip (max-hop transit both ways plus data
        # serialization at both endpoints), unless the plan pins one.
        w, h = config.mesh_dims
        max_hops = max(1, (w - 1) + (h - 1))
        base_rtt = 2 * (
            config.hop_latency * max_hops + config.nic_occupancy(config.line_size)
        )
        self.rto = plan.rto if plan.rto > 0 else 4 * base_rtt
        self.max_retries = plan.max_retries
        self._send_ch: Dict[Tuple[int, int, str], _SendChannel] = {}
        self._recv_ch: Dict[Tuple[int, int, str], _RecvChannel] = {}

    # -- the public send hook --------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        mtype: MsgType,
        t: int,
        handler: Callable,
        *args: Any,
        size: int = -1,
    ) -> int:
        """Sequence, transmit (under fault decisions), and arm recovery.

        Returns the *estimated* fault-free delivery time — with faults
        active the true delivery time is unknowable at send time (no
        call site consumes the value for correctness; it exists for
        bookkeeping parity with the plain fabric).
        """
        if size < 0:
            size = self._line if mtype in DATA_BEARING else 0
        if src == dst:
            # Local hand-off never crosses the network: no faults.
            self.stats.record(mtype, size, 0)
            if self.tracer is not None:
                self.tracer.emit(
                    "msg", src, t=t, dst=dst, type=mtype.name, size=size,
                    arrival=t,
                )
            self.sim.at(t, handler, t, *args)
            return t
        # Logical traffic is recorded exactly once, here; retransmits
        # and acks are accounted separately so bandwidth figures keep
        # meaning "messages the protocol asked for".
        self.stats.record(mtype, size, self.mesh.hops(src, dst))
        ch = "data" if size else "ctl"
        key = (src, dst, ch)
        sc = self._send_ch.get(key)
        if sc is None:
            sc = self._send_ch[key] = _SendChannel()
        seq = sc.next_seq
        sc.next_seq += 1
        entry = _Pending(mtype, size, handler, args)
        sc.pending[seq] = entry
        if self.tracer is not None:
            self.tracer.emit(
                "msg", src, t=t, dst=dst, type=mtype.name, size=size,
                seq=seq, ch=ch,
            )
        return self._transmit(key, seq, entry, t)

    # -- sender side -----------------------------------------------------------

    def _transmit(self, key: Tuple[int, int, str], seq: int, entry: _Pending, t: int) -> int:
        src, dst, ch = key
        size = entry.size
        cfg = self.config
        occ = cfg.nic_occupancy(size)
        hops = self.mesh.hops(src, dst)
        if entry.attempts:
            self.stats.retransmits += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "fault", src, t=t, dst=dst, seq=seq, ch=ch,
                    what="retransmit", attempt=entry.attempts,
                )
        out = (self.nic_out if size else self.nic_out_ctl)[src]
        start = out.enqueue(t, occ)
        arrival = start + self._hop_lat * hops + (occ if size else 0)
        dec = self.injector.decide(src, dst, ch, t)
        if dec.drop:
            self.stats.drops_injected += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "fault", src, t=t, dst=dst, seq=seq, ch=ch, what="drop",
                    type=entry.mtype.name,
                )
        else:
            if dec.extra:
                self.stats.delays_injected += 1
            # Physical arrivals ride the canonical remote lane (keyed by
            # the sender's send counter), so receive-side processing
            # order is identical under any shard layout.
            sseq = self._sseq[src]
            self._sseq[src] = sseq + 1
            self.sim.deliver_remote(
                arrival + dec.extra, src, sseq, dst,
                self._phys_arrive, key, seq, entry,
            )
            if dec.dup:
                self.stats.dups_injected += 1
                sseq = self._sseq[src]
                self._sseq[src] = sseq + 1
                self.sim.deliver_remote(
                    arrival + dec.extra + _DUP_GAP, src, sseq, dst,
                    self._phys_arrive, key, seq, entry,
                )
        rto = self.rto << min(entry.attempts, _BACKOFF_CAP)
        self.sim.at(t + rto, self._check_timeout, key, seq)
        return arrival

    def _check_timeout(self, key: Tuple[int, int, str], seq: int) -> None:
        sc = self._send_ch.get(key)
        entry = sc.pending.get(seq) if sc is not None else None
        if entry is None:
            return  # acked since the timer was armed
        entry.attempts += 1
        if entry.attempts > self.max_retries:
            window = []
            if self.tracer is not None:
                window = [
                    self.tracer.format_event(e) for e in self.tracer.tail(32)
                ]
            src, dst, ch = key
            raise SimulationStall(
                f"reliable delivery gave up: {entry.mtype.name} "
                f"{src}->{dst}/{ch} seq={seq} unacked after "
                f"{self.max_retries} retransmits (t={self.sim.now})",
                kind="retransmit-cap",
                cycle=self.sim.now,
                window=window,
            )
        self._transmit(key, seq, entry, self.sim.now)

    def _on_ack(self, key: Tuple[int, int, str], upto: int) -> None:
        sc = self._send_ch.get(key)
        if sc is None:
            return
        for seq in [s for s in sc.pending if s < upto]:
            del sc.pending[seq]

    # -- receiver side ---------------------------------------------------------

    def _phys_arrive(self, key: Tuple[int, int, str], seq: int, entry: _Pending) -> None:
        """The message's tail reached the destination: contend for the NIC.

        Like the plain fabric's arrival phase, the receive-NIC
        reservation happens here, in canonical arrival order — which
        faults genuinely reorder (delay jitter), unlike fault-free
        traffic.
        """
        _src, dst, _ch = key
        occ = self.config.nic_occupancy(entry.size)
        nic = (self.nic_in if entry.size else self.nic_in_ctl)[dst]
        now = self.sim.now
        deliver = nic.enqueue(now, occ)
        if deliver == now:
            self._deliver(key, seq, entry)
        else:
            self.sim.at(deliver, self._deliver, key, seq, entry)

    def _deliver(self, key: Tuple[int, int, str], seq: int, entry: _Pending) -> None:
        rc = self._recv_ch.get(key)
        if rc is None:
            rc = self._recv_ch[key] = _RecvChannel()
        now = self.sim.now
        if seq < rc.expected or seq in rc.stash:
            # Injected duplicate, or a retransmit of something already
            # received (e.g. because its ack was lost): discard, re-ack.
            self.stats.dup_drops += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "fault", key[1], t=now, src=key[0], seq=seq, ch=key[2],
                    what="dup-drop",
                )
            self._send_ack(key, rc)
            return
        rc.stash[seq] = entry
        while rc.expected in rc.stash:
            e = rc.stash.pop(rc.expected)
            rc.expected += 1
            # Hand off to the protocol as its own event, preserving the
            # plain fabric's handler(deliver_time, *args) convention.
            self.sim.at(now, e.handler, now, *e.args)
        self._send_ack(key, rc)

    def _send_ack(self, key: Tuple[int, int, str], rc: _RecvChannel) -> None:
        """Cumulative ack dst -> src; itself subject to drop/delay."""
        src, dst, _ch = key
        now = self.sim.now
        upto = rc.expected
        cfg = self.config
        occ = cfg.nic_occupancy(0)
        hops = self.mesh.hops(dst, src)
        self.stats.record(MsgType.RD_ACK, 0, hops)
        start = self.nic_out_ctl[dst].enqueue(now, occ)
        arrival = start + self._hop_lat * hops
        dec = self.injector.decide(dst, src, "ctl", now)
        if dec.drop:
            self.stats.drops_injected += 1
            return
        # Duplicating an idempotent cumulative ack is pointless; only
        # loss and delay apply.
        if dec.extra:
            self.stats.delays_injected += 1
        sseq = self._sseq[dst]
        self._sseq[dst] = sseq + 1
        self.sim.deliver_remote(
            arrival + dec.extra, dst, sseq, src, self._phys_ack, key, upto
        )

    def _phys_ack(self, key: Tuple[int, int, str], upto: int) -> None:
        src = key[0]
        occ = self.config.nic_occupancy(0)
        now = self.sim.now
        deliver = self.nic_in_ctl[src].enqueue(now, occ)
        if deliver == now:
            self._on_ack(key, upto)
        else:
            self.sim.at(deliver, self._on_ack, key, upto)

    # -- introspection ---------------------------------------------------------

    def unacked(self) -> int:
        """Logical messages still awaiting an ack (test/debug hook)."""
        return sum(len(sc.pending) for sc in self._send_ch.values())
