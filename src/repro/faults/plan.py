"""Deterministic fault-injection plans.

A :class:`FaultPlan` describes *what can go wrong* on the interconnect:
per-message probabilities of dropping, duplicating, or delaying a
message, optional periodic burst windows during which those rates are
multiplied, and an optional (src, dst, channel) filter restricting the
faults to part of the machine.  A plan is pure data — frozen, hashable,
JSON round-trippable — and, like everything else that changes simulated
numbers, it is part of ``ExperimentSpec.fingerprint()`` so faulty and
fault-free runs never share a result-store slot.

Plans can additionally be *phase-scripted*: a tuple of
:class:`FaultPhase` windows, each a ``[start, end)`` range of simulated
cycles with its own absolute rates.  Inside a phase window the phase's
rates replace the plan's base rates entirely, which is how the scenario
library (:mod:`repro.scenarios`) scripts good→bad→good link behaviour —
base rates describe the good link, phases describe the outages.  Phase
windows must be sorted and non-overlapping so the effective rate at any
cycle is unambiguous.

Determinism: all randomness is drawn from one ``random.Random(seed)``
stream owned by the injector, and the simulator consults it in a fixed
event order, so the same (program, plan) pair always produces the same
fault schedule bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Optional, Tuple

#: Channel names accepted by :attr:`FaultPlan.channel`.
CHANNELS = ("ctl", "data")


@dataclass(frozen=True)
class FaultPhase:
    """One scripted window of the fault schedule.

    ``start``/``end`` bound the window in simulated cycles
    (``start <= t < end``); the four rates are *absolute* per-message
    probabilities that replace the plan's base rates for the window's
    duration.  An all-zero phase is a scripted calm (useful to carve a
    known-good window out of an otherwise-faulty run).
    """

    start: int
    end: int
    drop: float = 0.0
    dup: float = 0.0
    delay: float = 0.0
    reorder: float = 0.0

    RATE_FIELDS = ("drop", "dup", "delay", "reorder")

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"phase start must be >= 0, got {self.start!r}")
        if self.end <= self.start:
            raise ValueError(
                f"phase window must satisfy start < end, got "
                f"[{self.start!r}, {self.end!r})"
            )
        for name in self.RATE_FIELDS:
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"phase {name} rate must be in [0, 1], got {v!r}")

    def covers(self, t: int) -> bool:
        return self.start <= t < self.end

    @property
    def active(self) -> bool:
        return any(getattr(self, name) > 0.0 for name in self.RATE_FIELDS)

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FaultPhase":
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown FaultPhase fields: {sorted(unknown)}")
        return cls(**d)


@dataclass(frozen=True)
class FaultPlan:
    """One adversarial-delivery scenario, fully specified.

    Rates are per-message probabilities in ``[0, 1]``:

    * ``drop``   — the message is lost in flight (sender NIC still paid);
    * ``dup``    — a second copy arrives one cycle after the first;
    * ``delay``  — transit is stretched by 1..``delay_cycles`` extra
      cycles (jitter, which also *reorders* messages within a channel);
    * ``reorder``— an extra independent jitter draw, kept as a separate
      knob so reordering pressure can be raised without raising loss.

    ``burst_every``/``burst_len`` define periodic windows (in simulated
    cycles) during which every rate is multiplied by ``burst_mult`` —
    faults in the wild cluster, and burst loss is what stresses the
    retransmit backoff.  ``src``/``dst``/``channel`` restrict injection
    to matching messages (``None`` matches everything).

    ``rto`` (0 = derive from the machine's timing parameters) and
    ``max_retries`` tune the recovery layer, not the faults themselves.

    ``worker_kill`` is *harness-level* chaos: ``(epoch, shard)`` events
    at which the process shard backend SIGKILLs its own worker to
    exercise crash recovery (:mod:`repro.engine.shard_proc`).  Unlike
    every other field it perturbs the harness, not the interconnect:
    recovery is bit-identical, so the events never make a plan
    :attr:`active` (the plain fabric stays in) and never enter a spec
    fingerprint.  Ignored outside the process backend.
    """

    seed: int = 0
    drop: float = 0.0
    dup: float = 0.0
    delay: float = 0.0
    reorder: float = 0.0
    delay_cycles: int = 200
    burst_every: int = 0
    burst_len: int = 0
    burst_mult: float = 4.0
    src: Optional[int] = None
    dst: Optional[int] = None
    channel: Optional[str] = None
    rto: int = 0
    max_retries: int = 12
    phases: Tuple[FaultPhase, ...] = field(default=())
    worker_kill: Tuple[Tuple[int, int], ...] = field(default=())

    #: Fields that are per-message probabilities.
    RATE_FIELDS = ("drop", "dup", "delay", "reorder")

    def __post_init__(self) -> None:
        phases = tuple(
            p if isinstance(p, FaultPhase) else FaultPhase.from_dict(p)
            for p in self.phases
        )
        object.__setattr__(self, "phases", phases)
        kills = tuple(sorted((int(e), int(s)) for e, s in self.worker_kill))
        object.__setattr__(self, "worker_kill", kills)
        for e, s in kills:
            if e < 0 or s < 0:
                raise ValueError(
                    f"worker_kill events must be (epoch >= 0, shard >= 0), "
                    f"got ({e}, {s})"
                )
        for prev, cur in zip(phases, phases[1:]):
            if cur.start < prev.end:
                raise ValueError(
                    f"phase windows must be sorted and non-overlapping: "
                    f"[{prev.start}, {prev.end}) then [{cur.start}, {cur.end})"
                )
        for name in self.RATE_FIELDS:
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1], got {v!r}")
        if self.delay_cycles < 0:
            raise ValueError("delay_cycles must be >= 0")
        if self.burst_every < 0 or self.burst_len < 0:
            raise ValueError("burst windows must be >= 0")
        if self.burst_mult < 0:
            raise ValueError("burst_mult must be >= 0")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if self.rto < 0:
            raise ValueError("rto must be >= 0")
        if self.channel is not None and self.channel not in CHANNELS:
            raise ValueError(
                f"channel must be one of {CHANNELS} or None, got {self.channel!r}"
            )

    # -- predicates -----------------------------------------------------------

    @property
    def active(self) -> bool:
        """True when the plan can actually perturb a run.

        A zero-rate plan is inert: the machine then uses the plain
        fabric, so cycle counts and traffic are bit-identical to a
        no-faults run (the zero-overhead-off guarantee, mirroring the
        tracer's ``if tracer is not None`` pattern).  A phase script
        whose every window is also zero-rate is equally inert — scripted
        calm over a calm link changes nothing.
        """
        return any(
            getattr(self, name) > 0.0 for name in self.RATE_FIELDS
        ) or any(p.active for p in self.phases)

    def rates_at(self, t: int) -> Tuple[float, float, float, float]:
        """Effective (drop, dup, delay, reorder) rates at cycle ``t``.

        Inside a phase window the phase's rates apply; outside every
        window the base rates do.  Burst multiplication (``in_burst``)
        is applied by the injector on top of whichever set is live.
        """
        for p in self.phases:
            if p.start > t:
                break  # sorted: no later phase can cover t
            if t < p.end:
                return (p.drop, p.dup, p.delay, p.reorder)
        return (self.drop, self.dup, self.delay, self.reorder)

    def matches(self, src: int, dst: int, channel: str) -> bool:
        return (
            (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and (self.channel is None or self.channel == channel)
        )

    def in_burst(self, t: int) -> bool:
        return self.burst_every > 0 and (t % self.burst_every) < self.burst_len

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        d = {f.name: getattr(self, f.name) for f in fields(self)}
        # A phase-free plan serializes exactly as it did before phases
        # existed: old stored plans round-trip, and the spec fingerprint
        # of every pre-existing faulted experiment is unchanged.
        if not self.phases:
            del d["phases"]
        else:
            d["phases"] = [p.to_dict() for p in self.phases]
        # Same rule for chaos events: a kill-free plan serializes as it
        # did before worker_kill existed.
        if not self.worker_kill:
            del d["worker_kill"]
        else:
            d["worker_kill"] = [list(k) for k in self.worker_kill]
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        return cls(**d)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the CLI mini-language: ``drop=0.02,dup=0.02,delay=0.05``.

        Keys are :class:`FaultPlan` field names; values are coerced to
        the field's type (``channel`` stays a string).  Chaos events use
        ``:`` within and ``;`` between pairs: ``worker_kill=40:0;90:1``
        kills shard 0's worker at epoch 40 and shard 1's at epoch 90.
        """
        d: Dict[str, Any] = {}
        types = {f.name: f.type for f in fields(cls)}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"bad fault spec {part!r} (expected key=value)")
            key, _, raw = part.partition("=")
            key = key.strip()
            if key == "phases":
                raise ValueError(
                    "phase scripts cannot be written in the CLI "
                    "mini-language; use a scenario JSON document "
                    "(repro scenarios) instead"
                )
            if key not in types:
                raise ValueError(
                    f"unknown fault field {key!r} "
                    f"(expected one of {sorted(types)})"
                )
            raw = raw.strip()
            if key == "worker_kill":
                d[key] = tuple(
                    tuple(int(x) for x in pair.split(":"))
                    for pair in raw.split(";")
                    if pair
                )
            elif key == "channel":
                d[key] = raw
            elif key in ("src", "dst"):
                d[key] = int(raw)
            elif key in ("drop", "dup", "delay", "reorder", "burst_mult"):
                d[key] = float(raw)
            else:
                d[key] = int(raw)
        return cls(**d)

    @classmethod
    def coerce(cls, obj) -> Optional["FaultPlan"]:
        """Normalize the accepted spellings: None, plan, dict, CLI string."""
        if obj is None or isinstance(obj, cls):
            return obj
        if isinstance(obj, dict):
            return cls.from_dict(obj)
        if isinstance(obj, str):
            return cls.parse(obj)
        raise TypeError(f"cannot build a FaultPlan from {type(obj).__name__}")

    def label(self) -> str:
        """Compact human-readable tag for logs and spec labels."""
        parts = [
            f"{name}={getattr(self, name):g}"
            for name in self.RATE_FIELDS
            if getattr(self, name) > 0.0
        ]
        if self.phases:
            parts.append(f"phases={len(self.phases)}")
        if self.worker_kill:
            parts.append(f"kill={len(self.worker_kill)}")
        if self.seed:
            parts.append(f"seed={self.seed}")
        return ",".join(parts) or "inert"
