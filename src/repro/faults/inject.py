"""The per-message fault oracle.

:class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into concrete per-message decisions.  The fabric consults it once per
physical transmission (first sends, retransmits, and acks alike); the
injector owns one seeded PRNG substream *per transmitting node*, so each
node's fault schedule is a pure function of (plan, that node's own
transmission order).  Per-node streams — rather than one global stream —
are what keep the schedule independent of cross-node event interleaving,
so sharded runs (DESIGN.md §14) draw exactly the decisions serial runs
draw.
"""

from __future__ import annotations

import random

from repro.faults.plan import FaultPlan

#: A transmission the injector leaves alone (shared, immutable).
_CLEAN = None  # set below, after Decision is defined


class Decision:
    """What happens to one physical transmission."""

    __slots__ = ("drop", "dup", "extra")

    def __init__(self, drop: bool = False, dup: bool = False, extra: int = 0) -> None:
        self.drop = drop
        self.dup = dup
        self.extra = extra  # added transit cycles (delay / reorder jitter)

    def __repr__(self) -> str:
        return f"Decision(drop={self.drop}, dup={self.dup}, extra={self.extra})"


_CLEAN = Decision()


class FaultInjector:
    """Seeded, deterministic fault decisions for a whole run."""

    __slots__ = ("plan", "seed", "_rngs")

    def __init__(self, plan: FaultPlan, seed=None) -> None:
        self.plan = plan
        self.seed = plan.seed if seed is None else seed
        self._rngs: dict = {}

    def _rng_for(self, src: int) -> random.Random:
        """The transmitting node's private PRNG substream.

        Seeded from (run seed, node id) via the string form, which
        :mod:`random` hashes with SHA-512 — deterministic across
        processes and ``PYTHONHASHSEED`` values.
        """
        rng = self._rngs.get(src)
        if rng is None:
            rng = self._rngs[src] = random.Random(f"{self.seed}:{src}")
        return rng

    def decide(self, src: int, dst: int, channel: str, t: int) -> Decision:
        """The fate of one transmission injected at time ``t``.

        Messages outside the plan's (src, dst, channel) filter are
        always clean.  The effective rates are the plan's base rates or,
        inside a scripted phase window, that phase's rates
        (:meth:`FaultPlan.rates_at`); inside a burst window whichever
        set is live is multiplied by ``burst_mult`` (clamped to 1.0).
        """
        plan = self.plan
        if not plan.matches(src, dst, channel):
            return _CLEAN
        if plan.phases:
            drop, dup_rate, delay, reorder = plan.rates_at(t)
        else:
            drop, dup_rate, delay, reorder = (
                plan.drop, plan.dup, plan.delay, plan.reorder,
            )
        if not (drop or dup_rate or delay or reorder):
            # A scripted calm window consumes no randomness, so the
            # fault schedule inside the faulty windows is independent
            # of how much clean traffic flowed between them.
            return _CLEAN
        rng = self._rng_for(src)
        mult = plan.burst_mult if plan.in_burst(t) else 1.0
        if rng.random() < min(1.0, drop * mult):
            # A dropped message needs no further decisions; still a
            # single decision point so schedules shift minimally.
            return Decision(drop=True)
        dup = rng.random() < min(1.0, dup_rate * mult)
        extra = 0
        if plan.delay_cycles:
            if delay and rng.random() < min(1.0, delay * mult):
                extra += rng.randint(1, plan.delay_cycles)
            if reorder and rng.random() < min(1.0, reorder * mult):
                extra += rng.randint(1, plan.delay_cycles)
        if not dup and not extra:
            return _CLEAN
        return Decision(dup=dup, extra=extra)
