"""Fault injection and recovery (DESIGN.md §10).

Public surface:

* :class:`FaultPlan` — seeded, JSON round-trippable description of an
  adversarial-delivery scenario (drop/dup/delay/reorder rates, burst
  windows, (src, dst, channel) filter, recovery tuning), optionally
  phase-scripted via :class:`FaultPhase` cycle windows (good→bad→good
  link behaviour, driven by the scenario library);
* :class:`FaultInjector` — the deterministic per-message fault oracle;
* :class:`ReliableFabric` — the NIC-boundary recovery layer (sequence
  numbers, dedup, in-order delivery, ack/retransmit with backoff) that
  lets every protocol survive injected faults unmodified;
* :class:`StallWatchdog` / :class:`SimulationStall` — no-progress
  detection turning livelocks into structured failures.

``ReliableFabric`` is intentionally *not* imported eagerly: when faults
are off, nothing in this package touches the simulation hot path.
"""

from repro.faults.inject import Decision, FaultInjector
from repro.faults.plan import CHANNELS, FaultPhase, FaultPlan
from repro.faults.watchdog import (
    DEFAULT_STALL_CYCLES,
    ENV_STALL_CYCLES,
    SimulationStall,
    StallWatchdog,
)

__all__ = [
    "CHANNELS",
    "DEFAULT_STALL_CYCLES",
    "Decision",
    "ENV_STALL_CYCLES",
    "FaultInjector",
    "FaultPhase",
    "FaultPlan",
    "SimulationStall",
    "StallWatchdog",
]
