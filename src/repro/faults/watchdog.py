"""Simulation stall detection.

A livelocked protocol (lost wakeup, retransmit loop, ping-pong without
progress) keeps the event queue busy forever, so the simulator never
returns and the ``max_cycles`` ceiling — sized for the slowest *healthy*
run — takes ages to trip.  The :class:`StallWatchdog` raises a
structured :class:`SimulationStall` as soon as *no processor commits an
operation* for ``interval`` simulated cycles, carrying the trace window
around the stall when a tracer is attached.  ``run_parallel`` workers
enable it by default, so a livelocked spec becomes a persisted
:class:`~repro.results.store.RunFailure` instead of a hung pool.

The watchdog is pure observation: its periodic check reads counters and
either reschedules itself or raises.  It never touches protocol state or
resources, so enabling it cannot move a single simulated cycle, and it
stops rescheduling once every processor finished (or the event queue
drained, preserving the machine's ordinary ``DeadlockError`` diagnosis).
"""

from __future__ import annotations

#: Default no-progress window, in simulated cycles.  Legitimate
#: zero-commit gaps are bounded by a handful of network round-trips plus
#: the reliable layer's worst-case retransmit backoff — well under 1M
#: cycles — so 5M is conservative while still turning an infinite hang
#: into a prompt structured failure.
DEFAULT_STALL_CYCLES = 5_000_000

#: Environment variable enabling the watchdog process-wide (cycles;
#: unset or "0" = off).  ``tests/conftest.py`` sets it so tier-1 can
#: never hang CI, and ``run_parallel`` workers default it on.
ENV_STALL_CYCLES = "REPRO_STALL_CYCLES"


class SimulationStall(RuntimeError):
    """The simulation stopped making forward progress.

    Raised by the watchdog (``kind="watchdog"``) when no processor
    commits an operation for the configured window, and by the reliable
    delivery layer (``kind="retransmit-cap"``) when a message exhausts
    its retransmit budget.  ``window`` holds formatted trace lines
    anchored at the stall when a tracer was attached.
    """

    def __init__(
        self,
        message: str,
        kind: str = "watchdog",
        cycle: int = 0,
        window=None,
    ) -> None:
        super().__init__(message)
        self.kind = kind
        self.cycle = cycle
        self.window = list(window or [])


class StallWatchdog:
    """Periodic no-progress check over one :class:`~repro.core.machine.Machine`.

    On the serial engine the check is a self-rescheduling event.  On the
    sharded engine it rides the epoch-barrier hook instead: the budget is
    consumed only by *machine-wide* zero-commit windows, so a shard that
    spends epochs idle at the barrier (its nodes waiting on cross-shard
    replies) can never be misread as a livelock — progress anywhere in
    any shard resets the window, exactly as in the serial engine.
    """

    __slots__ = ("machine", "interval", "_last", "_next_check")

    def __init__(self, machine, interval: int = DEFAULT_STALL_CYCLES) -> None:
        if interval < 1:
            raise ValueError("watchdog interval must be >= 1 cycle")
        self.machine = machine
        self.interval = interval
        self._last = -1
        self._next_check = 0

    def progress(self) -> int:
        """Monotone progress signal: committed ops + finished processors."""
        total = self.machine._finished
        for p in self.machine.stats.procs:
            total += p.reads + p.writes + p.acquires + p.releases + p.barriers
        return total

    def arm(self) -> None:
        sim = self.machine.sim
        self._last = self.progress()
        if hasattr(sim, "barrier_hook"):
            self._next_check = sim.now + self.interval
            sim.barrier_hook = self._on_barrier
        else:
            sim.at(sim.now + self.interval, self._check)

    def _stall(self, now: int) -> None:
        m = self.machine
        window = []
        if m.tracer is not None:
            window = [m.tracer.format_event(e) for e in m.tracer.tail(32)]
        stuck = [
            (n.id, n.proc.block_reason, n.out_count)
            for n in m.nodes
            if not n.proc.done
        ]
        raise SimulationStall(
            f"no processor committed an operation for {self.interval} "
            f"cycles (t={now}; {len(stuck)} unfinished, "
            f"(id, reason, outstanding): {stuck[:8]})",
            kind="watchdog",
            cycle=now,
            window=window,
        )

    def _check(self) -> None:
        m = self.machine
        sim = m.sim
        if m._finished >= m.config.n_procs:
            return  # all done; let the queue drain
        if not sim.has_pending():
            # Queue drained with processors blocked: a true deadlock.
            # Don't reschedule — Machine.run's DeadlockError diagnosis
            # (which names the stuck processors) is the better report.
            return
        cur = self.progress()
        if cur == self._last:
            self._stall(sim.now)
        self._last = cur
        sim.at(sim.now + self.interval, self._check)

    def _on_barrier(self, now: int) -> None:
        """Sharded check point, called after every epoch barrier."""
        if now < self._next_check:
            return
        m = self.machine
        if m._finished >= m.config.n_procs or not m.sim.has_pending():
            return
        cur = self.progress()
        if cur == self._last:
            self._stall(now)
        self._last = cur
        self._next_check = now + self.interval
