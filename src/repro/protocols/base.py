"""Protocol base class: shared plumbing and synchronization machinery.

A protocol implements two halves:

* **CPU side** — hooks called by the processor when the inline fast paths
  miss: ``cpu_read_miss``, ``cpu_write``, ``cpu_acquire``, ``cpu_release``,
  ``cpu_barrier``, ``cpu_fence``.
* **Home side** — message handlers that run at a block's home node and
  drive the directory state machine.

Locks and barriers are *queued at their home node's protocol processor*
and are identical across protocols; what differs is hooked through
``_pre_release`` (what a release must wait for) and
``_process_pending_invals`` (what an acquire must invalidate).  This is
exactly the split the paper describes: eager protocols do all coherence
work before the release completes, lazy protocols postpone invalidations
to acquires.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, List, Optional

from repro.cache.state import INVALID, RO, RW
from repro.network.messages import MsgType


class Protocol:
    """Common machinery; concrete protocols override the hooks."""

    name = "base"
    uses_write_buffer = True     # SC overrides to False
    write_through = False        # lazy protocols override to True
    timestamp_coherence = False  # tardis overrides to True

    def __init__(self, machine) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.fabric = machine.fabric
        self.cfg = machine.config
        self.stats = machine.stats
        self.home_of = machine.home_of       # block -> home node id
        self.nodes = machine.nodes
        self._n = machine.config.n_procs

    # -- construction hooks -------------------------------------------------------

    def make_directory(self):
        raise NotImplementedError

    def attach_node(self, node) -> None:
        """Install protocol-specific per-node structures."""
        raise NotImplementedError

    # -- CPU-side hooks (must be provided by subclasses) ---------------------------

    def cpu_read_miss(self, node, t: int, block: int) -> None:
        raise NotImplementedError

    def cpu_write(self, node, t: int, block: int, word: int) -> int:
        raise NotImplementedError

    # -- release/acquire hook defaults (eager semantics) ----------------------------

    def _pre_release(self, node, t: int, cont: Callable) -> None:
        """Call ``cont(t')`` once the node's previous writes have globally
        performed.  Default: wait for the write buffer to drain and all
        outstanding transactions to complete."""
        if node.out_count == 0 and (node.wb is None or node.wb.empty) and (
            node.cbuf is None or node.cbuf.empty
        ):
            cont(t)
        else:
            assert node.release_cb is None, "concurrent releases on one node"
            node.release_cb = cont

    def _process_pending_invals(self, node, t: int) -> int:
        """Apply acquire-time invalidations; return the completion time.

        Default (eager protocols): nothing is pending, return ``t``."""
        return t

    # -- timestamp-coherence hooks (no-ops except under tardis) --------------

    def _sync_ts(self, node) -> int:
        """Timestamp payload a release-semantics operation publishes.

        Every release-side synchronization message (lock release, barrier
        arrival, flag set) carries this value; sync managers accumulate
        the max and hand it to the matching acquire side.  Timestamp-free
        protocols publish 0 and ignore what they receive."""
        return 0

    def _apply_sync_ts(self, node, ts: int) -> None:
        """Adopt a timestamp observed at an acquire-semantics operation."""

    # -- observability guards ------------------------------------------------------

    def _guard_release(self, node, cont: Callable) -> Callable:
        """Wrap a release-semantics continuation with the observability
        hook.  The wrapper fires on both the immediate path and the
        deferred ``release_cb`` path — including through protocol-specific
        ``_pre_release`` overrides — so the invariant checker sees every
        release commit point.  A no-op (returns ``cont`` unwrapped) when
        neither tracing nor checking is enabled."""
        if node.checker is None and node.tracer is None:
            return cont

        def guarded(t2: int) -> None:
            node.release_fired(t2)
            cont(t2)

        return guarded

    def _acquire_done(self, node, t: int) -> None:
        """Observability hook: acquire-side invalidation processing is
        complete and the CPU is about to resume."""
        if node.checker is not None:
            node.checker.on_acquire_done(node, t)
        if node.tracer is not None:
            node.tracer.emit("acquire_done", node.id, t=t)

    # =====================================================================
    # Locks
    # =====================================================================

    def lock_home(self, lock_id: int) -> int:
        return lock_id % self._n

    def cpu_acquire(self, node, t: int, lock_id: int) -> None:
        # Start invalidating already-received notices in parallel with the
        # lock request (Section 2: "much of the latency of this operation
        # can be hidden behind the latency of the lock acquisition").
        node.acq_inv_done = self._process_pending_invals(node, t)
        self.fabric.send(
            node.id,
            self.lock_home(lock_id),
            MsgType.LOCK_REQ,
            t,
            self._h_lock_req,
            lock_id,
            node.id,
        )

    def _h_lock_req(self, t: int, lock_id: int, requester: int) -> None:
        home = self.nodes[self.lock_home(lock_id)]
        tp = home.pp.reserve(t, self.cfg.lock_mgr_cost)
        st = home.lock_state.get(lock_id)
        if st is None:
            st = {"held": False, "queue": deque(), "ts": 0}
            home.lock_state[lock_id] = st
        if not st["held"]:
            st["held"] = True
            self.fabric.send(
                home.id, requester, MsgType.LOCK_GRANT, tp, self._h_lock_grant,
                requester, st["ts"],
            )
        else:
            st["queue"].append(requester)

    def _h_lock_grant(self, t: int, requester: int, ts: int = 0) -> None:
        node = self.nodes[requester]
        self._apply_sync_ts(node, ts)
        # Finish invalidations: those started at acquire time may still be
        # in progress; notices that arrived while waiting are processed now.
        t2 = t if t >= node.acq_inv_done else node.acq_inv_done
        t2 = self._process_pending_invals(node, t2)
        self._acquire_done(node, t2)
        node.proc.unblock(t2)

    def cpu_release(self, node, t: int, lock_id: int) -> None:
        def done(t2: int) -> None:
            self.fabric.send(
                node.id,
                self.lock_home(lock_id),
                MsgType.LOCK_RELEASE,
                t2,
                self._h_lock_release,
                lock_id,
                self._sync_ts(node),
            )
            node.proc.unblock(t2 + 1)

        self._pre_release(node, t, self._guard_release(node, done))

    def _h_lock_release(self, t: int, lock_id: int, ts: int = 0) -> None:
        home = self.nodes[self.lock_home(lock_id)]
        tp = home.pp.reserve(t, self.cfg.lock_mgr_cost)
        st = home.lock_state[lock_id]
        if ts > st.get("ts", 0):
            st["ts"] = ts
        if st["queue"]:
            nxt = st["queue"].popleft()
            self.fabric.send(
                home.id, nxt, MsgType.LOCK_GRANT, tp, self._h_lock_grant,
                nxt, st.get("ts", 0),
            )
        else:
            st["held"] = False

    # =====================================================================
    # Barriers (centralized, at the barrier id's home node)
    # =====================================================================

    def cpu_barrier(self, node, t: int, barrier_id: int) -> None:
        def arrived(t2: int) -> None:
            self.fabric.send(
                node.id,
                self.lock_home(barrier_id),
                MsgType.BARRIER_ARRIVE,
                t2,
                self._h_barrier_arrive,
                barrier_id,
                node.id,
                self._sync_ts(node),
            )

        self._pre_release(node, t, self._guard_release(node, arrived))

    def _h_barrier_arrive(self, t: int, barrier_id: int, src: int, ts: int = 0) -> None:
        home = self.nodes[self.lock_home(barrier_id)]
        tp = home.pp.reserve(t, self.cfg.lock_mgr_cost)
        st = home.barrier_state.get(barrier_id)
        if st is None:
            st = {"waiters": deque(), "ts": 0}
            home.barrier_state[barrier_id] = st
        st["waiters"].append(src)
        if ts > st.get("ts", 0):
            st["ts"] = ts
        if len(st["waiters"]) == self._n:
            # Releases go out one at a time through the manager's protocol
            # processor — the natural serialization skew of a central
            # barrier.
            for w in st["waiters"]:
                tg = home.pp.reserve(tp, self.cfg.lock_mgr_cost)
                self.fabric.send(
                    home.id, w, MsgType.BARRIER_EXIT, tg, self._h_barrier_exit,
                    w, st.get("ts", 0),
                )
            st["waiters"].clear()

    def _h_barrier_exit(self, t: int, target: int, ts: int = 0) -> None:
        node = self.nodes[target]
        self._apply_sync_ts(node, ts)
        t2 = self._process_pending_invals(node, t)
        self._acquire_done(node, t2)
        node.proc.unblock(t2)

    # =====================================================================
    # Flags: pairwise producer/consumer synchronization
    # =====================================================================

    def cpu_set_flag(self, node, t: int, flag_id: int) -> None:
        """Release semantics, then set the flag at its home node."""

        def done(t2: int) -> None:
            self.fabric.send(
                node.id,
                self.lock_home(flag_id),
                MsgType.FLAG_SET,
                t2,
                self._h_flag_set,
                flag_id,
                self._sync_ts(node),
            )
            node.proc.unblock(t2 + 1)

        self._pre_release(node, t, self._guard_release(node, done))

    def _h_flag_set(self, t: int, flag_id: int, ts: int = 0) -> None:
        home = self.nodes[self.lock_home(flag_id)]
        tp = home.pp.reserve(t, self.cfg.lock_mgr_cost)
        st = home.lock_state.setdefault(
            ("f", flag_id), {"set": False, "waiters": deque(), "ts": 0}
        )
        st["set"] = True
        if ts > st.get("ts", 0):
            st["ts"] = ts
        for w in st["waiters"]:
            tp = home.pp.reserve(tp, self.cfg.lock_mgr_cost)
            self.fabric.send(
                home.id, w, MsgType.FLAG_GRANT, tp, self._h_flag_granted,
                w, st.get("ts", 0),
            )
        st["waiters"].clear()

    def cpu_wait_flag(self, node, t: int, flag_id: int) -> None:
        """Block until the flag is set; acquire semantics on the way out."""
        node.acq_inv_done = self._process_pending_invals(node, t)
        self.fabric.send(
            node.id,
            self.lock_home(flag_id),
            MsgType.FLAG_WAIT,
            t,
            self._h_flag_wait,
            flag_id,
            node.id,
        )

    def _h_flag_wait(self, t: int, flag_id: int, requester: int) -> None:
        home = self.nodes[self.lock_home(flag_id)]
        tp = home.pp.reserve(t, self.cfg.lock_mgr_cost)
        st = home.lock_state.setdefault(
            ("f", flag_id), {"set": False, "waiters": deque()}
        )
        if st["set"]:
            self.fabric.send(
                home.id, requester, MsgType.FLAG_GRANT, tp, self._h_flag_granted,
                requester, st.get("ts", 0),
            )
        else:
            st["waiters"].append(requester)

    def _h_flag_granted(self, t: int, requester: int, ts: int = 0) -> None:
        node = self.nodes[requester]
        self._apply_sync_ts(node, ts)
        t2 = t if t >= node.acq_inv_done else node.acq_inv_done
        t2 = self._process_pending_invals(node, t2)
        self._acquire_done(node, t2)
        node.proc.unblock(t2)

    # =====================================================================
    # Fence: release semantics + acquire semantics, no lock
    # =====================================================================

    def cpu_fence(self, node, t: int) -> None:
        def done(t2: int) -> None:
            t3 = self._process_pending_invals(node, t2)
            self._acquire_done(node, t3)
            node.proc.unblock(t3)

        self._pre_release(node, t, self._guard_release(node, done))

    # =====================================================================
    # Shared helpers
    # =====================================================================

    def _install_line(self, node, t: int, block: int, state: int) -> None:
        """Install a fill, handling the victim via the protocol hook."""
        victim = node.cache.victim_of(block)
        if victim is not None:
            self.handle_eviction(node, t, victim[0], victim[1])
        node.cache.install(block, state)

    def handle_eviction(self, node, t: int, vblock: int, vstate: int) -> None:
        """Protocol-specific replacement handling (hint / writeback)."""
        raise NotImplementedError
