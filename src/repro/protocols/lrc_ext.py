"""The lazier protocol variant: write notices deferred to release points.

Section 2: "Under this protocol, the node's protocol processor will
refrain from sending a write request to a block's home node as long as
possible.  Notification is sent either when a written block is replaced
in a processor's cache, or when the processor performs a release
operation."

Differences from :class:`~repro.protocols.lrc.LRCProtocol`:

* a write to a read-only line upgrades locally and records the block in
  a bounded per-node *deferred notice* buffer — no message is sent;
* a write miss fetches the line as a *reader* (the directory does not
  learn about the writer) and then defers the notice;
* at a release, every deferred notice is sent; the home runs the usual
  weak-transition/ack-collection machinery and the release stalls until
  all final acknowledgements return — this is the synchronization cost
  that, per the paper's results, usually outweighs the miss-rate benefit;
* an eviction of a block with a deferred notice sends the notice first
  (this bounds the buffer and keeps directory processing simple);
* write requests from several processors that arrive together (e.g. at
  a barrier) share one ack collection at the home — the combining that
  makes fft *faster* under this protocol.

Data still flows through the write-through coalescing buffer
continuously, so home memory stays current; only the *notices* are lazy.
"""

from __future__ import annotations

from repro.cache.state import INVALID, RO, RW
from repro.network.messages import MsgType
from repro.protocols.lrc import LRCProtocol


class LRCExtProtocol(LRCProtocol):
    name = "lrc-ext"

    # ==========================================================================
    # CPU side
    # ==========================================================================

    def cpu_write(self, node, t: int, block: int, word: int) -> int:
        state = node.cache.lookup(block)
        obs = self.machine.classifier
        if state == RW:
            self._cbuf_add(node, t, block, {word})
            return t + 1
        if state == RO:
            node.stats.upgrade_misses += 1
            if obs is not None:
                obs.classify_write_upgrade(node.id, block, t)
            node.cache.upgrade(block)
            node.deferred_notices.add(block)
            self._cbuf_add(node, t, block, {word})
            return t + 1
        wb = node.wb
        existing = wb.contains(block)
        if not wb.add(block, word):
            return -1
        if not existing:
            node.stats.write_misses += 1
            if obs is not None:
                obs.classify_miss(node.id, block, word, t)
            self._issue_write_fetch(node, t, block)
        return t + 1

    def _send_write_fetch(self, node, t: int, block: int) -> None:
        """Fetch the line as a *reader*; the write notice stays deferred."""
        self.fabric.send(
            node.id,
            self.home_of(block),
            MsgType.READ_REQ,
            t,
            self._h_write_fetch_req,
            block,
            node.id,
        )

    def _h_write_fetch_req(self, t: int, block: int, requester: int) -> None:
        home = self.nodes[self.home_of(block)]
        tp = home.pp.reserve(t, self.cfg.lrc_dir_cost)
        out = home.directory.read(block, requester)
        tm = home.mem.read(t, self.cfg.line_size)
        treply = tp if tp > tm else tm
        td = treply
        for w in out.notices_to:
            td = home.pp.reserve(td, self.cfg.notice_cost)
            self.stats.notices_sent += 1
            self.fabric.send(
                home.id, w, MsgType.WRITE_NOTICE, td, self._h_notice_info, block, w
            )
        vm = self.machine.valmodel
        self.fabric.send(
            home.id,
            requester,
            MsgType.DATA_REPLY,
            treply,
            self._h_write_fetch_fill,
            block,
            requester,
            out.weak_for_reader,
            vm.home_line(block) if vm is not None else None,
        )

    def _h_write_fetch_fill(
        self, t: int, block: int, requester: int, weak: bool, data=None
    ) -> None:
        node = self.nodes[requester]
        t_fill = node.bus.reserve(t, self.cfg.bus_time(self.cfg.line_size))
        self._install_line(node, t_fill, block, RW)
        vm = self.machine.valmodel
        if vm is not None:
            vm.fill(requester, block, data)
        node.wb_fetching.discard(block)
        if node.release_cb is not None:
            # A release fence is already waiting: it scanned (and posted)
            # the deferred notices before this fill landed, so deferring
            # now would let the release complete without ever announcing
            # the write.  Post the notice immediately; the fence also
            # waits for its final ack.
            self.stats.deferred_notices += 1
            self._send_write_notice(node, t_fill, block, has_copy=True)
        else:
            node.deferred_notices.add(block)
        if weak:
            node.pending_inval.add(block)
        self._retire_ready_wb(node, t_fill)
        node.txn_done(t_fill)

    # ==========================================================================
    # Release: post the deferred notices, then wait for everything
    # ==========================================================================

    def _pre_release(self, node, t: int, cont) -> None:
        deferred = node.deferred_notices
        if deferred:
            pp = node.pp
            cost = self.cfg.notice_cost
            ts = t
            for block in sorted(deferred):
                ts = pp.reserve(ts, cost)
                self.stats.deferred_notices += 1
                self._send_write_notice(node, ts, block, has_copy=True)
            deferred.clear()
        super()._pre_release(node, t, cont)

    # ==========================================================================
    # Acquire invalidations: a deferred notice must be posted before the
    # line can be relinquished, or the writes would never be announced.
    # ==========================================================================

    def _process_pending_invals(self, node, t: int) -> int:
        if node.pending_inval:
            overlap = node.pending_inval & node.deferred_notices
            for block in sorted(overlap):
                self.stats.deferred_notices += 1
                self._send_write_notice(node, t, block, has_copy=True)
                node.deferred_notices.discard(block)
        return super()._process_pending_invals(node, t)

    # ==========================================================================
    # Evictions flush the deferred notice first
    # ==========================================================================

    def handle_eviction(self, node, t: int, vblock: int, vstate: int) -> None:
        if vblock in node.deferred_notices:
            node.deferred_notices.discard(vblock)
            self.stats.deferred_notices += 1
            # The notice (write request) travels ahead of the eviction
            # hint on the same source->home path, so the home registers
            # the write, runs its notice/ack machinery, and only then
            # removes the evictor from the sharer set.
            self._send_write_notice(node, t, vblock, has_copy=True)
        super().handle_eviction(node, t, vblock, vstate)
