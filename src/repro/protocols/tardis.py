"""Tardis timestamp coherence, relaxed to the paper's sync points.

Tardis (Yu & Devadas, PACT'15; Tardis 2.0, PACT'16) orders memory
operations in *logical time* instead of tracking sharers: each block
carries a write timestamp (``wts``) and a read lease (``rts``), each
processor carries a logical clock (``pts``), and coherence is the rule
that a copy may be used only while ``pts <= rts``.  There is no
invalidation fan-out, no ack collection, and no eviction traffic — the
directory stores two integers per block, O(log n) instead of O(n).

This backend keeps LRC's data plane (write-through + coalescing buffer,
so home memory supports word-granularity multi-writer merging) and maps
Tardis 2.0's relaxed mode onto the paper's release/acquire structure:

* **Reads** miss to the home, which renews the lease
  (``rts = max(rts, wts, pts + tardis_lease)``) and replies with
  ``(wts, rts)``; the reader raises ``pts`` to ``wts`` and records the
  lease.  Two hops, always — same argument as LRC's no-forwarding rule.
* **Writes** never serialize at the home.  An RO->RW upgrade is purely
  local (no sharer list exists to notify); a write miss fetches the line
  like a read and installs it RW.  Written blocks accumulate in
  ``ts_dirty``.
* **Releases** drain the coalescing buffer, then send one ``TS_BUMP``
  per dirty block; the home sets ``wts = rts + 1`` (past every lease
  ever granted) and the ack raises the releaser's ``pts`` to the new
  ``wts``.  A bump is held behind the block's in-flight write-throughs
  (the ``wt_waiters`` gate), so the timestamp can never publish a write
  whose data has not reached home memory.  The release continuation
  fires only after every bump is acknowledged.
* **Release-side sync messages** carry the releaser's ``pts`` (the
  ``_sync_ts`` hook in :mod:`repro.protocols.base`); lock/flag/barrier
  managers accumulate the max and hand it to the matching acquire.
* **Acquires** adopt the released timestamp (``pts = max(pts, ts)``)
  and then *self-invalidate* every resident line whose lease is below
  the new ``pts`` — the Tardis 2.0 relaxed mode: lease checks happen
  only at sync points, exactly where LRC processes write notices.  For
  data-race-free programs this is sufficient: any write ordered before
  the acquire was bumped at its release, so ``wts > rts_old`` of every
  stale copy, and ``pts >= wts`` after the acquire expires it.
* **Evictions are silent** — nothing to tell a home that tracks no
  sharers.  A dirty block's bump obligation lives in ``ts_dirty`` and
  survives eviction until the next release.

Because leases are checked only at sync points, cache state never
changes between two hits of one scheduling quantum, which is precisely
the property the replay engine's span fast path relies on — lease
expiry is bit-identical between the generator and replay engines for
the same reason LRC's acquire-time invalidations are.
"""

from __future__ import annotations

from typing import Set

from repro.cache.state import RO, RW
from repro.directory.timestamp import TardisDirectory
from repro.network.messages import MsgType
from repro.protocols.lrc import LRCProtocol


class TardisProtocol(LRCProtocol):
    name = "tardis"
    uses_write_buffer = True
    write_through = True
    timestamp_coherence = True
    dir_cost_attr = "lrc_dir_cost"

    def make_directory(self):
        return TardisDirectory()

    # ==========================================================================
    # CPU side
    # ==========================================================================

    # cpu_read_miss is inherited: it gates on in-flight write-throughs
    # (read-own-write) and calls _send_read_req, overridden below.

    def _send_read_req(self, node, t: int, block: int) -> None:
        self.fabric.send(
            node.id,
            self.home_of(block),
            MsgType.READ_REQ,
            t,
            self._h_fetch_req,
            block,
            node.id,
            node.pts,
            False,
        )

    def cpu_write(self, node, t: int, block: int, word: int) -> int:
        state = node.cache.lookup(block)
        obs = self.machine.classifier
        if state == RW:
            self._cbuf_add(node, t, block, {word})
            return t + 1
        if state == RO:
            # Purely local upgrade: there is no sharer list to notify and
            # no serializing owner; the write is published by the
            # release-time timestamp bump.
            node.stats.upgrade_misses += 1
            if obs is not None:
                obs.classify_write_upgrade(node.id, block, t)
            node.cache.upgrade(block)
            self._cbuf_add(node, t, block, {word})
            return t + 1
        wb = node.wb
        existing = wb.contains(block)
        if not wb.add(block, word):
            return -1
        if not existing:
            node.stats.write_misses += 1
            if obs is not None:
                obs.classify_miss(node.id, block, word, t)
            self._issue_write_fetch(node, t, block)
        return t + 1

    # _issue_write_fetch is inherited (txn_start + wt_inflight gate); the
    # actual fetch is a read-shaped request that installs RW.

    def _send_write_fetch(self, node, t: int, block: int) -> None:
        self.fabric.send(
            node.id,
            self.home_of(block),
            MsgType.WRITE_REQ,
            t,
            self._h_fetch_req,
            block,
            node.id,
            node.pts,
            True,
        )

    def _cbuf_add(self, node, t: int, block: int, words: Set[int]) -> None:
        late = node.release_cb is not None and block not in node.ts_dirty
        node.ts_dirty.add(block)
        super()._cbuf_add(node, t, block, words)
        if late:
            # A release fence already swept ts_dirty (write-buffer entries
            # retiring under the fence land here): bump now, *after* the
            # flush above, so the wt_inflight gate orders bump after data.
            self._issue_bump(node, t, block)
            node.ts_dirty.discard(block)

    # ==========================================================================
    # Release / acquire semantics
    # ==========================================================================

    def _sync_ts(self, node) -> int:
        return node.pts

    def _apply_sync_ts(self, node, ts: int) -> None:
        if ts > node.pts:
            node.pts = ts

    def _pre_release(self, node, t: int, cont) -> None:
        for block, words in node.cbuf.drain():
            self._flush_words(node, t, block, words)
        # Publish this epoch's writes: one bump per dirty block, each
        # gated behind that block's write-through acks.  The release
        # continuation waits for the bump acks via out_count.
        for block in sorted(node.ts_dirty):
            self._issue_bump(node, t, block)
        node.ts_dirty.clear()
        super()._pre_release(node, t, cont)

    def _issue_bump(self, node, t: int, block: int) -> None:
        node.txn_start()
        if node.wt_inflight.get(block):
            # The bump must not overtake our own write-throughs to home:
            # wts may only move past data that is already in memory.
            node.wt_waiters.setdefault(block, []).append("bump")
            return
        self._send_bump(node, t, block)

    def _send_bump(self, node, t: int, block: int) -> None:
        self.fabric.send(
            node.id,
            self.home_of(block),
            MsgType.TS_BUMP,
            t,
            self._h_ts_bump,
            block,
            node.id,
        )

    def _wt_waiter_resume(self, node, t: int, block: int, kind: str) -> None:
        if kind == "bump":
            self._send_bump(node, t, block)
        else:
            super()._wt_waiter_resume(node, t, block, kind)

    def _h_ts_bump(self, t: int, block: int, src: int) -> None:
        home = self.nodes[self.home_of(block)]
        tp = home.pp.reserve(t, self.cfg.lrc_dir_cost)
        wts = home.directory.bump(block)
        self.stats.ts_bumps += 1
        self.fabric.send(
            home.id, src, MsgType.ACK, tp, self._h_bump_ack, src, wts
        )

    def _h_bump_ack(self, t: int, src: int, wts: int) -> None:
        node = self.nodes[src]
        if wts > node.pts:
            node.pts = wts
        node.txn_done(t)

    def _process_pending_invals(self, node, t: int) -> int:
        """Self-invalidate expired leases (Tardis 2.0 relaxed mode).

        Runs at every acquire-semantics point, after ``pts`` adopted the
        released timestamp: every resident line whose lease is below the
        new clock may be stale and is dropped.  No message is sent — the
        home tracks no sharers.  Returns the completion time."""
        pts = node.pts
        expired = [b for b, lease in node.ts_lease.items() if lease < pts]
        if not expired:
            return t
        expired.sort()
        obs = self.machine.classifier
        pp = node.pp
        cost = self.cfg.notice_cost
        for block in expired:
            t = pp.reserve(t, cost)
            del node.ts_lease[block]
            if node.cache.invalidate(block):
                node.stats.acquire_invalidations += 1
                self.stats.acquire_invalidations += 1
                self.stats.lease_expirations += 1
                if obs is not None:
                    obs.record_invalidation(node.id, block, t)
                # Unflushed words for a dying line must reach memory for
                # the multiple-writer merge to be correct.
                words = node.cbuf.remove(block)
                if words:
                    self._flush_words(node, t, block, words)
        return t

    # ==========================================================================
    # Home side
    # ==========================================================================

    def _h_fetch_req(
        self, t: int, block: int, requester: int, pts: int, rw: bool
    ) -> None:
        home = self.nodes[self.home_of(block)]
        tp = home.pp.reserve(t, self.cfg.lrc_dir_cost)
        wts, rts = home.directory.read(block, pts, self.cfg.tardis_lease)
        # Timestamp processing is hidden behind the memory access.
        tm = home.mem.read(t, self.cfg.line_size)
        vm = self.machine.valmodel
        self.fabric.send(
            home.id,
            requester,
            MsgType.DATA_REPLY,
            tp if tp > tm else tm,
            self._h_fetch_fill,
            block,
            requester,
            wts,
            rts,
            rw,
            vm.home_line(block) if vm is not None else None,
        )

    def _h_fetch_fill(
        self, t: int, block: int, requester: int, wts: int, rts: int,
        rw: bool, data=None,
    ) -> None:
        node = self.nodes[requester]
        t_fill = node.bus.reserve(t, self.cfg.bus_time(self.cfg.line_size))
        self._install_line(node, t_fill, block, RW if rw else RO)
        # Read at-or-after the last published write; the lease is at
        # least as large, so a fresh fill never expires immediately.
        if wts > node.pts:
            node.pts = wts
        node.ts_lease[block] = rts
        vm = self.machine.valmodel
        if vm is not None:
            vm.fill(requester, block, data)
            if not rw:
                vm.read_fill(requester, block)
        if rw:
            node.wb_fetching.discard(block)
            self._retire_ready_wb(node, t_fill)
            node.txn_done(t_fill)
        else:
            node.proc.unblock(t_fill)

    # ==========================================================================
    # Evictions
    # ==========================================================================

    def handle_eviction(self, node, t: int, vblock: int, vstate: int) -> None:
        if self.machine.classifier is not None:
            self.machine.classifier.record_eviction(node.id, vblock, t)
        # Dirty words still coalescing must reach memory.
        words = node.cbuf.remove(vblock)
        if words:
            self._flush_words(node, t, vblock, words)
        node.ts_lease.pop(vblock, None)
        # Silent replacement: nothing to tell a home that tracks no
        # sharers; ts_dirty keeps the bump obligation until the release.
