"""Sequentially consistent directory protocol.

The normalization baseline of every figure in the paper ("execution time
is normalized with respect to the execution time of the sequentially
consistent protocol").

A sequentially consistent processor exposes each access's full latency:

* read misses stall the CPU until the fill completes;
* writes stall the CPU until ownership (and data, if absent) is granted —
  there is no write buffer, so these stalls land in the "write" bucket
  of the overhead breakdown;
* acquires and releases are plain lock operations: all writes have
  already globally performed when the release executes.
"""

from __future__ import annotations

from repro.cache.state import INVALID, RO, RW
from repro.directory.msi import MSIDirectory
from repro.network.messages import MsgType
from repro.protocols.base import Protocol
from repro.protocols.msi_home import MSIHomeMixin


class SCProtocol(MSIHomeMixin, Protocol):
    name = "sc"
    uses_write_buffer = False
    write_through = False
    dir_cost_attr = "erc_dir_cost"

    def make_directory(self):
        return MSIDirectory()

    def attach_node(self, node) -> None:
        node.directory = self.make_directory()
        node.wb = None
        node.cbuf = None

    # -- CPU side ----------------------------------------------------------------------

    def cpu_read_miss(self, node, t: int, block: int) -> None:
        self._fill_begin(node, block)
        self.fabric.send(
            node.id,
            self.home_of(block),
            MsgType.READ_REQ,
            t,
            self._h_read_req,
            block,
            node.id,
        )

    def cpu_write(self, node, t: int, block: int, word: int) -> int:
        state = node.cache.lookup(block)
        obs = self.machine.classifier
        if state == RO:
            node.stats.upgrade_misses += 1
            if obs is not None:
                obs.classify_write_upgrade(node.id, block, t)
        else:
            node.stats.write_misses += 1
            if obs is not None:
                obs.classify_miss(node.id, block, word, t)
        # Returning -1 makes the processor stall (write bucket) and retry
        # the write — which then hits — after _write_grant resumes it.
        self._fill_begin(node, block)
        self.fabric.send(
            node.id,
            self.home_of(block),
            MsgType.WRITE_REQ,
            t,
            self._h_write_req,
            block,
            node.id,
            state == RO,
        )
        return -1

    def _write_grant(self, node, t: int, block: int) -> None:
        # The write is performed at the grant, atomically with ownership:
        # see Processor.complete_pending_write for the livelock rationale.
        node.proc.complete_pending_write()
        node.proc.unblock(t)
