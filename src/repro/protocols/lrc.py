"""Lazy release consistency for hardware-coherent multiprocessors.

The paper's primary contribution (Section 2).  Key properties:

* **Multiple concurrent writers.**  A write to a block cached read-only
  retires immediately — the home is informed (a write notice is sent
  right away, overlapped with computation) but the writer does not wait
  for ownership.  There is no serializing owner.
* **Lazy invalidations.**  Write notices received by a sharer are only
  *recorded*; the lines are invalidated at the sharer's next acquire
  (much of that work is hidden behind the lock-acquisition latency).
* **2-hop reads, always.**  The home never forwards a read: with
  write-through caches its memory is always current enough ("If it is
  being written, then the fact that the read occurred indicates that no
  synchronization operation separates the write from the read" — true
  sharing is not occurring).
* **Write-through + coalescing buffer.**  Required for correctness with
  multiple writers (word-granularity merging in memory); a 16-entry
  coalescing buffer keeps the traffic at write-back levels and keeps
  releases cheap.
* **Releases** stall until the write buffer has drained, every
  outstanding transaction (write notices awaiting home acknowledgement,
  coalescing-buffer flushes) has completed, and memory has acknowledged
  the write-throughs.
"""

from __future__ import annotations

from typing import Set

from repro.cache.coalescing_buffer import CoalescingBuffer
from repro.cache.state import INVALID, RO, RW
from repro.cache.write_buffer import WriteBuffer
from repro.directory.lazy import LazyDirectory
from repro.network.messages import MsgType
from repro.protocols.base import Protocol


class LRCProtocol(Protocol):
    name = "lrc"
    uses_write_buffer = True
    write_through = True
    dir_cost_attr = "lrc_dir_cost"

    def make_directory(self):
        return LazyDirectory()

    def attach_node(self, node) -> None:
        node.directory = self.make_directory()
        node.wb = WriteBuffer(self.cfg.wb_entries)
        node.cbuf = CoalescingBuffer(self.cfg.cbuf_entries)

    # ==========================================================================
    # CPU side
    # ==========================================================================

    def cpu_read_miss(self, node, t: int, block: int) -> None:
        if node.wt_inflight.get(block):
            # Our own write-through for this line is still traveling: a
            # read request (control channel) would overtake it (data
            # channel) and the home would serve the pre-write line,
            # breaking read-own-write.  Hold the miss until the ack.
            node.wt_waiters.setdefault(block, []).append("read")
            return
        self._send_read_req(node, t, block)

    def _send_read_req(self, node, t: int, block: int) -> None:
        self.fabric.send(
            node.id,
            self.home_of(block),
            MsgType.READ_REQ,
            t,
            self._h_read_req,
            block,
            node.id,
        )

    def cpu_write(self, node, t: int, block: int, word: int) -> int:
        state = node.cache.lookup(block)
        obs = self.machine.classifier
        if state == RW:
            # Fast path fell through only because the coalescing buffer
            # has no live entry for this block: start one.
            self._cbuf_add(node, t, block, {word})
            return t + 1
        if state == RO:
            # The write retires immediately: no need to wait for the home
            # ("we do not need to use the home node as a serializing
            # point").  The notice transaction proceeds in the background.
            node.stats.upgrade_misses += 1
            if obs is not None:
                obs.classify_write_upgrade(node.id, block, t)
            node.cache.upgrade(block)
            self._cbuf_add(node, t, block, {word})
            self._send_write_notice(node, t, block, has_copy=True)
            return t + 1
        # Line absent: the write buffer holds the words until the line
        # arrives from the home.
        wb = node.wb
        existing = wb.contains(block)
        if not wb.add(block, word):
            return -1
        if not existing:  # new entry: start the fetch
            node.stats.write_misses += 1
            if obs is not None:
                obs.classify_miss(node.id, block, word, t)
            self._issue_write_fetch(node, t, block)
        return t + 1

    def _issue_write_fetch(self, node, t: int, block: int) -> None:
        node.wb_fetching.add(block)
        node.txn_start()
        if node.wt_inflight.get(block):
            # Same ordering rule as cpu_read_miss: the fetch reply would
            # otherwise carry the line as it was before our own in-flight
            # write-through merged.
            node.wt_waiters.setdefault(block, []).append("fetch")
            return
        self._send_write_fetch(node, t, block)

    def _send_write_fetch(self, node, t: int, block: int) -> None:
        self.fabric.send(
            node.id,
            self.home_of(block),
            MsgType.WRITE_REQ,
            t,
            self._h_write_req,
            block,
            node.id,
            False,
        )

    def _send_write_notice(self, node, t: int, block: int, has_copy: bool) -> None:
        node.txn_start()
        self.fabric.send(
            node.id,
            self.home_of(block),
            MsgType.WRITE_REQ,
            t,
            self._h_write_req,
            block,
            node.id,
            has_copy,
        )

    # -- coalescing buffer -----------------------------------------------------------

    def _cbuf_add(self, node, t: int, block: int, words: Set[int]) -> None:
        if node.release_cb is not None:
            # A release fence is already waiting: write-buffer entries that
            # retire now must go straight through to memory, or the fence
            # would deadlock waiting for a buffer it already drained.
            self._flush_words(node, t, block, words)
            return
        victim = node.cbuf.add(block, words)
        if victim is not None:
            self._flush_words(node, t, victim[0], victim[1])
        else:
            self._kick_drain(node, t)

    #: Maximum concurrent background write-through flushes per node.
    DRAIN_WIDTH = 4

    def _kick_drain(self, node, t: int) -> None:
        """Background drain (Jouppi-style coalescing write buffer).

        The buffer retains the most recent entry so a burst of writes to
        one line coalesces into a single memory update, but older entries
        drain continuously — up to DRAIN_WIDTH flushes in flight — so
        releases only wait for a short tail instead of the whole buffer.
        """
        while node.wt_drain_busy < self.DRAIN_WIDTH and len(node.cbuf) >= 2:
            head = node.cbuf.order[0]
            words = node.cbuf.remove(head)
            node.wt_drain_busy += 1
            self._flush_words(node, t, head, words, background=True)

    def _flush_words(
        self, node, t: int, block: int, words: Set[int], background: bool = False
    ) -> None:
        """Write dirty words through to the home memory (asks for an ack)."""
        node.txn_start()
        node.wt_inflight[block] = node.wt_inflight.get(block, 0) + 1
        self.stats.write_throughs += 1
        size = len(words) * self.cfg.word_size
        vm = self.machine.valmodel
        self.fabric.send(
            node.id,
            self.home_of(block),
            MsgType.WRITE_THROUGH,
            t,
            self._h_write_through,
            block,
            node.id,
            size,
            background,
            vm.flush_capture(node.id, block, words) if vm is not None else None,
            size=size,
        )

    def _h_write_through(
        self, t: int, block: int, src: int, size: int, background: bool, data=None
    ) -> None:
        home = self.nodes[self.home_of(block)]
        vm = self.machine.valmodel
        if vm is not None:
            vm.apply_home(block, data)
        tm = home.mem.write(t, size)
        self.fabric.send(
            home.id, src, MsgType.ACK, tm, self._h_wt_ack, src, background, block
        )

    def _h_wt_ack(self, t: int, src: int, background: bool, block: int) -> None:
        node = self.nodes[src]
        node.txn_done(t)
        if background:
            node.wt_drain_busy -= 1
        left = node.wt_inflight[block] - 1
        if left:
            node.wt_inflight[block] = left
        else:
            del node.wt_inflight[block]
            for kind in node.wt_waiters.pop(block, ()):
                self._wt_waiter_resume(node, t, block, kind)
        if background:
            self._kick_drain(node, t)

    def _wt_waiter_resume(self, node, t: int, block: int, kind: str) -> None:
        """Resume one message held behind this block's write-throughs.
        Subclasses add waiter kinds (tardis queues timestamp bumps)."""
        if kind == "read":
            self._send_read_req(node, t, block)
        else:
            self._send_write_fetch(node, t, block)

    # ==========================================================================
    # Release / acquire semantics
    # ==========================================================================

    def _pre_release(self, node, t: int, cont) -> None:
        # Flush the coalescing buffer; the resulting write-throughs (and
        # any outstanding notices/fetches) must be acknowledged before
        # the release completes.
        for block, words in node.cbuf.drain():
            self._flush_words(node, t, block, words)
        super()._pre_release(node, t, cont)

    def _process_pending_invals(self, node, t: int) -> int:
        """Invalidate every line named by a received write notice.

        Each invalidation occupies the protocol processor briefly and
        sends a "no longer caching" message to the home so the block can
        revert toward SHARED/UNCACHED.  Returns the completion time.
        """
        pend = node.pending_inval
        if not pend:
            return t
        obs = self.machine.classifier
        pp = node.pp
        cost = self.cfg.notice_cost
        for block in sorted(pend):
            t = pp.reserve(t, cost)
            if node.cache.invalidate(block):
                node.stats.acquire_invalidations += 1
                self.stats.acquire_invalidations += 1
                if obs is not None:
                    obs.record_invalidation(node.id, block, t)
                # Unflushed words for a dying line must reach memory for
                # the multiple-writer merge to be correct.
                words = node.cbuf.remove(block)
                if words:
                    self._flush_words(node, t, block, words)
                self.fabric.send(
                    node.id,
                    self.home_of(block),
                    MsgType.RELINQUISH,
                    t,
                    self._h_relinquish,
                    block,
                    node.id,
                )
        pend.clear()
        return t

    def _h_relinquish(self, t: int, block: int, src: int) -> None:
        home = self.nodes[self.home_of(block)]
        home.pp.reserve(t, self.cfg.notice_cost)
        home.directory.remove(block, src)

    # ==========================================================================
    # Home side
    # ==========================================================================

    def _h_read_req(self, t: int, block: int, requester: int) -> None:
        home = self.nodes[self.home_of(block)]
        tp = home.pp.reserve(t, self.cfg.lrc_dir_cost)
        out = home.directory.read(block, requester)
        # Directory processing is hidden behind the memory access.
        tm = home.mem.read(t, self.cfg.line_size)
        treply = tp if tp > tm else tm
        # A read of a dirty block notifies the current writer (footnote 1).
        # The notice is informational: no ack is collected, and the writer
        # does not invalidate (its copy is complete — see directory/lazy).
        td = treply
        for w in out.notices_to:
            td = home.pp.reserve(td, self.cfg.notice_cost)
            self.stats.notices_sent += 1
            self.fabric.send(
                home.id,
                w,
                MsgType.WRITE_NOTICE,
                td,
                self._h_notice_info,
                block,
                w,
            )
        vm = self.machine.valmodel
        self.fabric.send(
            home.id,
            requester,
            MsgType.DATA_REPLY,
            treply,
            self._h_read_fill,
            block,
            requester,
            out.weak_for_reader,
            vm.home_line(block) if vm is not None else None,
        )

    def _h_read_fill(
        self, t: int, block: int, requester: int, weak: bool, data=None
    ) -> None:
        node = self.nodes[requester]
        t_fill = node.bus.reserve(t, self.cfg.bus_time(self.cfg.line_size))
        self._install_line(node, t_fill, block, RO)
        if weak:
            node.pending_inval.add(block)
        vm = self.machine.valmodel
        if vm is not None:
            vm.fill(requester, block, data)
            vm.read_fill(requester, block)
        node.proc.unblock(t_fill)

    def _h_write_req(self, t: int, block: int, requester: int, has_copy: bool) -> None:
        home = self.nodes[self.home_of(block)]
        tp = home.pp.reserve(t, self.cfg.lrc_dir_cost)
        e = home.directory.entry(block)
        out = home.directory.write(block, requester, has_copy)
        awaiting = bool(out.notices_to) or e.pending_acks > 0
        # Data reply (if the writer lacks the line) is sent immediately —
        # the writer can retire the buffered words; the *final* ack that
        # the release fence waits on may come later, after notice acks.
        if out.needs_data:
            tm = home.mem.read(t, self.cfg.line_size)
            vm = self.machine.valmodel
            self.fabric.send(
                home.id,
                requester,
                MsgType.DATA_REPLY,
                tp if tp > tm else tm,
                self._h_write_fill,
                block,
                requester,
                out.weak_for_writer,
                not awaiting,
                vm.home_line(block) if vm is not None else None,
            )
        td = tp
        for s in out.notices_to:
            td = home.pp.reserve(td, self.cfg.notice_cost)
            self.stats.notices_sent += 1
            self.fabric.send(
                home.id, s, MsgType.WRITE_NOTICE, td, self._h_notice, block, s, True
            )
        if awaiting:
            # Join the (possibly already open) ack collection; the home
            # acknowledges every waiting writer at once when the count
            # reaches zero.  The weak-for-writer flag rides along so a
            # multi-writer upgrade still learns to self-invalidate.
            e.pending_acks += len(out.notices_to)
            e.pending_requesters.append((requester, out.weak_for_writer and not out.needs_data))
        elif not out.needs_data:
            self.fabric.send(
                home.id,
                requester,
                MsgType.ACK,
                tp,
                self._h_final_ack_blk,
                requester,
                out.weak_for_writer,
                block,
            )

    def _h_write_fill(
        self, t: int, block: int, requester: int, weak: bool, final: bool, data=None
    ) -> None:
        """Data for a write miss: install RW and retire buffered words."""
        node = self.nodes[requester]
        t_fill = node.bus.reserve(t, self.cfg.bus_time(self.cfg.line_size))
        self._install_line(node, t_fill, block, RW)
        vm = self.machine.valmodel
        if vm is not None:
            vm.fill(requester, block, data)
        node.wb_fetching.discard(block)
        if weak:
            node.pending_inval.add(block)
        self._retire_ready_wb(node, t_fill)
        if final:
            node.txn_done(t_fill)

    def _retire_ready_wb(self, node, t: int) -> None:
        """Retire write-buffer entries in FIFO order while the head's
        line is present read-write.  If the head's line was displaced by
        an intervening fill (direct-mapped conflict) its fetch is
        reissued — otherwise the entry could never retire."""
        wb = node.wb
        vm = self.machine.valmodel
        retired = False
        while not wb.empty:
            head = wb.head()
            if node.cache.lookup(head) == RW:
                words = wb.retire_head()
                if vm is not None:
                    vm.wb_retire(node.id, head)
                self._cbuf_add(node, t, head, words)
                retired = True
            else:
                if head not in node.wb_fetching:
                    self._issue_write_fetch(node, t, head)
                break
        if retired:
            proc = node.proc
            if proc.blocked_on_write_buffer:
                proc.unblock(t)
            node.check_release(t)

    def _h_notice(self, t: int, block: int, target: int, needs_ack: bool) -> None:
        tnode = self.nodes[target]
        tp = tnode.pp.reserve(t, self.cfg.notice_cost)
        tnode.pending_inval.add(block)
        if needs_ack:
            home_id = self.home_of(block)
            self.fabric.send(
                tnode.id, home_id, MsgType.ACK, tp, self._h_notice_ack, block
            )

    def _h_notice_info(self, t: int, block: int, target: int) -> None:
        """Informational notice to a dirty block's writer on a read-induced
        weak transition: protocol-processor cost only, no invalidation."""
        self.nodes[target].pp.reserve(t, self.cfg.notice_cost)

    def _h_notice_ack(self, t: int, block: int) -> None:
        home = self.nodes[self.home_of(block)]
        e = home.directory.entry(block)
        e.pending_acks -= 1
        if e.pending_acks == 0 and e.pending_requesters:
            tp = home.pp.reserve(t, self.cfg.notice_cost)
            for req, weak in e.pending_requesters:
                self.fabric.send(
                    home.id,
                    req,
                    MsgType.ACK,
                    tp,
                    self._h_final_ack_blk,
                    req,
                    weak,
                    block,
                )
            e.pending_requesters = []

    def _h_final_ack_blk(self, t: int, requester: int, weak: bool, block: int) -> None:
        node = self.nodes[requester]
        if weak:
            node.pending_inval.add(block)
        node.txn_done(t)

    # ==========================================================================
    # Evictions
    # ==========================================================================

    def handle_eviction(self, node, t: int, vblock: int, vstate: int) -> None:
        if self.machine.classifier is not None:
            self.machine.classifier.record_eviction(node.id, vblock, t)
        # Dirty words still coalescing must reach memory.
        words = node.cbuf.remove(vblock)
        if words:
            self._flush_words(node, t, vblock, words)
        # No need to remember notices for lines no longer cached.
        node.pending_inval.discard(vblock)
        self.fabric.send(
            node.id,
            self.home_of(vblock),
            MsgType.EVICT_NOTICE,
            t,
            self._h_relinquish,
            vblock,
            node.id,
        )
