"""Home-side machinery shared by the SC and eager RC protocols.

Implements the DASH-style MSI directory transactions:

* 2-hop reads from memory, 3-hop reads forwarded to a dirty owner (who
  supplies the data and a sharing writeback),
* writes that invalidate sharers (home collects the acknowledgements and
  then grants ownership) or forward a flush-invalidate to a dirty owner,
* per-block serialization at the home: a request for a block with an
  open transaction is queued and replayed when the transaction completes
  (the role the RAC/busy states play in DASH).

Requester-side completion differs between SC (unblock the CPU) and ERC
(retire the write-buffer head), so it is routed through the overridable
``_read_fill_done`` / ``_write_grant`` hooks.
"""

from __future__ import annotations

from repro.cache.state import INVALID, RO, RW
from repro.network.messages import MsgType


class MSIHomeMixin:
    """Mixin over :class:`~repro.protocols.base.Protocol`."""

    dir_cost_attr = "erc_dir_cost"

    def _dir_cost(self) -> int:
        return getattr(self.cfg, self.dir_cost_attr)

    # -- home-side busy/queue -----------------------------------------------------

    def _home_defer(self, home, block: int, kind: str, *args) -> bool:
        """Queue the request if the block has an open transaction.

        Requests also queue behind an existing queue (even if the block
        just went idle) so that deferred requests are served in arrival
        order.
        """
        if block in home.home_busy or home.home_queue.get(block):
            home.home_queue.setdefault(block, []).append((kind, args))
            return True
        return False

    def _home_unbusy(self, home, t: int, block: int) -> None:
        home.home_busy.discard(block)
        # Replay deferred requests until one re-opens a transaction (sets
        # busy again) or the queue drains; a synchronously-served request
        # (plain 2-hop read) must not strand the ones behind it.
        q = home.home_queue.get(block)
        while q and block not in home.home_busy:
            kind, args = q.pop(0)
            if kind == "read":
                self._do_read_req(t, block, *args)
            else:
                self._do_write_req(t, block, *args)
        if not q:
            home.home_queue.pop(block, None)

    # -- reads ------------------------------------------------------------------------

    def _h_read_req(self, t: int, block: int, requester: int) -> None:
        home = self.nodes[self.home_of(block)]
        if self._home_defer(home, block, "read", requester):
            return
        self._do_read_req(t, block, requester)

    def _do_read_req(self, t: int, block: int, requester: int) -> None:
        home = self.nodes[self.home_of(block)]
        tp = home.pp.reserve(t, self._dir_cost())
        out = home.directory.read(block, requester)
        if out.forward_to is not None:
            # 3-hop: the dirty owner supplies the line.
            self.stats.three_hop_reads += 1
            home.home_busy.add(block)
            self.fabric.send(
                home.id,
                out.forward_to,
                MsgType.FORWARD,
                tp,
                self._h_forward_read,
                block,
                out.forward_to,
                requester,
            )
        else:
            # Directory processing is hidden behind the memory access
            # (Section 3): both start when the request arrives.
            tm = home.mem.read(t, self.cfg.line_size)
            self.fabric.send(
                home.id,
                requester,
                MsgType.DATA_REPLY,
                tp if tp > tm else tm,
                self._h_read_data,
                block,
                requester,
            )

    def _h_forward_read(self, t: int, block: int, owner: int, requester: int) -> None:
        onode = self.nodes[owner]
        tp = onode.pp.reserve(t, self.cfg.notice_cost)
        # Reading the line out of the owner's cache occupies its local bus
        # for a full line transfer (this is why dirty-remote reads cost
        # more than clean ones on DASH-class machines).
        tp = onode.bus.reserve(tp, self.cfg.bus_time(self.cfg.line_size))
        # The owner keeps a read-only copy (MSI sharing transition).  If
        # the line raced away via an eviction whose hint is still in
        # flight, the owner still plays its protocol role — only state,
        # not data values, is simulated.
        onode.cache.downgrade(block)
        self.fabric.send(
            onode.id, requester, MsgType.OWNER_DATA, tp, self._h_read_data, block, requester
        )
        home = self.nodes[self.home_of(block)]
        self.fabric.send(
            onode.id, home.id, MsgType.WRITEBACK, tp, self._h_sharing_wb, block
        )

    def _h_sharing_wb(self, t: int, block: int) -> None:
        home = self.nodes[self.home_of(block)]
        home.mem.write(t, self.cfg.line_size)
        self.stats.writebacks += 1
        self._home_unbusy(home, t, block)

    def _h_read_data(self, t: int, block: int, requester: int) -> None:
        node = self.nodes[requester]
        t_fill = node.bus.reserve(t, self.cfg.bus_time(self.cfg.line_size))
        self._install_line(node, t_fill, block, RO)
        self._read_fill_done(node, t_fill, block)

    def _read_fill_done(self, node, t: int, block: int) -> None:
        """Requester-side read completion (default: resume the CPU)."""
        node.proc.unblock(t)

    # -- writes ------------------------------------------------------------------------

    def _h_write_req(self, t: int, block: int, requester: int, has_copy: bool) -> None:
        home = self.nodes[self.home_of(block)]
        if self._home_defer(home, block, "write", requester, has_copy):
            return
        self._do_write_req(t, block, requester, has_copy)

    def _do_write_req(self, t: int, block: int, requester: int, has_copy: bool) -> None:
        home = self.nodes[self.home_of(block)]
        tp = home.pp.reserve(t, self._dir_cost())
        out = home.directory.write(block, requester, has_copy)
        if out.forward_to is not None:
            home.home_busy.add(block)
            self.fabric.send(
                home.id,
                out.forward_to,
                MsgType.FORWARD,
                tp,
                self._h_forward_write,
                block,
                out.forward_to,
                requester,
            )
        elif out.invalidate:
            home.home_busy.add(block)
            home.msi_pending[block] = {
                "count": len(out.invalidate),
                "requester": requester,
                "needs_data": out.needs_data,
            }
            # Dispatching each invalidation occupies the home's protocol
            # processor briefly ("the cost is the sum of the directory
            # access and the dispatch of messages to the sharing
            # processors").
            td = tp
            for s in out.invalidate:
                td = home.pp.reserve(td, self.cfg.notice_cost)
                self.fabric.send(
                    home.id, s, MsgType.INVALIDATE, td, self._h_inval, block, s
                )
        else:
            self._send_write_grant(home, t, tp, block, requester, out.needs_data)

    def _send_write_grant(
        self, home, t_arrival: int, tp: int, block: int, requester: int, needs_data: bool
    ) -> None:
        if needs_data:
            tm = home.mem.read(t_arrival, self.cfg.line_size)
            self.fabric.send(
                home.id,
                requester,
                MsgType.DATA_REPLY,
                tp if tp > tm else tm,
                self._h_write_grant_msg,
                block,
                requester,
                True,
            )
        else:
            self.fabric.send(
                home.id,
                requester,
                MsgType.ACK,
                tp,
                self._h_write_grant_msg,
                block,
                requester,
                False,
            )

    def _h_forward_write(self, t: int, block: int, owner: int, requester: int) -> None:
        onode = self.nodes[owner]
        tp = onode.pp.reserve(t, self.cfg.notice_cost)
        tp = onode.bus.reserve(tp, self.cfg.bus_time(self.cfg.line_size))
        if onode.cache.invalidate(block):
            self.stats.eager_invalidations += 1
            if self.machine.classifier is not None:
                self.machine.classifier.record_invalidation(owner, block)
        self.fabric.send(
            onode.id,
            requester,
            MsgType.OWNER_DATA,
            tp,
            self._h_write_grant_msg,
            block,
            requester,
            True,
        )
        home = self.nodes[self.home_of(block)]
        self.fabric.send(
            onode.id, home.id, MsgType.ACK, tp, self._h_ownership_transferred, block
        )

    def _h_ownership_transferred(self, t: int, block: int) -> None:
        home = self.nodes[self.home_of(block)]
        self._home_unbusy(home, t, block)

    def _h_inval(self, t: int, block: int, target: int) -> None:
        tnode = self.nodes[target]
        tp = tnode.pp.reserve(t, self.cfg.notice_cost)
        if tnode.cache.invalidate(block):
            self.stats.eager_invalidations += 1
            if self.machine.classifier is not None:
                self.machine.classifier.record_invalidation(target, block)
        home = self.nodes[self.home_of(block)]
        self.fabric.send(
            tnode.id, home.id, MsgType.ACK, tp, self._h_inval_ack, block
        )

    def _h_inval_ack(self, t: int, block: int) -> None:
        home = self.nodes[self.home_of(block)]
        rec = home.msi_pending[block]
        rec["count"] -= 1
        if rec["count"] == 0:
            del home.msi_pending[block]
            tp = home.pp.reserve(t, self.cfg.notice_cost)
            self._send_write_grant(
                home, t, tp, block, rec["requester"], rec["needs_data"]
            )
            self._home_unbusy(home, tp, block)

    def _h_write_grant_msg(self, t: int, block: int, requester: int, with_data: bool) -> None:
        node = self.nodes[requester]
        if with_data:
            t = node.bus.reserve(t, self.cfg.bus_time(self.cfg.line_size))
            self._install_line(node, t, block, RW)
        else:
            if node.cache.resident(block):
                node.cache.upgrade(block)
            else:
                # The line was evicted while the upgrade was in flight
                # (hint still traveling); re-install it exclusively.
                self._install_line(node, t, block, RW)
        self._write_grant(node, t, block)

    def _write_grant(self, node, t: int, block: int) -> None:
        """Requester-side write completion.  Overridden per protocol."""
        raise NotImplementedError

    # -- evictions -----------------------------------------------------------------------

    def handle_eviction(self, node, t: int, vblock: int, vstate: int) -> None:
        if self.machine.classifier is not None:
            self.machine.classifier.record_eviction(node.id, vblock)
        home_id = self.home_of(vblock)
        if vstate == RW:
            self.stats.writebacks += 1
            self.fabric.send(
                node.id, home_id, MsgType.WRITEBACK, t, self._h_evict_wb, vblock, node.id
            )
        else:
            self.fabric.send(
                node.id,
                home_id,
                MsgType.EVICT_NOTICE,
                t,
                self._h_evict_hint,
                vblock,
                node.id,
            )

    def _h_evict_wb(self, t: int, block: int, src: int) -> None:
        home = self.nodes[self.home_of(block)]
        home.mem.write(t, self.cfg.line_size)
        home.directory.evict(block, src, dirty=True)

    def _h_evict_hint(self, t: int, block: int, src: int) -> None:
        home = self.nodes[self.home_of(block)]
        home.directory.evict(block, src, dirty=False)
