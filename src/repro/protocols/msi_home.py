"""Home-side machinery shared by the SC and eager RC protocols.

Implements the DASH-style MSI directory transactions:

* 2-hop reads from memory, 3-hop reads forwarded to a dirty owner (who
  supplies the data and a sharing writeback),
* writes that invalidate sharers (home collects the acknowledgements and
  then grants ownership) or forward a flush-invalidate to a dirty owner,
* per-block serialization at the home: a request for a block with an
  open transaction is queued and replayed when the transaction completes
  (the role the RAC/busy states play in DASH).

Requester-side completion differs between SC (unblock the CPU) and ERC
(retire the write-buffer head), so it is routed through the overridable
``_read_fill_done`` / ``_write_grant`` hooks.

A fill reply and a later coherence message for the same block can cross
in the network (the reply is delayed behind the memory access while an
invalidation or ownership forward departs immediately).  The requester
therefore tracks its in-flight fills (``node.fill_pending``); a
coherence message that finds its target line absent *but being fetched*
records the state the line must assume once the fill lands
(``node.fill_fixup``).  The waiting access still consumes the fill once
— it was ordered before the conflicting write — and the line is then
immediately invalidated (or downgraded), matching the use-once handling
of DASH's remote access cache.
"""

from __future__ import annotations

from collections import deque

from repro.cache.state import INVALID, RO, RW
from repro.directory.entry import DIRTY
from repro.network.messages import MsgType


class MSIHomeMixin:
    """Mixin over :class:`~repro.protocols.base.Protocol`."""

    dir_cost_attr = "erc_dir_cost"

    def _dir_cost(self) -> int:
        return getattr(self.cfg, self.dir_cost_attr)

    # -- in-flight fill tracking (requester side) ---------------------------------

    def _fill_begin(self, node, block: int) -> None:
        """A fill (read data or write grant) is now in flight to ``node``."""
        node.fill_pending[block] = node.fill_pending.get(block, 0) + 1

    def _fill_end(self, node, t: int, block: int, is_write_grant: bool = False) -> None:
        """The fill landed: apply any coherence action that overtook it."""
        left = node.fill_pending[block] - 1
        if left:
            node.fill_pending[block] = left
        else:
            del node.fill_pending[block]
        fixup = node.fill_fixup.pop(block, None)
        if fixup is None:
            return
        state, hits_grants = fixup
        if is_write_grant and not hits_grants:
            # A plain invalidation cannot be aimed at an ownership grant:
            # had the home processed our write first, the later write
            # would have *forwarded* to us instead.  The grant is the
            # home's more recent decision — the invalidation is stale.
            return
        if state == INVALID:
            if node.cache.invalidate(block):
                self.stats.eager_invalidations += 1
                if self.machine.classifier is not None:
                    self.machine.classifier.record_invalidation(node.id, block, t)
        else:  # RO: ownership was forwarded away while the grant traveled
            node.cache.downgrade(block)

    def _note_fill_fixup(
        self, node, block: int, state: int, hits_grants: bool
    ) -> bool:
        """Record that an in-flight fill must assume ``state`` on arrival.

        ``hits_grants`` marks fixups that apply even to an ownership
        grant (forwards, which the home only sends to the current
        owner-of-record).  Returns False when no fill is in flight (the
        message was simply stale, e.g. chasing an eviction hint)."""
        if block not in node.fill_pending:
            return False
        cur = node.fill_fixup.get(block)
        if cur is None or state < cur[0]:  # INVALID < RO: strongest wins
            node.fill_fixup[block] = (state, hits_grants)
        return True

    # -- forwards that chase an in-flight fill reply ----------------------------

    def _reply_begin(self, requester: int, block: int) -> None:
        """A fill reply (data or grant) is now in flight to ``requester``."""
        node = self.nodes[requester]
        node.fill_reply_pending[block] = node.fill_reply_pending.get(block, 0) + 1
        # Cross-node mark: written here (home/owner), observed at the
        # requester no earlier than the reply could arrive.
        self.machine.sim.shard_effect(requester, "fill", block)

    def _reply_end(self, node, block: int) -> None:
        left = node.fill_reply_pending[block] - 1
        if left:
            node.fill_reply_pending[block] = left
        else:
            del node.fill_reply_pending[block]

    def _defer_forward(self, onode, block: int, kind: str, *args) -> bool:
        """Hold a forward at the owner while its fill reply is in flight.

        The home's grant to the owner travels on the data channel; a
        later forward for the same block (control channel) can overtake
        it.  Processing the forward first would capture the line before
        the owner's pending access performed — DASH instead parks the
        forward in the RAC until the fill lands and is used once.  Only
        a reply provably in flight is waited on; if the owner's request
        is still queued at a busy home (no reply exists), waiting here
        would deadlock, so the forward proceeds against the
        fill-fixup machinery instead.
        """
        if not onode.cache.resident(block) and onode.fill_reply_pending.get(block):
            onode.fwd_deferred.setdefault(block, []).append((kind, args))
            return True
        return False

    def _process_deferred_forwards(self, node, t: int, block: int) -> None:
        if block in node.fill_reply_pending:
            return  # another reply still in flight; keep waiting
        pending = node.fwd_deferred.pop(block, None)
        if not pending:
            return
        for kind, args in pending:
            if kind == "read":
                self._h_forward_read(t, block, *args)
            else:
                self._h_forward_write(t, block, *args)

    # -- home-side busy/queue -----------------------------------------------------

    def _awaits_own_writeback(self, home, block: int, requester: int) -> bool:
        """Home-local inference that ``requester``'s writeback is in flight.

        An exclusive owner never requests its own block, so a request
        whose sender is still the recorded dirty owner can only mean the
        owner evicted the line and its WRITEBACK (data channel) was
        overtaken by this re-request (control channel).  The request is
        held until the writeback lands — judged purely from the home's
        directory, so the decision needs no cross-node state and shards
        cleanly (DESIGN.md §14).
        """
        entry = home.directory.entries.get(block)
        return (
            entry is not None and entry.state == DIRTY and entry.owner == requester
        )

    def _home_defer(self, home, block: int, kind: str, *args) -> bool:
        """Queue the request if the block has an open transaction.

        Requests also queue behind an existing queue (even if the block
        just went idle) so that deferred requests are served in arrival
        order.
        """
        if (
            block in home.home_busy
            or self._awaits_own_writeback(home, block, args[0])
            or home.home_queue.get(block)
        ):
            home.home_queue.setdefault(block, deque()).append((kind, args))
            return True
        return False

    def _home_unbusy(self, home, t: int, block: int) -> None:
        home.home_busy.discard(block)
        self._home_replay(home, t, block)

    def _home_replay(self, home, t: int, block: int) -> None:
        # Replay deferred requests until one re-opens a transaction (sets
        # busy again) or the queue drains; a synchronously-served request
        # (plain 2-hop read) must not strand the ones behind it.
        q = home.home_queue.get(block)
        while q and block not in home.home_busy:
            kind, args = q[0]
            if self._awaits_own_writeback(home, block, args[0]):
                break  # released by _h_evict_wb when the writeback lands
            q.popleft()
            if kind == "read":
                self._do_read_req(t, block, *args)
            else:
                self._do_write_req(t, block, *args)
        if not q:
            home.home_queue.pop(block, None)

    # -- reads ------------------------------------------------------------------------

    def _h_read_req(self, t: int, block: int, requester: int) -> None:
        home = self.nodes[self.home_of(block)]
        if self._home_defer(home, block, "read", requester):
            return
        self._do_read_req(t, block, requester)

    def _do_read_req(self, t: int, block: int, requester: int) -> None:
        home = self.nodes[self.home_of(block)]
        tp = home.pp.reserve(t, self._dir_cost())
        out = home.directory.read(block, requester)
        if out.forward_to is not None:
            # 3-hop: the dirty owner supplies the line.
            self.stats.three_hop_reads += 1
            home.home_busy.add(block)
            home.home_fwd_owner[block] = out.forward_to
            self.fabric.send(
                home.id,
                out.forward_to,
                MsgType.FORWARD,
                tp,
                self._h_forward_read,
                block,
                out.forward_to,
                requester,
            )
        else:
            # Directory processing is hidden behind the memory access
            # (Section 3): both start when the request arrives.
            tm = home.mem.read(t, self.cfg.line_size)
            vm = self.machine.valmodel
            self._reply_begin(requester, block)
            self.fabric.send(
                home.id,
                requester,
                MsgType.DATA_REPLY,
                tp if tp > tm else tm,
                self._h_read_data,
                block,
                requester,
                vm.home_line(block) if vm is not None else None,
            )

    def _h_forward_read(self, t: int, block: int, owner: int, requester: int) -> None:
        onode = self.nodes[owner]
        if self._defer_forward(onode, block, "read", owner, requester):
            return
        tp = onode.pp.reserve(t, self.cfg.notice_cost)
        # Reading the line out of the owner's cache occupies its local bus
        # for a full line transfer (this is why dirty-remote reads cost
        # more than clean ones on DASH-class machines).
        tp = onode.bus.reserve(tp, self.cfg.bus_time(self.cfg.line_size))
        # The owner keeps a read-only copy (MSI sharing transition).  If
        # the line raced away via an eviction whose hint is still in
        # flight, the owner still plays its protocol role — only state,
        # not data values, is simulated.
        if onode.cache.resident(block):
            onode.cache.downgrade(block)
        elif block in onode.wb_inflight:
            # The line is already on its way home (eviction writeback in
            # flight); the owner serves its protocol role from the copy
            # conceptually still in its writeback buffer — no fill is
            # coming, so there is nothing to fix up.
            pass
        else:
            # The forward overtook the owner's own grant: the fill must
            # land shared, not exclusive.
            self._note_fill_fixup(onode, block, RO, hits_grants=True)
        vm = self.machine.valmodel
        data = vm.owner_line(owner, block) if vm is not None else None
        self._reply_begin(requester, block)
        self.fabric.send(
            onode.id, requester, MsgType.OWNER_DATA, tp, self._h_read_data,
            block, requester, data,
        )
        home = self.nodes[self.home_of(block)]
        self.fabric.send(
            onode.id, home.id, MsgType.WRITEBACK, tp, self._h_sharing_wb, block, data
        )

    def _h_sharing_wb(self, t: int, block: int, data=None) -> None:
        home = self.nodes[self.home_of(block)]
        vm = self.machine.valmodel
        if vm is not None:
            vm.apply_home(block, data)
        home.mem.write(t, self.cfg.line_size)
        self.stats.writebacks += 1
        home.home_fwd_owner.pop(block, None)
        self._home_unbusy(home, t, block)

    def _h_read_data(self, t: int, block: int, requester: int, data=None) -> None:
        node = self.nodes[requester]
        self._reply_end(node, block)
        # A refill is only granted once any prior writeback from this
        # node has landed (the home holds/queues the re-request), so the
        # in-flight mark is spent by now.
        node.wb_inflight.discard(block)
        t_fill = node.bus.reserve(t, self.cfg.bus_time(self.cfg.line_size))
        self._install_line(node, t_fill, block, RO)
        vm = self.machine.valmodel
        if vm is not None:
            vm.fill(requester, block, data)
        self._fill_end(node, t_fill, block)
        if vm is not None:
            vm.read_fill(requester, block)
        self._read_fill_done(node, t_fill, block)
        self._process_deferred_forwards(node, t_fill, block)

    def _read_fill_done(self, node, t: int, block: int) -> None:
        """Requester-side read completion (default: resume the CPU)."""
        node.proc.unblock(t)

    # -- writes ------------------------------------------------------------------------

    def _h_write_req(self, t: int, block: int, requester: int, has_copy: bool) -> None:
        home = self.nodes[self.home_of(block)]
        if self._home_defer(home, block, "write", requester, has_copy):
            return
        self._do_write_req(t, block, requester, has_copy)

    def _do_write_req(self, t: int, block: int, requester: int, has_copy: bool) -> None:
        home = self.nodes[self.home_of(block)]
        tp = home.pp.reserve(t, self._dir_cost())
        out = home.directory.write(block, requester, has_copy)
        if out.forward_to is not None:
            home.home_busy.add(block)
            self.fabric.send(
                home.id,
                out.forward_to,
                MsgType.FORWARD,
                tp,
                self._h_forward_write,
                block,
                out.forward_to,
                requester,
            )
        elif out.invalidate:
            home.home_busy.add(block)
            home.msi_pending[block] = {
                "count": len(out.invalidate),
                "requester": requester,
                "needs_data": out.needs_data,
            }
            # Dispatching each invalidation occupies the home's protocol
            # processor briefly ("the cost is the sum of the directory
            # access and the dispatch of messages to the sharing
            # processors").
            td = tp
            for s in out.invalidate:
                td = home.pp.reserve(td, self.cfg.notice_cost)
                self.fabric.send(
                    home.id, s, MsgType.INVALIDATE, td, self._h_inval, block, s
                )
        else:
            self._send_write_grant(home, t, tp, block, requester, out.needs_data)

    def _send_write_grant(
        self, home, t_arrival: int, tp: int, block: int, requester: int, needs_data: bool
    ) -> None:
        self._reply_begin(requester, block)
        if needs_data:
            tm = home.mem.read(t_arrival, self.cfg.line_size)
            vm = self.machine.valmodel
            self.fabric.send(
                home.id,
                requester,
                MsgType.DATA_REPLY,
                tp if tp > tm else tm,
                self._h_write_grant_msg,
                block,
                requester,
                True,
                vm.home_line(block) if vm is not None else None,
            )
        else:
            self.fabric.send(
                home.id,
                requester,
                MsgType.ACK,
                tp,
                self._h_write_grant_msg,
                block,
                requester,
                False,
                None,
            )

    def _h_forward_write(self, t: int, block: int, owner: int, requester: int) -> None:
        onode = self.nodes[owner]
        if self._defer_forward(onode, block, "write", owner, requester):
            return
        tp = onode.pp.reserve(t, self.cfg.notice_cost)
        tp = onode.bus.reserve(tp, self.cfg.bus_time(self.cfg.line_size))
        if onode.cache.invalidate(block):
            self.stats.eager_invalidations += 1
            if self.machine.classifier is not None:
                self.machine.classifier.record_invalidation(owner, block, tp)
        elif block in onode.wb_inflight:
            pass  # line already heading home; no fill to fix up
        else:
            self._note_fill_fixup(onode, block, INVALID, hits_grants=True)
        vm = self.machine.valmodel
        self._reply_begin(requester, block)
        self.fabric.send(
            onode.id,
            requester,
            MsgType.OWNER_DATA,
            tp,
            self._h_write_grant_msg,
            block,
            requester,
            True,
            vm.owner_line(owner, block) if vm is not None else None,
        )
        home = self.nodes[self.home_of(block)]
        self.fabric.send(
            onode.id, home.id, MsgType.ACK, tp, self._h_ownership_transferred, block
        )

    def _h_ownership_transferred(self, t: int, block: int) -> None:
        home = self.nodes[self.home_of(block)]
        self._home_unbusy(home, t, block)

    def _h_inval(self, t: int, block: int, target: int) -> None:
        tnode = self.nodes[target]
        tp = tnode.pp.reserve(t, self.cfg.notice_cost)
        if tnode.cache.invalidate(block):
            self.stats.eager_invalidations += 1
            if self.machine.classifier is not None:
                self.machine.classifier.record_invalidation(target, block, tp)
        else:
            self._note_fill_fixup(tnode, block, INVALID, hits_grants=False)
        home = self.nodes[self.home_of(block)]
        self.fabric.send(
            tnode.id, home.id, MsgType.ACK, tp, self._h_inval_ack, block
        )

    def _h_inval_ack(self, t: int, block: int) -> None:
        home = self.nodes[self.home_of(block)]
        rec = home.msi_pending[block]
        rec["count"] -= 1
        if rec["count"] == 0:
            del home.msi_pending[block]
            tp = home.pp.reserve(t, self.cfg.notice_cost)
            self._send_write_grant(
                home, t, tp, block, rec["requester"], rec["needs_data"]
            )
            self._home_unbusy(home, tp, block)

    def _h_write_grant_msg(
        self, t: int, block: int, requester: int, with_data: bool, data=None
    ) -> None:
        node = self.nodes[requester]
        self._reply_end(node, block)
        node.wb_inflight.discard(block)  # any prior writeback has landed
        if with_data:
            t = node.bus.reserve(t, self.cfg.bus_time(self.cfg.line_size))
            self._install_line(node, t, block, RW)
            vm = self.machine.valmodel
            if vm is not None:
                vm.fill(requester, block, data)
        else:
            if node.cache.resident(block):
                node.cache.upgrade(block)
            else:
                # The line was evicted while the upgrade was in flight
                # (hint still traveling); re-install it exclusively.
                self._install_line(node, t, block, RW)
        self._fill_end(node, t, block, is_write_grant=True)
        self._write_grant(node, t, block)
        self._process_deferred_forwards(node, t, block)

    def _write_grant(self, node, t: int, block: int) -> None:
        """Requester-side write completion.  Overridden per protocol."""
        raise NotImplementedError

    # -- evictions -----------------------------------------------------------------------

    def handle_eviction(self, node, t: int, vblock: int, vstate: int) -> None:
        if self.machine.classifier is not None:
            self.machine.classifier.record_eviction(node.id, vblock, t)
        home_id = self.home_of(vblock)
        if vstate == RW:
            self.stats.writebacks += 1
            # Evictor-local note: lets a later coherence forward for this
            # block tell "line already heading home" apart from "fill
            # grant in flight" (see _h_forward_read).  The home is told
            # nothing here — it infers the in-flight writeback from its
            # own directory when the evictor re-requests the block
            # (_awaits_own_writeback), keeping all cross-node influence
            # on messages.
            node.wb_inflight.add(vblock)
            vm = self.machine.valmodel
            self.fabric.send(
                node.id, home_id, MsgType.WRITEBACK, t, self._h_evict_wb, vblock,
                node.id, vm.owner_line(node.id, vblock) if vm is not None else None,
            )
        else:
            self.fabric.send(
                node.id,
                home_id,
                MsgType.EVICT_NOTICE,
                t,
                self._h_evict_hint,
                vblock,
                node.id,
            )

    def _h_evict_wb(self, t: int, block: int, src: int, data=None) -> None:
        home = self.nodes[self.home_of(block)]
        vm = self.machine.valmodel
        if vm is not None:
            vm.apply_home(block, data)
        home.mem.write(t, self.cfg.line_size)
        entry = home.directory.entries.get(block)
        if entry is not None and entry.state == DIRTY and entry.owner == src:
            home.directory.evict(block, src, dirty=True)
        elif home.home_fwd_owner.get(block) == src:
            # A read forward consumed the line while this writeback was
            # in flight: the directory reshaped to SHARED but kept the
            # forwarded-away owner in the sharer set.  ``src`` no longer
            # caches the line — and cannot have been re-granted it yet:
            # the sharing writeback that closes the forward travels the
            # same src->home data channel as this message (FIFO per
            # channel), so the block is still busy and any re-request
            # from ``src`` is still queued.  Unlist the stale sharer.
            home.directory.evict(block, src, dirty=False)
        # else: another transaction already reshaped the directory (a
        # write forward unlists the old owner itself) — the data simply
        # lands in memory and must not erase the newer entry.
        self._home_replay(home, t, block)

    def _h_evict_hint(self, t: int, block: int, src: int) -> None:
        home = self.nodes[self.home_of(block)]
        entry = home.directory.entries.get(block)
        if entry is not None and entry.state == DIRTY and entry.owner == src:
            # Stale hint: ``src`` held the line read-only, issued an
            # upgrade, and then evicted the RO copy while the grant was
            # in flight.  The hint (sent after the request, so processed
            # after the grant was issued) must not erase the exclusive
            # entry — the requester re-installs the line when the grant
            # lands (see _h_write_grant_msg).  A dirty owner that really
            # gives up the line sends a WRITEBACK, never a clean hint.
            return
        home.directory.evict(block, src, dirty=False)
