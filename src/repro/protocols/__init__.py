"""The four coherence protocols evaluated in the paper.

* :class:`~repro.protocols.sc.SCProtocol`       — sequentially consistent
  directory protocol (normalization baseline).
* :class:`~repro.protocols.erc.ERCProtocol`     — eager release consistency
  (DASH-like).
* :class:`~repro.protocols.lrc.LRCProtocol`     — the paper's lazy release
  consistency for hardware-coherent machines.
* :class:`~repro.protocols.lrc_ext.LRCExtProtocol` — the lazier variant
  that defers write notices until release points.
"""

from repro.protocols.base import Protocol
from repro.protocols.sc import SCProtocol
from repro.protocols.erc import ERCProtocol
from repro.protocols.lrc import LRCProtocol
from repro.protocols.lrc_ext import LRCExtProtocol

PROTOCOLS = {
    "sc": SCProtocol,
    "erc": ERCProtocol,
    "lrc": LRCProtocol,
    "lrc-ext": LRCExtProtocol,
}


def make_protocol(name: str, machine) -> Protocol:
    """Instantiate a protocol by its short name."""
    try:
        cls = PROTOCOLS[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; choose from {sorted(PROTOCOLS)}"
        ) from None
    return cls(machine)


__all__ = [
    "Protocol",
    "SCProtocol",
    "ERCProtocol",
    "LRCProtocol",
    "LRCExtProtocol",
    "PROTOCOLS",
    "make_protocol",
]
