"""The coherence protocols behind the ``Protocol`` API.

* :class:`~repro.protocols.sc.SCProtocol`       — sequentially consistent
  directory protocol (normalization baseline).
* :class:`~repro.protocols.erc.ERCProtocol`     — eager release consistency
  (DASH-like).
* :class:`~repro.protocols.lrc.LRCProtocol`     — the paper's lazy release
  consistency for hardware-coherent machines.
* :class:`~repro.protocols.lrc_ext.LRCExtProtocol` — the lazier variant
  that defers write notices until release points.
* :class:`~repro.protocols.tardis.TardisProtocol` — Tardis timestamp
  coherence (leases + logical clocks, no invalidation fan-out), relaxed
  to the paper's release/acquire sync points.

:data:`REGISTRY` is the single name -> class table; every consumer
(``ExperimentSpec``, the ``Machine`` constructor, the conformance
fuzzer, the CLI) resolves protocol names through it, so an unknown name
fails in one place with one error.
"""

from typing import Tuple

from repro.protocols.base import Protocol
from repro.protocols.sc import SCProtocol
from repro.protocols.erc import ERCProtocol
from repro.protocols.lrc import LRCProtocol
from repro.protocols.lrc_ext import LRCExtProtocol
from repro.protocols.tardis import TardisProtocol

#: The protocol registry: short name -> class, in canonical sweep order.
REGISTRY = {
    "sc": SCProtocol,
    "erc": ERCProtocol,
    "lrc": LRCProtocol,
    "lrc-ext": LRCExtProtocol,
    "tardis": TardisProtocol,
}

#: Back-compat alias (same dict object; tests monkeypatch entries into it).
PROTOCOLS = REGISTRY


def all_names() -> Tuple[str, ...]:
    """Every registered protocol name, in canonical sweep order."""
    return tuple(REGISTRY)


def make_protocol(name: str, machine) -> Protocol:
    """Instantiate a protocol by its short name."""
    try:
        cls = REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; choose from {sorted(REGISTRY)}"
        ) from None
    return cls(machine)


__all__ = [
    "Protocol",
    "SCProtocol",
    "ERCProtocol",
    "LRCProtocol",
    "LRCExtProtocol",
    "TardisProtocol",
    "REGISTRY",
    "PROTOCOLS",
    "all_names",
    "make_protocol",
]
