"""Eager release consistency (DASH-like).

"Hardware implementations of release consistency, as in the DASH
multiprocessor, take an eager approach: write operations trigger
coherence transactions (e.g., invalidations) immediately, though the
transactions execute concurrently with continued execution of the
application.  The processor stalls only if its write buffer overflows,
or if it reaches a release operation and some of its previous
transactions have yet to be completed."

Mechanics:

* write-back caches; a 4-entry write buffer coalesces writes to the same
  line and lets reads bypass;
* the write-buffer head drains through the directory: a write to a
  shared block invalidates the other sharers eagerly (home collects the
  acks before granting ownership);
* a release stalls until the write buffer is empty and every outstanding
  ownership transaction has been acknowledged;
* acquires perform no invalidation work (it already happened, eagerly).
"""

from __future__ import annotations

from repro.cache.state import INVALID, RO, RW
from repro.cache.write_buffer import WriteBuffer
from repro.directory.msi import MSIDirectory
from repro.network.messages import MsgType
from repro.protocols.base import Protocol
from repro.protocols.msi_home import MSIHomeMixin


class ERCProtocol(MSIHomeMixin, Protocol):
    name = "erc"
    uses_write_buffer = True
    write_through = False
    dir_cost_attr = "erc_dir_cost"

    def make_directory(self):
        return MSIDirectory()

    def attach_node(self, node) -> None:
        node.directory = self.make_directory()
        node.wb = WriteBuffer(self.cfg.wb_entries)
        node.cbuf = None

    # -- CPU side ----------------------------------------------------------------------

    def cpu_read_miss(self, node, t: int, block: int) -> None:
        self._fill_begin(node, block)
        self.fabric.send(
            node.id,
            self.home_of(block),
            MsgType.READ_REQ,
            t,
            self._h_read_req,
            block,
            node.id,
        )

    def cpu_write(self, node, t: int, block: int, word: int) -> int:
        """Buffer the write; kick the drain if the buffer was idle.

        Returns -1 (CPU stalls, op retried) when the buffer is full."""
        wb = node.wb
        if not wb.add(block, word):
            return -1
        if not node.wb_head_busy:
            self._drain_wb(node, t)
        return t + 1

    # -- write-buffer drain ---------------------------------------------------------------

    def _drain_wb(self, node, t: int) -> None:
        """Advance the FIFO head as far as it will go without waiting."""
        wb = node.wb
        cache = node.cache
        obs = self.machine.classifier
        while not wb.empty:
            block = wb.head()
            state = cache.lookup(block)
            if state == RW:
                wb.retire_head()
                vm = self.machine.valmodel
                if vm is not None:
                    vm.wb_retire(node.id, block)
                self._after_retire(node, t)
                continue
            # The head needs a coherence transaction; it retires when the
            # ownership grant returns.
            node.wb_head_busy = True
            node.txn_start()
            if state == RO:
                node.stats.upgrade_misses += 1
                if obs is not None:
                    obs.classify_write_upgrade(node.id, block, t)
            else:
                node.stats.write_misses += 1
                if obs is not None:
                    obs.classify_miss(node.id, block, min(wb.words[block]), t)
            self._fill_begin(node, block)
            self.fabric.send(
                node.id,
                self.home_of(block),
                MsgType.WRITE_REQ,
                t,
                self._h_write_req,
                block,
                node.id,
                state == RO,
            )
            return

    def _write_grant(self, node, t: int, block: int) -> None:
        """Ownership arrived: retire the head and continue draining."""
        wb = node.wb
        assert wb.head() == block, "write grant for a non-head entry"
        wb.retire_head()
        vm = self.machine.valmodel
        if vm is not None:
            vm.wb_retire(node.id, block)
        node.wb_head_busy = False
        node.txn_done(t)
        self._after_retire(node, t)
        self._drain_wb(node, t)

    def _after_retire(self, node, t: int) -> None:
        """A slot freed: wake a CPU stalled on a full buffer; check release."""
        proc = node.proc
        if proc.blocked_on_write_buffer:
            proc.unblock(t)
        node.check_release(t)
