"""Machine assembly and the public simulation API."""

from repro.core.machine import Machine, RunResult
from repro.core.api import build_machine, simulate, run_app

__all__ = ["Machine", "RunResult", "build_machine", "simulate", "run_app"]
