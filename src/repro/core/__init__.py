"""Machine assembly and the public simulation API."""

from repro.core.machine import Machine, MachineConfig, RunResult
from repro.core.api import build_machine, simulate, run_app

__all__ = [
    "Machine",
    "MachineConfig",
    "RunResult",
    "build_machine",
    "simulate",
    "run_app",
]
