"""One node of the multiprocessor.

A node bundles a CPU (the :class:`~repro.core.processor.Processor`), a
direct-mapped cache, the protocol-dependent buffering (write buffer,
coalescing buffer), a protocol processor, a local bus, a memory module,
and the directory slice for the blocks homed here.
"""

from __future__ import annotations

from typing import Callable, Optional, Set

from repro.cache import Cache, CoalescingBuffer, WriteBuffer
from repro.config import SystemConfig
from repro.engine.resource import Resource
from repro.mem.dram import MemoryModule
from repro.stats.counters import ProcStats


class Node:
    """Hardware and protocol state local to one node."""

    __slots__ = (
        "id",
        "config",
        "cache",
        "wb",
        "cbuf",
        "pp",
        "bus",
        "mem",
        "directory",
        "stats",
        "proc",
        "out_count",
        "release_cb",
        "pending_inval",
        "deferred_notices",
        "wb_head_busy",
        "home_busy",
        "home_queue",
        "home_fwd_owner",
        "wb_inflight",
        "lock_state",
        "barrier_state",
        "acq_inv_done",
        "msi_pending",
        "fill_pending",
        "fill_fixup",
        "fill_reply_pending",
        "fwd_deferred",
        "wb_fetching",
        "wt_drain_busy",
        "wt_inflight",
        "wt_waiters",
        "pts",
        "ts_lease",
        "ts_dirty",
        "tracer",
        "checker",
    )

    def __init__(self, node_id: int, config: SystemConfig, stats: ProcStats) -> None:
        self.id = node_id
        self.config = config
        self.cache = Cache(config, node_id)
        self.wb: Optional[WriteBuffer] = None        # set by protocol
        self.cbuf: Optional[CoalescingBuffer] = None  # set by lazy protocols
        self.pp = Resource(f"pp[{node_id}]")
        self.bus = Resource(f"bus[{node_id}]")
        self.mem = MemoryModule(config, node_id)
        self.directory = None                         # set by protocol
        self.stats = stats
        self.proc = None                              # set by machine
        # Outstanding coherence transactions that a release must wait on.
        self.out_count = 0
        self.release_cb: Optional[Callable] = None
        # Lazy protocols: blocks to invalidate at the next acquire.
        self.pending_inval: Set[int] = set()
        # Lazy-ext: written blocks whose write notice is deferred.
        self.deferred_notices: Set[int] = set()
        # Eager/SC write-buffer drain: head transaction in flight.
        self.wb_head_busy = False
        # Home-side per-block serialization (MSI protocols).
        self.home_busy: Set[int] = set()
        self.home_queue = {}
        # Open read-forward transactions homed here: block -> the dirty
        # owner the line was forwarded away from.  Lets a writeback that
        # raced with the forward unlist the stale sharer (the directory's
        # read transition keeps the old owner in the sharer set); see
        # msi_home.MSIHomeMixin._h_evict_wb.
        self.home_fwd_owner = {}
        # Evictor-side: dirty blocks this node has pushed out whose
        # WRITEBACK may still be in flight (strictly node-local — the
        # home infers the flight from its own directory, never from
        # this set; see msi_home.MSIHomeMixin.handle_eviction).
        self.wb_inflight: Set[int] = set()
        # Synchronization manager state (for locks/barriers homed here).
        self.lock_state = {}
        self.barrier_state = {}
        # Completion time of acquire-time invalidation processing.
        self.acq_inv_done = 0
        # Home-side ack-collection records (MSI protocols): block -> dict.
        self.msi_pending = {}
        # MSI requester side: block -> number of fills in flight, and
        # block -> state forced on arrival when a coherence message
        # (invalidation / ownership forward) overtook the fill in the
        # network.  The fill is still consumed once by the waiting
        # access — DASH's RAC "use once, then invalidate" semantics.
        self.fill_pending = {}
        self.fill_fixup = {}
        # Fill *replies* in flight to this node (block -> count) —
        # distinct from fill_pending, which counts outstanding requests
        # (the reply may not exist yet if the request is queued at a
        # busy home).  A coherence forward that arrives while a reply is
        # in flight waits for it (DASH's RAC use-once handling); see
        # msi_home.MSIHomeMixin.
        self.fill_reply_pending = {}
        # Forwards waiting for an in-flight fill reply: block -> [(kind, args)].
        self.fwd_deferred = {}
        # Lazy protocols: write-buffer entries with an outstanding fetch.
        self.wb_fetching: Set[int] = set()
        # Lazy protocols: number of background coalescing-buffer flushes
        # currently in flight.
        self.wt_drain_busy = 0
        # Lazy protocols: per-block write-throughs in flight from this
        # node (block -> count), and misses waiting for them.  A miss to
        # a line with our own write-through outstanding must not overtake
        # it to the home (read-own-write would break): it is held here
        # until the ack returns.
        self.wt_inflight = {}
        self.wt_waiters = {}
        # Tardis: per-processor logical timestamp, read leases of the
        # resident lines (block -> rts), and blocks written since the
        # last release (whose wts must be bumped at the next release).
        self.pts = 0
        self.ts_lease = {}
        self.ts_dirty: Set[int] = set()
        # Observability (set by Machine when tracing / checking is on).
        self.tracer = None
        self.checker = None

    # -- outstanding-transaction bookkeeping -------------------------------------

    def txn_start(self) -> None:
        self.out_count += 1
        if self.tracer is not None:
            self.tracer.emit("txn_start", self.id, out=self.out_count)

    def txn_done(self, t: int) -> None:
        self.out_count -= 1
        if self.tracer is not None:
            self.tracer.emit("txn_done", self.id, t=t, out=self.out_count)
        if self.out_count < 0:
            raise RuntimeError(f"node {self.id}: negative outstanding count")
        if self.out_count == 0:
            self.check_release(t)

    def check_release(self, t: int) -> None:
        """Fire the pending release continuation if all conditions hold."""
        cb = self.release_cb
        if (
            cb is not None
            and self.out_count == 0
            and (self.wb is None or self.wb.empty)
            and (self.cbuf is None or self.cbuf.empty)
        ):
            self.release_cb = None
            cb(t)

    def release_fired(self, t: int) -> None:
        """Observability hook: a release continuation is about to run.

        Called through the guard :meth:`repro.protocols.base.Protocol._guard_release`
        wraps around every release-semantics continuation, so it fires on
        both the immediate path and the deferred ``release_cb`` path.
        """
        if self.checker is not None:
            self.checker.on_release_fire(self, t)
        if self.tracer is not None:
            self.tracer.emit("release_fire", self.id, t=t)
