"""The per-node CPU: executes a program's reference stream.

Design notes (hot path):

* Programs yield plain tuples; run-ops amortize generator resumes over
  whole loops of references.
* Cache hits are resolved inline against the raw tag/state lists — a
  read hit costs a few integer ops and no function calls; a write hit on
  a read-write line with a live coalescing-buffer entry is equally flat.
* A processor runs in bounded *quanta*: it may advance at most
  ``config.quantum`` cycles past the global clock before rescheduling,
  which bounds the timing skew between processors (important for
  contention and sharing interleavings) while keeping the event queue
  out of the per-reference path.

Blocking protocol ops hand control to the protocol object, which calls
:meth:`Processor.unblock` when the stall resolves.  The convention for
``Protocol.cpu_write`` is: return the new local time if the CPU may
continue, or ``-1`` if the CPU must stall and retry the same write when
woken (write-buffer full, or SC write miss).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.program.ops import (
    ACQUIRE,
    BARRIER,
    COMPUTE,
    FENCE,
    READ,
    READ_RUN,
    RELEASE,
    RW_RESUME,
    RW_RUN,
    SET_FLAG,
    WAIT_FLAG,
    WRITE,
    WRITE_RUN,
)

# Stall buckets.
B_READ = 0
B_WB = 1
B_SYNC = 2

#: Human-readable stall-bucket names (keyed by the B_* constants).
BUCKET_NAMES = {B_READ: "read", B_WB: "write-buffer", B_SYNC: "sync"}


class Processor:
    """Drives one program generator against one node."""

    __slots__ = (
        "id",
        "node",
        "machine",
        "sim",
        "protocol",
        "stats",
        "_gen",
        "_pending",
        "_line_shift",
        "_word_mask",
        "_quantum",
        "done",
        "blocked",
        "_block_t",
        "_block_bucket",
        "_wt_words",
    )

    def __init__(self, node, machine) -> None:
        self.id = node.id
        self.node = node
        self.machine = machine
        self.sim = machine.sim
        self.protocol = machine.protocol
        self.stats = node.stats
        cfg = machine.config
        self._gen: Optional[Iterator] = None
        self._pending = None
        self._line_shift = cfg.line_shift
        self._word_mask = (cfg.line_size // cfg.word_size) - 1
        self._quantum = cfg.quantum
        self.done = False
        self.blocked = False
        self._block_t = 0
        self._block_bucket = B_READ
        # Lazy protocols expose the coalescing buffer's word map so the
        # steady-state write path (RW line, live entry) stays inline.
        self._wt_words = None

    def set_program(self, gen: Iterator) -> None:
        self._gen = gen
        if self.node.cbuf is not None:
            self._wt_words = self.node.cbuf.words

    def start(self) -> None:
        self.sim.at(0, self.run_quantum)

    # -- blocking ------------------------------------------------------------------

    def block(self, t: int, bucket: int) -> None:
        assert not self.blocked, f"proc {self.id} double-blocked"
        self.blocked = True
        self._block_t = t
        self._block_bucket = bucket

    @property
    def blocked_on_write_buffer(self) -> bool:
        """True when the CPU is stalled waiting on a write-buffer slot.

        Protocols that free a slot (write-buffer retirement) use this to
        decide whether to wake the CPU, instead of reaching into the
        private ``_block_bucket`` bookkeeping.
        """
        return self.blocked and self._block_bucket == B_WB

    @property
    def block_reason(self) -> Optional[str]:
        """Name of the stall bucket the CPU is blocked in, or ``None``."""
        return BUCKET_NAMES[self._block_bucket] if self.blocked else None

    def unblock(self, t: int) -> None:
        """Resume execution at time ``t``.

        ``t`` may be earlier than the blocking time: the CPU runs up to a
        quantum ahead of the global clock, so a resource can free (in
        global time) before the CPU's local clock reached the stall.  In
        that case the stall was zero cycles long.
        """
        assert self.blocked, f"proc {self.id} unblocked while running"
        self.blocked = False
        if t < self._block_t:
            t = self._block_t
        stall = t - self._block_t
        st = self.stats
        b = self._block_bucket
        if b == B_READ:
            st.read_stall += stall
        elif b == B_WB:
            st.wb_stall += stall
        else:
            st.sync_stall += stall
        if t <= self.sim.now:
            self.sim.at(self.sim.now, self.run_quantum)
        else:
            self.sim.at(t, self.run_quantum)

    def complete_pending_write(self) -> None:
        """Mark the blocked write op as performed (SC ownership grant).

        Under SC the write must be bound to the ownership grant: if the
        CPU merely retried it, a racing invalidation could beat the retry
        every time and livelock two writers of the same line.  The caller
        grants ownership, installs/upgrades the line, then calls this to
        consume the pending write; the CPU resumes at the next op.
        """
        op = self._pending
        assert op is not None, "no pending write to complete"
        kind = op[0]
        if kind == WRITE:
            addr = op[1]
            self._pending = None
        elif kind == WRITE_RUN or kind == RW_RESUME or kind == RW_RUN:
            _, base, count, stride, i = op
            addr = base + i * stride
            nxt = RW_RUN if kind == RW_RESUME else kind
            self._pending = (nxt, base, count, stride, i + 1)
        else:
            raise AssertionError(f"pending op is not a write: {op!r}")
        self.stats.writes += 1
        vm = self.machine.valmodel
        if vm is not None:
            vm.write(self.id, addr >> self._line_shift, (addr >> 3) & self._word_mask)

    def _finish(self, t: int) -> None:
        self.done = True
        self.stats.finish_time = t
        self.machine.proc_finished(self.id, t)

    # -- the quantum runner ----------------------------------------------------------

    def run_quantum(self) -> None:
        sim = self.sim
        t = sim.now
        deadline = t + self._quantum
        node = self.node
        cache = node.cache
        tags = cache.tags
        states = cache.states
        mask = cache.set_mask
        lsh = self._line_shift
        wmask = self._word_mask
        stats = self.stats
        prot = self.protocol
        gen = self._gen
        wb = node.wb
        wb_words = wb.words if wb is not None else None
        obs = self.machine.classifier
        vm = self.machine.valmodel
        my_id = self.id

        pend = self._pending
        self._pending = None

        while True:
            if pend is not None:
                op = pend
                pend = None
            else:
                try:
                    op = next(gen)
                except StopIteration:
                    self._finish(t)
                    return
            kind = op[0]

            if kind == READ:
                addr = op[1]
                block = addr >> lsh
                s = block & mask
                stats.reads += 1
                if tags[s] == block and states[s]:
                    t += 1
                    if vm is not None:
                        vm.read_hit(my_id, block, (addr >> 3) & wmask)
                elif wb_words is not None and block in wb_words:
                    t += 1  # read bypasses / forwards from the write buffer
                    if vm is not None:
                        vm.read_wb(my_id, block, (addr >> 3) & wmask)
                else:
                    stats.read_misses += 1
                    word = (addr >> 3) & wmask
                    if obs is not None:
                        obs.classify_miss(my_id, block, word, t)
                    if vm is not None:
                        vm.read_miss(my_id, block, word)
                    self.block(t, B_READ)
                    prot.cpu_read_miss(node, t, block)
                    return

            elif kind == WRITE:
                addr = op[1]
                block = addr >> lsh
                s = block & mask
                word = (addr >> 3) & wmask
                if obs is not None:
                    obs.record_write(my_id, block, word, t)
                if tags[s] == block and states[s] == 2:
                    wt = self._wt_words
                    if wt is None:
                        stats.writes += 1
                        t += 1
                    else:
                        ws = wt.get(block)
                        if ws is not None:
                            ws.add(word)
                            stats.writes += 1
                            t += 1
                        else:
                            t = prot.cpu_write(node, t, block, word)
                            stats.writes += 1
                    if vm is not None:
                        vm.write(my_id, block, word)
                else:
                    nt = prot.cpu_write(node, t, block, word)
                    if nt < 0:
                        self._pending = op
                        self.block(t, B_WB)
                        return
                    stats.writes += 1
                    t = nt
                    if vm is not None:
                        vm.write(my_id, block, word)

            elif kind == READ_RUN or kind == WRITE_RUN or kind == RW_RUN or kind == RW_RESUME:
                if len(op) == 5:
                    _, base, count, stride, i = op
                else:
                    _, base, count, stride = op
                    i = 0
                # RW_RESUME: continuation of an RW_RUN whose element i has
                # already performed its read (the fill completed); do the
                # write for element i, then behave as RW_RUN for the rest.
                skip_read_once = kind == RW_RESUME
                if skip_read_once:
                    kind = RW_RUN
                is_read = kind == READ_RUN
                is_rw = kind == RW_RUN
                addr = base + i * stride
                while i < count:
                    block = addr >> lsh
                    s = block & mask
                    word = (addr >> 3) & wmask
                    if (is_read or is_rw) and not skip_read_once:
                        stats.reads += 1
                        if tags[s] == block and states[s]:
                            t += 1
                            if vm is not None:
                                vm.read_hit(my_id, block, word)
                        elif wb_words is not None and block in wb_words:
                            t += 1
                            if vm is not None:
                                vm.read_wb(my_id, block, word)
                        else:
                            stats.read_misses += 1
                            if obs is not None:
                                obs.classify_miss(my_id, block, word, t)
                            if vm is not None:
                                vm.read_miss(my_id, block, word)
                            # Resume after the fill: an RW element still
                            # owes its write; a read element is complete.
                            if is_rw:
                                self._pending = (RW_RESUME, base, count, stride, i)
                            else:
                                self._pending = (kind, base, count, stride, i + 1)
                            self.block(t, B_READ)
                            prot.cpu_read_miss(node, t, block)
                            return
                    skip_read_once = False
                    if not is_read:  # WRITE_RUN or RW_RUN: write this element
                        if obs is not None:
                            obs.record_write(my_id, block, word, t)
                        if tags[s] == block and states[s] == 2:
                            wt = self._wt_words
                            if wt is None:
                                stats.writes += 1
                                t += 1
                            else:
                                ws = wt.get(block)
                                if ws is not None:
                                    ws.add(word)
                                    stats.writes += 1
                                    t += 1
                                else:
                                    t = prot.cpu_write(node, t, block, word)
                                    stats.writes += 1
                            if vm is not None:
                                vm.write(my_id, block, word)
                        else:
                            nt = prot.cpu_write(node, t, block, word)
                            if nt < 0:
                                # Retry this element's write when woken; its
                                # read (if any) already ran.
                                self._pending = (
                                    (RW_RESUME if is_rw else kind),
                                    base,
                                    count,
                                    stride,
                                    i,
                                )
                                self.block(t, B_WB)
                                return
                            stats.writes += 1
                            t = nt
                            if vm is not None:
                                vm.write(my_id, block, word)
                    i += 1
                    addr += stride
                    if t >= deadline and i < count:
                        self._pending = (kind, base, count, stride, i)
                        sim.at(t, self.run_quantum)
                        return

            elif kind == COMPUTE:
                c = op[1]
                if t + c <= deadline:
                    t += c
                else:
                    done_now = deadline - t
                    self._pending = (COMPUTE, c - done_now)
                    sim.at(deadline, self.run_quantum)
                    return

            elif kind == ACQUIRE:
                stats.acquires += 1
                self.block(t, B_SYNC)
                prot.cpu_acquire(node, t, op[1])
                return

            elif kind == RELEASE:
                stats.releases += 1
                self.block(t, B_SYNC)
                prot.cpu_release(node, t, op[1])
                return

            elif kind == BARRIER:
                stats.barriers += 1
                self.block(t, B_SYNC)
                prot.cpu_barrier(node, t, op[1])
                return

            elif kind == FENCE:
                self.block(t, B_SYNC)
                prot.cpu_fence(node, t)
                return

            elif kind == SET_FLAG:
                stats.releases += 1
                self.block(t, B_SYNC)
                prot.cpu_set_flag(node, t, op[1])
                return

            elif kind == WAIT_FLAG:
                stats.acquires += 1
                self.block(t, B_SYNC)
                prot.cpu_wait_flag(node, t, op[1])
                return

            else:
                raise ValueError(f"unknown opcode {kind!r}")

            if t >= deadline:
                self._pending = None
                sim.at(t, self.run_quantum)
                return
