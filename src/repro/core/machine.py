"""Machine assembly: nodes + fabric + protocol + address space.

Typical use::

    machine = Machine(SystemConfig.scaled(n_procs=16), protocol="lrc")
    seg = machine.space.alloc(1 << 16, "data")
    result = machine.run([program(p) for p in range(16)])
    print(result.stats.exec_time)
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Iterator, List, Optional, Sequence

from repro.config import SystemConfig
from repro.core.node import Node
from repro.core.processor import Processor
from repro.engine.simulator import DeadlockError, Simulator
from repro.network.fabric import Fabric
from repro.network.messages import MessageStats
from repro.program.address_space import AddressSpace
from repro.stats.classification import MissClassifier
from repro.stats.counters import MachineStats


@dataclass
class RunResult:
    """Everything measured during one simulation run."""

    config: SystemConfig
    protocol: str
    stats: MachineStats
    traffic: MessageStats
    classifier: Optional[MissClassifier]

    @property
    def exec_time(self) -> int:
        return self.stats.exec_time

    @property
    def miss_rate(self) -> float:
        return self.stats.miss_rate

    def breakdown(self):
        return self.stats.breakdown()

    def summary(self) -> dict:
        s = self.stats.summary()
        s["protocol"] = self.protocol
        s["messages"] = self.traffic.total_messages
        s["bytes"] = self.traffic.total_bytes
        return s

    # -- serialization (result store) ------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe representation of everything measured.

        Round-trips through :meth:`from_dict`; the result-store schema
        version that pins this layout lives in :mod:`repro.results.store`.
        """
        return {
            "config": asdict(self.config),
            "protocol": self.protocol,
            "stats": self.stats.to_dict(),
            "traffic": self.traffic.to_dict(),
            "classifier": self.classifier.to_dict() if self.classifier else None,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunResult":
        return cls(
            config=SystemConfig(**d["config"]),
            protocol=d["protocol"],
            stats=MachineStats.from_dict(d["stats"]),
            traffic=MessageStats.from_dict(d["traffic"]),
            classifier=(
                MissClassifier.from_dict(d["classifier"])
                if d["classifier"] is not None
                else None
            ),
        )


@dataclass(frozen=True)
class MachineConfig:
    """A complete, declarative machine description.

    Consolidates the loose keyword arguments :class:`Machine` grew over
    time — one value object names every knob, can be compared, copied
    with :func:`dataclasses.replace`, and built from (:meth:`build`).
    The harness (:class:`repro.harness.spec.ExperimentSpec`) and the
    public API (:func:`repro.core.api.run_app`) both construct machines
    through this type rather than spelling kwargs at each call site.
    """

    config: SystemConfig = field(default_factory=SystemConfig)
    protocol: str = "lrc"
    classify: bool = False
    max_cycles: int = 1 << 62
    trace: bool = False
    check_invariants: bool = False
    trace_capacity: int = 1 << 16
    check_level: str = "sync"
    value_model: bool = False
    faults: Optional[object] = None
    stall_cycles: Optional[int] = None
    shards: int = 1

    def build(self) -> "Machine":
        """Assemble a fresh :class:`Machine` from this description."""
        kwargs = {f.name: getattr(self, f.name) for f in fields(self)}
        cfg = kwargs.pop("config")
        return Machine(cfg, **kwargs)

    def with_(self, **changes) -> "MachineConfig":
        """A copy with ``changes`` applied (thin ``dataclasses.replace``)."""
        return replace(self, **changes)


class Machine:
    """A mesh-connected multiprocessor running one coherence protocol."""

    def __init__(
        self,
        config: SystemConfig,
        protocol: str = "lrc",
        classify: bool = False,
        max_cycles: int = 1 << 62,
        trace: bool = False,
        check_invariants: bool = False,
        trace_capacity: int = 1 << 16,
        check_level: str = "sync",
        value_model: bool = False,
        faults=None,
        stall_cycles: Optional[int] = None,
        shards: int = 1,
        shard_backend: Optional[str] = None,
    ) -> None:
        # Import here to avoid a cycle (protocols import nothing from core,
        # but core.__init__ re-exports both directions for users).
        from repro.faults.plan import FaultPlan
        from repro.protocols import make_protocol

        self.config = config
        self.shards = shards
        self.shard_backend = "inproc"
        if shards > 1:
            from repro.engine.shard import resolve_shard_backend

            self.shard_backend = resolve_shard_backend(shard_backend)
            # The value model asserts against one globally-ordered access
            # stream; windowed shard execution interleaves node streams
            # differently, so it stays a serial-engine-only oracle.
            if value_model:
                raise ValueError("value_model requires shards=1")
            from repro.engine.shard import ShardedSimulator

            self.sim = ShardedSimulator(
                n_procs=config.n_procs,
                shards=shards,
                lookahead=config.hop_latency,
                max_cycles=max_cycles,
            )
        else:
            self.sim = Simulator(max_cycles=max_cycles)
        self.sim.machine = self
        # ``faults`` accepts a FaultPlan, a plan dict, or the CLI string
        # form.  Only an *active* plan swaps in the reliable fabric; an
        # inert (zero-rate) plan keeps the plain fabric, so its runs are
        # bit-identical to no-faults runs.
        self.fault_plan = FaultPlan.coerce(faults)
        if self.fault_plan is not None and self.fault_plan.active:
            from repro.faults.reliable import ReliableFabric

            self.fabric = ReliableFabric(config, self.sim, self.fault_plan)
        else:
            self.fabric = Fabric(config, self.sim)
        if stall_cycles is None:
            env = os.environ.get("REPRO_STALL_CYCLES", "")
            stall_cycles = int(env) if env else 0
        self.stall_cycles = stall_cycles
        self.stats = MachineStats(config.n_procs)
        self.space = AddressSpace(config)
        self.home_of = self.space.build_block_home_lookup()
        # Logged mode: counts are resolved at end of run from per-node
        # logs merged in canonical (time, node, index) order, so they are
        # identical under any shard layout (and under span batching).
        self.classifier = MissClassifier(logged=True) if classify else None
        self.protocol_name = protocol
        self.nodes: List[Node] = []
        self.protocol = make_protocol(protocol, self)
        for i in range(config.n_procs):
            node = Node(i, config, self.stats.procs[i])
            self.protocol.attach_node(node)
            node.proc = Processor(node, self)
            self.nodes.append(node)
        self._finished = 0
        self._ran = False
        # Structured record of process-backend crash recovery (kills /
        # respawns / fallback), populated by engine.shard_proc.
        self.shard_recovery = None
        self.tracer = None
        self.checker = None
        self.valmodel = None
        if value_model:
            from repro.conformance.shadow import ValueModel

            self.valmodel = ValueModel(self)
        if trace or check_invariants:
            from repro.trace import InvariantChecker, Tracer

            if trace:
                self.tracer = Tracer(self.sim, capacity=trace_capacity)
                self._attach_tracer(self.tracer)
            if check_invariants:
                self.checker = InvariantChecker(
                    self, tracer=self.tracer, level=check_level
                )
                for node in self.nodes:
                    node.checker = self.checker
                if check_level == "event":
                    self.sim.post_event_hook = self.checker.on_event

    def _attach_tracer(self, tracer) -> None:
        """Point every instrumented component at the shared tracer."""
        self.fabric.tracer = tracer
        for node in self.nodes:
            node.tracer = tracer
            node.cache.tracer = tracer
            node.directory.tracer = tracer
            node.directory.home = node.id
            if node.wb is not None:
                node.wb.tracer = tracer
                node.wb.owner = node.id
            if node.cbuf is not None:
                node.cbuf.tracer = tracer
                node.cbuf.owner = node.id

    # -- callbacks ---------------------------------------------------------------

    def proc_finished(self, proc_id: int, t: int) -> None:
        self._finished += 1

    # -- running -----------------------------------------------------------------

    def run(self, programs: Sequence[Iterator]) -> RunResult:
        """Run one program generator per processor to completion."""
        if self._ran:
            raise RuntimeError("a Machine instance runs exactly one workload")
        self._ran = True
        if len(programs) != self.config.n_procs:
            raise ValueError(
                f"need {self.config.n_procs} programs, got {len(programs)}"
            )
        for node, gen in zip(self.nodes, programs):
            node.proc.set_program(gen)
            self.sim.on_node(node.id)  # seed into the node's shard
            node.proc.start()
        return self._complete()

    def replay(self, stream) -> RunResult:
        """Run a :class:`~repro.program.stream.RecordedStream` to completion.

        The replay driver feeds the protocols from the stream's packed
        arrays (see :mod:`repro.engine.replay`); no application Python
        executes.  The stream's allocation log reproduces the address
        space, so directory homes and segment bases are identical to the
        generator path's.
        """
        from repro.engine.replay import install_replay
        from repro.program.address_space import apply_alloc_log
        from repro.program.stream import STREAM_CONFIG_FIELDS

        if self._ran:
            raise RuntimeError("a Machine instance runs exactly one workload")
        self._ran = True
        bad = [
            (f, stream.meta[f], getattr(self.config, f))
            for f in STREAM_CONFIG_FIELDS
            if stream.meta.get(f) != getattr(self.config, f)
        ]
        if bad:
            detail = ", ".join(
                f"{f}: stream={sv!r} machine={mv!r}" for f, sv, mv in bad
            )
            raise ValueError(f"stream does not fit this machine ({detail})")
        if self.space.segments:
            raise RuntimeError(
                "replay needs a pristine address space; this machine "
                "already has allocations"
            )
        apply_alloc_log(self.space, stream.alloc_log)
        install_replay(self, stream)
        return self._complete()

    def _complete(self) -> RunResult:
        """Shared run tail: watchdog, event loop, deadlock check, result."""
        if self.stall_cycles:
            from repro.faults.watchdog import StallWatchdog

            StallWatchdog(self, self.stall_cycles).arm()
        if self.shards > 1 and self.shard_backend == "process":
            from repro.engine.shard_proc import UnsupportedBackend, run_forked

            try:
                run_forked(self)
            except UnsupportedBackend as exc:
                # Auto-fallback, never a silent semantic change: the
                # in-process backend is bit-identical, just slower, and
                # the warning names the observer that forced it.
                import logging

                logging.getLogger("repro.engine.shard_proc").warning(
                    "process shard backend unsupported (%s: %s); "
                    "falling back to the in-process backend",
                    exc.observer, exc,
                )
                self.shard_backend = "inproc"
                self.sim.run()
        else:
            self.sim.run()
        return self._finish()

    def _finish(self) -> RunResult:
        """Post-loop tail: deadlock check, observer finalization, result.

        Shared by the normal run path and :meth:`resume` — a restored
        machine re-enters the event loop and then needs exactly this
        tail to produce a :class:`RunResult` comparable bit-for-bit with
        an uninterrupted run's.
        """
        if self._finished != self.config.n_procs:
            stuck = [
                (n.id, n.proc.block_reason, n.out_count, len(n.wb or ()))
                for n in self.nodes
                if not n.proc.done
            ]
            raise DeadlockError(
                f"{len(stuck)} processors never finished "
                f"(id, reason, outstanding, wb): {stuck[:8]}"
            )
        if self.checker is not None:
            self.checker.end_of_run()
        if self.classifier is not None:
            self.classifier.finalize()
        return RunResult(
            config=self.config,
            protocol=self.protocol_name,
            stats=self.stats,
            traffic=self.fabric.stats,
            classifier=self.classifier,
        )

    # -- checkpoint / restore / resume (DESIGN.md §15) ---------------------------

    def snapshot(self):
        """Serialize this machine's full deterministic state.

        Take it at a quiescent point: between events, or from the
        sharded engine's ``barrier_hook``.  Returns a verified
        :class:`~repro.engine.checkpoint.Checkpoint`; raises
        :class:`~repro.engine.checkpoint.CheckpointUnsupported` for
        generator-engine machines (live generators are unpicklable).
        """
        from repro.engine.checkpoint import snapshot_machine

        return snapshot_machine(self)

    @classmethod
    def restore(cls, checkpoint) -> "Machine":
        """Rebuild a machine from a checkpoint (verifying its checksum)
        with transient hooks re-armed; pair with :meth:`resume`."""
        from repro.engine.checkpoint import restore_machine

        return restore_machine(checkpoint)

    def resume(self) -> RunResult:
        """Run a restored machine to completion.

        Drains the remaining events on the in-process path (serial queue
        or the sharded windowed loop — restored machines never re-fork)
        and produces a :class:`RunResult` bit-identical to what the
        uninterrupted run would have returned.
        """
        self.sim.run()
        return self._finish()
