"""Convenience entry points.

>>> from repro import simulate, SystemConfig
>>> from repro.apps import Gauss
>>> result = simulate(Gauss, SystemConfig.scaled(n_procs=8), "lrc", n=32)
>>> result.exec_time > 0
True

All three entry points share one signature shape —
``(..., protocol: str, classify: bool)`` — and one meaning for the two
keywords: ``protocol`` names the coherence protocol the machine runs,
``classify`` asks for a :class:`repro.stats.classification.MissClassifier`
to observe the run.  Machines are assembled through
:class:`~repro.core.machine.MachineConfig` (one value object instead of
loose ``Machine(...)`` kwargs), and apps execute through the
record/replay engine by default — the same path
:meth:`repro.harness.spec.ExperimentSpec.run` takes — with the legacy
generator engine available via ``engine="generator"`` or
``REPRO_ENGINE`` for differential testing.

:func:`run_app` is the odd one out, because an app may arrive in three
shapes:

* an **app name** (``"gauss"``) — the call is literally a thin wrapper
  over :class:`~repro.harness.spec.ExperimentSpec`: the spec is built
  from the keyword arguments and run through the standard harness path;
* a **context-built instance** (the redesigned API:
  ``Gauss(AppContext(cfg), ...)``) — ``protocol`` / ``classify``
  *configure* a fresh machine, exactly as in :func:`simulate`;
* a **machine-bound instance** (built via ``AppContext.for_machine`` or
  the deprecated ``App(machine, ...)`` shim) — the machine pre-exists,
  so ``protocol`` / ``classify`` are *validated* against it and a
  mismatch raises ``ValueError`` instead of being silently ignored.
"""

from __future__ import annotations

from typing import Optional, Type

from repro.config import SystemConfig
from repro.core.machine import Machine, MachineConfig, RunResult


def build_machine(
    config: Optional[SystemConfig] = None,
    protocol: str = "lrc",
    classify: bool = False,
) -> Machine:
    """Create a machine with the given (or default) configuration.

    ``classify=True`` attaches a miss classifier (Table 2 categories);
    the classifier of the returned machine's :class:`RunResult` is
    populated after :meth:`Machine.run`.
    """
    return MachineConfig(
        config=config or SystemConfig(), protocol=protocol, classify=classify
    ).build()


def _run_context_app(app, mc: MachineConfig, engine: Optional[str]) -> RunResult:
    """Run a context-built app on a fresh machine described by ``mc``."""
    from repro.harness.spec import resolve_engine

    machine = mc.build()
    if resolve_engine(engine) == "replay":
        from repro.program.stream import RecordedStream

        return machine.replay(RecordedStream.record(app))
    from repro.program.address_space import apply_alloc_log

    apply_alloc_log(machine.space, app.ctx.alloc_log)
    return machine.run([app.program(p) for p in range(mc.config.n_procs)])


def run_app(
    app,
    protocol: Optional[str] = None,
    classify: Optional[bool] = None,
    engine: Optional[str] = None,
    **spec_fields,
) -> RunResult:
    """Run an application: by name, by context-built instance, or on the
    machine it was built for.

    Given an app *name*, this is a thin wrapper over
    :class:`~repro.harness.spec.ExperimentSpec` — ``spec_fields``
    (``n_procs``, ``small``, ``overrides``, ...) go straight into the
    spec, and the run flows through the same record/replay machinery as
    :func:`repro.harness.experiments.run_experiment`.

    Given a *context-built* instance (no live machine), ``protocol`` and
    ``classify`` configure a fresh machine, defaulting to ``"lrc"`` /
    ``False``.

    Given a *machine-bound* instance, the machine pre-exists, so
    ``protocol`` and ``classify`` are assertions about it, not
    configuration: pass them to insist the app's machine runs that
    protocol / has (or lacks) a miss classifier, and a mismatch raises
    ``ValueError``.  Leave them ``None`` to accept the machine as built.
    """
    if isinstance(app, str):
        from repro.harness.spec import ExperimentSpec

        spec = ExperimentSpec(
            app=app,
            protocol=protocol or "lrc",
            classify=bool(classify),
            **spec_fields,
        )
        return spec.run(engine=engine)
    if spec_fields:
        raise TypeError(
            "spec fields (n_procs, small, ...) apply only when running an "
            "app by name"
        )
    machine = getattr(app, "machine", None)
    if machine is None:
        mc = MachineConfig(
            config=app.cfg, protocol=protocol or "lrc", classify=bool(classify)
        )
        return _run_context_app(app, mc, engine)
    if protocol is not None and machine.protocol_name != protocol:
        raise ValueError(
            "app was built against a machine running "
            f"{machine.protocol_name!r}, not {protocol!r}"
        )
    if classify is not None and classify != (machine.classifier is not None):
        have = "with" if machine.classifier is not None else "without"
        want = "classify=True" if classify else "classify=False"
        raise ValueError(
            f"app was built against a machine {have} a miss classifier, "
            f"but run_app() was called with {want}; pass classify to "
            "build_machine()/Machine() when constructing the app's machine"
        )
    return machine.run([app.program(p) for p in range(machine.config.n_procs)])


def simulate(
    app_cls: Type,
    config: Optional[SystemConfig] = None,
    protocol: str = "lrc",
    classify: bool = False,
    engine: Optional[str] = None,
    **app_params,
) -> RunResult:
    """One-call simulation: build app against a fresh context, run it.

    ``protocol`` and ``classify`` configure the machine
    (see :func:`build_machine`); ``app_params`` go to ``app_cls``.  The
    run uses the record/replay engine unless ``engine="generator"`` (or
    ``REPRO_ENGINE``) selects the legacy generator path.
    """
    from repro.apps.common import AppContext

    cfg = config or SystemConfig()
    app = app_cls(AppContext(cfg), **app_params)
    return _run_context_app(
        app, MachineConfig(config=cfg, protocol=protocol, classify=classify), engine
    )
