"""Convenience entry points.

>>> from repro import simulate, SystemConfig
>>> from repro.apps import Gauss
>>> result = simulate(Gauss, SystemConfig.scaled(n_procs=8), "lrc", n=32)
>>> result.exec_time > 0
True

All three entry points share one signature shape —
``(..., protocol: str, classify: bool)`` — and one meaning for the two
keywords: ``protocol`` names the coherence protocol the machine runs,
``classify`` asks for a :class:`repro.stats.classification.MissClassifier`
to observe the run.  For :func:`build_machine` and :func:`simulate` they
*configure* the machine being built; for :func:`run_app`, whose machine
already exists, they are *validated* against it and a mismatch raises
``ValueError`` instead of being silently ignored.
"""

from __future__ import annotations

from typing import Optional, Type

from repro.config import SystemConfig
from repro.core.machine import Machine, RunResult


def build_machine(
    config: Optional[SystemConfig] = None,
    protocol: str = "lrc",
    classify: bool = False,
) -> Machine:
    """Create a machine with the given (or default) configuration.

    ``classify=True`` attaches a miss classifier (Table 2 categories);
    the classifier of the returned machine's :class:`RunResult` is
    populated after :meth:`Machine.run`.
    """
    return Machine(config or SystemConfig(), protocol=protocol, classify=classify)


def run_app(
    app,
    protocol: Optional[str] = None,
    classify: Optional[bool] = None,
) -> RunResult:
    """Run an already-constructed application on the machine it was built for.

    The app must expose ``machine`` (the one it allocated against) and
    ``program(pid)``; see :class:`repro.apps.common.App`.

    Because the machine pre-exists, ``protocol`` and ``classify`` here
    are assertions about it, not configuration: pass them to insist the
    app's machine runs that protocol / has (or lacks) a miss classifier,
    and a mismatch raises ``ValueError``.  Leave them ``None`` to accept
    the machine as built.
    """
    machine = app.machine
    if protocol is not None and machine.protocol_name != protocol:
        raise ValueError(
            "app was built against a machine running "
            f"{machine.protocol_name!r}, not {protocol!r}"
        )
    if classify is not None and classify != (machine.classifier is not None):
        have = "with" if machine.classifier is not None else "without"
        want = "classify=True" if classify else "classify=False"
        raise ValueError(
            f"app was built against a machine {have} a miss classifier, "
            f"but run_app() was called with {want}; pass classify to "
            "build_machine()/Machine() when constructing the app's machine"
        )
    return machine.run([app.program(p) for p in range(machine.config.n_procs)])


def simulate(
    app_cls: Type,
    config: Optional[SystemConfig] = None,
    protocol: str = "lrc",
    classify: bool = False,
    **app_params,
) -> RunResult:
    """One-call simulation: build machine, instantiate app, run it.

    ``protocol`` and ``classify`` configure the freshly built machine
    (see :func:`build_machine`); ``app_params`` go to ``app_cls``.
    """
    machine = build_machine(config, protocol, classify)
    app = app_cls(machine, **app_params)
    return machine.run([app.program(p) for p in range(machine.config.n_procs)])
