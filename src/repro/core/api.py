"""Convenience entry points.

>>> from repro import simulate, SystemConfig
>>> from repro.apps import Gauss
>>> result = simulate(Gauss, SystemConfig.scaled(n_procs=8), "lrc", n=32)
>>> result.exec_time > 0
True
"""

from __future__ import annotations

from typing import Optional, Type

from repro.config import SystemConfig
from repro.core.machine import Machine, RunResult


def build_machine(
    config: Optional[SystemConfig] = None,
    protocol: str = "lrc",
    classify: bool = False,
) -> Machine:
    """Create a machine with the given (or default) configuration."""
    return Machine(config or SystemConfig(), protocol=protocol, classify=classify)


def run_app(app, protocol: str = "lrc", classify: bool = False) -> RunResult:
    """Run an already-constructed application on a fresh machine.

    The app must expose ``machine`` (the one it allocated against) and
    ``program(pid)``; see :class:`repro.apps.common.App`.
    """
    machine = app.machine
    if machine.protocol_name != protocol:
        raise ValueError(
            "app was built against a machine running "
            f"{machine.protocol_name!r}, not {protocol!r}"
        )
    return machine.run([app.program(p) for p in range(machine.config.n_procs)])


def simulate(
    app_cls: Type,
    config: Optional[SystemConfig] = None,
    protocol: str = "lrc",
    classify: bool = False,
    **app_params,
) -> RunResult:
    """One-call simulation: build machine, instantiate app, run it."""
    machine = build_machine(config, protocol, classify)
    app = app_cls(machine, **app_params)
    return machine.run([app.program(p) for p in range(machine.config.n_procs)])
