"""Memory module timing.

Each node's main memory serves accesses in ``setup + size/bandwidth``
cycles (Table 1: 20-cycle setup, 2 bytes per cycle).  Reads and writes
contend on separate ports: the memory controller buffers writes
(writebacks, write-throughs) and gives demand reads priority, so a read
never queues behind buffered write traffic — but reads contend with
reads and writes with writes, matching the paper's "memory access costs
(including memory contention)".
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.engine.resource import Resource


class MemoryModule:
    """One node's DRAM bank with a write-buffering controller."""

    __slots__ = ("config", "resource", "wresource", "reads", "writes")

    def __init__(self, config: SystemConfig, node_id: int) -> None:
        self.config = config
        self.resource = Resource(f"mem_rd[{node_id}]")
        self.wresource = Resource(f"mem_wr[{node_id}]")
        self.reads = 0
        self.writes = 0

    def read(self, t: int, size: int) -> int:
        """Begin a read at/after ``t``; return its completion time."""
        self.reads += 1
        return self.resource.reserve(t, self.config.memory_time(size))

    def write(self, t: int, size: int) -> int:
        """Begin a write at/after ``t``; return its completion time."""
        self.writes += 1
        return self.wresource.reserve(t, self.config.memory_time(size))

    @property
    def busy_cycles(self) -> int:
        return self.resource.busy_cycles + self.wresource.busy_cycles
