"""Main-memory modules (one per node, at each block's home)."""

from repro.mem.dram import MemoryModule

__all__ = ["MemoryModule"]
