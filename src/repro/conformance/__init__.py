"""Randomized-program conformance testing (DESIGN.md §9).

A seeded generator emits data-race-free multi-processor programs; a
sequential reference interpreter provides the expected values (RC == SC
for DRF programs); a value-tracking shadow memory checks every read the
simulator performs; and a differential harness runs each program under
all four protocols, minimizing any failure to a small reproducer.
"""

from repro.conformance.fuzz import (
    FuzzFailure,
    PROTOCOLS_UNDER_TEST,
    fuzz_iteration,
    fuzz_run,
    run_one,
    verify_run,
    write_reproducers,
)
from repro.conformance.generator import MODES, generate
from repro.conformance.minimize import minimize
from repro.conformance.oracle import OracleResult, interpret
from repro.conformance.program import ProgramSpec, Unit, materialize
from repro.conformance.shadow import ConformanceViolation, ValueModel

__all__ = [
    "ConformanceViolation",
    "FuzzFailure",
    "MODES",
    "OracleResult",
    "PROTOCOLS_UNDER_TEST",
    "ProgramSpec",
    "Unit",
    "ValueModel",
    "fuzz_iteration",
    "fuzz_run",
    "generate",
    "interpret",
    "materialize",
    "minimize",
    "run_one",
    "verify_run",
    "write_reproducers",
]
