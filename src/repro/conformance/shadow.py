"""Value-tracking shadow memory for the conformance fuzzer.

The simulator models protocol *state and timing* but carries no data
values.  The :class:`ValueModel` shadows every data-carrying structure —
home memory, per-node cache-line contents, write-buffer entries — with
*write tokens* (``(pid << 32) | k`` for processor ``pid``'s ``k``-th
dynamic write), and moves them along exactly the paths the protocol
moves data: fills copy the home (or dirty owner's) line contents as
captured when the reply was sent, write-throughs carry the flushed
words' tokens and merge into home memory on arrival, writebacks deposit
the owner's line, write-buffer retirement applies buffered tokens to
the line they were waiting for.

Everything here is **pure observation**, mirroring the classifier and
tracer idiom (``if vm is not None`` at each hook site): no simulated
time is read or written, so enabling the model cannot change a cycle.

Every READ is then checkable: the *observed* token (from the structure
the CPU actually hit — write buffer first, since a processor must see
its own buffered writes, then the cached line copy) must equal the
*expected* token from a global call-order shadow updated at each write.
For data-race-free programs, simulator event order realizes a legal
happens-before order, so the call-order shadow holds precisely the
hb-latest write at every read — under *any* correct RC/SC protocol the
two must agree.  A mismatch is a coherence bug: a stale hit that an
acquire should have invalidated, a fill that overtook the write-through
it depended on, a lost buffered word.

One modeled shortcut: the simulator forwards a read from the write
buffer whenever the *block* has an entry, even for words the entry does
not hold (the line itself may be absent).  Those reads have no modeled
data source and are counted in ``unchecked_reads`` instead of checked.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cache.state import RW


class ConformanceViolation(RuntimeError):
    """A read observed a value coherence should have made impossible.

    ``seq`` is the sequence number of the ``violation`` event emitted
    into the attached tracer (``None`` without a tracer); pass it to
    :meth:`repro.trace.tracer.Tracer.window` for surrounding context.
    """

    def __init__(self, message: str, seq: Optional[int] = None) -> None:
        super().__init__(message)
        self.seq = seq


def token_str(tok: Optional[int]) -> str:
    if tok is None:
        return "uninit"
    return f"p{tok >> 32}#w{tok & 0xFFFFFFFF}"


class ValueModel:
    """Shadow data values through a machine's coherence protocol."""

    __slots__ = (
        "machine",
        "wpl",
        "home",
        "lines",
        "wbv",
        "shadow",
        "wcount",
        "pending_read",
        "checked_reads",
        "unchecked_reads",
    )

    def __init__(self, machine) -> None:
        cfg = machine.config
        n = cfg.n_procs
        self.machine = machine
        self.wpl = cfg.line_size // cfg.word_size
        #: Home memory: block -> {word offset -> token}.
        self.home: Dict[int, Dict[int, int]] = {}
        #: Per-node cache-line contents: block -> {word -> token}.  Line
        #: copies are *never dropped* — residency lives in the real cache
        #: (invalidation changes state, not contents); a fill replaces
        #: the whole per-block dict.
        self.lines: List[Dict[int, Dict[int, int]]] = [dict() for _ in range(n)]
        #: Per-node write-buffer values awaiting retirement.
        self.wbv: List[Dict[int, Dict[int, int]]] = [dict() for _ in range(n)]
        #: Global call-order shadow: word index -> hb-latest token.
        self.shadow: Dict[int, int] = {}
        self.wcount = [0] * n
        #: One outstanding read miss per CPU: (block, word, expected).
        self.pending_read: List[Optional[tuple]] = [None] * n
        self.checked_reads = 0
        self.unchecked_reads = 0

    # -- failure ---------------------------------------------------------------

    def _fail(self, pid: int, block: int, word: int,
              observed: Optional[int], expected: Optional[int], where: str) -> None:
        msg = (
            f"p{pid} read block {block:#x} word {word} via {where}: "
            f"observed {token_str(observed)}, expected {token_str(expected)} "
            f"(protocol {self.machine.protocol_name})"
        )
        seq = None
        tracer = self.machine.tracer
        if tracer is not None:
            seq = tracer.emit("violation", pid, block=block, word=word,
                              message=msg)
        raise ConformanceViolation(msg, seq)

    def _check(self, pid: int, block: int, word: int,
               observed: Optional[int], where: str) -> None:
        expected = self.shadow.get(block * self.wpl + word)
        if expected is None:
            # Word never written (init removed by the minimizer, say):
            # any observation is vacuously legal.
            self.unchecked_reads += 1
            return
        if observed != expected:
            self._fail(pid, block, word, observed, expected, where)
        self.checked_reads += 1

    # -- CPU-side hooks (called from the processor) ----------------------------

    def write(self, pid: int, block: int, word: int) -> None:
        """An accepted dynamic write (fires exactly once per write)."""
        tok = (pid << 32) | self.wcount[pid]
        self.wcount[pid] += 1
        self.shadow[block * self.wpl + word] = tok
        node = self.machine.nodes[pid]
        placed = False
        if node.wb is not None and block in node.wb.words:
            self.wbv[pid].setdefault(block, {})[word] = tok
            placed = True
        line = self.lines[pid].get(block)
        if line is not None:
            line[word] = tok
            placed = True
        if not placed:
            self.lines[pid][block] = {word: tok}

    def read_hit(self, pid: int, block: int, word: int) -> None:
        wv = self.wbv[pid].get(block)
        tok = wv.get(word) if wv else None
        if tok is None:
            line = self.lines[pid].get(block)
            tok = line.get(word) if line else None
        self._check(pid, block, word, tok, "cache hit")

    def read_wb(self, pid: int, block: int, word: int) -> None:
        wv = self.wbv[pid].get(block)
        tok = wv.get(word) if wv else None
        if tok is None:
            # Simulator shortcut: forwards for any word of a buffered
            # block; the word itself has no modeled source here.
            self.unchecked_reads += 1
            return
        self._check(pid, block, word, tok, "write-buffer forward")

    def read_miss(self, pid: int, block: int, word: int) -> None:
        """Record the expected value now; the fill resolves it.

        For DRF programs the hb-latest write for this read has already
        executed (simulator event order realizes happens-before), so
        capturing at issue equals capturing at the fill.
        """
        self.pending_read[pid] = (
            block, word, self.shadow.get(block * self.wpl + word)
        )

    # -- protocol-side hooks ---------------------------------------------------

    def home_line(self, block: int) -> Dict[int, int]:
        """Snapshot of home memory for a fill reply (capture at send)."""
        d = self.home.get(block)
        return dict(d) if d else {}

    def owner_line(self, pid: int, block: int) -> Dict[int, int]:
        """Snapshot of a dirty owner's line (forwarded reads/writes)."""
        d = self.lines[pid].get(block)
        return dict(d) if d else {}

    def fill(self, pid: int, block: int, data: Optional[Dict[int, int]]) -> None:
        """A data fill landed: the line copy becomes the carried data."""
        self.lines[pid][block] = dict(data) if data else {}

    def read_fill(self, pid: int, block: int) -> None:
        """The fill satisfying a blocked read landed: check the value."""
        pr = self.pending_read[pid]
        if pr is None or pr[0] != block:
            return
        self.pending_read[pid] = None
        _, word, expected = pr
        line = self.lines[pid].get(block)
        observed = line.get(word) if line else None
        if expected is None:
            self.unchecked_reads += 1
            return
        if observed != expected:
            self._fail(pid, block, word, observed, expected, "miss fill")
        self.checked_reads += 1

    def wb_retire(self, pid: int, block: int) -> None:
        """A write-buffer entry retired into its (now present) line."""
        toks = self.wbv[pid].pop(block, None)
        if toks:
            line = self.lines[pid].get(block)
            if line is None:
                self.lines[pid][block] = dict(toks)
            else:
                line.update(toks)

    def flush_capture(self, pid: int, block: int, words) -> Dict[int, int]:
        """Tokens for a write-through of ``words`` (capture at send)."""
        line = self.lines[pid].get(block) or {}
        wv = self.wbv[pid].get(block) or {}
        out = {}
        for w in words:
            tok = line.get(w, wv.get(w))
            if tok is not None:
                out[w] = tok
        return out

    def apply_home(self, block: int, data: Optional[Dict[int, int]]) -> None:
        """A write-through / writeback arrived: merge into home memory."""
        if data:
            self.home.setdefault(block, {}).update(data)

    # -- end of run ------------------------------------------------------------

    def final_memory(self) -> Dict[int, int]:
        """The machine's final memory image as ``word index -> token``.

        Home memory, overlaid with dirty (RW) resident lines for
        write-back protocols — the directory guarantees a single owner
        whose copy is authoritative.  Write-through protocols keep home
        memory current (the final barrier drained every buffer), and
        multiple nodes may legitimately hold RW copies containing stale
        values for *other* writers' words, so no overlay is applied.
        """
        wpl = self.wpl
        mem: Dict[int, int] = {}
        for block, d in self.home.items():
            for w, tok in d.items():
                mem[block * wpl + w] = tok
        if not self.machine.protocol.write_through:
            for pid, node in enumerate(self.machine.nodes):
                cache = node.cache
                tags, states = cache.tags, cache.states
                for s in range(cache.n_sets):
                    if states[s] == RW:
                        block = tags[s]
                        for w, tok in self.lines[pid].get(block, {}).items():
                            mem[block * wpl + w] = tok
        return mem
