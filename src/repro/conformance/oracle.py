"""Sequential reference oracle: interpret a conformance program.

The interpreter executes a :class:`~repro.conformance.program.ProgramSpec`
under *one* legal synchronization schedule (cooperative round-robin,
FIFO locks, sticky flags, all-arrive barriers — the same semantics the
simulator's protocol base class implements) and produces:

* the expected final memory image (``word -> token``), where a token is
  ``(pid << 32) | k`` for processor ``pid``'s ``k``-th dynamic write in
  program order — exactly the tokens the runtime value model assigns,
  so the two are directly comparable;
* per-processor operation counts (reads/writes/acquires/releases/
  barriers at the same granularity as :class:`repro.stats.counters.ProcStats`),
  a protocol-independent invariant of the program;
* a happens-before **race check** via vector clocks.  For programs that
  are data-race-free the final memory image is schedule-independent
  (the classic DRF theorem), so checking one schedule suffices — and a
  reported race means the *generator or minimizer* produced an invalid
  program, which would poison the differential oracle.

The interpreter also detects synchronization deadlock (a wait on a flag
nobody sets, a barrier not reached by every processor), which the
minimizer uses to discard structurally invalid reduction candidates.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.conformance.program import ProgramSpec, expand_accesses

#: Count keys, matching ProcStats semantics (SET_FLAG counts as a
#: release, WAIT_FLAG as an acquire; fences and computes count nothing).
COUNT_KEYS = ("reads", "writes", "acquires", "releases", "barriers")

_MAX_RACES = 10


def token(pid: int, k: int) -> int:
    return (pid << 32) | k


def token_str(tok: Optional[int]) -> str:
    if tok is None:
        return "uninit"
    return f"p{tok >> 32}#w{tok & 0xFFFFFFFF}"


@dataclass
class OracleResult:
    final: Dict[int, int] = field(default_factory=dict)
    counts: List[Dict[str, int]] = field(default_factory=list)
    races: List[str] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.races and self.error is None


def _join(a: List[int], b: List[int]) -> None:
    for i, v in enumerate(b):
        if v > a[i]:
            a[i] = v


def interpret(spec: ProgramSpec, chunk: int = 256) -> OracleResult:
    P = spec.n_procs
    res = OracleResult(counts=[{k: 0 for k in COUNT_KEYS} for _ in range(P)])

    ops = [spec.proc_ops(p) for p in range(P)]
    ip = [0] * P
    # Each processor's own component starts at 1, not 0: accesses in p's
    # first epoch are stamped clock[p][p] and others know 0 of p, and
    # "0 < stamp" must already read as concurrent.
    clock = [[1 if q == p else 0 for q in range(P)] for p in range(P)]
    wcount = [0] * P
    blocked: List[Optional[tuple]] = [None] * P

    mem: Dict[int, int] = {}
    last_write: Dict[int, tuple] = {}       # word -> (pid, clk)
    last_reads: Dict[int, Dict[int, int]] = {}  # word -> {pid: clk}

    locks: Dict[int, dict] = {}
    flags: Dict[int, dict] = {}
    barriers: Dict[int, dict] = {}

    def race(msg: str) -> None:
        if len(res.races) < _MAX_RACES:
            res.races.append(msg)

    def do_read(p: int, w: int) -> None:
        lw = last_write.get(w)
        if lw is not None and clock[p][lw[0]] < lw[1]:
            race(f"read-write race on word {w}: p{p} reads concurrently "
                 f"with p{lw[0]}'s write")
        last_reads.setdefault(w, {})[p] = clock[p][p]
        res.counts[p]["reads"] += 1

    def do_write(p: int, w: int) -> None:
        lw = last_write.get(w)
        if lw is not None and lw[0] != p and clock[p][lw[0]] < lw[1]:
            race(f"write-write race on word {w}: p{p} and p{lw[0]}")
        for q, k in last_reads.get(w, {}).items():
            if q != p and clock[p][q] < k:
                race(f"write-read race on word {w}: p{p} writes concurrently "
                     f"with p{q}'s read")
        mem[w] = token(p, wcount[p])
        wcount[p] += 1
        last_write[w] = (p, clock[p][p])
        last_reads.pop(w, None)
        res.counts[p]["writes"] += 1

    def step(p: int) -> bool:
        """Execute one abstract op for ``p``; False if it blocked."""
        op = ops[p][ip[p]]
        kind = op[0]
        if kind in ("read", "write", "read_run", "write_run", "rw_run"):
            for is_w, w in expand_accesses(op):
                if is_w:
                    do_write(p, w)
                else:
                    do_read(p, w)
        elif kind == "compute" or kind == "fence":
            pass
        elif kind == "acquire":
            st = locks.setdefault(op[1], {"held": None, "queue": deque(),
                                          "vc": [0] * P})
            if st["held"] is not None:
                st["queue"].append(p)
                blocked[p] = ("lock", op[1])
                return False
            st["held"] = p
            _join(clock[p], st["vc"])
            res.counts[p]["acquires"] += 1
        elif kind == "release":
            st = locks.get(op[1])
            if st is None or st["held"] != p:
                res.error = f"p{p} releases lock {op[1]} it does not hold"
                return False
            st["vc"] = list(clock[p])
            clock[p][p] += 1
            res.counts[p]["releases"] += 1
            if st["queue"]:
                q = st["queue"].popleft()
                st["held"] = q
                _join(clock[q], st["vc"])
                res.counts[q]["acquires"] += 1
                ip[q] += 1  # past its blocked acquire
                blocked[q] = None
            else:
                st["held"] = None
        elif kind == "set_flag":
            st = flags.setdefault(op[1], {"set": False, "vc": [0] * P,
                                          "waiters": []})
            _join(st["vc"], clock[p])
            st["set"] = True
            clock[p][p] += 1
            res.counts[p]["releases"] += 1
            for q in st["waiters"]:
                _join(clock[q], st["vc"])
                res.counts[q]["acquires"] += 1
                ip[q] += 1
                blocked[q] = None
            st["waiters"] = []
        elif kind == "wait_flag":
            st = flags.setdefault(op[1], {"set": False, "vc": [0] * P,
                                          "waiters": []})
            if not st["set"]:
                st["waiters"].append(p)
                blocked[p] = ("flag", op[1])
                return False
            _join(clock[p], st["vc"])
            res.counts[p]["acquires"] += 1
        elif kind == "barrier":
            st = barriers.setdefault(op[1], {"arrived": []})
            st["arrived"].append(p)
            blocked[p] = ("barrier", op[1])
            if len(st["arrived"]) == P:
                joined = [0] * P
                for q in st["arrived"]:
                    _join(joined, clock[q])
                for q in st["arrived"]:
                    clock[q] = list(joined)
                    clock[q][q] += 1
                    res.counts[q]["barriers"] += 1
                    ip[q] += 1
                    blocked[q] = None
                del barriers[op[1]]
            return False
        else:
            res.error = f"unknown abstract op {op!r}"
            return False
        ip[p] += 1
        return True

    # Progress = any instruction pointer advanced during a full pass
    # (wakes advance the woken processor's ip, so they count too).
    while True:
        before = sum(ip)
        for p in range(P):
            if blocked[p] is not None or ip[p] >= len(ops[p]):
                continue
            budget = chunk
            while budget and ip[p] < len(ops[p]) and blocked[p] is None:
                if res.error:
                    return res
                if not step(p):
                    break
                budget -= 1
        if sum(ip) == before:
            break

    stuck = [(p, blocked[p]) for p in range(P) if ip[p] < len(ops[p])]
    if stuck:
        res.error = f"synchronization deadlock: {stuck[:4]}"
        return res
    res.final = mem
    return res
