"""Serializable conformance programs.

A conformance program is a *unit list*: each :class:`Unit` maps a subset
of processors to a short list of abstract ops.  Per-processor reference
streams are the concatenation of each unit's ops in unit order, so a
unit is both the generator's building block (one critical-section round,
one barrier column, one producer/consumer link) and the minimizer's
atom: dropping a unit drops a *matched* group of operations (an
acquire/release pair, every arrival of a barrier, a flag's set *and*
wait), which keeps delta-debugging candidates synchronization-complete.

Abstract ops address a flat array of 8-byte words (`word index`, not
byte address); :func:`materialize` rebases them onto a machine segment
using the op encoding of :mod:`repro.program.ops`.  The same abstract
form drives the sequential oracle (:mod:`repro.conformance.oracle`), so
an op stream means exactly one thing to both the simulator and the
reference interpreter.

Abstract op forms (JSON-friendly lists)::

    ["read", w]                  ["write", w]
    ["read_run", w, count, stride]   (stride in words, >= 1)
    ["write_run", w, count, stride]  ["rw_run", w, count, stride]
    ["compute", cycles]          ["fence"]
    ["acquire", lock]            ["release", lock]
    ["barrier", bid]             ["set_flag", fid]   ["wait_flag", fid]
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, Sequence

from repro.program.ops import (
    ACQUIRE,
    BARRIER,
    COMPUTE,
    FENCE,
    READ,
    READ_RUN,
    RELEASE,
    RW_RUN,
    SET_FLAG,
    WAIT_FLAG,
    WRITE,
    WRITE_RUN,
)

#: Abstract opcode -> concrete opcode for ops taking a word address.
_ADDR_OPS = {"read": READ, "write": WRITE}
_RUN_OPS = {"read_run": READ_RUN, "write_run": WRITE_RUN, "rw_run": RW_RUN}
_SYNC_OPS = {
    "acquire": ACQUIRE,
    "release": RELEASE,
    "barrier": BARRIER,
    "set_flag": SET_FLAG,
    "wait_flag": WAIT_FLAG,
}

#: Ops that must never be dropped individually (only with their unit).
SYNC_KINDS = frozenset(_SYNC_OPS) | {"fence"}


class Unit:
    """One synchronization-complete group of per-processor op lists."""

    __slots__ = ("kind", "ops")

    def __init__(self, kind: str, ops: Dict[int, List[list]]) -> None:
        self.kind = kind
        self.ops = ops  # pid -> [abstract op, ...]

    def op_count(self) -> int:
        return sum(len(v) for v in self.ops.values())

    def to_dict(self) -> dict:
        return {"kind": self.kind, "ops": {str(p): v for p, v in self.ops.items()}}

    @classmethod
    def from_dict(cls, d: dict) -> "Unit":
        return cls(d["kind"], {int(p): [list(op) for op in v] for p, v in d["ops"].items()})

    def copy(self) -> "Unit":
        return Unit(self.kind, {p: [list(op) for op in v] for p, v in self.ops.items()})


class ProgramSpec:
    """A complete multi-processor conformance program."""

    __slots__ = ("n_procs", "n_words", "seed", "mode", "units")

    def __init__(
        self,
        n_procs: int,
        n_words: int,
        units: Sequence[Unit],
        seed: int = 0,
        mode: str = "mixed",
    ) -> None:
        self.n_procs = n_procs
        self.n_words = n_words
        self.units = list(units)
        self.seed = seed
        self.mode = mode

    # -- views ------------------------------------------------------------------

    def proc_ops(self, pid: int) -> List[list]:
        """The abstract op stream of processor ``pid``."""
        out: List[list] = []
        for u in self.units:
            out.extend(u.ops.get(pid, ()))
        return out

    def op_count(self) -> int:
        """Total abstract ops across all processors."""
        return sum(u.op_count() for u in self.units)

    # -- serialization ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "n_procs": self.n_procs,
            "n_words": self.n_words,
            "seed": self.seed,
            "mode": self.mode,
            "units": [u.to_dict() for u in self.units],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ProgramSpec":
        return cls(
            n_procs=d["n_procs"],
            n_words=d["n_words"],
            units=[Unit.from_dict(u) for u in d["units"]],
            seed=d.get("seed", 0),
            mode=d.get("mode", "mixed"),
        )

    def to_json(self, **kw) -> str:
        return json.dumps(self.to_dict(), **kw)

    @classmethod
    def from_json(cls, s: str) -> "ProgramSpec":
        return cls.from_dict(json.loads(s))

    def copy(self) -> "ProgramSpec":
        return ProgramSpec(
            self.n_procs,
            self.n_words,
            [u.copy() for u in self.units],
            seed=self.seed,
            mode=self.mode,
        )


def materialize(
    abstract_ops: Sequence[list], base: int, word_size: int = 8
) -> Iterator[tuple]:
    """Translate abstract ops into :mod:`repro.program.ops` tuples."""
    for op in abstract_ops:
        kind = op[0]
        if kind in _ADDR_OPS:
            yield (_ADDR_OPS[kind], base + op[1] * word_size)
        elif kind in _RUN_OPS:
            yield (_RUN_OPS[kind], base + op[1] * word_size, op[2], op[3] * word_size)
        elif kind == "compute":
            yield (COMPUTE, op[1])
        elif kind == "fence":
            yield (FENCE,)
        elif kind in _SYNC_OPS:
            yield (_SYNC_OPS[kind], op[1])
        else:
            raise ValueError(f"unknown abstract op {op!r}")


def expand_accesses(op: list) -> Iterator[tuple]:
    """Yield ``(is_write, word)`` element accesses of one abstract op.

    Run ops expand element-by-element in execution order; an ``rw_run``
    element reads then writes, matching the simulator's CPU model.
    """
    kind = op[0]
    if kind == "read":
        yield (False, op[1])
    elif kind == "write":
        yield (True, op[1])
    elif kind in _RUN_OPS:
        _, base, count, stride = op
        w = base
        for _ in range(count):
            if kind != "write_run":
                yield (False, w)
            if kind != "read_run":
                yield (True, w)
            w += stride
