"""Differential conformance fuzzing across the four protocols.

One *iteration* generates a DRF program (pure function of the seed),
runs the sequential oracle, then executes the program under each
protocol on a small-cache machine with the invariant checker and the
value model enabled.  A protocol run fails if:

* the value model observes an impossible read (:class:`ConformanceViolation`),
* the invariant checker fires, the machine deadlocks, or the run
  exceeds the cycle ceiling,
* the final memory image disagrees with the oracle (RC == SC for DRF
  programs, so *every* protocol must produce the oracle's image),
* the per-processor operation counts disagree with the oracle (an op
  was lost or double-counted), or
* protocol-structural counters are impossible for the protocol family
  (a write-back under write-through LRC, an acquire-time invalidation
  under eager RC, ...).

On failure the harness re-runs the failing protocol with the tracer
attached to render a violation-anchored event window, delta-debugs the
program to a minimal reproducer (:mod:`repro.conformance.minimize`),
and serializes everything as JSON.

The clean path can fan iterations out over worker processes through the
standard :class:`~repro.harness.spec.ExperimentSpec` / ``run_parallel``
machinery (``jobs > 1``): ``REPRO_VALUE_CHECK=1`` makes
:meth:`ExperimentSpec.run` verify fuzz runs in-worker, and any failure
degrades to the sequential path for diagnosis and minimization.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.conformance.generator import generate
from repro.conformance.minimize import minimize
from repro.conformance.oracle import COUNT_KEYS, OracleResult, interpret, token_str
from repro.conformance.program import ProgramSpec
from repro.conformance.shadow import ConformanceViolation
from repro.protocols import all_names

PROTOCOLS_UNDER_TEST = all_names()

#: Cache size for fuzz machines: small enough that conformance programs
#: see real capacity/conflict evictions, still a power-of-two set count.
FUZZ_CACHE = 2048

#: Per-run cycle ceiling — a protocol bug that livelocks (lost wakeup,
#: re-fetch loop) fails the run instead of hanging the fuzzer.
FUZZ_MAX_CYCLES = 50_000_000


@dataclass
class FuzzFailure:
    """One protocol's failure on one generated program."""

    iteration: int
    seed: int
    protocol: str
    reason: str           # violation | invariant | stall | deadlock | oracle | structural
    message: str
    program: dict
    minimized: Optional[dict] = None
    trace_window: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "iteration": self.iteration,
            "seed": self.seed,
            "protocol": self.protocol,
            "reason": self.reason,
            "message": self.message,
            "program": self.program,
            "minimized": self.minimized,
            "trace_window": self.trace_window,
        }


def fuzz_config(n_procs: int, seed: int):
    from repro.harness.presets import bench_config

    return bench_config(n_procs=n_procs, cache_size=FUZZ_CACHE, seed=seed)


def build_machine(
    spec: ProgramSpec, protocol: str, trace: bool = False, faults=None
):
    """A fresh fuzz machine + context-built app for one program under one
    protocol.

    The app is built against its own recording context (not the
    machine), so the pair can execute under either engine: replay
    applies the app's allocation log to the pristine machine space;
    the generator path does the same before resuming generators."""
    from repro.apps import APPS
    from repro.apps.common import AppContext
    from repro.core.machine import Machine

    cfg = fuzz_config(spec.n_procs, spec.seed)
    machine = Machine(
        cfg,
        protocol=protocol,
        max_cycles=FUZZ_MAX_CYCLES,
        trace=trace,
        check_invariants=True,
        value_model=True,
        faults=faults,
    )
    app = APPS["fuzz"](AppContext(cfg), program=spec)
    return machine, app


def _execute(machine, app, spec: ProgramSpec) -> None:
    """Run one fuzz machine under the session's engine.

    Replay (the default) records each program's reference streams once —
    keyed by program content, memoized in-process — so the four
    protocol runs of an iteration share a single record phase."""
    from repro.harness.spec import resolve_engine

    if resolve_engine() == "replay":
        from repro.program.stream import recorded_stream

        stream = recorded_stream(
            "fuzz", {"program": spec}, fuzz_config(spec.n_procs, spec.seed)
        )
        machine.replay(stream)
    else:
        from repro.program.address_space import apply_alloc_log

        apply_alloc_log(machine.space, app.ctx.alloc_log)
        machine.run([app.program(p) for p in range(spec.n_procs)])


#: MessageStats counters summed into a fuzz campaign's traffic summary
#: (nonzero retransmits prove injected faults actually fired).
TRAFFIC_KEYS = (
    "retransmits", "dup_drops", "drops_injected", "dups_injected",
    "delays_injected",
)


def _accumulate_traffic(traffic_out, stats) -> None:
    for key in TRAFFIC_KEYS:
        traffic_out[key] = traffic_out.get(key, 0) + getattr(stats, key)


def structural_errors(machine) -> List[str]:
    """Counter values impossible for the machine's protocol family."""
    s = machine.stats
    name = machine.protocol_name
    errs = []
    if machine.protocol.timestamp_coherence:
        # Tardis has no sharer lists: notices, eager invalidations,
        # writebacks and deferral are all structurally impossible.
        if s.writebacks:
            errs.append(f"{name} performed {s.writebacks} dirty writebacks")
        if s.eager_invalidations:
            errs.append(f"{name} sent {s.eager_invalidations} eager invalidations")
        if s.notices_sent:
            errs.append(f"{name} sent {s.notices_sent} write notices")
        if s.deferred_notices:
            errs.append(f"{name} deferred {s.deferred_notices} write notices")
        if s.acquire_invalidations != s.lease_expirations:
            errs.append(
                f"{name} acquire invalidations ({s.acquire_invalidations}) "
                f"!= lease expirations ({s.lease_expirations})"
            )
        return errs
    if s.ts_bumps:
        errs.append(f"{name} bumped {s.ts_bumps} write timestamps")
    if s.lease_expirations:
        errs.append(f"{name} expired {s.lease_expirations} read leases")
    if machine.protocol.write_through:
        if s.writebacks:
            errs.append(f"{name} performed {s.writebacks} dirty writebacks")
        if s.eager_invalidations:
            errs.append(f"{name} sent {s.eager_invalidations} eager invalidations")
        if name != "lrc-ext" and s.deferred_notices:
            errs.append(f"{name} deferred {s.deferred_notices} write notices")
    else:
        if s.write_throughs:
            errs.append(f"{name} issued {s.write_throughs} write-throughs")
        if s.acquire_invalidations:
            errs.append(
                f"{name} invalidated {s.acquire_invalidations} lines at acquires"
            )
        if s.deferred_notices:
            errs.append(f"{name} deferred {s.deferred_notices} write notices")
    return errs


def verify_run(machine, app, oracle: Optional[OracleResult] = None) -> None:
    """End-of-run oracle comparison; raises :class:`ConformanceViolation`.

    Called after a clean ``machine.run`` (the final global barrier has
    drained every buffer).  Checks final memory, the call-order shadow,
    per-processor op counts, and the structural counters.
    """
    spec = app.spec
    if oracle is None:
        oracle = interpret(spec)
    if not oracle.ok:
        raise RuntimeError(
            f"oracle rejected the program (generator/minimizer bug): "
            f"races={oracle.races[:3]} error={oracle.error}"
        )
    vm = machine.valmodel
    base_word = app.seg.base // 8
    errs: List[str] = []

    mem = vm.final_memory()
    for w in sorted(oracle.final):
        got = mem.get(base_word + w)
        want = oracle.final[w]
        if got != want:
            errs.append(
                f"final memory word {w}: machine {token_str(got)}, "
                f"oracle {token_str(want)}"
            )
            if len(errs) >= 8:
                break
    if not errs:
        # The call-order shadow must also match: a divergence here means
        # the simulator realized an hb-inconsistent schedule.
        for w in sorted(oracle.final):
            got = vm.shadow.get(base_word + w)
            want = oracle.final[w]
            if got != want:
                errs.append(
                    f"shadow word {w}: {token_str(got)} != oracle "
                    f"{token_str(want)} (schedule divergence)"
                )
                if len(errs) >= 8:
                    break

    for p, want in enumerate(oracle.counts):
        st = machine.stats.procs[p]
        got = {k: getattr(st, k) for k in COUNT_KEYS}
        if got != want:
            errs.append(f"p{p} op counts {got} != oracle {want}")

    errs.extend(structural_errors(machine))
    if errs:
        raise ConformanceViolation("; ".join(errs[:8]))


def run_one(
    spec: ProgramSpec,
    protocol: str,
    oracle: Optional[OracleResult] = None,
    trace: bool = False,
    faults=None,
    traffic_out: Optional[Dict[str, int]] = None,
):
    """Run one program under one protocol (optionally under faults).

    Returns ``(reason, message, machine)`` on failure, or ``None`` on a
    clean, oracle-agreeing run.  The oracle comparison is unchanged
    under faults: the reliable-delivery layer hands the protocol
    exactly-once, per-channel-ordered messages, so committed ops, final
    memory, and the structural counters must all still match — only
    timing (and the recovery traffic accumulated into ``traffic_out``)
    differs.
    """
    from repro.engine.simulator import DeadlockError
    from repro.faults.watchdog import SimulationStall
    from repro.trace.invariants import InvariantViolation

    machine, app = build_machine(spec, protocol, trace=trace, faults=faults)
    try:
        try:
            _execute(machine, app, spec)
        except ConformanceViolation as e:
            return ("violation", str(e), machine)
        except InvariantViolation as e:
            return ("invariant", str(e), machine)
        except SimulationStall as e:
            return ("stall", str(e), machine)
        except DeadlockError as e:
            return ("deadlock", str(e), machine)
        except RuntimeError as e:
            return ("deadlock", f"cycle ceiling: {e}", machine)
        try:
            verify_run(machine, app, oracle)
        except ConformanceViolation as e:
            return ("oracle", str(e), machine)
        return None
    finally:
        if traffic_out is not None:
            _accumulate_traffic(traffic_out, machine.fabric.stats)


def _trace_window(
    spec: ProgramSpec, protocol: str, window: int, faults=None
) -> List[str]:
    """Re-run a failing combination with the tracer for context lines."""
    failure = run_one(spec, protocol, trace=True, faults=faults)
    if failure is None:
        return []
    machine = failure[2]
    tracer = machine.tracer
    if tracer is None:
        return []
    violations = tracer.events(kind="violation")
    if violations:
        anchor = violations[0][0]
        lines = [
            tracer.format_event(e)
            for e in tracer.window(anchor, before=window, after=window)
        ]
    else:
        lines = [tracer.format_event(e) for e in tracer.tail(window)]
    return lines


def make_fail_predicate(protocol: str, faults=None) -> Callable[[ProgramSpec], bool]:
    """The minimizer's test: does the protocol still fail this program?"""

    def fails(candidate: ProgramSpec) -> bool:
        return run_one(candidate, protocol, faults=faults) is not None

    return fails


def fuzz_iteration(
    iteration: int,
    seed: int,
    n_procs: int,
    n_ops: int,
    protocols: Sequence[str],
    mode: str = "auto",
    do_minimize: bool = True,
    window: int = 12,
    faults=None,
    traffic_out: Optional[Dict[str, int]] = None,
) -> List[FuzzFailure]:
    """Generate one program and run it under every protocol."""
    spec = generate(seed, n_procs, n_ops=n_ops, mode=mode)
    oracle = interpret(spec)
    if not oracle.ok:
        raise RuntimeError(
            f"seed {seed}: generator produced an invalid program: "
            f"races={oracle.races[:3]} error={oracle.error}"
        )
    failures = []
    for protocol in protocols:
        failure = run_one(
            spec, protocol, oracle, faults=faults, traffic_out=traffic_out
        )
        if failure is None:
            continue
        reason, message, _machine = failure
        f = FuzzFailure(
            iteration=iteration,
            seed=seed,
            protocol=protocol,
            reason=reason,
            message=message,
            program=spec.to_dict(),
            trace_window=_trace_window(spec, protocol, window, faults=faults),
        )
        if do_minimize:
            small = minimize(spec, make_fail_predicate(protocol, faults=faults))
            f.minimized = small.to_dict()
        failures.append(f)
    return failures


def _parallel_clean_scan(
    seeds: List[int],
    n_procs: int,
    protocols: Sequence[str],
    jobs: int,
    faults=None,
    traffic_out: Optional[Dict[str, int]] = None,
) -> Optional[List[int]]:
    """Try to clear many iterations at once across worker processes.

    Returns the list of seeds that verified clean, or ``None`` if any
    worker failed (the caller falls back to the sequential path, which
    diagnoses and minimizes).  Workers verify in-process via
    ``REPRO_VALUE_CHECK`` (see :meth:`ExperimentSpec.run`).
    """
    from repro.harness.runner import ExperimentError, run_parallel
    from repro.harness.spec import ExperimentSpec

    specs = [
        ExperimentSpec(
            app="fuzz",
            protocol=protocol,
            n_procs=n_procs,
            overrides=(("seed", seed), ("cache_size", FUZZ_CACHE)),
            faults=faults,
            check_invariants=True,
        )
        for seed in seeds
        for protocol in protocols
    ]
    prev = os.environ.get("REPRO_VALUE_CHECK")
    os.environ["REPRO_VALUE_CHECK"] = "1"
    try:
        results = run_parallel(specs, jobs=jobs, store=None, retries=0)
    except ExperimentError:
        return None
    finally:
        if prev is None:
            del os.environ["REPRO_VALUE_CHECK"]
        else:
            os.environ["REPRO_VALUE_CHECK"] = prev
    if traffic_out is not None:
        for result in results.values():
            _accumulate_traffic(traffic_out, result.traffic)
    return seeds


def _add_traffic(total: Dict[str, int], delta: Optional[Dict[str, int]]) -> None:
    for key in TRAFFIC_KEYS:
        total[key] = total.get(key, 0) + (delta or {}).get(key, 0)


def fuzz_run(
    seed: int = 0,
    iters: int = 50,
    n_procs: int = 8,
    n_ops: int = 120,
    protocols: Sequence[str] = PROTOCOLS_UNDER_TEST,
    mode: str = "auto",
    do_minimize: bool = True,
    jobs: int = 1,
    window: int = 12,
    faults=None,
    log: Optional[Callable[[str], None]] = None,
    journal=None,
) -> Dict:
    """The ``repro fuzz`` campaign: ``iters`` programs, each under every
    protocol.  Returns a summary dict; ``summary["failures"]`` is empty
    iff every run agreed with the oracle.

    ``faults`` (a :class:`~repro.faults.plan.FaultPlan`, dict, or CLI
    string) subjects every run to seeded fault injection; the oracle
    comparison is unchanged, and ``summary["traffic"]`` reports the
    recovery counters (nonzero retransmits prove faults fired).

    ``journal`` (a :class:`~repro.results.journal.CampaignJournal`)
    makes the campaign resumable: every iteration's outcome is written
    ahead under cell ``iter-<seed>``, and iterations already journaled
    ``done`` are skipped on a later invocation with their failures and
    traffic reused verbatim — the summary is bit-identical to an
    uninterrupted run, because each iteration is a pure function of its
    seed.
    """
    from repro.faults.plan import FaultPlan

    say = log or (lambda s: None)
    faults = FaultPlan.coerce(faults)
    traffic: Dict[str, int] = {k: 0 for k in TRAFFIC_KEYS}
    seeds = [seed + i for i in range(iters)]
    failures: List[dict] = []

    # Journaled outcomes from an interrupted earlier invocation: a plain
    # per-iteration cell carries that iteration's failures and traffic; a
    # ``scan-*`` chunk cell carries the aggregate traffic of one parallel
    # clean scan (per-seed cells from a scan record traffic ``None``).
    prior: Dict[int, dict] = {}
    scan_traffic: Dict[str, int] = {k: 0 for k in TRAFFIC_KEYS}
    if journal is not None:
        for cell, entry in journal.completed().items():
            if entry["op"] != "done":
                continue
            if cell.startswith("scan-"):
                _add_traffic(scan_traffic, entry["data"].get("traffic"))
            elif cell.startswith("iter-"):
                prior[int(cell[len("iter-"):])] = entry["data"]
        prior = {s: d for s, d in prior.items() if s in set(seeds)}
        if prior:
            say(f"resume: {len(prior)}/{iters} iterations journaled; "
                f"running the remaining {iters - len(prior)}")
    remaining = [s for s in seeds if s not in prior]
    prior_failed = any(d["failures"] for d in prior.values())

    if jobs > 1:
        # Workers regenerate programs from the "fuzz" app preset, so the
        # parallel scan is only equivalent to the sequential path when
        # the campaign uses the preset generation parameters.
        from repro.harness.presets import APP_PRESETS

        preset = APP_PRESETS["fuzz"]
        if n_ops != preset["n_ops"] or mode != preset["mode"]:
            say("non-default n_ops/mode: running sequentially")
            jobs = 1

    if jobs > 1 and remaining and not prior_failed:
        cleared = _parallel_clean_scan(
            remaining, n_procs, protocols, jobs, faults=faults,
            traffic_out=traffic,
        )
        if cleared is not None:
            if journal is not None:
                journal.done(
                    f"scan-{remaining[0]}-{remaining[-1]}",
                    {"seeds": list(cleared), "traffic": dict(traffic)},
                )
                for s in cleared:
                    journal.done(f"iter-{s}", {"failures": [], "traffic": None})
            _add_traffic(traffic, scan_traffic)
            for data in prior.values():
                _add_traffic(traffic, data.get("traffic"))
            say(f"{len(remaining)} iterations x {len(protocols)} protocols "
                f"clean (parallel, {jobs} jobs)")
            return {"iters": iters, "protocols": list(protocols),
                    "n_procs": n_procs, "failures": [], "traffic": traffic}
        say("parallel scan reported a failure; rerunning sequentially")
        traffic = {k: 0 for k in TRAFFIC_KEYS}

    _add_traffic(traffic, scan_traffic)
    for i, it_seed in enumerate(seeds):
        if it_seed in prior:
            data = prior[it_seed]
            failures.extend(data["failures"])
            _add_traffic(traffic, data.get("traffic"))
            continue
        cell = f"iter-{it_seed}"
        if journal is not None:
            journal.start(cell)
        it_traffic: Dict[str, int] = {k: 0 for k in TRAFFIC_KEYS}
        fs = fuzz_iteration(
            i, it_seed, n_procs, n_ops, protocols,
            mode=mode, do_minimize=do_minimize, window=window,
            faults=faults, traffic_out=it_traffic,
        )
        _add_traffic(traffic, it_traffic)
        fs_dicts = [f.to_dict() for f in fs]
        if journal is not None:
            journal.done(cell, {"failures": fs_dicts, "traffic": it_traffic})
        if fs:
            failures.extend(fs_dicts)
            for f in fs:
                mini = f.minimized
                say(
                    f"iteration {i} (seed {it_seed}) {f.protocol}: "
                    f"{f.reason}: {f.message}"
                    + (
                        f" [minimized to "
                        f"{ProgramSpec.from_dict(mini).op_count()} ops]"
                        if mini else ""
                    )
                )
        elif (i + 1) % 10 == 0:
            say(f"{i + 1}/{iters} iterations clean")
    return {
        "iters": iters,
        "protocols": list(protocols),
        "n_procs": n_procs,
        "failures": failures,
        "traffic": traffic,
    }


def write_reproducers(summary: Dict, path: str) -> None:
    """Serialize a failing campaign's reproducers as JSON."""
    with open(path, "w") as fh:
        json.dump(summary, fh, indent=2)
        fh.write("\n")


def replay_reproducer(
    path: str,
    window: int = 12,
    log: Optional[Callable[[str], None]] = None,
) -> int:
    """Re-run every reproducer in a fuzz JSON report.

    Prefers the minimized program when present.  Returns a process exit
    code: 1 if any reproducer still fails, 0 if all run clean (the bug
    was fixed since the report was written).
    """
    say = log or (lambda s: None)
    with open(path) as fh:
        summary = json.load(fh)
    failures = summary.get("failures", [])
    if not failures:
        say(f"{path}: no reproducers recorded")
        return 0
    still_failing = 0
    for i, f in enumerate(failures):
        spec = ProgramSpec.from_dict(f.get("minimized") or f["program"])
        oracle = interpret(spec)
        if not oracle.ok:
            say(f"reproducer {i}: oracle rejects the program: {oracle.error}")
            still_failing += 1
            continue
        outcome = run_one(spec, f["protocol"], oracle)
        if outcome is None:
            say(f"reproducer {i} ({f['protocol']}, {spec.op_count()} ops): clean")
            continue
        still_failing += 1
        reason, message, _machine = outcome
        say(f"reproducer {i} ({f['protocol']}, {spec.op_count()} ops) "
            f"STILL FAILS: {reason}: {message}")
        for line in _trace_window(spec, f["protocol"], window):
            say(f"    {line}")
    say(f"{still_failing}/{len(failures)} reproducers still failing")
    return 1 if still_failing else 0
