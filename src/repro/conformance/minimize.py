"""Failure minimization for conformance programs.

Given a failing :class:`~repro.conformance.program.ProgramSpec` and a
predicate ``fails(spec) -> bool`` (the differential harness re-run on
the candidate), shrink the program while preserving the failure:

1. **Unit-level ddmin** — classic delta debugging over the unit list.
   Units are synchronization-complete (an acquire with its release, all
   arrivals of a barrier, a flag's set and wait), so removing units
   keeps candidates structurally plausible.
2. **Op-level greedy pass** — drop individual data ops (reads, writes,
   runs, computes) inside surviving units; sync ops are never removed
   individually (:data:`~repro.conformance.program.SYNC_KINDS`), only
   with their whole unit.  Runs are additionally shrunk to shorter
   counts before being dropped outright.
3. **Processor shrink** — processors left with no data ops (only
   barrier arrivals) are removed, the remaining pids renumbered
   densely, and ``n_procs`` reduced, so the reproducer runs on the
   smallest machine that still fails.

Every candidate is first validated with the sequential oracle: a
reduction that introduces a deadlock (dropping a ``set_flag`` whose
``wait_flag`` survives in the same unit), a data race, or a lock misuse
is skipped — the minimized program stays a *valid* DRF program whose
failure is the protocol's fault, not the reducer's.
"""

from __future__ import annotations

from typing import Callable, List

from repro.conformance.oracle import interpret
from repro.conformance.program import ProgramSpec, SYNC_KINDS, Unit


def _valid(spec: ProgramSpec) -> bool:
    if not spec.units:
        return False
    # The final-memory comparison is only licensed after a closing
    # all-processor barrier (release semantics drain every write
    # buffer); a candidate that drops it would "fail" on buffered
    # writes the protocol was never obliged to propagate.
    last = spec.units[-1]
    if last.kind != "barrier" or len(last.ops) != spec.n_procs:
        return False
    return interpret(spec).ok


def _with_units(spec: ProgramSpec, units: List[Unit]) -> ProgramSpec:
    out = spec.copy()
    out.units = [u.copy() for u in units]
    return out


def _ddmin_units(
    spec: ProgramSpec, fails: Callable[[ProgramSpec], bool]
) -> ProgramSpec:
    units = list(spec.units)
    n = 2
    while len(units) >= 2:
        chunk = max(1, len(units) // n)
        reduced = False
        start = 0
        while start < len(units):
            candidate = units[:start] + units[start + chunk:]
            cspec = _with_units(spec, candidate)
            if _valid(cspec) and fails(cspec):
                units = candidate
                n = max(n - 1, 2)
                reduced = True
                # Restart scanning the shrunk list from the beginning.
                start = 0
                continue
            start += chunk
        if not reduced:
            if chunk == 1:
                break
            n = min(len(units), n * 2)
    return _with_units(spec, units)


def _shrink_ops(
    spec: ProgramSpec, fails: Callable[[ProgramSpec], bool]
) -> ProgramSpec:
    cur = spec
    changed = True
    while changed:
        changed = False
        for ui, unit in enumerate(cur.units):
            for pid in list(unit.ops):
                oplist = unit.ops[pid]
                oi = 0
                while oi < len(oplist):
                    op = oplist[oi]
                    if op[0] in SYNC_KINDS:
                        oi += 1
                        continue
                    cand = cur.copy()
                    del cand.units[ui].ops[pid][oi]
                    if not cand.units[ui].ops[pid]:
                        del cand.units[ui].ops[pid]
                    if _valid(cand) and fails(cand):
                        cur = cand
                        unit = cur.units[ui]
                        oplist = unit.ops.get(pid, [])
                        changed = True
                        continue
                    if op[0] in ("read_run", "write_run", "rw_run") and op[2] > 1:
                        cand = cur.copy()
                        half = cand.units[ui].ops[pid][oi]
                        half[2] = max(1, half[2] // 2)
                        if _valid(cand) and fails(cand):
                            cur = cand
                            unit = cur.units[ui]
                            oplist = unit.ops[pid]
                            changed = True
                            continue
                    oi += 1
    # Discard units emptied by the op pass.
    units = [u for u in cur.units if any(u.ops.values())]
    if len(units) != len(cur.units):
        cand = _with_units(cur, units)
        if _valid(cand) and fails(cand):
            cur = cand
    return cur


def _only_barriers(spec: ProgramSpec, pid: int) -> bool:
    for op in spec.proc_ops(pid):
        if op[0] != "barrier":
            return False
    return True


def _drop_proc(spec: ProgramSpec, pid: int) -> ProgramSpec:
    out = spec.copy()
    out.n_procs = spec.n_procs - 1
    units: List[Unit] = []
    for u in out.units:
        ops = {}
        for p, v in u.ops.items():
            if p == pid:
                continue
            ops[p - 1 if p > pid else p] = v
        if ops:
            units.append(Unit(u.kind, ops))
    out.units = units
    return out


def _shrink_procs(
    spec: ProgramSpec, fails: Callable[[ProgramSpec], bool]
) -> ProgramSpec:
    cur = spec
    pid = cur.n_procs - 1
    while pid >= 0 and cur.n_procs > 2:
        if _only_barriers(cur, pid):
            cand = _drop_proc(cur, pid)
            if _valid(cand) and fails(cand):
                cur = cand
        pid -= 1
    return cur


def minimize(
    spec: ProgramSpec, fails: Callable[[ProgramSpec], bool]
) -> ProgramSpec:
    """Shrink ``spec`` to a (1-)minimal program for which ``fails`` holds.

    ``fails`` must return True for ``spec`` itself; the result is the
    smallest program found that is still a valid DRF program (per the
    sequential oracle) and still fails.
    """
    if not fails(spec):
        raise ValueError("minimize() called with a spec the predicate passes")
    cur = _ddmin_units(spec, fails)
    cur = _shrink_ops(cur, fails)
    cur = _shrink_procs(cur, fails)
    return cur
