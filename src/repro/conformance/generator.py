"""Seeded generator of data-race-free conformance programs.

The generator composes *episodes* — synchronization-complete program
fragments — into a :class:`~repro.conformance.program.ProgramSpec`.
Every episode is built so the whole program is data-race-free by
construction, which is what licenses the differential oracle (for DRF
programs, release consistency must produce the same values as
sequential consistency — Section 2 of the paper):

* **init**: processor 0 writes every shared word, then a global barrier
  — every later read observes a well-defined value;
* **private bursts**: each processor reads/writes its own scratch range
  (still coherent memory: exercises capacity/conflict evictions) and
  reads the read-only region written at init;
* **lock rounds**: a random subset of processors acquires a lock and
  reads/writes the lock's region inside the critical section; each word
  of the region has a *fixed* writer (cyclic by pid), so writes to a
  word are totally ordered by the lock and the final value is
  schedule-independent — while the *blocks* are multi-writer (false
  sharing), exercising the lazy protocols' multiple-writer machinery;
* **flag chains**: a sequence of processors linked by flag set/wait
  pairs; every processor may read *and write* any word of the chain's
  region (true multi-writer data), because the chain forces a unique
  total order — this is the paper's migratory-sharing pattern;
* **barrier phases**: double-buffered halves — in each round every
  processor writes its cyclic share of one half and reads the other
  half (written in the previous round, on the far side of a barrier);
* **fan-out**: one publisher writes a region then sets a single flag;
  several subscribers wait on that flag and read the region — the
  pub/sub sharing pattern of the service workloads (one release
  observed by many acquirers);
* **hot locks**: lock rounds where the lock is chosen with a zipfian
  skew, concentrating contention on one or two "hot shard" locks the
  way service key traffic does.

The ``service`` mode composes mostly fan-out and hot-lock episodes.

Regions that admit multiple writers (chain regions) are recycled only
after an intervening global barrier, so accesses from different
episodes never race.  The program always ends with a global barrier,
which drains every write buffer and coalescing buffer — the final
memory image is well-defined and comparable across protocols.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.conformance.program import ProgramSpec, Unit

#: Episode weights for the "mixed" mode.
_MIX = (
    ("private", 0.20),
    ("lock", 0.28),
    ("chain", 0.18),
    ("phase", 0.14),
    ("fanout", 0.10),
    ("barrier", 0.10),
)

#: Episode weights for the "service" mode (internet-service sharing:
#: pub/sub fan-out plus zipf-skewed lock contention).
_SERVICE_MIX = (
    ("fanout", 0.35),
    ("hotlock", 0.35),
    ("private", 0.15),
    ("phase", 0.10),
    ("barrier", 0.05),
)

_AUTO_MODES = (
    "mixed", "mixed", "mixed", "migratory", "phases", "producer", "service",
)

#: Modes accepted by :func:`generate` (and the ``fuzz --mode`` CLI).
MODES = ("auto", "mixed", "migratory", "phases", "producer", "service")


class _Layout:
    """Word-index regions of the shared array."""

    def __init__(self, n_procs: int, wpl: int) -> None:
        cursor = 0

        def take(n: int) -> Tuple[int, int]:
            nonlocal cursor
            lo = cursor
            cursor += n
            return (lo, cursor)

        self.ro = take(2 * wpl)
        self.priv = [take(2 * wpl) for _ in range(n_procs)]
        self.n_locks = max(2, min(8, n_procs // 2))
        # Shared regions hold at least 2 words per processor so cyclic
        # per-word ownership is never empty at any machine size.
        lock_sz = max(2 * wpl, 2 * n_procs)
        half_sz = max(4 * wpl, 2 * n_procs)
        self.lock_regions = [take(lock_sz) for _ in range(self.n_locks)]
        self.halves = (take(half_sz), take(half_sz))
        self.chains = [take(2 * wpl) for _ in range(3)]
        self.n_words = cursor


class _Gen:
    def __init__(self, seed: int, n_procs: int, n_ops: int, mode: str, wpl: int):
        self.rng = random.Random(seed)
        self.P = n_procs
        self.n_ops = n_ops
        self.wpl = wpl
        self.lay = _Layout(n_procs, wpl)
        self.units: List[Unit] = []
        self._next_barrier = 0
        self._next_flag = 0
        self._chain_rr = 0
        self._dirty_chains: set = set()
        self.mode = mode

    # -- id/bookkeeping helpers -------------------------------------------------

    def _bid(self) -> int:
        self._next_barrier += 1
        return self._next_barrier - 1

    def _fid(self) -> int:
        self._next_flag += 1
        return self._next_flag - 1

    def barrier_unit(self) -> None:
        bid = self._bid()
        self.units.append(
            Unit("barrier", {p: [["barrier", bid]] for p in range(self.P)})
        )
        self._dirty_chains.clear()

    def _pick_chain_region(self) -> Tuple[int, int]:
        idx = self._chain_rr % len(self.lay.chains)
        self._chain_rr += 1
        if idx in self._dirty_chains:
            # The region was written since the last global barrier by a
            # previous chain; a barrier restores the cross-episode
            # happens-before edge before it is reused.
            self.barrier_unit()
        self._dirty_chains.add(idx)
        return self.lay.chains[idx]

    # -- episodes ---------------------------------------------------------------

    def init_episode(self) -> None:
        self.units.append(
            Unit("init", {0: [["write_run", 0, self.lay.n_words, 1]]})
        )
        self.barrier_unit()

    def private_episode(self) -> None:
        rng = self.rng
        ops: Dict[int, List[list]] = {}
        for p in range(self.P):
            lo, hi = self.lay.priv[p]
            plist: List[list] = []
            for _ in range(rng.randint(3, 8)):
                r = rng.random()
                if r < 0.30:
                    plist.append(["write", rng.randrange(lo, hi)])
                elif r < 0.55:
                    plist.append(["read", rng.randrange(lo, hi)])
                elif r < 0.70:
                    count = rng.randint(2, min(12, hi - lo))
                    stride = rng.randint(1, 2)
                    base = rng.randrange(lo, hi - (count - 1) * stride)
                    kind = rng.choice(["read_run", "write_run", "rw_run"])
                    plist.append([kind, base, count, stride])
                elif r < 0.85:
                    plist.append(["read", rng.randrange(*self.lay.ro)])
                elif r < 0.95:
                    plist.append(["compute", rng.randint(5, 40)])
                else:
                    plist.append(["fence"])
            ops[p] = plist
        self.units.append(Unit("private", ops))

    def lock_episode(self, k=None) -> None:
        rng = self.rng
        if k is None:
            k = rng.randrange(self.lay.n_locks)
        lo, hi = self.lay.lock_regions[k]
        subset = rng.sample(range(self.P), rng.randint(2, self.P))
        for _round in range(rng.randint(1, 2)):
            ops: Dict[int, List[list]] = {}
            for p in subset:
                # Words with (w - lo) % P == p are p's to write; reads may
                # touch anything in the region (ordered by the lock).
                own = range(lo + p % self.P, hi, self.P)
                body: List[list] = [["acquire", k]]
                for _ in range(rng.randint(1, 3)):
                    body.append(["write", rng.choice(list(own))])
                for _ in range(rng.randint(0, 3)):
                    body.append(["read", rng.randrange(lo, hi)])
                rng.shuffle(body[1:])  # keep the acquire first
                body.append(["release", k])
                ops[p] = body
            self.units.append(Unit(f"lock{k}", ops))

    def chain_episode(self, procs_seq=None, accesses=(1, 3)) -> None:
        """A flag-linked chain; each link is one unit."""
        rng = self.rng
        lo, hi = self._pick_chain_region()
        if procs_seq is None:
            procs_seq = rng.sample(range(self.P), rng.randint(2, self.P))
        flags = [self._fid() for _ in range(len(procs_seq) - 1)]
        for i, p in enumerate(procs_seq):
            body: List[list] = []
            if i > 0:
                body.append(["wait_flag", flags[i - 1]])
            for _ in range(rng.randint(*accesses)):
                if rng.random() < 0.5:
                    body.append(["write", rng.randrange(lo, hi)])
                else:
                    body.append(["read", rng.randrange(lo, hi)])
            if i < len(procs_seq) - 1:
                body.append(["set_flag", flags[i]])
            self.units.append(Unit("link", {p: body}))

    def phase_episode(self, rounds: int = 2) -> None:
        rng = self.rng
        for r in range(rounds):
            wlo, whi = self.lay.halves[r % 2]
            rlo, rhi = self.lay.halves[(r + 1) % 2]
            ops: Dict[int, List[list]] = {}
            for p in range(self.P):
                max_count = (whi - 1 - (wlo + p)) // self.P + 1
                count = min(rng.randint(2, 6), max_count)
                body: List[list] = [
                    ["write_run", wlo + p, count, self.P],
                ]
                for _ in range(rng.randint(1, 3)):
                    body.append(["read", rng.randrange(rlo, rhi)])
                ops[p] = body
            self.units.append(Unit(f"phase{r % 2}", ops))
            self.barrier_unit()

    def migratory_episode(self, rounds: int) -> None:
        """One long flag chain passing a region around the ring."""
        ring = [i % self.P for i in range(rounds * self.P)]
        self.chain_episode(procs_seq=ring, accesses=(2, 4))

    def fanout_episode(self) -> None:
        """One publisher, many subscribers, one flag (pub/sub pattern).

        The publisher alone writes the region before setting the flag;
        every subscriber reads only after waiting on it, so the single
        release→many-acquires edge makes the episode DRF.
        """
        rng = self.rng
        lo, hi = self._pick_chain_region()
        pub = rng.randrange(self.P)
        others = [p for p in range(self.P) if p != pub]
        subs = rng.sample(others, rng.randint(1, len(others)))
        flag = self._fid()
        body: List[list] = []
        for _ in range(rng.randint(2, 4)):
            body.append(["write", rng.randrange(lo, hi)])
        body.append(["set_flag", flag])
        self.units.append(Unit("pub", {pub: body}))
        for p in subs:
            sub_body: List[list] = [["wait_flag", flag]]
            for _ in range(rng.randint(1, 3)):
                sub_body.append(["read", rng.randrange(lo, hi)])
            self.units.append(Unit("sub", {p: sub_body}))

    def hotlock_episode(self, theta: float = 1.2) -> None:
        """A lock round with zipf-skewed lock choice (hot-shard pattern)."""
        rng = self.rng
        weights = [1.0 / (k + 1) ** theta for k in range(self.lay.n_locks)]
        total = sum(weights)
        r = rng.random() * total
        acc = 0.0
        for k, w in enumerate(weights):
            acc += w
            if r < acc:
                break
        self.lock_episode(k=k)

    # -- top level --------------------------------------------------------------

    def build(self) -> ProgramSpec:
        rng = self.rng
        mode = self.mode
        if mode == "auto":
            mode = rng.choice(_AUTO_MODES)
        self.init_episode()
        budget = self.n_ops * self.P

        if mode == "migratory":
            rounds = max(2, self.n_ops // (4 * self.P) + 1)
            self.migratory_episode(rounds)
            self.private_episode()
        elif mode == "phases":
            while self.op_total() < budget:
                self.phase_episode(rounds=rng.randint(1, 3))
        elif mode == "producer":
            while self.op_total() < budget:
                self.chain_episode()
                if rng.random() < 0.4:
                    self.private_episode()
        else:  # mixed / service: weighted episode draws
            mix = _SERVICE_MIX if mode == "service" else _MIX
            while self.op_total() < budget:
                r = rng.random()
                acc = 0.0
                for kind, w in mix:
                    acc += w
                    if r < acc:
                        break
                if kind == "private":
                    self.private_episode()
                elif kind == "lock":
                    self.lock_episode()
                elif kind == "hotlock":
                    self.hotlock_episode()
                elif kind == "chain":
                    self.chain_episode()
                elif kind == "phase":
                    self.phase_episode(rounds=1)
                elif kind == "fanout":
                    self.fanout_episode()
                else:
                    self.barrier_unit()
        self.barrier_unit()
        return ProgramSpec(
            self.P, self.lay.n_words, self.units, seed=0, mode=mode
        )

    def op_total(self) -> int:
        return sum(u.op_count() for u in self.units)


def generate(
    seed: int,
    n_procs: int,
    n_ops: int = 120,
    mode: str = "auto",
    wpl: int = 16,
) -> ProgramSpec:
    """Generate a DRF conformance program.

    ``n_ops`` is the per-processor abstract-op budget; ``wpl`` is the
    cache-geometry hint (words per line) used to size regions so that
    false sharing and capacity pressure actually occur.  The result is a
    pure function of the arguments.
    """
    if n_procs < 2:
        raise ValueError("conformance programs need at least 2 processors")
    if mode not in MODES:
        raise ValueError(f"unknown generator mode {mode!r} (expected one of {MODES})")
    g = _Gen(seed, n_procs, n_ops, mode, wpl)
    spec = g.build()
    spec.seed = seed
    return spec
