"""Distributed directories.

Each node holds the directory slice for the blocks whose home it is.
Two flavors exist: the MSI directory used by the sequentially consistent
and eager release consistent protocols, and the Uncached/Shared/Dirty/
Weak directory of the lazy protocols (Figure 1 of the paper).

The directory classes are *pure state machines*: they mutate caching
metadata and report what coherence actions the protocol must take
(who to invalidate, who to notify, whether acknowledgements are owed),
but they know nothing about timing or messages.  This keeps every
transition of Figure 1 unit-testable in isolation.
"""

from repro.directory.entry import (
    UNCACHED,
    SHARED,
    DIRTY,
    WEAK,
    LazyEntry,
    MSIEntry,
    dir_state_name,
)
from repro.directory.lazy import LazyDirectory
from repro.directory.msi import MSIDirectory

__all__ = [
    "UNCACHED",
    "SHARED",
    "DIRTY",
    "WEAK",
    "LazyEntry",
    "MSIEntry",
    "LazyDirectory",
    "MSIDirectory",
    "dir_state_name",
]
