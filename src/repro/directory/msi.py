"""MSI directory used by the sequentially consistent and eager protocols.

Conventional single-writer invalidation directory (DASH-style):

* read of an UNCACHED/SHARED block: home memory supplies the data (2 hops).
* read of a DIRTY block: home forwards to the owner, which supplies the
  data to the requester and a sharing writeback to the home (3 hops);
  the block becomes SHARED with both processors in the sharer list.
* write: home invalidates all other sharers (or forwards a
  flush-invalidate to a dirty owner), collects acknowledgements, and
  grants exclusive ownership.
* evictions send replacement hints (clean) or writebacks (dirty).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.directory.entry import DIRTY, MSIEntry, SHARED, UNCACHED


@dataclass
class MSIReadOutcome:
    state: int
    forward_to: Optional[int] = None  # dirty owner to fetch the line from


@dataclass
class MSIWriteOutcome:
    state: int
    needs_data: bool
    invalidate: List[int] = field(default_factory=list)
    forward_to: Optional[int] = None  # dirty owner: flush + invalidate
    await_acks: bool = False


class MSIDirectory:
    """Directory slice for one home node under SC / eager RC."""

    __slots__ = ("entries", "tracer", "home")

    def __init__(self) -> None:
        self.entries: Dict[int, MSIEntry] = {}
        self.tracer = None  # set by Machine when event tracing is on
        self.home = -1      # owning home node id (tracing only)

    def entry(self, block: int) -> MSIEntry:
        e = self.entries.get(block)
        if e is None:
            e = MSIEntry()
            self.entries[block] = e
        return e

    def state_of(self, block: int) -> int:
        e = self.entries.get(block)
        return e.state if e is not None else UNCACHED

    def read(self, block: int, reader: int) -> MSIReadOutcome:
        e = self.entry(block)
        old = e.state
        if e.state == DIRTY and e.owner != reader:
            owner = e.owner
            # 3-hop transaction: owner supplies data and writes back;
            # block becomes SHARED by {owner, reader}.
            e.state = SHARED
            e.owner = None
            e.sharers.add(reader)
            if self.tracer is not None:
                self.tracer.emit(
                    "dir_read", self.home, block=block, frm=old, to=SHARED,
                    reader=reader, forward_to=owner,
                )
            return MSIReadOutcome(state=SHARED, forward_to=owner)
        if e.state == UNCACHED:
            e.state = SHARED
        e.sharers.add(reader)
        if self.tracer is not None:
            self.tracer.emit(
                "dir_read", self.home, block=block, frm=old, to=e.state,
                reader=reader,
            )
        return MSIReadOutcome(state=e.state)

    def write(self, block: int, writer: int, has_copy: bool) -> MSIWriteOutcome:
        e = self.entry(block)
        old = e.state
        if self.tracer is not None:
            self.tracer.emit(
                "dir_write", self.home, block=block, frm=old, to=DIRTY,
                writer=writer,
            )
        if e.state == DIRTY:
            if e.owner == writer:
                # Already exclusive (e.g. retried request); nothing to do.
                return MSIWriteOutcome(state=DIRTY, needs_data=False)
            owner = e.owner
            e.state = DIRTY
            e.owner = writer
            e.sharers = {writer}
            return MSIWriteOutcome(
                state=DIRTY,
                needs_data=True,  # data comes from the old owner
                forward_to=owner,
                await_acks=True,
            )
        invalidate = [s for s in sorted(e.sharers) if s != writer]
        e.state = DIRTY
        e.owner = writer
        e.sharers = {writer}
        return MSIWriteOutcome(
            state=DIRTY,
            needs_data=not has_copy,
            invalidate=invalidate,
            await_acks=bool(invalidate),
        )

    def evict(self, block: int, node: int, dirty: bool) -> int:
        """Replacement hint / writeback.  Returns the new state."""
        e = self.entries.get(block)
        if e is None:
            return UNCACHED
        old = e.state
        e.sharers.discard(node)
        if dirty and e.owner == node:
            e.owner = None
        if e.owner is None and e.state == DIRTY:
            e.state = SHARED if e.sharers else UNCACHED
        elif not e.sharers:
            e.state = UNCACHED
            e.owner = None
        if self.tracer is not None:
            self.tracer.emit(
                "dir_remove", self.home, block=block, frm=old, to=e.state,
                actor=node, dirty=dirty,
            )
        if e.state == UNCACHED:
            del self.entries[block]
        return self.state_of(block)
