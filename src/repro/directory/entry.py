"""Directory entry records.

Global block states (Section 2):

* ``UNCACHED`` — no processor has a copy (initial state of all blocks).
* ``SHARED``   — one or more processors cache the block, none writes it.
* ``DIRTY``    — exactly one processor caches and writes the block.
* ``WEAK``     — two or more processors cache it, at least one writes it.

(The MSI directory reuses UNCACHED/SHARED/DIRTY with the conventional
single-writer meaning of DIRTY.)

A lazy entry carries, per the paper, a list of sharer pointers each
augmented with a *writing* bit and a *notified* bit, plus sharer/writer
counters (here implied by set sizes).
"""

from __future__ import annotations

from typing import List, Optional, Set

UNCACHED = 0
SHARED = 1
DIRTY = 2
WEAK = 3

_NAMES = {UNCACHED: "UNCACHED", SHARED: "SHARED", DIRTY: "DIRTY", WEAK: "WEAK"}


def dir_state_name(s: int) -> str:
    return _NAMES[s]


class LazyEntry:
    """Directory entry for the lazy protocols (Figure 1)."""

    __slots__ = ("state", "sharers", "writers", "notified", "pending_acks", "pending_requesters")

    def __init__(self) -> None:
        self.state: int = UNCACHED
        self.sharers: Set[int] = set()
        self.writers: Set[int] = set()
        self.notified: Set[int] = set()
        # Ack-collection bookkeeping: the home collects acknowledgements
        # for outstanding write notices and acknowledges every write
        # request that arrived meanwhile at once (Section 2: "it allows
        # us to collect acknowledgments only once when write requests for
        # the same block arrive from multiple processors").
        self.pending_acks: int = 0
        self.pending_requesters: List = []

    @property
    def n_sharers(self) -> int:
        return len(self.sharers)

    @property
    def n_writers(self) -> int:
        return len(self.writers)

    def recompute_state(self) -> int:
        """Derive the state from the sharer/writer sets after a removal."""
        if not self.sharers:
            self.state = UNCACHED
        elif not self.writers:
            self.state = SHARED
        elif len(self.sharers) == 1:
            self.state = DIRTY
        else:
            self.state = WEAK
        return self.state

    def __repr__(self) -> str:  # debug aid
        return (
            f"LazyEntry({dir_state_name(self.state)}, sharers={sorted(self.sharers)}, "
            f"writers={sorted(self.writers)}, notified={sorted(self.notified)})"
        )


class MSIEntry:
    """Directory entry for the SC / eager protocols."""

    __slots__ = ("state", "sharers", "owner")

    def __init__(self) -> None:
        self.state: int = UNCACHED
        self.sharers: Set[int] = set()
        self.owner: Optional[int] = None

    def __repr__(self) -> str:
        return (
            f"MSIEntry({dir_state_name(self.state)}, sharers={sorted(self.sharers)}, "
            f"owner={self.owner})"
        )
