"""Timestamp directory for the Tardis protocol.

Tardis replaces the sharer/writer sets of the other directories with two
logical timestamps per block — O(log n) storage instead of O(n):

* ``wts`` — the write timestamp: the logical time of the block's last
  published write.
* ``rts`` — the read timestamp (lease): the block may be read at any
  logical time in ``[wts, rts]``.  A read renews the lease relative to
  the reader's own logical clock; a write bump moves ``wts`` past every
  lease ever granted (``wts = rts + 1``), so stale copies are exactly
  those whose recorded lease is below an acquirer's clock.

The home never tracks who is caching a block, so there is no
invalidation fan-out, no ack collection, and no relinquish/evict
traffic — expired copies self-invalidate at their owner's next acquire
(the Tardis 2.0 relaxed mode, which lines up with LRC's sync points).
"""

from __future__ import annotations

from typing import Dict, Tuple


class TardisEntry:
    """Per-block timestamp pair.  Invariant: ``0 <= wts <= rts``."""

    __slots__ = ("wts", "rts")

    def __init__(self) -> None:
        self.wts = 0
        self.rts = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TardisEntry(wts={self.wts}, rts={self.rts})"


class TardisDirectory:
    """Directory slice for one home node under the tardis protocol."""

    __slots__ = ("entries", "tracer", "home")

    def __init__(self) -> None:
        self.entries: Dict[int, TardisEntry] = {}
        self.tracer = None  # set by Machine when event tracing is on
        self.home = -1      # owning home node id (tracing only)

    def entry(self, block: int) -> TardisEntry:
        e = self.entries.get(block)
        if e is None:
            e = TardisEntry()
            self.entries[block] = e
        return e

    # -- request processing ---------------------------------------------------

    def read(self, block: int, reader_pts: int, lease: int) -> Tuple[int, int]:
        """Serve a read at the reader's logical time; renew the lease.

        Returns ``(wts, rts)`` for the reply: the reader raises its clock
        to ``wts`` and records ``rts`` as the copy's expiry."""
        e = self.entry(block)
        want = reader_pts + lease
        if want < e.wts:
            want = e.wts
        if want > e.rts:
            e.rts = want
        if self.tracer is not None:
            self.tracer.emit(
                "dir_lease", self.home, block=block, wts=e.wts, rts=e.rts
            )
        return e.wts, e.rts

    def bump(self, block: int) -> int:
        """Publish a write: move ``wts`` past every granted lease.

        ``rts`` follows so the writer's epoch can still be read; later
        reads re-extend the lease from there.  Returns the new ``wts``."""
        e = self.entry(block)
        e.wts = e.rts + 1
        e.rts = e.wts
        if self.tracer is not None:
            self.tracer.emit("dir_bump", self.home, block=block, wts=e.wts)
        return e.wts
