"""The lazy directory state machine (Figure 1 of the paper).

Transitions implemented, with the italicized side effects of the figure:

* UNCACHED --read-->  SHARED
* UNCACHED --write--> DIRTY
* SHARED   --read-->  SHARED
* SHARED   --write--> DIRTY   (sole sharer writes) or
*                     WEAK    (other sharers exist: *send notices, collect acks*)
* DIRTY    --read by other--> WEAK   (*send notice to the current writer*)
* DIRTY    --write by other--> WEAK  (*send notice to the current writer*)
* WEAK     --read/write-->    WEAK   (*notify any not-yet-notified sharers*)
* any      --relinquish/evict--> recomputed from remaining sharers/writers
  (WEAK reverts to SHARED once no writer remains, to UNCACHED once no
  sharer remains).

The home node never forwards read requests: with write-through memory is
always current enough (Section 2's correctness argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.directory.entry import DIRTY, LazyEntry, SHARED, UNCACHED, WEAK


@dataclass
class LazyReadOutcome:
    """What the home must do after a read request."""

    state: int                      # new directory state
    weak_for_reader: bool           # reply tells reader to self-invalidate at acquire
    notices_to: List[int] = field(default_factory=list)   # writers to notify


@dataclass
class LazyWriteOutcome:
    """What the home must do after a write request."""

    state: int
    needs_data: bool                # requester had no copy; send the line
    notices_to: List[int] = field(default_factory=list)
    await_acks: bool = False        # requester must wait for home's final ack
    weak_for_writer: bool = False   # block weak: writer self-invalidates at acquire


class LazyDirectory:
    """Directory slice for one home node under the lazy protocols."""

    __slots__ = ("entries", "tracer", "home")

    def __init__(self) -> None:
        self.entries: Dict[int, LazyEntry] = {}
        self.tracer = None  # set by Machine when event tracing is on
        self.home = -1      # owning home node id (tracing only)

    def entry(self, block: int) -> LazyEntry:
        e = self.entries.get(block)
        if e is None:
            e = LazyEntry()
            self.entries[block] = e
        return e

    def state_of(self, block: int) -> int:
        e = self.entries.get(block)
        return e.state if e is not None else UNCACHED

    # -- request processing -----------------------------------------------------

    def read(self, block: int, reader: int) -> LazyReadOutcome:
        """Process a read request; returns the actions the home must take."""
        e = self.entry(block)
        old = e.state
        notices: List[int] = []
        if e.state == UNCACHED:
            e.state = SHARED
        elif e.state == SHARED:
            pass
        elif e.state == DIRTY:
            # A read of a dirty block moves it to WEAK and notifies the
            # single current writer (footnote 1 of the paper).  The
            # notice is informational — the sole writer's copy is
            # complete, so it does not schedule an invalidation and the
            # notified bit stays clear: a later *foreign* write must
            # still send this writer a real (invalidating) notice.
            if reader not in e.writers:
                e.state = WEAK
                notices = [w for w in sorted(e.writers) if w not in e.notified]
        # WEAK stays WEAK.
        e.sharers.add(reader)
        # The reader must invalidate at its next acquire only if the block
        # can accumulate *foreign* writes — i.e. someone other than the
        # reader is writing it.  The reply carries the state (standing in
        # for an explicit notice); the home sets the notified bit.
        weak = e.state == WEAK and bool(e.writers - {reader})
        if weak:
            e.notified.add(reader)
        if self.tracer is not None:
            self.tracer.emit(
                "dir_read", self.home, block=block, frm=old, to=e.state,
                reader=reader, notices=notices,
            )
        return LazyReadOutcome(state=e.state, weak_for_reader=weak, notices_to=notices)

    def write(self, block: int, writer: int, has_copy: bool) -> LazyWriteOutcome:
        """Process a write request (write notice) from ``writer``.

        ``has_copy`` is True when the writer already caches the line
        read-only (upgrade; no data transfer needed).
        """
        e = self.entry(block)
        notices: List[int] = []
        st = e.state
        old = st
        if st == UNCACHED:
            e.state = DIRTY
        elif st == SHARED:
            others = e.sharers - {writer}
            if others:
                e.state = WEAK
                notices = [s for s in sorted(others) if s not in e.notified]
                e.notified.update(notices)
            else:
                e.state = DIRTY
        elif st == DIRTY:
            if writer not in e.writers:
                e.state = WEAK
                notices = [
                    s
                    for s in sorted(e.sharers)
                    if s != writer and s not in e.notified
                ]
                e.notified.update(notices)
        else:  # WEAK
            notices = [
                s
                for s in sorted(e.sharers)
                if s != writer and s not in e.notified
            ]
            e.notified.update(notices)
        e.sharers.add(writer)
        e.writers.add(writer)
        # A writer only needs to invalidate its own copy at acquires when
        # *another* writer exists (its copy may then lack foreign words
        # that memory has merged).  A sole writer's copy is complete.
        weak_for_writer = e.state == WEAK and len(e.writers) > 1
        if weak_for_writer:
            e.notified.add(writer)
        if self.tracer is not None:
            self.tracer.emit(
                "dir_write", self.home, block=block, frm=old, to=e.state,
                writer=writer, notices=notices,
            )
        return LazyWriteOutcome(
            state=e.state,
            needs_data=not has_copy,
            notices_to=notices,
            await_acks=bool(notices),
            weak_for_writer=weak_for_writer,
        )

    # -- departures ---------------------------------------------------------------

    def remove(self, block: int, node: int) -> int:
        """Node no longer caches ``block`` (acquire-invalidate or eviction).

        Returns the recomputed directory state.  Entries that revert to
        UNCACHED are dropped to bound directory storage.
        """
        e = self.entries.get(block)
        if e is None:
            return UNCACHED
        old = e.state
        e.sharers.discard(node)
        e.writers.discard(node)
        e.notified.discard(node)
        st = e.recompute_state()
        if self.tracer is not None:
            self.tracer.emit(
                "dir_remove", self.home, block=block, frm=old, to=st, actor=node
            )
        if st == UNCACHED and e.pending_acks == 0 and not e.pending_requesters:
            del self.entries[block]
        return st
