"""Finite direct-mapped cache.

The tag and state arrays are plain Python lists and are read *directly*
by the processor's hit fast path (``tags[set] == block and states[set]``),
so this class mostly provides the slower mutation paths: installs with
victim identification, invalidations, and upgrades.

Addresses are byte addresses; a *block* is ``addr >> line_shift`` and is
globally unique (the tag check compares whole block numbers, which
subsumes the tag comparison of a real cache).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cache.state import INVALID, RO, RW
from repro.config import SystemConfig


class Cache:
    """Direct-mapped cache with whole-block tags."""

    __slots__ = (
        "config",
        "node_id",
        "n_sets",
        "set_mask",
        "tags",
        "states",
        "fills",
        "evictions",
        "coherence_invalidations",
        "tracer",
    )

    def __init__(self, config: SystemConfig, node_id: int = 0) -> None:
        n_sets = config.n_sets
        if n_sets & (n_sets - 1):
            raise ValueError(
                "cache geometry must yield a power-of-two number of sets "
                f"(got {n_sets}); adjust cache_size/line_size"
            )
        self.config = config
        self.node_id = node_id
        self.n_sets = n_sets
        self.set_mask = n_sets - 1
        self.tags: List[int] = [-1] * n_sets
        self.states: List[int] = [INVALID] * n_sets
        self.fills = 0
        self.evictions = 0
        self.coherence_invalidations = 0
        self.tracer = None  # set by Machine when event tracing is on

    # -- queries ---------------------------------------------------------------

    def set_of(self, block: int) -> int:
        return block & self.set_mask

    def lookup(self, block: int) -> int:
        """Current local state of ``block`` (INVALID if not resident)."""
        s = block & self.set_mask
        if self.tags[s] == block:
            return self.states[s]
        return INVALID

    def resident(self, block: int) -> bool:
        return self.tags[block & self.set_mask] == block

    def victim_of(self, block: int) -> Optional[Tuple[int, int]]:
        """The (block, state) that installing ``block`` would evict."""
        s = block & self.set_mask
        tag = self.tags[s]
        if tag != -1 and tag != block and self.states[s] != INVALID:
            return tag, self.states[s]
        return None

    # -- mutations ---------------------------------------------------------------

    def install(self, block: int, state: int) -> Optional[Tuple[int, int]]:
        """Place ``block`` in the cache with ``state``.

        Returns the evicted ``(block, state)`` if a distinct valid line
        occupied the set, else ``None``.  The caller (protocol) is
        responsible for any eviction traffic (writeback / hint).
        """
        s = block & self.set_mask
        victim = None
        old = self.tags[s]
        if old != -1 and old != block and self.states[s] != INVALID:
            victim = (old, self.states[s])
            self.evictions += 1
        self.tags[s] = block
        self.states[s] = state
        self.fills += 1
        if self.tracer is not None:
            self.tracer.emit(
                "cache_install", self.node_id, block=block, state=state,
                victim=victim[0] if victim else None,
            )
        return victim

    def upgrade(self, block: int) -> None:
        """RO -> RW on a resident line (write permission granted)."""
        s = block & self.set_mask
        if self.tags[s] != block:
            raise KeyError(f"upgrade of non-resident block {block:#x}")
        self.states[s] = RW

    def downgrade(self, block: int) -> None:
        """RW -> RO (e.g. eager protocol sharing writeback)."""
        s = block & self.set_mask
        if self.tags[s] == block and self.states[s] == RW:
            self.states[s] = RO

    def invalidate(self, block: int) -> bool:
        """Drop ``block`` if resident.  Returns True if it was."""
        s = block & self.set_mask
        if self.tags[s] == block and self.states[s] != INVALID:
            self.states[s] = INVALID
            self.tags[s] = -1
            self.coherence_invalidations += 1
            if self.tracer is not None:
                self.tracer.emit("cache_inval", self.node_id, block=block)
            return True
        return False

    def resident_blocks(self) -> List[int]:
        """All currently valid blocks (test/debug helper)."""
        return [
            t
            for t, st in zip(self.tags, self.states)
            if t != -1 and st != INVALID
        ]

    def clear(self) -> None:
        for i in range(self.n_sets):
            self.tags[i] = -1
            self.states[i] = INVALID
