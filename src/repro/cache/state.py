"""Local cache-line states.

The paper (Section 2): "this latter, local state indicates whether a line
is invalid, read-only, or read-write; it allows us to detect the initial
access by a processor that triggers a coherence transaction."

Values are ordered so that a required-permission comparison is a single
integer compare in the processor's hit fast path.
"""

INVALID = 0
RO = 1
RW = 2

_NAMES = {INVALID: "INVALID", RO: "RO", RW: "RW"}


def state_name(s: int) -> str:
    return _NAMES[s]
