"""Processor-side memory hierarchy: cache, write buffer, coalescing buffer."""

from repro.cache.state import INVALID, RO, RW, state_name
from repro.cache.cache import Cache
from repro.cache.write_buffer import WriteBuffer
from repro.cache.coalescing_buffer import CoalescingBuffer

__all__ = [
    "INVALID",
    "RO",
    "RW",
    "state_name",
    "Cache",
    "WriteBuffer",
    "CoalescingBuffer",
]
