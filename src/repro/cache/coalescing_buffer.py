"""Coalescing write-through buffer (lazy protocols).

Section 2: "A coalescing fully associative buffer placed after the
write-through cache can effectively combine the best attributes of both
write strategies" — word-granularity memory updates (required for the
multiple-writer lazy protocol's correctness) at write-back-like traffic
levels, and cheap releases.

Entries merge by cache block and record the dirty word offsets, so a
flush message carries only the written words.  An entry is flushed to
the block's home memory when the buffer needs space for a new block
(FIFO victim) or when the owning processor reaches a release point.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple


class CoalescingBuffer:
    """Fully-associative, FIFO-replacement coalescing buffer."""

    __slots__ = ("capacity", "order", "words", "merges", "inserted", "flushes",
                 "tracer", "owner")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("coalescing buffer capacity must be >= 1")
        self.capacity = capacity
        self.order: Deque[int] = deque()
        self.words: Dict[int, Set[int]] = {}
        self.merges = 0
        self.inserted = 0
        self.flushes = 0
        self.tracer = None   # set by Machine when event tracing is on
        self.owner = -1      # owning node id (tracing only)

    def __len__(self) -> int:
        return len(self.order)

    @property
    def empty(self) -> bool:
        return not self.order

    def contains(self, block: int) -> bool:
        return block in self.words

    def add(self, block: int, words: Set[int]) -> Optional[Tuple[int, Set[int]]]:
        """Merge ``words`` into the entry for ``block``.

        Returns a ``(victim_block, victim_words)`` pair when an existing
        entry had to be displaced to make room, else ``None``.  The caller
        issues the write-through for the victim.
        """
        ws = self.words.get(block)
        if ws is not None:
            ws |= words
            self.merges += 1
            return None
        victim = None
        if len(self.order) >= self.capacity:
            vb = self.order.popleft()
            victim = (vb, self.words.pop(vb))
            self.flushes += 1
        self.words[block] = set(words)
        self.order.append(block)
        self.inserted += 1
        if self.tracer is not None:
            self.tracer.emit(
                "cbuf_add", self.owner, block=block,
                victim=victim[0] if victim else None, depth=len(self.order),
            )
        return victim

    def remove(self, block: int) -> Optional[Set[int]]:
        """Force out one block's entry (e.g. its line was invalidated)."""
        ws = self.words.pop(block, None)
        if ws is not None:
            self.order.remove(block)
            self.flushes += 1
            if self.tracer is not None:
                self.tracer.emit("cbuf_remove", self.owner, block=block)
        return ws

    def drain(self) -> List[Tuple[int, Set[int]]]:
        """Remove and return all entries in FIFO order (release flush)."""
        out = [(b, self.words[b]) for b in self.order]
        self.flushes += len(out)
        self.order.clear()
        self.words.clear()
        if self.tracer is not None and out:
            self.tracer.emit("cbuf_drain", self.owner, blocks=[b for b, _ in out])
        return out
