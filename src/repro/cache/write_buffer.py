"""The CPU write buffer.

Section 4.2: "The relaxed consistency protocols use a 4-entry write
buffer which allows reads to bypass writes and coalesces writes to the
same cache line."

An entry is a cache block plus the set of word offsets written to it.
Entries retire in FIFO order; the *protocol* decides when the head may
retire (eager: on ownership; lazy: as soon as the line is present).  The
CPU stalls only when it needs a new entry and the buffer is full — that
stall is what the "write buffer stall" bucket in Figures 5/7/9 measures.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Set


class WriteBuffer:
    """FIFO, line-coalescing write buffer."""

    __slots__ = ("capacity", "order", "words", "coalesced", "inserted", "tracer", "owner")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("write buffer capacity must be >= 1")
        self.capacity = capacity
        self.order: Deque[int] = deque()      # FIFO of blocks
        self.words: Dict[int, Set[int]] = {}  # block -> word offsets
        self.coalesced = 0
        self.inserted = 0
        self.tracer = None   # set by Machine when event tracing is on
        self.owner = -1      # owning node id (tracing only)

    def __len__(self) -> int:
        return len(self.order)

    @property
    def empty(self) -> bool:
        return not self.order

    @property
    def full(self) -> bool:
        return len(self.order) >= self.capacity

    def contains(self, block: int) -> bool:
        """True if a pending write to ``block`` is buffered.

        Reads consult this to bypass/forward from the buffer: a read of a
        line with a buffered write is satisfied locally.
        """
        return block in self.words

    def add(self, block: int, word: int) -> bool:
        """Buffer a write.  Returns False if a new entry was needed but
        the buffer is full (caller must stall and retry)."""
        ws = self.words.get(block)
        if ws is not None:
            ws.add(word)
            self.coalesced += 1
            return True
        if len(self.order) >= self.capacity:
            if self.tracer is not None:
                self.tracer.emit("wb_full", self.owner, block=block)
            return False
        self.words[block] = {word}
        self.order.append(block)
        self.inserted += 1
        if self.tracer is not None:
            self.tracer.emit("wb_add", self.owner, block=block, depth=len(self.order))
        return True

    def head(self) -> Optional[int]:
        return self.order[0] if self.order else None

    def retire_head(self) -> Set[int]:
        """Remove the head entry; return its written word offsets."""
        block = self.order.popleft()
        if self.tracer is not None:
            self.tracer.emit("wb_retire", self.owner, block=block, depth=len(self.order))
        return self.words.pop(block)
