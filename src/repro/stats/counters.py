"""Per-processor and machine-wide counters.

The execution-time breakdown of Figures 5/7/9 divides each processor's
cycles into four buckets:

* **cpu**   — instruction execution (one cycle per memory reference plus
  explicit COMPUTE cycles),
* **read**  — stall cycles waiting for read misses,
* **write** — write-buffer stalls (buffer full; under SC, write-miss
  stalls, since SC has no write buffer),
* **sync**  — lock acquisition waits, barrier waits, release-completion
  waits, and acquire-time invalidation processing.

``cpu`` is derived: ``finish_time - (read + write + sync)``, which is
exact because a processor is, at every cycle, either executing or
blocked in exactly one bucket.
"""

from __future__ import annotations

from typing import Dict, List

#: Machine-level protocol counters (kept in sync with ``__init__`` below
#: so serialization round-trips every field).
_MACHINE_COUNTERS = (
    "notices_sent",
    "eager_invalidations",
    "acquire_invalidations",
    "write_throughs",
    "writebacks",
    "three_hop_reads",
    "deferred_notices",
    "ts_bumps",
    "lease_expirations",
)


class ProcStats:
    """Counters for one processor."""

    __slots__ = (
        "finish_time",
        "read_stall",
        "wb_stall",
        "sync_stall",
        "reads",
        "writes",
        "read_misses",
        "write_misses",
        "upgrade_misses",
        "acquires",
        "releases",
        "barriers",
        "acquire_invalidations",
    )

    def __init__(self) -> None:
        self.finish_time = 0
        self.read_stall = 0
        self.wb_stall = 0
        self.sync_stall = 0
        self.reads = 0
        self.writes = 0
        self.read_misses = 0
        self.write_misses = 0      # write misses requiring a data transfer
        self.upgrade_misses = 0    # write to a block cached read-only
        self.acquires = 0
        self.releases = 0
        self.barriers = 0
        self.acquire_invalidations = 0

    @property
    def cpu_cycles(self) -> int:
        return self.finish_time - self.read_stall - self.wb_stall - self.sync_stall

    @property
    def references(self) -> int:
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses + self.upgrade_misses

    @property
    def miss_rate(self) -> float:
        refs = self.references
        return self.misses / refs if refs else 0.0

    def to_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    @classmethod
    def from_dict(cls, d: Dict[str, int]) -> "ProcStats":
        p = cls()
        for name in cls.__slots__:
            setattr(p, name, d[name])
        return p


class MachineStats:
    """Aggregation over all processors plus protocol-level counters."""

    def __init__(self, n_procs: int) -> None:
        self.procs: List[ProcStats] = [ProcStats() for _ in range(n_procs)]
        # Protocol-level event counters.
        self.notices_sent = 0              # lazy write notices delivered
        self.eager_invalidations = 0       # eager protocol invalidation msgs
        self.acquire_invalidations = 0     # lines invalidated at acquires
        self.write_throughs = 0            # coalescing-buffer flushes
        self.writebacks = 0                # dirty writebacks (eager/SC)
        self.three_hop_reads = 0           # reads forwarded to a dirty owner
        self.deferred_notices = 0          # lazy-ext notices sent at release
        self.ts_bumps = 0                  # tardis write-timestamp bumps
        self.lease_expirations = 0         # tardis lines self-invalidated

    # -- aggregates ---------------------------------------------------------------

    def _sum(self, attr: str) -> int:
        return sum(getattr(p, attr) for p in self.procs)

    @property
    def total_cycles(self) -> int:
        """Aggregate cycles over all processors (breakdown denominator)."""
        return self._sum("finish_time")

    @property
    def exec_time(self) -> int:
        """Wall-clock execution time: the last processor to finish."""
        return max(p.finish_time for p in self.procs)

    @property
    def references(self) -> int:
        return self._sum("reads") + self._sum("writes")

    @property
    def misses(self) -> int:
        return sum(p.misses for p in self.procs)

    @property
    def miss_rate(self) -> float:
        refs = self.references
        return self.misses / refs if refs else 0.0

    def breakdown(self) -> Dict[str, int]:
        """Aggregate cycles per bucket (Figures 5/7/9)."""
        return {
            "cpu": sum(p.cpu_cycles for p in self.procs),
            "read": self._sum("read_stall"),
            "write": self._sum("wb_stall"),
            "sync": self._sum("sync_stall"),
        }

    def breakdown_normalized(self, baseline_total: int) -> Dict[str, float]:
        """Breakdown as fractions of a baseline protocol's total cycles."""
        b = self.breakdown()
        return {k: v / baseline_total for k, v in b.items()}

    def summary(self) -> Dict[str, float]:
        return {
            "exec_time": self.exec_time,
            "total_cycles": self.total_cycles,
            "references": self.references,
            "misses": self.misses,
            "miss_rate": self.miss_rate,
            **self.breakdown(),
        }

    # -- serialization (result store) --------------------------------------------

    def to_dict(self) -> Dict:
        return {
            "procs": [p.to_dict() for p in self.procs],
            **{name: getattr(self, name) for name in _MACHINE_COUNTERS},
        }

    @classmethod
    def from_dict(cls, d: Dict) -> "MachineStats":
        s = cls(len(d["procs"]))
        s.procs = [ProcStats.from_dict(p) for p in d["procs"]]
        for name in _MACHINE_COUNTERS:
            # .get: results stored before a counter existed read back as 0.
            setattr(s, name, d.get(name, 0))
        return s
