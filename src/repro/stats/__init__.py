"""Statistics: cycle buckets, miss classification, and report formatting."""

from repro.stats.counters import MachineStats, ProcStats
from repro.stats.classification import (
    COLD,
    EVICTION,
    FALSE_SHARING,
    TRUE_SHARING,
    WRITE_MISS,
    MissClassifier,
)

__all__ = [
    "ProcStats",
    "MachineStats",
    "MissClassifier",
    "COLD",
    "TRUE_SHARING",
    "FALSE_SHARING",
    "EVICTION",
    "WRITE_MISS",
]
