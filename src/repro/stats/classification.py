"""Miss classification (Table 2 of the paper).

Implements a word-granularity classification in the spirit of Bianchini &
Kontothanassis, "Algorithms for Categorizing Multiprocessor Communication
under Invalidate and Update-Based Coherence Protocols" (the paper's
reference [3]):

* **cold**    — the processor's first-ever access to the block.
* **eviction**— the line was lost to a capacity/conflict replacement.
* **true**   — the line was lost to a coherence invalidation and the word
  being accessed was written by another processor since the loss.
* **false**  — the line was lost to a coherence invalidation but the word
  being accessed was *not* written by another processor since the loss —
  the invalidation was an artifact of block granularity.
* **write**  — a write to a block present in the cache read-only
  ("they do not result in data transfers, since they occur when a block
  is already present in the cache but the processor does not have
  permission to write it").

The classifier is an optional observer: when detached, the simulator's
hot paths pay a single ``is None`` test.

Two modes exist.  The *inline* mode (default) classifies at call time,
ordering events by call order — fine for unit tests and ad-hoc use.
Machines attach the *logged* mode (``MissClassifier(logged=True)``):
every call appends to a per-node log stamped with the node's simulated
time, and :meth:`finalize` replays the merged log in the canonical order
``(time, node, log index)``.  Canonical ordering makes the counts a
function of the simulated history rather than of host-side event
interleaving, which is what lets sharded runs (DESIGN.md §14) — and the
span-batched replay engine, which logs whole write spans as single
compact records — produce bit-identical classifications.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

COLD = "cold"
TRUE_SHARING = "true"
FALSE_SHARING = "false"
EVICTION = "eviction"
WRITE_MISS = "write"

CATEGORIES = (COLD, TRUE_SHARING, FALSE_SHARING, EVICTION, WRITE_MISS)

# Loss causes recorded when a processor loses a line.
LOST_EVICTION = 0
LOST_INVALIDATION = 1

# Logged-mode opcodes (order within the log entry: (t, op, a, b)).
_OP_WRITE = 0      # a=block, b=word
_OP_EVICT = 1      # a=block
_OP_INVAL = 2      # a=block
_OP_MISS = 3       # a=block, b=word
_OP_UPGRADE = 4    # a=block
_OP_WSPAN = 5      # a=block, b=(words...), extra=time step per element


class MissClassifier:
    """Word-granularity miss classifier (observer)."""

    def __init__(self, logged: bool = False) -> None:
        # (block, word) -> (writer, seq) of the last write, any processor.
        self._last_write: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._seq = 0
        # (proc, block) -> (loss_cause, seq_at_loss).  Presence of the key
        # also means "proc has accessed this block before" (cold test).
        self._loss: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self.counts: Dict[str, int] = {c: 0 for c in CATEGORIES}
        self.logged = logged
        # Per-node operation logs (logged mode).  An op is always
        # appended to the log of the node *executing* it, so each log's
        # order is a function of that node's own deterministic history.
        self._logs: Dict[int, List[tuple]] = {}
        self._finalized = False

    def _log(self, proc: int) -> List[tuple]:
        log = self._logs.get(proc)
        if log is None:
            log = self._logs[proc] = []
        return log

    # -- write tracking (called on every simulated write) ----------------------

    def record_write(self, proc: int, block: int, word: int, t: int = 0) -> None:
        if self.logged:
            self._log(proc).append((t, _OP_WRITE, block, word))
            return
        self._seq += 1
        self._last_write[(block, word)] = (proc, self._seq)

    def record_write_span(
        self, proc: int, t: int, block: int, words, step: int
    ) -> None:
        """Batch variant (logged mode): one compact record for a span of
        writes to ``block``, element ``j`` stamped ``t + step * j``.

        The replay engine's span fast paths use this so an attached
        classifier no longer demotes them to per-element loops; the span
        expands at :meth:`finalize` into exactly the per-element log the
        legacy loop would have written.
        """
        if self.logged:
            self._log(proc).append((t, _OP_WSPAN, block, tuple(words), step))
            return
        for j, word in enumerate(words):
            self._seq += 1
            self._last_write[(block, word)] = (proc, self._seq)

    # -- loss tracking -----------------------------------------------------------

    def record_eviction(self, proc: int, block: int, t: int = 0) -> None:
        if self.logged:
            self._log(proc).append((t, _OP_EVICT, block, 0))
            return
        self._loss[(proc, block)] = (LOST_EVICTION, self._seq)

    def record_invalidation(self, proc: int, block: int, t: int = 0) -> None:
        if self.logged:
            self._log(proc).append((t, _OP_INVAL, block, 0))
            return
        self._loss[(proc, block)] = (LOST_INVALIDATION, self._seq)

    # -- miss classification -------------------------------------------------------

    def classify_miss(self, proc: int, block: int, word: int, t: int = 0):
        """Classify a data-transfer miss by ``proc`` on ``(block, word)``.

        Inline mode returns the category; logged mode defers the
        decision to :meth:`finalize` and returns ``None``.
        """
        if self.logged:
            self._log(proc).append((t, _OP_MISS, block, word))
            return None
        return self._classify(proc, block, word)

    def _classify(self, proc: int, block: int, word: int) -> str:
        key = (proc, block)
        loss = self._loss.get(key)
        if loss is None:
            self.counts[COLD] += 1
            # Mark the block as seen so the next loss-free miss (none
            # should occur, but runs can be resumed) is not cold again.
            self._loss[key] = (LOST_EVICTION, -1)
            return COLD
        cause, seq_at_loss = loss
        if cause == LOST_EVICTION:
            self.counts[EVICTION] += 1
            return EVICTION
        lw = self._last_write.get((block, word))
        if lw is not None and lw[0] != proc and lw[1] > seq_at_loss:
            self.counts[TRUE_SHARING] += 1
            return TRUE_SHARING
        self.counts[FALSE_SHARING] += 1
        return FALSE_SHARING

    def classify_write_upgrade(self, proc: int, block: int, t: int = 0):
        """A write to a read-only cached block (no data transfer)."""
        if self.logged:
            self._log(proc).append((t, _OP_UPGRADE, block, 0))
            return None
        self.counts[WRITE_MISS] += 1
        # Ensure the cold test sees the block as touched.
        self._loss.setdefault((proc, block), (LOST_EVICTION, -1))
        return WRITE_MISS

    # -- logged-mode resolution -------------------------------------------------

    def finalize(self) -> None:
        """Replay the per-node logs in canonical ``(t, node, index)``
        order, filling ``counts`` (logged mode; inline mode: no-op).

        Idempotent.  Called by the machine at end of run; reporting
        accessors call it defensively.
        """
        if not self.logged or self._finalized:
            return
        self._finalized = True
        elems: List[tuple] = []
        push = elems.append
        for proc in sorted(self._logs):
            idx = 0
            for entry in self._logs[proc]:
                if entry[1] == _OP_WSPAN:
                    t0, _, block, words, step = entry
                    for j, word in enumerate(words):
                        push((t0 + step * j, proc, idx, _OP_WRITE, block, word))
                        idx += 1
                else:
                    t0, op, a, b = entry
                    push((t0, proc, idx, op, a, b))
                    idx += 1
        self._logs.clear()
        elems.sort()
        last_write = self._last_write
        loss = self._loss
        seq = self._seq
        for _t, proc, _idx, op, block, word in elems:
            if op == _OP_WRITE:
                seq += 1
                last_write[(block, word)] = (proc, seq)
            elif op == _OP_MISS:
                self._seq = seq
                self._classify(proc, block, word)
                seq = self._seq
            elif op == _OP_INVAL:
                loss[(proc, block)] = (LOST_INVALIDATION, seq)
            elif op == _OP_EVICT:
                loss[(proc, block)] = (LOST_EVICTION, seq)
            else:  # _OP_UPGRADE
                self.counts[WRITE_MISS] += 1
                loss.setdefault((proc, block), (LOST_EVICTION, -1))
        self._seq = seq

    # -- reporting ------------------------------------------------------------------

    @property
    def total(self) -> int:
        self.finalize()
        return sum(self.counts.values())

    def percentages(self) -> Dict[str, float]:
        """Each category as a percentage of all misses (Table 2 rows)."""
        t = self.total
        if t == 0:
            return {c: 0.0 for c in CATEGORIES}
        return {c: 100.0 * self.counts[c] / t for c in CATEGORIES}

    # -- serialization (result store) -------------------------------------------

    def to_dict(self) -> Dict[str, int]:
        """Category counts only: the word-level tracking maps are working
        state of a live run, not part of the measured result."""
        self.finalize()
        return dict(self.counts)

    @classmethod
    def from_dict(cls, d: Dict[str, int]) -> "MissClassifier":
        """Rebuild a reporting-only classifier (counts/percentages work;
        further ``record_*``/``classify_*`` calls would start from empty
        tracking state and must not be mixed with restored counts)."""
        c = cls()
        c.counts = {cat: int(d.get(cat, 0)) for cat in CATEGORIES}
        return c
