"""Miss classification (Table 2 of the paper).

Implements a word-granularity classification in the spirit of Bianchini &
Kontothanassis, "Algorithms for Categorizing Multiprocessor Communication
under Invalidate and Update-Based Coherence Protocols" (the paper's
reference [3]):

* **cold**    — the processor's first-ever access to the block.
* **eviction**— the line was lost to a capacity/conflict replacement.
* **true**   — the line was lost to a coherence invalidation and the word
  being accessed was written by another processor since the loss.
* **false**  — the line was lost to a coherence invalidation but the word
  being accessed was *not* written by another processor since the loss —
  the invalidation was an artifact of block granularity.
* **write**  — a write to a block present in the cache read-only
  ("they do not result in data transfers, since they occur when a block
  is already present in the cache but the processor does not have
  permission to write it").

The classifier is an optional observer: when detached, the simulator's
hot paths pay a single ``is None`` test.
"""

from __future__ import annotations

from typing import Dict, Tuple

COLD = "cold"
TRUE_SHARING = "true"
FALSE_SHARING = "false"
EVICTION = "eviction"
WRITE_MISS = "write"

CATEGORIES = (COLD, TRUE_SHARING, FALSE_SHARING, EVICTION, WRITE_MISS)

# Loss causes recorded when a processor loses a line.
LOST_EVICTION = 0
LOST_INVALIDATION = 1


class MissClassifier:
    """Word-granularity miss classifier (observer)."""

    def __init__(self) -> None:
        # (block, word) -> (writer, seq) of the last write, any processor.
        self._last_write: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self._seq = 0
        # (proc, block) -> (loss_cause, seq_at_loss).  Presence of the key
        # also means "proc has accessed this block before" (cold test).
        self._loss: Dict[Tuple[int, int], Tuple[int, int]] = {}
        self.counts: Dict[str, int] = {c: 0 for c in CATEGORIES}

    # -- write tracking (called on every simulated write) ----------------------

    def record_write(self, proc: int, block: int, word: int) -> None:
        self._seq += 1
        self._last_write[(block, word)] = (proc, self._seq)

    def record_write_run(self, proc: int, block_words) -> None:
        """Batch variant: iterable of (block, word) pairs."""
        for bw in block_words:
            self._seq += 1
            self._last_write[bw] = (proc, self._seq)

    # -- loss tracking -----------------------------------------------------------

    def record_eviction(self, proc: int, block: int) -> None:
        self._loss[(proc, block)] = (LOST_EVICTION, self._seq)

    def record_invalidation(self, proc: int, block: int) -> None:
        self._loss[(proc, block)] = (LOST_INVALIDATION, self._seq)

    # -- miss classification -------------------------------------------------------

    def classify_miss(self, proc: int, block: int, word: int) -> str:
        """Classify a data-transfer miss by ``proc`` on ``(block, word)``."""
        key = (proc, block)
        loss = self._loss.get(key)
        if loss is None:
            self.counts[COLD] += 1
            # Mark the block as seen so the next loss-free miss (none
            # should occur, but runs can be resumed) is not cold again.
            self._loss[key] = (LOST_EVICTION, -1)
            return COLD
        cause, seq_at_loss = loss
        if cause == LOST_EVICTION:
            self.counts[EVICTION] += 1
            return EVICTION
        lw = self._last_write.get((block, word))
        if lw is not None and lw[0] != proc and lw[1] > seq_at_loss:
            self.counts[TRUE_SHARING] += 1
            return TRUE_SHARING
        self.counts[FALSE_SHARING] += 1
        return FALSE_SHARING

    def classify_write_upgrade(self, proc: int, block: int) -> str:
        """A write to a read-only cached block (no data transfer)."""
        self.counts[WRITE_MISS] += 1
        # Ensure the cold test sees the block as touched.
        self._loss.setdefault((proc, block), (LOST_EVICTION, -1))
        return WRITE_MISS

    # -- reporting ------------------------------------------------------------------

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def percentages(self) -> Dict[str, float]:
        """Each category as a percentage of all misses (Table 2 rows)."""
        t = self.total
        if t == 0:
            return {c: 0.0 for c in CATEGORIES}
        return {c: 100.0 * self.counts[c] / t for c in CATEGORIES}

    # -- serialization (result store) -------------------------------------------

    def to_dict(self) -> Dict[str, int]:
        """Category counts only: the word-level tracking maps are working
        state of a live run, not part of the measured result."""
        return dict(self.counts)

    @classmethod
    def from_dict(cls, d: Dict[str, int]) -> "MissClassifier":
        """Rebuild a reporting-only classifier (counts/percentages work;
        further ``record_*``/``classify_*`` calls would start from empty
        tracking state and must not be mixed with restored counts)."""
        c = cls()
        c.counts = {cat: int(d.get(cat, 0)) for cat in CATEGORIES}
        return c
