"""Small text-table helpers shared by examples and the harness."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Render a fixed-width text table (right-aligned numeric columns)."""
    srows: List[List[str]] = [
        [f"{c:.3f}" if isinstance(c, float) else str(c) for c in row]
        for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = []
    if title:
        out.append(title)
    out.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    out.append("  ".join("-" * w for w in widths))
    for row in srows:
        cells = []
        for i, cell in enumerate(row):
            if i == 0:
                cells.append(cell.ljust(widths[i]))
            else:
                cells.append(cell.rjust(widths[i]))
        out.append("  ".join(cells))
    return "\n".join(out)


def breakdown_bar(breakdown: dict, width: int = 50, total: float = None) -> str:
    """A one-line ASCII stacked bar for a cycle breakdown."""
    tot = total if total is not None else sum(breakdown.values()) or 1
    chars = {"cpu": "#", "read": "r", "write": "w", "sync": "s"}
    bar = ""
    for k in ("cpu", "read", "write", "sync"):
        n = int(round(width * breakdown.get(k, 0) / tot))
        bar += chars[k] * n
    return bar
