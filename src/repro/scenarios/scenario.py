"""Named, versioned, schema-validated scenario documents.

A *scenario* bundles everything one reproducible experiment story
needs — an application and its parameters, the machine shape, the
protocols to sweep, and a (possibly phase-scripted) fault plan — into a
single JSON document in the mosh-lite testbed style (SNIPPETS.md §1):
``satellite_link``, ``burst_loss``, ``congestion_collapse``,
``intermittent_connectivity`` are names you can run, diff, and cite
instead of remembering rate strings.

Scenarios are pure data with a round-trip guarantee:
``Scenario.from_dict(s.to_dict()) == s`` and the JSON form re-parses to
an equal object.  Validation is strict — unknown keys anywhere in the
document (top level, fault plan, or phase entries) are errors, as are
malformed phase windows — so a typo in a scenario file fails loudly at
load time rather than silently running the wrong experiment.

The built-in library lives next to this module (``library/*.json``);
:func:`builtin_scenarios` enumerates it and :func:`load_scenario`
accepts either a library name or a filesystem path, so teams can keep
private scenario files out of tree.
"""

from __future__ import annotations

import inspect
import json
import re
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.faults.plan import FaultPlan

#: Bumped whenever the meaning of a scenario field changes.
SCENARIO_SCHEMA = 1

#: Directory of built-in scenario documents.
SCENARIO_DIR = Path(__file__).parent / "library"

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")


@dataclass(frozen=True)
class Scenario:
    """One named experiment story, fully specified.

    ``params`` are application-parameter overrides applied on top of
    the preset selected by ``small``; ``overrides`` are
    :class:`~repro.config.SystemConfig` field overrides; ``protocols``
    is the default sweep (the CLI can restrict it).  ``faults`` holds
    the scenario's :class:`~repro.faults.plan.FaultPlan` — usually
    phase-scripted (good→bad→good windows over simulated cycles) — or
    ``None`` for a fault-free baseline.
    """

    name: str
    app: str
    description: str = ""
    schema: int = SCENARIO_SCHEMA
    n_procs: int = 16
    kind: str = "default"
    small: bool = False
    params: Tuple[Tuple[str, Any], ...] = field(default=())
    overrides: Tuple[Tuple[str, Any], ...] = field(default=())
    protocols: Tuple[str, ...] = ()
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        from repro.apps import APPS
        from repro.protocols import all_names

        if self.schema != SCENARIO_SCHEMA:
            raise ValueError(
                f"scenario schema {self.schema!r} not supported "
                f"(this build reads schema {SCENARIO_SCHEMA})"
            )
        if not _NAME_RE.match(self.name):
            raise ValueError(
                f"scenario name must be a lower_snake_case slug, got "
                f"{self.name!r}"
            )
        for attr in ("params", "overrides"):
            v = getattr(self, attr)
            if isinstance(v, dict):
                v = v.items()
            object.__setattr__(
                self, attr, tuple(sorted((str(k), val) for k, val in v))
            )
        object.__setattr__(self, "protocols", tuple(self.protocols))
        object.__setattr__(self, "faults", FaultPlan.coerce(self.faults))
        if self.app not in APPS:
            raise ValueError(f"unknown application {self.app!r}")
        known = set(all_names())
        bad = [p for p in self.protocols if p not in known]
        if bad:
            raise ValueError(
                f"unknown protocols {bad} (choose from {sorted(known)})"
            )
        if self.n_procs < 1:
            raise ValueError("n_procs must be >= 1")
        # App params are validated against the app's actual setup()
        # signature, so a misspelled parameter fails at load time.
        sig = inspect.signature(APPS[self.app].setup)
        accepted = {p for p in sig.parameters if p != "self"}
        unknown = [k for k, _ in self.params if k not in accepted]
        if unknown:
            raise ValueError(
                f"app {self.app!r} does not accept params {unknown} "
                f"(accepted: {sorted(accepted)})"
            )

    # -- derived --------------------------------------------------------------

    def protocol_list(self, restrict=None) -> Tuple[str, ...]:
        """The protocols to sweep: the scenario's own list (or every
        registered protocol when it is empty), optionally restricted."""
        from repro.protocols import all_names

        protos = self.protocols or tuple(all_names())
        if restrict:
            restrict = tuple(restrict)
            bad = [p for p in restrict if p not in protos]
            if bad:
                raise ValueError(
                    f"scenario {self.name!r} does not cover protocols {bad} "
                    f"(covers {list(protos)})"
                )
            protos = restrict
        return protos

    def spec_for(self, protocol: str, n_procs: Optional[int] = None,
                 check_invariants: bool = False):
        """The :class:`~repro.harness.spec.ExperimentSpec` of one cell."""
        from repro.harness.spec import ExperimentSpec

        return ExperimentSpec(
            app=self.app,
            protocol=protocol,
            kind=self.kind,
            n_procs=self.n_procs if n_procs is None else n_procs,
            small=self.small,
            overrides=self.overrides,
            params=self.params,
            faults=self.faults,
            check_invariants=check_invariants,
        )

    # -- serialization --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "name": self.name,
            "description": self.description,
            "app": self.app,
            "n_procs": self.n_procs,
            "kind": self.kind,
            "small": self.small,
            "params": {k: v for k, v in self.params},
            "overrides": {k: v for k, v in self.overrides},
            "protocols": list(self.protocols),
            "faults": self.faults.to_dict() if self.faults is not None else None,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Scenario":
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown Scenario fields: {sorted(unknown)}")
        missing = [k for k in ("name", "app") if k not in d]
        if missing:
            raise ValueError(f"scenario is missing required fields {missing}")
        return cls(**d)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))


# -- the library ---------------------------------------------------------------


def builtin_scenarios() -> Dict[str, Path]:
    """Name -> path of every built-in scenario document."""
    return {p.stem: p for p in sorted(SCENARIO_DIR.glob("*.json"))}


def load_scenario(name_or_path) -> Scenario:
    """Load a scenario by library name or filesystem path.

    A bare slug resolves against the built-in library; anything
    containing a path separator (or ending in ``.json``) is read as a
    file.  A library document whose ``name`` disagrees with its
    filename is rejected — names are the lookup key, so drift between
    the two would make ``scenarios run NAME`` lie.
    """
    text_name = str(name_or_path)
    if "/" in text_name or text_name.endswith(".json"):
        path = Path(name_or_path)
    else:
        lib = builtin_scenarios()
        if text_name not in lib:
            raise ValueError(
                f"unknown scenario {text_name!r} "
                f"(library: {', '.join(sorted(lib)) or 'empty'})"
            )
        path = lib[text_name]
    try:
        sc = Scenario.from_json(path.read_text())
    except OSError as e:
        raise ValueError(f"cannot read scenario file {path}: {e}") from e
    except json.JSONDecodeError as e:
        raise ValueError(f"scenario file {path} is not valid JSON: {e}") from e
    if sc.name != path.stem:
        raise ValueError(
            f"scenario file {path} is named {sc.name!r}; rename the file "
            f"or the scenario so they agree"
        )
    return sc
