"""The scenario library: named, versioned experiment stories.

A scenario is one JSON document bundling an application, its
parameters, the machine shape, the protocol sweep, and a (usually
phase-scripted) fault plan — runnable by name::

    python -m repro scenarios list
    python -m repro scenarios run satellite_link --protocols lrc tardis

See :mod:`repro.scenarios.scenario` for the document format and
:mod:`repro.scenarios.runner` for execution and summary artifacts
(DESIGN.md §13).
"""

from repro.scenarios.scenario import (
    SCENARIO_DIR,
    SCENARIO_SCHEMA,
    Scenario,
    builtin_scenarios,
    load_scenario,
)
from repro.scenarios.runner import artifact_name, run_scenario

__all__ = [
    "SCENARIO_DIR",
    "SCENARIO_SCHEMA",
    "Scenario",
    "builtin_scenarios",
    "load_scenario",
    "artifact_name",
    "run_scenario",
]
