"""Execute a scenario across its protocol sweep and persist a summary.

:func:`run_scenario` is deliberately thin: each (scenario, protocol)
cell is just an :class:`~repro.harness.spec.ExperimentSpec` built by
:meth:`Scenario.spec_for`, executed through the same memoized
:func:`~repro.harness.experiments.run_spec` path as every table and
figure — so scenario runs share the result store with everything else
and re-running a scenario is warm.

What the runner adds is the *artifact*: one
``scenario-<name>.artifact.json`` document in the
:class:`~repro.results.store.ResultStore` summarizing the whole sweep —
per-protocol cycle counts, traffic, and the recovery counters
(retransmits, injected drops/dups/delays) that tell the fault story —
plus structured failure records for any cell that crashed, so a faulted
campaign leaves evidence rather than a stack trace.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.scenarios.scenario import Scenario

#: Recovery/fault counters surfaced in scenario summaries.
RECOVERY_COUNTERS = (
    "retransmits",
    "dup_drops",
    "drops_injected",
    "dups_injected",
    "delays_injected",
)

_UNSET = object()


def artifact_name(scenario_name: str) -> str:
    """The ResultStore artifact name of a scenario summary."""
    return f"scenario-{scenario_name}"


def summarize_result(result) -> Dict[str, Any]:
    """The per-protocol summary block of a successful cell."""
    row: Dict[str, Any] = {
        "ok": True,
        "exec_time": result.stats.exec_time,
        "references": result.stats.references,
        "misses": result.stats.misses,
        "miss_rate": result.stats.miss_rate,
        "messages": result.traffic.total_messages,
        "bytes": result.traffic.total_bytes,
    }
    for name in RECOVERY_COUNTERS:
        row[name] = getattr(result.traffic, name, 0)
    return row


def run_scenario(
    scenario: Scenario,
    protocols: Optional[Sequence[str]] = None,
    n_procs: Optional[int] = None,
    check_invariants: bool = False,
    store=_UNSET,
    engine: Optional[str] = None,
    progress=None,
    journal=None,
) -> Dict[str, Any]:
    """Run one scenario; return (and persist) its summary artifact.

    ``protocols`` restricts the scenario's sweep; ``n_procs`` overrides
    the document's machine size (CI uses this to shrink smokes).
    ``store`` defaults to the process-wide store (pass ``None`` to force
    disk off, mirroring :func:`~repro.harness.experiments.run_spec`).  A
    cell that raises is recorded as a
    :class:`~repro.results.store.RunFailure` in the store and marked
    ``ok: False`` in the summary — the rest of the sweep still runs,
    matching how fault campaigns behave.

    ``journal`` (a :class:`~repro.results.journal.CampaignJournal`)
    makes the sweep resumable: each protocol cell's summary row is
    written ahead, and cells already journaled are skipped on a later
    invocation with the journaled row reused verbatim — cells are
    deterministic, so the rebuilt artifact is bit-identical to an
    uninterrupted run's.
    """
    from repro.harness.experiments import run_spec
    from repro.results.store import RunFailure, default_store

    if store is _UNSET:
        store = default_store()
    protos = scenario.protocol_list(protocols)
    completed = journal.completed() if journal is not None else {}
    cells: Dict[str, Any] = {}
    for proto in protos:
        entry = completed.get(proto)
        if entry is not None and entry["op"] == "done":
            cells[proto] = entry["data"]
            if progress is not None:
                progress(f"  {scenario.name}: {proto}: journaled, skipping")
            continue
        spec = scenario.spec_for(
            proto, n_procs=n_procs, check_invariants=check_invariants
        )
        if progress is not None:
            progress(f"  {scenario.name}: {spec.label()}")
        if journal is not None:
            journal.start(proto)
        try:
            result = run_spec(spec, store=store, engine=engine)
        except Exception as exc:  # record, keep sweeping
            failure = RunFailure.from_exception(spec, exc)
            if store is not None:
                store.save_failure(spec, failure)
            cells[proto] = {
                "ok": False,
                "kind": failure.kind,
                "message": failure.message,
                "fingerprint": spec.fingerprint(),
            }
            if journal is not None:
                journal.done(proto, cells[proto])
            continue
        row = summarize_result(result)
        row["fingerprint"] = spec.fingerprint()
        cells[proto] = row
        if journal is not None:
            journal.done(proto, row)
    summary = {
        "scenario": scenario.to_dict(),
        "n_procs": n_procs if n_procs is not None else scenario.n_procs,
        "protocols": list(protos),
        "results": cells,
        "ok": all(row.get("ok") for row in cells.values()),
    }
    if store is not None:
        store.save_artifact(artifact_name(scenario.name), summary)
    return summary
