"""Message taxonomy and traffic accounting.

The protocols exchange a small set of message types.  Control messages
carry only a header (their transit cost is hop latency alone, matching
the paper's worked example); data messages additionally serialize a
cache line through the network and the endpoints.
"""

from __future__ import annotations

from collections import Counter
from enum import IntEnum


class MsgType(IntEnum):
    """All message kinds used by the four protocols."""

    READ_REQ = 0          # read miss request to home
    WRITE_REQ = 1         # write miss / upgrade / write-notice request to home
    DATA_REPLY = 2        # home -> requester, carries a line
    ACK = 3               # generic acknowledgment
    INVALIDATE = 4        # eager: home -> sharer, invalidate now
    WRITE_NOTICE = 5      # lazy: home -> sharer, invalidate at next acquire
    FORWARD = 6           # eager: home -> dirty owner, forward request
    OWNER_DATA = 7        # eager: owner -> requester, 3-hop data leg
    WRITEBACK = 8         # dirty data back to home (eviction / sharing wb)
    WRITE_THROUGH = 9     # lazy: coalescing-buffer flush to home memory
    EVICT_NOTICE = 10     # replacement hint to home (no data)
    RELINQUISH = 11       # lazy: "no longer caching" after acquire-invalidate
    LOCK_REQ = 12
    LOCK_GRANT = 13
    LOCK_RELEASE = 14
    BARRIER_ARRIVE = 15
    BARRIER_EXIT = 16
    FLAG_SET = 17         # producer: release semantics done, set the flag
    FLAG_WAIT = 18        # consumer: block until the flag is set
    FLAG_GRANT = 19       # home -> consumer, flag observed set
    RD_ACK = 20           # reliable-delivery cumulative ack (faults only)
    TS_BUMP = 21          # tardis: advance a block's write timestamp at home


#: Message types that carry a full cache line of payload.
DATA_BEARING = frozenset(
    {MsgType.DATA_REPLY, MsgType.OWNER_DATA, MsgType.WRITEBACK}
)


#: Reliable-delivery / fault-injection counters (kept separate from the
#: per-type logical counters so the paper-figure bandwidth numbers keep
#: meaning "messages the protocol asked for"; all zero when faults are
#: off).
RELIABILITY_COUNTERS = (
    "retransmits",      # extra physical transmissions after a timeout
    "dup_drops",        # arrivals discarded by receiver-side dedup
    "drops_injected",   # messages the fault plan lost in flight
    "dups_injected",    # duplicate copies the fault plan created
    "delays_injected",  # messages given extra transit jitter
)


class MessageStats:
    """Global traffic counters, by message type."""

    __slots__ = ("count", "bytes", "total_hops") + RELIABILITY_COUNTERS

    def __init__(self) -> None:
        self.count: Counter = Counter()
        self.bytes: Counter = Counter()
        self.total_hops: int = 0
        self.retransmits: int = 0
        self.dup_drops: int = 0
        self.drops_injected: int = 0
        self.dups_injected: int = 0
        self.delays_injected: int = 0

    def record(self, mtype: MsgType, size: int, hops: int) -> None:
        self.count[mtype] += 1
        self.bytes[mtype] += size
        self.total_hops += hops

    @property
    def total_messages(self) -> int:
        return sum(self.count.values())

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes.values())

    def as_dict(self) -> dict:
        return {
            MsgType(k).name: (self.count[k], self.bytes[k]) for k in self.count
        }

    # -- serialization (result store) -----------------------------------------

    def to_dict(self) -> dict:
        return {
            "count": {MsgType(k).name: v for k, v in self.count.items()},
            "bytes": {MsgType(k).name: v for k, v in self.bytes.items()},
            "total_hops": self.total_hops,
            "reliability": {
                name: getattr(self, name) for name in RELIABILITY_COUNTERS
            },
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MessageStats":
        s = cls()
        s.count = Counter({MsgType[k]: v for k, v in d["count"].items()})
        s.bytes = Counter({MsgType[k]: v for k, v in d["bytes"].items()})
        s.total_hops = d["total_hops"]
        # Absent in results stored before the fault subsystem existed.
        rel = d.get("reliability") or {}
        for name in RELIABILITY_COUNTERS:
            setattr(s, name, rel.get(name, 0))
        return s
