"""2-D mesh topology with dimension-order routing.

Only hop *counts* matter for timing (the paper models contention at the
endpoints of a message, not at intermediate switches), but the full
dimension-order route is exposed for tests and for the optional
per-switch traffic census used by the network-utilization report.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.config import SystemConfig


class Mesh:
    """A ``w x h`` mesh of nodes numbered row-major."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.width, self.height = config.mesh_dims
        self.n = config.n_procs
        if self.width * self.height != self.n:
            raise ValueError("mesh dimensions do not cover all nodes")
        # Precompute the full hop-count matrix once; it is read on every
        # message send, so a flat list lookup beats recomputing Manhattan
        # distance (guide: hoist work out of hot loops).
        w = self.width
        self._hops: List[int] = [0] * (self.n * self.n)
        for s in range(self.n):
            sx, sy = s % w, s // w
            base = s * self.n
            for d in range(self.n):
                self._hops[base + d] = abs(sx - d % w) + abs(sy - d // w)

    def coords(self, node: int) -> Tuple[int, int]:
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        return y * self.width + x

    def hops(self, src: int, dst: int) -> int:
        return self._hops[src * self.n + dst]

    def route(self, src: int, dst: int) -> Iterator[int]:
        """Dimension-order (X then Y) route, yielding intermediate nodes.

        Yields every node on the path from ``src`` to ``dst`` inclusive.
        """
        x, y = self.coords(src)
        dx, dy = self.coords(dst)
        yield src
        while x != dx:
            x += 1 if dx > x else -1
            yield self.node_at(x, y)
        while y != dy:
            y += 1 if dy > y else -1
            yield self.node_at(x, y)

    def average_distance(self) -> float:
        """Mean hop count over all ordered pairs of distinct nodes."""
        if self.n == 1:
            return 0.0
        total = sum(self._hops)
        return total / (self.n * (self.n - 1))
