"""Mesh interconnect: topology, message bookkeeping, and the fabric."""

from repro.network.fabric import Fabric
from repro.network.messages import MessageStats, MsgType

__all__ = ["Fabric", "MessageStats", "MsgType"]
