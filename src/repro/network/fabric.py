"""The interconnect fabric: endpoint-contended message delivery.

Timing model (Section 3 of the paper):

* transit of a control message  = ``(switch + wire) * hops``
* transit of a data message     = ``(switch + wire) * hops + size / net_bw``
* contention is modeled at the sending and receiving network interfaces
  (serially-occupied resources), not at intermediate switches.

A message injected at time ``t`` starts leaving the source NIC at
``max(t, nic_out.free_at)``; its tail occupies the NIC for the
serialization time; it arrives at the destination after the transit
latency; and it is handed to the destination protocol processor no
earlier than the receive NIC frees up.

Delivery is two-phase, and the phase split is what makes the schedule
*partition-independent* (DESIGN.md §14): the send books only the source
NIC and computes the wire-arrival time; the receive NIC is booked by an
arrival event carried on the remote lane of the event queue, keyed
``(arrival, src, src_seq)``.  Receive-side contention is therefore
resolved in canonical arrival order — never in the order sends happened
to execute — so a sharded run books the destination NIC in exactly the
serial order.
"""

from __future__ import annotations

from typing import Any, Callable, List

from repro.config import SystemConfig
from repro.engine.resource import Resource
from repro.engine.simulator import Simulator
from repro.network.messages import DATA_BEARING, MessageStats, MsgType
from repro.network.topology import Mesh


class Fabric:
    """Point-to-point message delivery over the mesh.

    Each endpoint has two virtual channels — control and data — so small
    coherence requests never serialize behind line-sized transfers (the
    request/reply network split of DASH-class machines).  Contention is
    modeled within each channel.
    """

    def __init__(self, config: SystemConfig, sim: Simulator) -> None:
        self.config = config
        self.sim = sim
        self.mesh = Mesh(config)
        self.stats = MessageStats()
        n = config.n_procs
        self.nic_out: List[Resource] = [Resource(f"nic_out[{i}]") for i in range(n)]
        self.nic_in: List[Resource] = [Resource(f"nic_in[{i}]") for i in range(n)]
        self.nic_out_ctl: List[Resource] = [
            Resource(f"nic_out_ctl[{i}]") for i in range(n)
        ]
        self.nic_in_ctl: List[Resource] = [
            Resource(f"nic_in_ctl[{i}]") for i in range(n)
        ]
        # Per-source send counters: the canonical remote-lane tie-break.
        # Incremented in the sender's own (deterministic) execution order,
        # so the key never depends on cross-node event interleaving.
        self._sseq: List[int] = [0] * n
        # Hot-path constants hoisted out of send().
        self._hop_lat = config.hop_latency
        self._line = config.line_size
        # Event tracer (set by Machine when tracing is on).
        self.tracer = None

    def payload_size(self, mtype: MsgType) -> int:
        return self._line if mtype in DATA_BEARING else 0

    def send(
        self,
        src: int,
        dst: int,
        mtype: MsgType,
        t: int,
        handler: Callable,
        *args: Any,
        size: int = -1,
    ) -> int:
        """Send a message; schedule ``handler(deliver_time, *args)``.

        ``size`` overrides the payload size implied by the message type
        (used by coalescing-buffer flushes, which carry only the dirty
        words).  Returns the wire-arrival time (local sends: ``t``); the
        exact hand-off time additionally waits out receive-NIC
        contention, resolved at arrival.
        """
        cfg = self.config
        if size < 0:
            size = self._line if mtype in DATA_BEARING else 0
        if src == dst:
            # Local delivery: no network traversal, only the protocol
            # processor hand-off (modeled by the handler's own costs).
            self.stats.record(mtype, size, 0)
            if self.tracer is not None:
                self.tracer.emit(
                    "msg", src, t=t, dst=dst, type=mtype.name, size=size,
                    arrival=t,
                )
            self.sim.at(t, handler, t, *args)
            return t
        occ = cfg.nic_occupancy(size)
        hops = self.mesh.hops(src, dst)
        if size:
            start = self.nic_out[src].enqueue(t, occ)
            arrival = start + self._hop_lat * hops + occ
            nic_in = self.nic_in[dst]
        else:
            start = self.nic_out_ctl[src].enqueue(t, occ)
            arrival = start + self._hop_lat * hops
            nic_in = self.nic_in_ctl[dst]
        self.stats.record(mtype, size, hops)
        if self.tracer is not None:
            self.tracer.emit(
                "msg", src, t=t, dst=dst, type=mtype.name, size=size,
                arrival=arrival,
            )
        sseq = self._sseq[src]
        self._sseq[src] = sseq + 1
        self.sim.deliver_remote(
            arrival, src, sseq, dst, self._arrive, nic_in, occ, handler, args
        )
        return arrival

    def _arrive(
        self, nic_in: Resource, occ: int, handler: Callable, args: tuple
    ) -> None:
        """Arrival phase: book the receive NIC, then hand off.

        Runs at the destination (in sharded mode: in the destination's
        shard), so the receive NIC is contended in canonical arrival
        order regardless of where the send executed.
        """
        t = self.sim.now
        deliver = nic_in.enqueue(t, occ)
        if deliver == t:
            handler(t, *args)
        else:
            self.sim.at(deliver, handler, deliver, *args)

    def utilization(self) -> dict:
        """Per-endpoint busy fractions at the current simulated time."""
        now = max(self.sim.now, 1)
        return {
            "out": [r.busy_cycles / now for r in self.nic_out],
            "in": [r.busy_cycles / now for r in self.nic_in],
        }


class ShardBoundary:
    """Cross-shard delivery proxy for the sharded scheduler.

    Remote deliveries whose destination lives in another shard are
    queued here — with their canonical ``(arrival, src, src_seq)`` keys
    already assigned — and drained into the destination shards' event
    queues at the epoch barrier.  The conservative window guarantees
    every queued arrival is at or beyond the next epoch's start, so
    draining at the barrier can never deliver into a shard's past.
    """

    __slots__ = ("pending", "count")

    def __init__(self, n_shards: int) -> None:
        self.pending: List[list] = [[] for _ in range(n_shards)]
        self.count = 0

    def route(
        self,
        dst_shard: int,
        time: int,
        src: int,
        src_seq: int,
        callback: Callable,
        args: tuple,
    ) -> None:
        self.pending[dst_shard].append((time, src, src_seq, callback, args))
        self.count += 1

    def exchange(self, queues) -> None:
        """Drain every queued cross-shard arrival into its shard's queue."""
        if not self.count:
            return
        for queue, recs in zip(queues, self.pending):
            if recs:
                for time, src, src_seq, callback, args in recs:
                    queue.push_remote(time, src, src_seq, callback, args)
                recs.clear()
        self.count = 0
