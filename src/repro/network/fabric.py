"""The interconnect fabric: endpoint-contended message delivery.

Timing model (Section 3 of the paper):

* transit of a control message  = ``(switch + wire) * hops``
* transit of a data message     = ``(switch + wire) * hops + size / net_bw``
* contention is modeled at the sending and receiving network interfaces
  (serially-occupied resources), not at intermediate switches.

A message injected at time ``t`` starts leaving the source NIC at
``max(t, nic_out.free_at)``; its tail occupies the NIC for the
serialization time; it arrives at the destination after the transit
latency; and it is handed to the destination protocol processor no
earlier than the receive NIC frees up.
"""

from __future__ import annotations

from typing import Any, Callable, List

from repro.config import SystemConfig
from repro.engine.resource import Resource
from repro.engine.simulator import Simulator
from repro.network.messages import DATA_BEARING, MessageStats, MsgType
from repro.network.topology import Mesh


class Fabric:
    """Point-to-point message delivery over the mesh.

    Each endpoint has two virtual channels — control and data — so small
    coherence requests never serialize behind line-sized transfers (the
    request/reply network split of DASH-class machines).  Contention is
    modeled within each channel.
    """

    def __init__(self, config: SystemConfig, sim: Simulator) -> None:
        self.config = config
        self.sim = sim
        self.mesh = Mesh(config)
        self.stats = MessageStats()
        n = config.n_procs
        self.nic_out: List[Resource] = [Resource(f"nic_out[{i}]") for i in range(n)]
        self.nic_in: List[Resource] = [Resource(f"nic_in[{i}]") for i in range(n)]
        self.nic_out_ctl: List[Resource] = [
            Resource(f"nic_out_ctl[{i}]") for i in range(n)
        ]
        self.nic_in_ctl: List[Resource] = [
            Resource(f"nic_in_ctl[{i}]") for i in range(n)
        ]
        # Hot-path constants hoisted out of send().
        self._hop_lat = config.hop_latency
        self._line = config.line_size
        # Event tracer (set by Machine when tracing is on).
        self.tracer = None

    def payload_size(self, mtype: MsgType) -> int:
        return self._line if mtype in DATA_BEARING else 0

    def send(
        self,
        src: int,
        dst: int,
        mtype: MsgType,
        t: int,
        handler: Callable,
        *args: Any,
        size: int = -1,
    ) -> int:
        """Send a message; schedule ``handler(deliver_time, *args)``.

        ``size`` overrides the payload size implied by the message type
        (used by coalescing-buffer flushes, which carry only the dirty
        words).  Returns the delivery time (for callers that want to
        chain bookkeeping without waiting for the event).
        """
        cfg = self.config
        if size < 0:
            size = self._line if mtype in DATA_BEARING else 0
        occ = cfg.nic_occupancy(size)
        if src == dst:
            # Local delivery: no network traversal, only the protocol
            # processor hand-off (modeled by the handler's own costs).
            deliver = t
            self.stats.record(mtype, size, 0)
        else:
            hops = self.mesh.hops(src, dst)
            if size:
                start = self.nic_out[src].enqueue(t, occ)
                arrival = start + self._hop_lat * hops + occ
                deliver = self.nic_in[dst].enqueue(arrival, occ)
            else:
                start = self.nic_out_ctl[src].enqueue(t, occ)
                arrival = start + self._hop_lat * hops
                deliver = self.nic_in_ctl[dst].enqueue(arrival, occ)
            self.stats.record(mtype, size, hops)
        if self.tracer is not None:
            self.tracer.emit(
                "msg", src, t=t, dst=dst, type=mtype.name, size=size,
                deliver=deliver,
            )
        self.sim.at(deliver, handler, deliver, *args)
        return deliver

    def utilization(self) -> dict:
        """Per-endpoint busy fractions at the current simulated time."""
        now = max(self.sim.now, 1)
        return {
            "out": [r.busy_cycles / now for r in self.nic_out],
            "in": [r.busy_cycles / now for r in self.nic_in],
        }
