"""Experiment harness: regenerates every table and figure of the paper."""

from repro.harness.presets import APP_PRESETS, bench_config, future_config
from repro.harness.spec import ExperimentSpec
from repro.harness.runner import ExperimentError, run_parallel, run_serial
from repro.harness.experiments import (
    ARTIFACT_KEYS,
    all_artifact_specs,
    artifact_specs,
    clear_cache,
    figure4_normalized_time,
    figure5_breakdown,
    figure6_lazier,
    figure7_lazier_breakdown,
    figure8_future,
    figure9_future_breakdown,
    prefetch,
    run_experiment,
    run_spec,
    sensitivity_sweep,
    table1,
    table2_miss_classification,
    table3_miss_rates,
)

__all__ = [
    "APP_PRESETS",
    "ARTIFACT_KEYS",
    "ExperimentError",
    "ExperimentSpec",
    "all_artifact_specs",
    "artifact_specs",
    "bench_config",
    "clear_cache",
    "figure4_normalized_time",
    "figure5_breakdown",
    "figure6_lazier",
    "figure7_lazier_breakdown",
    "figure8_future",
    "figure9_future_breakdown",
    "future_config",
    "prefetch",
    "run_experiment",
    "run_parallel",
    "run_serial",
    "run_spec",
    "sensitivity_sweep",
    "table1",
    "table2_miss_classification",
    "table3_miss_rates",
]
