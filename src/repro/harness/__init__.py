"""Experiment harness: regenerates every table and figure of the paper."""

from repro.harness.presets import APP_PRESETS, bench_config, future_config
from repro.harness.experiments import (
    run_experiment,
    table1,
    table2_miss_classification,
    table3_miss_rates,
    figure4_normalized_time,
    figure5_breakdown,
    figure6_lazier,
    figure7_lazier_breakdown,
    figure8_future,
    figure9_future_breakdown,
    sensitivity_sweep,
    clear_cache,
)

__all__ = [
    "APP_PRESETS",
    "bench_config",
    "future_config",
    "run_experiment",
    "table1",
    "table2_miss_classification",
    "table3_miss_rates",
    "figure4_normalized_time",
    "figure5_breakdown",
    "figure6_lazier",
    "figure7_lazier_breakdown",
    "figure8_future",
    "figure9_future_breakdown",
    "sensitivity_sweep",
    "clear_cache",
]
