"""Parallel experiment engine.

Fans a list of :class:`ExperimentSpec` out across a pool of worker
*processes* (the simulator is pure Python, so threads would serialize on
the GIL).  Each worker runs one spec on a fresh machine and writes the
result into a shared on-disk :class:`ResultStore`; the parent collects
results back out of the store, which doubles as the IPC channel and
leaves every run warm for future sessions.

Fault model, per job:

* **store hit** — served without spawning a worker;
* **timeout** — the worker is terminated and the job retried once;
* **crash** (non-zero exit, killed, or result missing from the store) —
  retried once;
* a job that fails after its retry raises :class:`ExperimentError` and
  the remaining workers are torn down.

Determinism: workers inherit nothing mutable — a spec is pure data and
``spec.run()`` is a pure function of it (fixed seeds, DESIGN.md §7) —
so parallel, serial and cached runs produce bit-identical cycle counts.
Progress is logged on the ``repro.runner`` logger.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import os
import tempfile
import time
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.machine import RunResult
from repro.harness.spec import ExperimentSpec
from repro.results.store import ResultStore

logger = logging.getLogger("repro.runner")

#: Poll interval of the supervisor loop, seconds.
_POLL = 0.02


class ExperimentError(RuntimeError):
    """A job failed (crash or timeout) even after its retry."""


def _pool_context():
    """Fork where available (cheap, Linux); spawn otherwise."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _worker(spec_dict: dict, store_root: str) -> None:
    """Worker entry point: run one spec, persist the result, exit 0."""
    spec = ExperimentSpec.from_dict(spec_dict)
    result = spec.run()
    ResultStore(store_root).save(spec, result)


def _dedupe(specs: Iterable[ExperimentSpec]) -> List[ExperimentSpec]:
    return list(dict.fromkeys(specs))


def default_jobs() -> int:
    return os.cpu_count() or 1


def run_serial(
    specs: Sequence[ExperimentSpec],
    store: Optional[ResultStore] = None,
) -> Dict[ExperimentSpec, RunResult]:
    """In-process baseline: same store protocol, no pool."""
    specs = _dedupe(specs)
    results: Dict[ExperimentSpec, RunResult] = {}
    for i, spec in enumerate(specs, 1):
        hit = store.load(spec) if store is not None else None
        if hit is not None:
            results[spec] = hit
            logger.info("[%d/%d] %s (store hit)", i, len(specs), spec.label())
            continue
        t0 = time.monotonic()
        result = spec.run()
        if store is not None:
            store.save(spec, result)
        results[spec] = result
        logger.info(
            "[%d/%d] %s %.1fs", i, len(specs), spec.label(), time.monotonic() - t0
        )
    return results


def run_parallel(
    specs: Sequence[ExperimentSpec],
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
) -> Dict[ExperimentSpec, RunResult]:
    """Run every spec, fanned out over ``jobs`` worker processes.

    Returns ``{spec: RunResult}`` covering every input spec.  ``timeout``
    is per job, in seconds, and is honored even when the fan-out degrades
    to a single worker (``jobs <= 1`` or one spec): the job still runs in
    a supervised subprocess so a hang fails — with the same retry policy —
    instead of blocking the parent forever.  Only with no ``timeout`` does
    the degraded path fall back to the in-process :func:`run_serial`.
    When ``store`` is None a throwaway store in a temp directory carries
    results between workers and parent.
    """
    specs = _dedupe(specs)
    jobs = default_jobs() if jobs is None else jobs
    if jobs <= 1 or len(specs) <= 1:
        if timeout is None:
            return run_serial(specs, store=store)
        # A timeout needs a killable worker: supervise with one slot
        # rather than silently dropping the timeout/retry guarantees.
        jobs = 1
    if store is None:
        with tempfile.TemporaryDirectory(prefix="repro-results-") as tmp:
            return _supervise(specs, jobs, ResultStore(tmp), timeout, retries)
    return _supervise(specs, jobs, store, timeout, retries)


def _supervise(
    specs: List[ExperimentSpec],
    jobs: int,
    store: ResultStore,
    timeout: Optional[float],
    retries: int,
) -> Dict[ExperimentSpec, RunResult]:
    ctx = _pool_context()
    total = len(specs)
    results: Dict[ExperimentSpec, RunResult] = {}

    # Warm entries never cost a worker.
    pending: deque = deque()  # (spec, attempts_so_far)
    done = 0
    for spec in specs:
        hit = store.load(spec)
        if hit is not None:
            results[spec] = hit
            done += 1
            logger.info("[%d/%d] %s (store hit)", done, total, spec.label())
        else:
            pending.append((spec, 0))

    running: Dict[mp.process.BaseProcess, tuple] = {}  # proc -> (spec, attempts, t0)

    def _launch(spec: ExperimentSpec, attempts: int) -> None:
        proc = ctx.Process(
            target=_worker, args=(spec.to_dict(), str(store.root)), daemon=True
        )
        proc.start()
        running[proc] = (spec, attempts, time.monotonic())

    def _teardown() -> None:
        for proc in running:
            if proc.is_alive():
                proc.terminate()
            proc.join()

    try:
        while pending or running:
            while pending and len(running) < jobs:
                spec, attempts = pending.popleft()
                _launch(spec, attempts)
            time.sleep(_POLL)
            for proc in list(running):
                spec, attempts, t0 = running[proc]
                elapsed = time.monotonic() - t0
                if proc.is_alive():
                    if timeout is not None and elapsed > timeout:
                        proc.terminate()
                        proc.join()
                        failure = f"timed out after {timeout:.0f}s"
                    else:
                        continue
                else:
                    proc.join()
                    if proc.exitcode == 0:
                        result = store.load(spec)
                        if result is not None:
                            del running[proc]
                            results[spec] = result
                            done += 1
                            logger.info(
                                "[%d/%d] %s %.1fs",
                                done, total, spec.label(), elapsed,
                            )
                            continue
                        failure = "worker exited cleanly but stored no result"
                    else:
                        failure = f"worker died (exit code {proc.exitcode})"
                del running[proc]
                if attempts < retries:
                    logger.warning(
                        "%s: %s; retrying (%d/%d)",
                        spec.label(), failure, attempts + 1, retries,
                    )
                    pending.append((spec, attempts + 1))
                else:
                    raise ExperimentError(
                        f"{spec.label()}: {failure} after {attempts + 1} attempts"
                    )
    finally:
        _teardown()
    return results
