"""Parallel experiment engine.

Fans a list of :class:`ExperimentSpec` out across a pool of worker
*processes* (the simulator is pure Python, so threads would serialize on
the GIL).  Each worker runs one spec on a fresh machine and writes the
result into a shared on-disk :class:`ResultStore`; the parent collects
results back out of the store, which doubles as the IPC channel and
leaves every run warm for future sessions.

Fault model, per job:

* **store hit** — served without spawning a worker;
* **timeout** — the worker is *killed* (terminate, then SIGKILL if it
  lingers) and the job retried once;
* **crash** (non-zero exit, killed, or result missing from the store) —
  retried once;
* **structured failure** — the worker caught the exception itself
  (stall watchdog, retransmit cap, invariant violation, ...) and
  persisted a :class:`RunFailure` before exiting; deterministic, so it
  is *not* retried;
* a job that still has no result is persisted as a :class:`RunFailure`
  and then either raised as :class:`ExperimentError`
  (``on_failure="raise"``, the default) or logged and skipped
  (``on_failure="record"``), leaving the rest of the sweep to finish.

Workers run with the simulation stall watchdog enabled
(``REPRO_STALL_CYCLES``, default :data:`DEFAULT_STALL_CYCLES` unless the
caller pinned it), so a livelocked spec becomes a recorded failure, not
a hung pool.

Determinism: workers inherit nothing mutable — a spec is pure data and
``spec.run()`` is a pure function of it (fixed seeds, DESIGN.md §7) —
so parallel, serial and cached runs produce bit-identical cycle counts.
Progress is logged on the ``repro.runner`` logger.
"""

from __future__ import annotations

import atexit
import logging
import multiprocessing as mp
import os
import random
import signal
import tempfile
import threading
import time
import weakref
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.machine import RunResult
from repro.faults.watchdog import DEFAULT_STALL_CYCLES, ENV_STALL_CYCLES
from repro.harness.spec import ExperimentSpec
from repro.results.store import ResultStore, RunFailure

logger = logging.getLogger("repro.runner")

#: Poll interval of the supervisor loop, seconds.
_POLL = 0.02

#: Exit code a worker uses after persisting a structured RunFailure.
FAILURE_EXIT = 3

#: Grace period between terminate() and SIGKILL, seconds.
_KILL_GRACE = 5.0

#: Base delay of the jittered exponential backoff between retries of a
#: crashed/timed-out job, seconds (doubled per attempt, capped below).
RETRY_BACKOFF_BASE = 0.25

#: Ceiling on the retry backoff delay, seconds.
RETRY_BACKOFF_CAP = 5.0


def retry_delay(attempts: int, rng=random) -> float:
    """Jittered exponential backoff before retry number ``attempts``.

    A worker that crashed from a transient cause (OOM kill under
    memory pressure, a timeout on a loaded box) is *more* likely to
    crash again immediately; backing off — with jitter, so a whole
    pool's retries don't re-land in lockstep — gives the machine room.
    """
    base = min(RETRY_BACKOFF_CAP, RETRY_BACKOFF_BASE * (2 ** max(0, attempts - 1)))
    return base * (0.5 + rng.random())


# -- orphan reaping -----------------------------------------------------------
#
# Worker processes are daemonic, which covers a *clean* interpreter
# exit; a parent killed by SIGTERM (CI cancellation, a batch scheduler's
# preemption) would still strand CPU-burning orphans.  Every launched
# worker is registered here, and a process-wide atexit + SIGTERM hook
# reaps whatever is still alive.

_ORPHANS: "weakref.WeakSet" = weakref.WeakSet()
_REAPER_LOCK = threading.Lock()
_REAPER_INSTALLED = False


def _reap_orphans(*_args) -> None:
    for proc in list(_ORPHANS):
        try:
            _kill(proc)
        except Exception:
            pass


def _install_reaper() -> None:
    """Idempotently install the atexit/SIGTERM orphan reaper."""
    global _REAPER_INSTALLED
    with _REAPER_LOCK:
        if _REAPER_INSTALLED:
            return
        _REAPER_INSTALLED = True
    atexit.register(_reap_orphans)
    try:
        prev = signal.getsignal(signal.SIGTERM)

        def _on_term(signum, frame):
            _reap_orphans()
            if callable(prev) and prev not in (signal.SIG_IGN, signal.SIG_DFL):
                prev(signum, frame)
            else:
                signal.signal(signal.SIGTERM, signal.SIG_DFL)
                os.kill(os.getpid(), signal.SIGTERM)

        signal.signal(signal.SIGTERM, _on_term)
    except (ValueError, OSError):
        # Not the main thread (or an embedded interpreter): the atexit
        # hook still covers normal termination.
        pass


class ExperimentError(RuntimeError):
    """A job failed (crash, stall, or timeout) even after its retry."""


def _pool_context():
    """Fork where available (cheap, Linux); spawn otherwise."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def _worker(spec_dict: dict, store_root: str) -> None:
    """Worker entry: run one spec, persist the result (or the failure).

    The stall watchdog is enabled by default so a livelocked simulation
    raises :class:`~repro.faults.watchdog.SimulationStall` instead of
    hanging; any exception is persisted as a :class:`RunFailure` and
    signalled to the supervisor with :data:`FAILURE_EXIT`.
    """
    os.environ.setdefault(ENV_STALL_CYCLES, str(DEFAULT_STALL_CYCLES))
    spec = ExperimentSpec.from_dict(spec_dict)
    store = ResultStore(store_root)
    try:
        from repro.harness.spec import resolve_engine

        if resolve_engine() == "replay":
            # Warm the recorded stream through the pool's shared store,
            # so a sweep pays each app's record phase once across all
            # workers instead of once per worker process.
            spec.recorded_stream(store=store)
        result = spec.run()
    except Exception as exc:
        store.save_failure(spec, RunFailure.from_exception(spec, exc))
        raise SystemExit(FAILURE_EXIT)
    store.save(spec, result)


def _kill(proc) -> None:
    """Make sure a worker process is dead: terminate, then SIGKILL."""
    if proc.is_alive():
        proc.terminate()
        proc.join(_KILL_GRACE)
        if proc.is_alive():
            proc.kill()
    proc.join()


def _dedupe(specs: Iterable[ExperimentSpec]) -> List[ExperimentSpec]:
    return list(dict.fromkeys(specs))


def default_jobs() -> int:
    return os.cpu_count() or 1


def _handle_failure(
    spec: ExperimentSpec,
    failure: RunFailure,
    store: Optional[ResultStore],
    on_failure: str,
    failures_out: Optional[Dict[ExperimentSpec, RunFailure]],
    attempts: int,
) -> None:
    """Persist + record a terminal job failure; raise in "raise" mode."""
    if store is not None and store.load_failure(spec) is None:
        store.save_failure(spec, failure)
    if failures_out is not None:
        failures_out[spec] = failure
    if on_failure == "raise":
        raise ExperimentError(
            f"{spec.label()}: {failure.kind}: {failure.message} "
            f"after {attempts} attempt(s)"
        )
    logger.warning(
        "%s: %s: %s (failure recorded; continuing)",
        spec.label(), failure.kind, failure.message,
    )


def run_serial(
    specs: Sequence[ExperimentSpec],
    store: Optional[ResultStore] = None,
    on_failure: str = "raise",
    failures_out: Optional[Dict[ExperimentSpec, RunFailure]] = None,
) -> Dict[ExperimentSpec, RunResult]:
    """In-process baseline: same store protocol, no pool.

    ``on_failure="raise"`` re-raises the run's exception; ``"record"``
    persists a :class:`RunFailure` and moves on (the failed spec is then
    absent from the returned dict).
    """
    specs = _dedupe(specs)
    results: Dict[ExperimentSpec, RunResult] = {}
    for i, spec in enumerate(specs, 1):
        hit = store.load(spec) if store is not None else None
        if hit is not None:
            results[spec] = hit
            logger.info("[%d/%d] %s (store hit)", i, len(specs), spec.label())
            continue
        t0 = time.monotonic()
        try:
            result = spec.run()
        except Exception as exc:
            failure = RunFailure.from_exception(spec, exc)
            if store is not None:
                store.save_failure(spec, failure)
            if failures_out is not None:
                failures_out[spec] = failure
            if on_failure == "raise":
                raise
            logger.warning(
                "[%d/%d] %s: %s: %s (failure recorded; continuing)",
                i, len(specs), spec.label(), failure.kind, failure.message,
            )
            continue
        if store is not None:
            store.save(spec, result)
        results[spec] = result
        logger.info(
            "[%d/%d] %s %.1fs", i, len(specs), spec.label(), time.monotonic() - t0
        )
    return results


def run_parallel(
    specs: Sequence[ExperimentSpec],
    jobs: Optional[int] = None,
    store: Optional[ResultStore] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    on_failure: str = "raise",
    failures_out: Optional[Dict[ExperimentSpec, RunFailure]] = None,
) -> Dict[ExperimentSpec, RunResult]:
    """Run every spec, fanned out over ``jobs`` worker processes.

    Returns ``{spec: RunResult}``.  ``timeout`` is per job, in seconds,
    and is honored even when the fan-out degrades to a single worker
    (``jobs <= 1`` or one spec): the job still runs in a supervised
    subprocess so a hang fails — with the same retry policy — instead of
    blocking the parent forever.  Only with no ``timeout`` does the
    degraded path fall back to the in-process :func:`run_serial`.

    ``on_failure`` selects what a *terminal* job failure does after its
    :class:`RunFailure` is persisted to the store: ``"raise"`` (default)
    raises :class:`ExperimentError` and tears the pool down;
    ``"record"`` logs, optionally reports via ``failures_out``, and
    keeps going — the failed spec is then simply absent from the result.
    When ``store`` is None a throwaway store in a temp directory carries
    results between workers and parent.
    """
    if on_failure not in ("raise", "record"):
        raise ValueError(f"on_failure must be 'raise' or 'record', got {on_failure!r}")
    specs = _dedupe(specs)
    jobs = default_jobs() if jobs is None else jobs
    if jobs <= 1 or len(specs) <= 1:
        if timeout is None:
            return run_serial(
                specs, store=store, on_failure=on_failure, failures_out=failures_out
            )
        # A timeout needs a killable worker: supervise with one slot
        # rather than silently dropping the timeout/retry guarantees.
        jobs = 1
    if store is None:
        with tempfile.TemporaryDirectory(prefix="repro-results-") as tmp:
            return _supervise(
                specs, jobs, ResultStore(tmp), timeout, retries,
                on_failure, failures_out,
            )
    return _supervise(specs, jobs, store, timeout, retries, on_failure, failures_out)


def _supervise(
    specs: List[ExperimentSpec],
    jobs: int,
    store: ResultStore,
    timeout: Optional[float],
    retries: int,
    on_failure: str,
    failures_out: Optional[Dict[ExperimentSpec, RunFailure]],
) -> Dict[ExperimentSpec, RunResult]:
    ctx = _pool_context()
    _install_reaper()
    total = len(specs)
    results: Dict[ExperimentSpec, RunResult] = {}

    # Warm entries never cost a worker.
    pending: deque = deque()  # (spec, attempts_so_far, not_before)
    done = 0
    for spec in specs:
        hit = store.load(spec)
        if hit is not None:
            results[spec] = hit
            done += 1
            logger.info("[%d/%d] %s (store hit)", done, total, spec.label())
        else:
            pending.append((spec, 0, 0.0))

    running: Dict[mp.process.BaseProcess, tuple] = {}  # proc -> (spec, attempts, t0)

    def _launch(spec: ExperimentSpec, attempts: int) -> None:
        proc = ctx.Process(
            target=_worker, args=(spec.to_dict(), str(store.root)), daemon=True
        )
        proc.start()
        _ORPHANS.add(proc)
        running[proc] = (spec, attempts, time.monotonic())

    def _teardown() -> None:
        for proc in running:
            _kill(proc)
            _ORPHANS.discard(proc)

    try:
        while pending or running:
            # Launch every pending job whose backoff delay (retries
            # only; fresh jobs are immediately ready) has elapsed.
            while pending and len(running) < jobs:
                now = time.monotonic()
                idx = next(
                    (i for i, (_, _, nb) in enumerate(pending) if nb <= now),
                    None,
                )
                if idx is None:
                    break
                spec, attempts, _nb = pending[idx]
                del pending[idx]
                _launch(spec, attempts)
            time.sleep(_POLL)
            for proc in list(running):
                spec, attempts, t0 = running[proc]
                elapsed = time.monotonic() - t0
                failure: Optional[RunFailure] = None
                if proc.is_alive():
                    if timeout is not None and elapsed > timeout:
                        _kill(proc)
                        failure = RunFailure(
                            kind="timeout",
                            message=f"timed out after {timeout:.0f}s",
                            traceback="",
                            fingerprint=spec.fingerprint(),
                            spec=spec.to_dict(),
                        )
                    else:
                        continue
                else:
                    proc.join()
                    if proc.exitcode == 0:
                        result = store.load(spec)
                        if result is not None:
                            del running[proc]
                            _ORPHANS.discard(proc)
                            results[spec] = result
                            done += 1
                            logger.info(
                                "[%d/%d] %s %.1fs",
                                done, total, spec.label(), elapsed,
                            )
                            continue
                        failure = RunFailure(
                            kind="no-result",
                            message="worker exited cleanly but stored no result",
                            traceback="",
                            fingerprint=spec.fingerprint(),
                            spec=spec.to_dict(),
                        )
                    elif proc.exitcode == FAILURE_EXIT:
                        # The worker diagnosed the failure itself (stall,
                        # invariant, ...) and already persisted the record.
                        failure = store.load_failure(spec) or RunFailure(
                            kind="crash",
                            message=f"worker died (exit code {proc.exitcode})",
                            traceback="",
                            fingerprint=spec.fingerprint(),
                            spec=spec.to_dict(),
                        )
                    else:
                        failure = RunFailure(
                            kind="crash",
                            message=f"worker died (exit code {proc.exitcode})",
                            traceback="",
                            fingerprint=spec.fingerprint(),
                            spec=spec.to_dict(),
                        )
                del running[proc]
                _ORPHANS.discard(proc)
                # Structured failures are deterministic — the same spec
                # would stall/violate identically — so retrying only
                # burns a worker.  Crashes and timeouts get the retry.
                retryable = failure.kind in ("timeout", "crash", "no-result")
                if retryable and attempts < retries:
                    delay = retry_delay(attempts + 1)
                    logger.warning(
                        "%s: %s: %s; retrying (%d/%d) in %.2fs",
                        spec.label(), failure.kind, failure.message,
                        attempts + 1, retries, delay,
                    )
                    pending.append((spec, attempts + 1, time.monotonic() + delay))
                else:
                    done += 1
                    _handle_failure(
                        spec, failure, store, on_failure, failures_out,
                        attempts + 1,
                    )
    finally:
        _teardown()
    return results
