"""One entry point per table/figure of the paper.

Every function returns both the raw numbers and a formatted text block
that mirrors the paper's presentation.  All simulations flow through one
currency — :class:`repro.harness.spec.ExperimentSpec` — and one memoized
executor, :func:`run_spec`:

* results are memoized in-process per spec, so the benchmark suite —
  which regenerates several artifacts from the same underlying runs
  (e.g. Figure 4 and Figure 5) — performs each simulation exactly once;
* when a persistent :class:`repro.results.store.ResultStore` is active
  (``REPRO_RESULTS_DIR``, or the ``python -m repro figures`` CLI),
  results are also served from / saved to disk, keyed by
  ``spec.fingerprint()``, making warm re-runs near-instant across
  processes and sessions;
* :func:`prefetch` fans a list of specs out over the parallel runner
  (:mod:`repro.harness.runner`) and warms the memo, so the artifact
  functions below then render from memory.

:func:`run_experiment` remains as a thin keyword-argument wrapper that
builds a spec; the old process-local ``_CACHE`` dict is deprecated —
use :func:`run_spec` / :func:`clear_cache`.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.config import SystemConfig
from repro.core.machine import RunResult
from repro.harness.presets import (
    APP_LABELS,
    APP_ORDER,
    APP_PRESETS,
    APP_PRESETS_SMALL,
    bench_config,
    future_config,
)
from repro.harness.spec import ExperimentSpec
from repro.results.store import ResultStore, default_store
from repro.stats.classification import CATEGORIES

#: In-process memo: spec -> result.  (The deprecated ``_CACHE`` name
#: still resolves to this dict, with a warning — see ``__getattr__``.)
_MEMO: Dict[ExperimentSpec, RunResult] = {}

_UNSET = object()


def __getattr__(name):
    if name == "_CACHE":
        warnings.warn(
            "repro.harness.experiments._CACHE is deprecated; use run_spec()/"
            "clear_cache() and the ExperimentSpec API instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return _MEMO
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def clear_cache() -> None:
    """Drop the in-process memo (the on-disk store is untouched)."""
    _MEMO.clear()


def run_spec(spec: ExperimentSpec, store=_UNSET, engine: Optional[str] = None) -> RunResult:
    """Run (or fetch from memo / store) one experiment spec.

    ``store`` defaults to the process-wide store (active only when
    ``REPRO_RESULTS_DIR`` is set); pass ``None`` to force disk off or a
    :class:`ResultStore` to use a specific directory.

    ``engine`` selects the execution engine (``"replay"`` /
    ``"generator"``, see :data:`repro.harness.spec.ENGINES`); it never
    affects the numbers, so memo and store entries are engine-agnostic.
    """
    hit = _MEMO.get(spec)
    if hit is not None:
        return hit
    if store is _UNSET:
        store = default_store()
    result = store.load(spec) if store is not None else None
    if result is None:
        result = spec.run(engine=engine)
        if store is not None:
            store.save(spec, result)
    _MEMO[spec] = result
    return result


def run_experiment(
    app_name: str,
    protocol: str,
    kind: str = "default",
    n_procs: int = 64,
    classify: bool = False,
    small: bool = False,
    check_invariants: bool = False,
    engine: Optional[str] = None,
    **config_over,
) -> RunResult:
    """Back-compat wrapper: build an :class:`ExperimentSpec` and run it.

    ``kind`` selects the machine: "default" (Table 1 parameters, scaled
    cache) or "future" (Section 4.3).
    """
    spec = ExperimentSpec(
        app=app_name,
        protocol=protocol,
        kind=kind,
        n_procs=n_procs,
        classify=classify,
        small=small,
        overrides=config_over,
        check_invariants=check_invariants,
    )
    return run_spec(spec, engine=engine)


def prefetch(
    specs: Sequence[ExperimentSpec],
    jobs: int = 1,
    store=_UNSET,
    timeout: Optional[float] = None,
    on_failure: str = "raise",
    failures_out=None,
) -> Dict[ExperimentSpec, RunResult]:
    """Warm the memo for ``specs``, in parallel when ``jobs > 1``.

    After this returns, the table/figure functions below render the
    covered artifacts without running any simulation.  With
    ``on_failure="record"`` failed specs are persisted as
    :class:`~repro.results.store.RunFailure` records (and reported via
    ``failures_out``) instead of aborting the sweep; they are then
    absent from the returned dict.
    """
    from repro.harness import runner

    if store is _UNSET:
        store = default_store()
    missing = [s for s in dict.fromkeys(specs) if s not in _MEMO]
    if missing:
        _MEMO.update(
            runner.run_parallel(
                missing, jobs=jobs, store=store, timeout=timeout,
                on_failure=on_failure, failures_out=failures_out,
            )
        )
    return {s: _MEMO[s] for s in specs if s in _MEMO}


# ---------------------------------------------------------------------------
# Artifact -> spec enumeration (drives the CLI and parallel prefetching)
# ---------------------------------------------------------------------------

#: Artifacts the spec enumeration (and ``python -m repro figures``) covers.
ARTIFACT_KEYS = ("t1", "t2", "t3", "f4", "f5", "f6", "f7", "f8", "f9", "sweep")

#: Section 4.3 sweep variants (shared by sensitivity_sweep and the CLI).
SWEEP_VARIANTS = [
    ("baseline", {}),
    ("2x memory latency", {"mem_setup": 40}),
    ("2x bandwidth", {"mem_bw": 4.0, "net_bw": 4.0, "bus_bw": 4.0}),
    ("64-byte lines", {"line_size": 64}),
    ("256-byte lines", {"line_size": 256}),
]

#: Protocols per normalized-time / breakdown artifact ("sc" is always
#: included as the normalization baseline).
_ARTIFACT_PROTOCOLS = {
    "f4": (("sc", "erc", "lrc"), "default"),
    "f5": (("sc", "erc", "lrc"), "default"),
    "f6": (("sc", "lrc", "lrc-ext", "tardis"), "default"),
    "f7": (("sc", "lrc", "lrc-ext", "tardis"), "default"),
    "f8": (("sc", "erc", "lrc", "lrc-ext", "tardis"), "future"),
    "f9": (("sc", "erc", "lrc", "lrc-ext", "tardis"), "future"),
}


def artifact_specs(
    artifact: str, n_procs: int = 64, small: bool = False
) -> List[ExperimentSpec]:
    """The simulation specs needed to render one artifact."""
    if artifact not in ARTIFACT_KEYS:
        raise ValueError(f"unknown artifact {artifact!r} (expected {ARTIFACT_KEYS})")
    if artifact == "t1":
        return []
    if artifact == "t2":
        return [
            ExperimentSpec(app, "erc", n_procs=n_procs, classify=True, small=small)
            for app in APP_ORDER
        ]
    if artifact == "t3":
        return [
            ExperimentSpec(app, proto, n_procs=n_procs, small=small)
            for app in APP_ORDER
            for proto in ("erc", "lrc", "lrc-ext", "tardis")
        ]
    if artifact == "sweep":
        return [
            ExperimentSpec(
                "mp3d", proto, n_procs=min(n_procs, 16), small=small, overrides=over
            )
            for _label, over in SWEEP_VARIANTS
            for proto in ("erc", "lrc")
        ]
    protocols, kind = _ARTIFACT_PROTOCOLS[artifact]
    return [
        ExperimentSpec(app, proto, kind=kind, n_procs=n_procs, small=small)
        for app in APP_ORDER
        for proto in protocols
    ]


def all_artifact_specs(
    artifacts: Optional[Iterable[str]] = None,
    n_procs: int = 64,
    small: bool = False,
) -> List[ExperimentSpec]:
    """Deduplicated union of the specs behind the given artifacts."""
    out: Dict[ExperimentSpec, None] = {}
    for artifact in artifacts if artifacts is not None else ARTIFACT_KEYS:
        for spec in artifact_specs(artifact, n_procs=n_procs, small=small):
            out[spec] = None
    return list(out)


# ---------------------------------------------------------------------------
# Table 1 — system parameters
# ---------------------------------------------------------------------------

def table1() -> str:
    """Render Table 1 and the Section 3 worked example."""
    c = SystemConfig.paper()
    rows = [
        ("Cache line size", f"{c.line_size} bytes"),
        ("Cache size", f"{c.cache_size // 1024} Kbytes direct-mapped"),
        ("Memory setup time", f"{c.mem_setup} cycles"),
        ("Memory bandwidth", f"{c.mem_bw:g} bytes/cycle"),
        ("Bus bandwidth", f"{c.bus_bw:g} bytes/cycle"),
        ("Network bandwidth", f"{c.net_bw:g} bytes/cycle (bidirectional)"),
        ("Switch node latency", f"{c.switch_latency} cycles"),
        ("Wire latency", f"{c.wire_latency} cycle"),
        ("Write Notice Processing", f"{c.notice_cost} cycles"),
        ("LRC Directory access cost", f"{c.lrc_dir_cost} cycles"),
        ("ERC Directory access cost", f"{c.erc_dir_cost} cycles"),
    ]
    width = max(len(r[0]) for r in rows) + 2
    lines = ["Table 1: Default values for system parameters", "-" * 60]
    lines += [f"{k:<{width}}{v}" for k, v in rows]
    # The worked example: 10-hop fill = 272 cycles.
    src, dst = 0, 5 * 8 + 5
    lines.append("-" * 60)
    lines.append(
        f"10-hop uncontended cache fill: {c.transit(src, dst, 0)} + "
        f"{c.memory_time(c.line_size)} + {c.transit(dst, src, c.line_size)} + "
        f"{c.bus_time(c.line_size)} = {c.line_fill_cost(src, dst)} cycles"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 2 — miss classification under eager release consistency
# ---------------------------------------------------------------------------

def table2_miss_classification(n_procs: int = 64, small: bool = False) -> Tuple[Dict, str]:
    data = {}
    for app in APP_ORDER:
        r = run_experiment(app, "erc", n_procs=n_procs, classify=True, small=small)
        data[app] = r.classifier.percentages()
    lines = [
        "Table 2: Classification of misses under eager release consistency",
        f"{'Application':<12} {'Cold':>7} {'True':>7} {'False':>7} {'Evict':>7} {'Write':>7}",
    ]
    for app in APP_ORDER:
        p = data[app]
        lines.append(
            f"{APP_LABELS[app]:<12} "
            f"{p['cold']:>6.1f}% {p['true']:>6.1f}% {p['false']:>6.1f}% "
            f"{p['eviction']:>6.1f}% {p['write']:>6.1f}%"
        )
    return data, "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 3 — miss rates under eager / lazy / lazy-ext
# ---------------------------------------------------------------------------

def table3_miss_rates(n_procs: int = 64, small: bool = False) -> Tuple[Dict, str]:
    data = {}
    for app in APP_ORDER:
        data[app] = {
            proto: run_experiment(app, proto, n_procs=n_procs, small=small).miss_rate
            for proto in ("erc", "lrc", "lrc-ext", "tardis")
        }
    lines = [
        "Table 3: Miss rates for the implementations of release consistency",
        f"{'Application':<12} {'Eager':>8} {'Lazy':>8} {'Lazy-ext':>9} {'Tardis':>8}",
    ]
    for app in APP_ORDER:
        d = data[app]
        lines.append(
            f"{APP_LABELS[app]:<12} {d['erc']*100:>7.2f}% {d['lrc']*100:>7.2f}% "
            f"{d['lrc-ext']*100:>8.2f}% {d['tardis']*100:>7.2f}%"
        )
    return data, "\n".join(lines)


# ---------------------------------------------------------------------------
# Figures 4/6/8 — normalized execution time
# ---------------------------------------------------------------------------

def _normalized_times(
    protocols: List[str], kind: str, n_procs: int, small: bool
) -> Dict[str, Dict[str, float]]:
    data: Dict[str, Dict[str, float]] = {}
    for app in APP_ORDER:
        sc = run_experiment(app, "sc", kind=kind, n_procs=n_procs, small=small)
        row = {"sc": 1.0}
        for proto in protocols:
            r = run_experiment(app, proto, kind=kind, n_procs=n_procs, small=small)
            row[proto] = r.exec_time / sc.exec_time
        data[app] = row
    return data


def _render_times(title: str, data: Dict, protocols: List[str]) -> str:
    lines = [title, f"{'Application':<12}" + "".join(f"{p:>10}" for p in protocols)]
    for app in APP_ORDER:
        lines.append(
            f"{APP_LABELS[app]:<12}"
            + "".join(f"{data[app][p]:>10.3f}" for p in protocols)
        )
    lines.append("(execution time normalized to the sequentially consistent protocol)")
    return "\n".join(lines)


def figure4_normalized_time(n_procs: int = 64, small: bool = False) -> Tuple[Dict, str]:
    data = _normalized_times(["erc", "lrc"], "default", n_procs, small)
    return data, _render_times(
        f"Figure 4: Normalized execution time, lazy vs eager RC ({n_procs} processors)",
        data,
        ["erc", "lrc"],
    )


def figure6_lazier(n_procs: int = 64, small: bool = False) -> Tuple[Dict, str]:
    protos = ["lrc", "lrc-ext", "tardis"]
    data = _normalized_times(protos, "default", n_procs, small)
    return data, _render_times(
        f"Figure 6: Normalized execution time, lazy vs lazy-extended vs tardis "
        f"({n_procs} processors)",
        data,
        protos,
    )


def figure8_future(n_procs: int = 64, small: bool = False) -> Tuple[Dict, str]:
    protos = ["erc", "lrc", "lrc-ext", "tardis"]
    data = _normalized_times(protos, "future", n_procs, small)
    return data, _render_times(
        "Figure 8: Performance trends on the future machine "
        "(40-cycle setup, 4 B/cycle, 256-byte lines)",
        data,
        protos,
    )


# ---------------------------------------------------------------------------
# Figures 5/7/9 — overhead breakdowns
# ---------------------------------------------------------------------------

def _breakdowns(
    protocols: List[str], kind: str, n_procs: int, small: bool
) -> Dict[str, Dict[str, Dict[str, float]]]:
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    for app in APP_ORDER:
        sc = run_experiment(app, "sc", kind=kind, n_procs=n_procs, small=small)
        base = sc.stats.total_cycles
        data[app] = {
            proto: run_experiment(
                app, proto, kind=kind, n_procs=n_procs, small=small
            ).stats.breakdown_normalized(base)
            for proto in protocols
        }
    return data


def _render_breakdown(title: str, data: Dict, protocols: List[str]) -> str:
    lines = [
        title,
        f"{'Application':<12}{'proto':>9}{'cpu':>8}{'read':>8}{'write':>8}{'sync':>8}{'total':>8}",
    ]
    for app in APP_ORDER:
        for proto in protocols:
            b = data[app][proto]
            total = sum(b.values())
            lines.append(
                f"{APP_LABELS[app]:<12}{proto:>9}"
                f"{b['cpu']:>8.3f}{b['read']:>8.3f}{b['write']:>8.3f}{b['sync']:>8.3f}{total:>8.3f}"
            )
    lines.append("(aggregate cycles per bucket as a fraction of the SC protocol's total)")
    return "\n".join(lines)


def figure5_breakdown(n_procs: int = 64, small: bool = False) -> Tuple[Dict, str]:
    protos = ["lrc", "erc", "sc"]
    data = _breakdowns(protos, "default", n_procs, small)
    return data, _render_breakdown(
        f"Figure 5: Overhead analysis, lazy / eager / SC ({n_procs} processors)",
        data,
        protos,
    )


def figure7_lazier_breakdown(n_procs: int = 64, small: bool = False) -> Tuple[Dict, str]:
    protos = ["lrc", "lrc-ext", "tardis", "sc"]
    data = _breakdowns(protos, "default", n_procs, small)
    return data, _render_breakdown(
        f"Figure 7: Overhead analysis, lazy / lazy-extended / SC ({n_procs} processors)",
        data,
        protos,
    )


def figure9_future_breakdown(n_procs: int = 64, small: bool = False) -> Tuple[Dict, str]:
    protos = ["lrc", "lrc-ext", "tardis", "erc", "sc"]
    data = _breakdowns(protos, "future", n_procs, small)
    return data, _render_breakdown(
        "Figure 9: Overhead analysis on the future machine "
        "(lazy / lazier / eager / SC)",
        data,
        protos,
    )


# ---------------------------------------------------------------------------
# Section 4.3 text — latency / bandwidth / line-size sensitivity
# ---------------------------------------------------------------------------

def sensitivity_sweep(
    app: str = "mp3d",
    n_procs: int = 16,
    small: bool = False,
) -> Tuple[List[Dict], str]:
    """The text's parameter sweeps: vary memory latency, bandwidth and
    cache line size; report the lazy/eager execution-time ratio."""
    rows = []
    for label, over in SWEEP_VARIANTS:
        erc = run_experiment(app, "erc", n_procs=n_procs, small=small, **over)
        lrc = run_experiment(app, "lrc", n_procs=n_procs, small=small, **over)
        rows.append(
            {
                "variant": label,
                "ratio": lrc.exec_time / erc.exec_time,
                "erc": erc.exec_time,
                "lrc": lrc.exec_time,
            }
        )
    lines = [
        f"Sensitivity sweep ({APP_LABELS[app]}, {n_procs} processors): lazy/eager time ratio",
        f"{'variant':<20}{'lazy/eager':>12}",
    ]
    for r in rows:
        lines.append(f"{r['variant']:<20}{r['ratio']:>12.3f}")
    return rows, "\n".join(lines)
