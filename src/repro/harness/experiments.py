"""One entry point per table/figure of the paper.

Every function returns both the raw numbers and a formatted text block
that mirrors the paper's presentation.  Simulation results are cached
per (app, protocol, machine-kind, n_procs, classify) within the process,
so the benchmark suite — which regenerates several artifacts from the
same underlying runs (e.g. Figure 4 and Figure 5) — performs each
simulation exactly once.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.apps import APPS
from repro.config import SystemConfig
from repro.core.machine import Machine, RunResult
from repro.harness.presets import (
    APP_LABELS,
    APP_ORDER,
    APP_PRESETS,
    APP_PRESETS_SMALL,
    bench_config,
    future_config,
)
from repro.stats.classification import CATEGORIES

_CACHE: Dict[Tuple, RunResult] = {}


def clear_cache() -> None:
    _CACHE.clear()


def run_experiment(
    app_name: str,
    protocol: str,
    kind: str = "default",
    n_procs: int = 64,
    classify: bool = False,
    small: bool = False,
    **config_over,
) -> RunResult:
    """Run (or fetch from cache) one app under one protocol.

    ``kind`` selects the machine: "default" (Table 1 parameters, scaled
    cache) or "future" (Section 4.3).
    """
    key = (app_name, protocol, kind, n_procs, classify, small, tuple(sorted(config_over.items())))
    hit = _CACHE.get(key)
    if hit is not None:
        return hit
    if kind == "default":
        cfg = bench_config(n_procs=n_procs, **config_over)
    elif kind == "future":
        cfg = future_config(n_procs=n_procs, **config_over)
    else:
        raise ValueError(f"unknown machine kind {kind!r}")
    params = (APP_PRESETS_SMALL if small else APP_PRESETS)[app_name]
    machine = Machine(cfg, protocol=protocol, classify=classify)
    app = APPS[app_name](machine, **params)
    result = machine.run([app.program(p) for p in range(cfg.n_procs)])
    _CACHE[key] = result
    return result


# ---------------------------------------------------------------------------
# Table 1 — system parameters
# ---------------------------------------------------------------------------

def table1() -> str:
    """Render Table 1 and the Section 3 worked example."""
    c = SystemConfig.paper()
    rows = [
        ("Cache line size", f"{c.line_size} bytes"),
        ("Cache size", f"{c.cache_size // 1024} Kbytes direct-mapped"),
        ("Memory setup time", f"{c.mem_setup} cycles"),
        ("Memory bandwidth", f"{c.mem_bw:g} bytes/cycle"),
        ("Bus bandwidth", f"{c.bus_bw:g} bytes/cycle"),
        ("Network bandwidth", f"{c.net_bw:g} bytes/cycle (bidirectional)"),
        ("Switch node latency", f"{c.switch_latency} cycles"),
        ("Wire latency", f"{c.wire_latency} cycle"),
        ("Write Notice Processing", f"{c.notice_cost} cycles"),
        ("LRC Directory access cost", f"{c.lrc_dir_cost} cycles"),
        ("ERC Directory access cost", f"{c.erc_dir_cost} cycles"),
    ]
    width = max(len(r[0]) for r in rows) + 2
    lines = ["Table 1: Default values for system parameters", "-" * 60]
    lines += [f"{k:<{width}}{v}" for k, v in rows]
    # The worked example: 10-hop fill = 272 cycles.
    src, dst = 0, 5 * 8 + 5
    lines.append("-" * 60)
    lines.append(
        f"10-hop uncontended cache fill: {c.transit(src, dst, 0)} + "
        f"{c.memory_time(c.line_size)} + {c.transit(dst, src, c.line_size)} + "
        f"{c.bus_time(c.line_size)} = {c.line_fill_cost(src, dst)} cycles"
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 2 — miss classification under eager release consistency
# ---------------------------------------------------------------------------

def table2_miss_classification(n_procs: int = 64, small: bool = False) -> Tuple[Dict, str]:
    data = {}
    for app in APP_ORDER:
        r = run_experiment(app, "erc", n_procs=n_procs, classify=True, small=small)
        data[app] = r.classifier.percentages()
    lines = [
        "Table 2: Classification of misses under eager release consistency",
        f"{'Application':<12} {'Cold':>7} {'True':>7} {'False':>7} {'Evict':>7} {'Write':>7}",
    ]
    for app in APP_ORDER:
        p = data[app]
        lines.append(
            f"{APP_LABELS[app]:<12} "
            f"{p['cold']:>6.1f}% {p['true']:>6.1f}% {p['false']:>6.1f}% "
            f"{p['eviction']:>6.1f}% {p['write']:>6.1f}%"
        )
    return data, "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 3 — miss rates under eager / lazy / lazy-ext
# ---------------------------------------------------------------------------

def table3_miss_rates(n_procs: int = 64, small: bool = False) -> Tuple[Dict, str]:
    data = {}
    for app in APP_ORDER:
        data[app] = {
            proto: run_experiment(app, proto, n_procs=n_procs, small=small).miss_rate
            for proto in ("erc", "lrc", "lrc-ext")
        }
    lines = [
        "Table 3: Miss rates for the implementations of release consistency",
        f"{'Application':<12} {'Eager':>8} {'Lazy':>8} {'Lazy-ext':>9}",
    ]
    for app in APP_ORDER:
        d = data[app]
        lines.append(
            f"{APP_LABELS[app]:<12} {d['erc']*100:>7.2f}% {d['lrc']*100:>7.2f}% "
            f"{d['lrc-ext']*100:>8.2f}%"
        )
    return data, "\n".join(lines)


# ---------------------------------------------------------------------------
# Figures 4/6/8 — normalized execution time
# ---------------------------------------------------------------------------

def _normalized_times(
    protocols: List[str], kind: str, n_procs: int, small: bool
) -> Dict[str, Dict[str, float]]:
    data: Dict[str, Dict[str, float]] = {}
    for app in APP_ORDER:
        sc = run_experiment(app, "sc", kind=kind, n_procs=n_procs, small=small)
        row = {"sc": 1.0}
        for proto in protocols:
            r = run_experiment(app, proto, kind=kind, n_procs=n_procs, small=small)
            row[proto] = r.exec_time / sc.exec_time
        data[app] = row
    return data


def _render_times(title: str, data: Dict, protocols: List[str]) -> str:
    lines = [title, f"{'Application':<12}" + "".join(f"{p:>10}" for p in protocols)]
    for app in APP_ORDER:
        lines.append(
            f"{APP_LABELS[app]:<12}"
            + "".join(f"{data[app][p]:>10.3f}" for p in protocols)
        )
    lines.append("(execution time normalized to the sequentially consistent protocol)")
    return "\n".join(lines)


def figure4_normalized_time(n_procs: int = 64, small: bool = False) -> Tuple[Dict, str]:
    data = _normalized_times(["erc", "lrc"], "default", n_procs, small)
    return data, _render_times(
        f"Figure 4: Normalized execution time, lazy vs eager RC ({n_procs} processors)",
        data,
        ["erc", "lrc"],
    )


def figure6_lazier(n_procs: int = 64, small: bool = False) -> Tuple[Dict, str]:
    data = _normalized_times(["lrc", "lrc-ext"], "default", n_procs, small)
    return data, _render_times(
        f"Figure 6: Normalized execution time, lazy vs lazy-extended ({n_procs} processors)",
        data,
        ["lrc", "lrc-ext"],
    )


def figure8_future(n_procs: int = 64, small: bool = False) -> Tuple[Dict, str]:
    data = _normalized_times(["erc", "lrc", "lrc-ext"], "future", n_procs, small)
    return data, _render_times(
        "Figure 8: Performance trends on the future machine "
        "(40-cycle setup, 4 B/cycle, 256-byte lines)",
        data,
        ["erc", "lrc", "lrc-ext"],
    )


# ---------------------------------------------------------------------------
# Figures 5/7/9 — overhead breakdowns
# ---------------------------------------------------------------------------

def _breakdowns(
    protocols: List[str], kind: str, n_procs: int, small: bool
) -> Dict[str, Dict[str, Dict[str, float]]]:
    data: Dict[str, Dict[str, Dict[str, float]]] = {}
    for app in APP_ORDER:
        sc = run_experiment(app, "sc", kind=kind, n_procs=n_procs, small=small)
        base = sc.stats.total_cycles
        data[app] = {
            proto: run_experiment(
                app, proto, kind=kind, n_procs=n_procs, small=small
            ).stats.breakdown_normalized(base)
            for proto in protocols
        }
    return data


def _render_breakdown(title: str, data: Dict, protocols: List[str]) -> str:
    lines = [
        title,
        f"{'Application':<12}{'proto':>9}{'cpu':>8}{'read':>8}{'write':>8}{'sync':>8}{'total':>8}",
    ]
    for app in APP_ORDER:
        for proto in protocols:
            b = data[app][proto]
            total = sum(b.values())
            lines.append(
                f"{APP_LABELS[app]:<12}{proto:>9}"
                f"{b['cpu']:>8.3f}{b['read']:>8.3f}{b['write']:>8.3f}{b['sync']:>8.3f}{total:>8.3f}"
            )
    lines.append("(aggregate cycles per bucket as a fraction of the SC protocol's total)")
    return "\n".join(lines)


def figure5_breakdown(n_procs: int = 64, small: bool = False) -> Tuple[Dict, str]:
    protos = ["lrc", "erc", "sc"]
    data = _breakdowns(protos, "default", n_procs, small)
    return data, _render_breakdown(
        f"Figure 5: Overhead analysis, lazy / eager / SC ({n_procs} processors)",
        data,
        protos,
    )


def figure7_lazier_breakdown(n_procs: int = 64, small: bool = False) -> Tuple[Dict, str]:
    protos = ["lrc", "lrc-ext", "sc"]
    data = _breakdowns(protos, "default", n_procs, small)
    return data, _render_breakdown(
        f"Figure 7: Overhead analysis, lazy / lazy-extended / SC ({n_procs} processors)",
        data,
        protos,
    )


def figure9_future_breakdown(n_procs: int = 64, small: bool = False) -> Tuple[Dict, str]:
    protos = ["lrc", "lrc-ext", "erc", "sc"]
    data = _breakdowns(protos, "future", n_procs, small)
    return data, _render_breakdown(
        "Figure 9: Overhead analysis on the future machine "
        "(lazy / lazier / eager / SC)",
        data,
        protos,
    )


# ---------------------------------------------------------------------------
# Section 4.3 text — latency / bandwidth / line-size sensitivity
# ---------------------------------------------------------------------------

def sensitivity_sweep(
    app: str = "mp3d",
    n_procs: int = 16,
    small: bool = False,
) -> Tuple[List[Dict], str]:
    """The text's parameter sweeps: vary memory latency, bandwidth and
    cache line size; report the lazy/eager execution-time ratio."""
    variants = [
        ("baseline", {}),
        ("2x memory latency", {"mem_setup": 40}),
        ("2x bandwidth", {"mem_bw": 4.0, "net_bw": 4.0, "bus_bw": 4.0}),
        ("64-byte lines", {"line_size": 64}),
        ("256-byte lines", {"line_size": 256}),
    ]
    rows = []
    for label, over in variants:
        erc = run_experiment(app, "erc", n_procs=n_procs, small=small, **over)
        lrc = run_experiment(app, "lrc", n_procs=n_procs, small=small, **over)
        rows.append(
            {
                "variant": label,
                "ratio": lrc.exec_time / erc.exec_time,
                "erc": erc.exec_time,
                "lrc": lrc.exec_time,
            }
        )
    lines = [
        f"Sensitivity sweep ({APP_LABELS[app]}, {n_procs} processors): lazy/eager time ratio",
        f"{'variant':<20}{'lazy/eager':>12}",
    ]
    for r in rows:
        lines.append(f"{r['variant']:<20}{r['ratio']:>12.3f}")
    return rows, "\n".join(lines)
