"""Experiment-scale presets.

The paper runs 64 processors with 128 KB caches on SPLASH inputs that
were themselves scaled down for simulation speed ("our input data sizes
for all programs are smaller than what would be run on a real machine.
As a consequence we have also chosen smaller caches").  We apply the
same methodology one more step: 64 processors, 8 KB caches, and inputs
sized so each dataset exceeds the cache by roughly the same ratio the
paper used — capacity/conflict misses stay represented, and a full
experiment suite runs in minutes of pure-Python simulation.

``EXPERIMENT_PROCS`` can be lowered (e.g. in CI) through the harness
functions' ``n_procs`` argument; presets scale per app where needed.
"""

from __future__ import annotations

from repro.config import SystemConfig

EXPERIMENT_PROCS = 64
EXPERIMENT_CACHE = 8 * 1024

#: Paper inputs -> scaled inputs (documented in DESIGN.md / EXPERIMENTS.md).
APP_PRESETS = {
    "gauss": dict(n=128),                     # paper: 448 x 448
    "fft": dict(m=8192),                      # paper: 65536 points
    "blu": dict(n=144, block=12),             # paper: 448 x 448, block 16
    "barnes": dict(bodies=512, steps=2),      # paper: 4096 bodies, 4 steps
    "cholesky": dict(ncols=400, min_nz=48, max_nz=120, band=40),  # paper: bcsstk15
    "locusroute": dict(width=256, height=48, wires=384, passes=2),  # paper: Primary2
    "mp3d": dict(particles=4096, steps=4, cells=4096),  # paper: 40000 x 10
    "fuzz": dict(n_ops=120, mode="auto"),     # conformance fuzzer (DESIGN.md §9)
    # Service-shaped workloads (DESIGN.md §13): internet-service sharing
    # patterns rather than scientific kernels.
    "kvstore": dict(n_keys=512, shards=16, ops=192, theta=0.9,
                    read_frac=0.9, val_words=4),
    "taskqueue": dict(tasks=512, task_words=8, steal_frac=0.25, work=40),
    "pubsub": dict(topics=16, messages=12, msg_words=8, theta=0.8),
}

#: Smaller variants for quick runs / tests of the harness itself.
APP_PRESETS_SMALL = {
    "gauss": dict(n=48),
    "fft": dict(m=1024),
    "blu": dict(n=48, block=12),
    "barnes": dict(bodies=96, steps=1),
    "cholesky": dict(ncols=120, min_nz=24, max_nz=60, band=24),
    "locusroute": dict(width=64, height=16, wires=64, passes=1),
    "mp3d": dict(particles=512, steps=2, cells=256),
    "fuzz": dict(n_ops=48, mode="auto"),
    "kvstore": dict(n_keys=96, shards=4, ops=48, theta=0.9,
                    read_frac=0.9, val_words=4),
    "taskqueue": dict(tasks=96, task_words=8, steal_frac=0.25, work=24),
    "pubsub": dict(topics=6, messages=4, msg_words=8, theta=0.8),
}

APP_ORDER = ["barnes", "blu", "cholesky", "fft", "gauss", "locusroute", "mp3d"]

#: Display names matching the paper's tables.
APP_LABELS = {
    "barnes": "Barnes-Hut",
    "blu": "Blocked-LU",
    "cholesky": "Cholesky",
    "fft": "Fft",
    "gauss": "Gauss",
    "locusroute": "Locusroute",
    "mp3d": "Mp3d",
}


def bench_config(n_procs: int = EXPERIMENT_PROCS, **over) -> SystemConfig:
    """The default-machine config used by Figures 4-7 / Tables 2-3."""
    over.setdefault("cache_size", EXPERIMENT_CACHE)
    return SystemConfig.scaled(n_procs=n_procs, **over)


def future_config(n_procs: int = EXPERIMENT_PROCS, **over) -> SystemConfig:
    """The Section 4.3 future machine (Figures 8-9)."""
    over.setdefault("cache_size", EXPERIMENT_CACHE)
    return SystemConfig.future(n_procs=n_procs, **over)
