"""The experiment currency: a frozen, fingerprintable spec.

:class:`ExperimentSpec` is the single description of "one simulation" that
every layer of the harness shares: the in-process memo, the parallel
runner (which pickles specs across worker processes), the persistent
result store (which files results under ``spec.fingerprint()``), and the
table/figure functions of :mod:`repro.harness.experiments`.

A spec is *pure data* — hashable, comparable, JSON round-trippable — and
:meth:`ExperimentSpec.run` is a pure function of it: the simulator is
deterministic (fixed seeds, FIFO tie-breaking; DESIGN.md §7), so the
same spec always produces bit-identical cycle counts, which is what
makes content-addressed result caching sound.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.faults.plan import FaultPlan

#: Bumped whenever the *meaning* of a spec field changes (fingerprints
#: then no longer collide with results computed under the old meaning).
#: 2: canonical event ordering (two-lane queue, arrival-ordered receive
#: NICs, logged classifier) shifted simulated numbers slightly.
#: 3: canonical sorted write-notice/invalidation send order — sharer and
#: writer sets now notify in node-id order so a checkpointed machine
#: resumes bit-identically (set iteration order does not survive a
#: pickle rebuild); shifted simulated numbers slightly.
SPEC_VERSION = 3

MACHINE_KINDS = ("default", "future")

#: Execution engines a spec can run under.  ``"replay"`` (the default)
#: records the app's reference streams once — content-addressed and
#: cached in the result store — and drives the protocols from packed
#: arrays; ``"generator"`` resumes the app's Python generators per
#: reference, kept for differential testing.  Both produce bit-identical
#: :class:`RunResult` numbers (held to by ``tests/test_replay.py``), so
#: the engine choice is *transient*: it is not a spec field and never
#: enters the fingerprint.  ``REPRO_ENGINE`` in the environment selects
#: the process-wide default.
ENGINES = ("replay", "generator")
ENV_ENGINE = "REPRO_ENGINE"

#: Shard count for the windowed PDES scheduler (DESIGN.md §14).  Sharded
#: runs are bit-identical to serial ones, so — exactly like the engine
#: choice — ``shards`` is transient: not a spec field, never part of the
#: fingerprint, selectable per process via ``REPRO_SHARDS`` or per call
#: via ``spec.run(shards=N)`` / ``--shards`` on the CLI.
ENV_SHARDS = "REPRO_SHARDS"


def resolve_engine(engine=None) -> str:
    """The engine to use: explicit argument, else ``REPRO_ENGINE``, else
    ``"replay"``."""
    import os

    engine = engine or os.environ.get(ENV_ENGINE) or "replay"
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r} (expected one of {ENGINES})"
        )
    return engine


def resolve_shards(shards=None) -> int:
    """Shard count to use: explicit argument, else ``REPRO_SHARDS``,
    else 1 (serial)."""
    import os

    if shards is None:
        env = os.environ.get(ENV_SHARDS, "")
        shards = int(env) if env else 1
    shards = int(shards)
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return shards


@dataclass(frozen=True)
class ExperimentSpec:
    """One (app, protocol, machine) simulation, fully specified.

    ``kind`` selects the machine preset: ``"default"`` (Table 1
    parameters, scaled cache) or ``"future"`` (Section 4.3).
    ``overrides`` holds :class:`repro.config.SystemConfig` field
    overrides; a dict passed at construction is normalized to a sorted
    tuple of pairs so equal specs always hash (and fingerprint) equal.

    ``check_invariants`` runs the coherence-invariant checker
    (:mod:`repro.trace`) during the simulation.  Checking is pure
    observation — it cannot change a single simulated cycle — so the
    field is *transient*: excluded from equality, hashing and
    :meth:`fingerprint`, meaning checked and unchecked runs share one
    result-store slot.  ``REPRO_CHECK_INVARIANTS=1`` in the environment
    forces it on for every :meth:`run`.

    ``faults`` attaches a :class:`~repro.faults.plan.FaultPlan` (also
    accepted as a dict or the CLI string form, e.g. ``"drop=0.02"``).
    Unlike checking, faults *do* change the simulated numbers, so the
    plan is part of equality, hashing and :meth:`fingerprint`; a spec
    without faults fingerprints exactly as it did before the fault
    subsystem existed, keeping old result stores warm.

    ``params`` holds *application*-parameter overrides applied on top of
    the preset selected by ``small`` (the scenario library uses this to
    size workloads without minting new presets).  Like ``overrides`` it
    is normalized to a sorted tuple of pairs; like ``faults`` it is part
    of the fingerprint only when non-empty, so every pre-existing spec
    fingerprints unchanged.
    """

    app: str
    protocol: str
    kind: str = "default"
    n_procs: int = 64
    classify: bool = False
    small: bool = False
    overrides: Tuple[Tuple[str, Any], ...] = field(default=())
    faults: Optional[FaultPlan] = None
    params: Tuple[Tuple[str, Any], ...] = field(default=())
    check_invariants: bool = field(default=False, compare=False)

    #: ``to_dict`` keys that do not affect the simulated numbers and are
    #: therefore excluded from :meth:`fingerprint`.
    TRANSIENT_KEYS = ("check_invariants",)

    def __post_init__(self) -> None:
        over = self.overrides
        if isinstance(over, dict):
            over = over.items()
        object.__setattr__(
            self, "overrides", tuple(sorted((str(k), v) for k, v in over))
        )
        par = self.params
        if isinstance(par, dict):
            par = par.items()
        object.__setattr__(
            self, "params", tuple(sorted((str(k), v) for k, v in par))
        )
        object.__setattr__(self, "faults", FaultPlan.coerce(self.faults))
        if self.kind not in MACHINE_KINDS:
            raise ValueError(
                f"unknown machine kind {self.kind!r} (expected one of {MACHINE_KINDS})"
            )
        from repro.apps import APPS
        from repro.protocols import REGISTRY

        if self.app not in APPS:
            raise ValueError(f"unknown application {self.app!r}")
        if self.protocol not in REGISTRY:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; "
                f"choose from {sorted(REGISTRY)}"
            )
        if self.n_procs < 1:
            raise ValueError("n_procs must be >= 1")

    # -- derived pieces -------------------------------------------------------

    def config(self):
        """The :class:`SystemConfig` this spec describes."""
        from repro.harness.presets import bench_config, future_config

        make = bench_config if self.kind == "default" else future_config
        return make(n_procs=self.n_procs, **dict(self.overrides))

    def app_params(self) -> Dict[str, Any]:
        from repro.harness.presets import APP_PRESETS, APP_PRESETS_SMALL

        base = dict((APP_PRESETS_SMALL if self.small else APP_PRESETS)[self.app])
        base.update(self.params)
        return base

    def with_(self, **changes) -> "ExperimentSpec":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    # -- identity -------------------------------------------------------------

    def fingerprint(self) -> str:
        """Stable content address of this spec (hex, filename-safe).

        SHA-256 over the canonical JSON of the spec fields plus
        ``SPEC_VERSION`` — identical across processes, sessions and
        machines, independent of ``PYTHONHASHSEED``.  Transient fields
        (``TRANSIENT_KEYS``) are excluded: they cannot change the
        simulated numbers, so they must not split the result cache.
        """
        d = {
            k: v
            for k, v in self.to_dict().items()
            if k not in self.TRANSIENT_KEYS
        }
        # A fault-free spec fingerprints exactly as it did before the
        # ``faults`` field existed, so pinned fingerprints and old
        # result stores stay valid; likewise a spec without app-param
        # overrides fingerprints as it did before ``params`` existed.
        if d.get("faults") is None:
            d.pop("faults", None)
        else:
            # Harness-level chaos (worker_kill) perturbs the scheduler's
            # workers, never the simulated numbers — recovery is
            # bit-identical — so it must not split the result cache.  A
            # plan that was *only* chaos (the stripped residue is the
            # default, inert plan) fingerprints as no faults at all.
            d["faults"] = {
                k: v for k, v in d["faults"].items() if k != "worker_kill"
            }
            from repro.faults.plan import FaultPlan

            if d["faults"] == FaultPlan().to_dict():
                d.pop("faults")
        if not d.get("params"):
            d.pop("params", None)
        canon = json.dumps(
            {"spec_version": SPEC_VERSION, **d},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canon.encode()).hexdigest()[:24]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "app": self.app,
            "protocol": self.protocol,
            "kind": self.kind,
            "n_procs": self.n_procs,
            "classify": self.classify,
            "small": self.small,
            "overrides": [[k, v] for k, v in self.overrides],
            "faults": self.faults.to_dict() if self.faults is not None else None,
            "params": [[k, v] for k, v in self.params],
            "check_invariants": self.check_invariants,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ExperimentSpec":
        return cls(
            app=d["app"],
            protocol=d["protocol"],
            kind=d["kind"],
            n_procs=d["n_procs"],
            classify=d["classify"],
            small=d["small"],
            overrides=tuple((k, v) for k, v in d["overrides"]),
            faults=d.get("faults"),
            params=tuple((k, v) for k, v in d.get("params", ())),
            check_invariants=d.get("check_invariants", False),
        )

    def label(self) -> str:
        """Short human-readable tag for logs and progress lines."""
        extra = "".join(f" {k}={v}" for k, v in self.overrides)
        pextra = "".join(f" {k}={v}" for k, v in self.params)
        return (
            f"{self.app}/{self.protocol}/{self.kind} p={self.n_procs}"
            + (" classify" if self.classify else "")
            + (" small" if self.small else "")
            + extra
            + pextra
            + (f" faults[{self.faults.label()}]" if self.faults else "")
        )

    # -- execution ------------------------------------------------------------

    def machine_config(self, shards: Optional[int] = None):
        """The :class:`~repro.core.machine.MachineConfig` this spec
        describes, with the observation-only environment toggles
        (``REPRO_CHECK_INVARIANTS``, ``REPRO_VALUE_CHECK``) and the
        transient shard count (``REPRO_SHARDS``) resolved.  The shard
        count is clamped to ``n_procs`` so a process-wide setting works
        for small smoke machines too."""
        import os

        from repro.core.machine import MachineConfig

        check = self.check_invariants or os.environ.get(
            "REPRO_CHECK_INVARIANTS", ""
        ) not in ("", "0")
        # Value checking only exists for the conformance workload: its
        # programs are DRF by construction, which is what licenses the
        # oracle comparison (DESIGN.md §9).  Observation-only, like the
        # invariant checker, so it stays outside the fingerprint.
        value_check = self.app == "fuzz" and os.environ.get(
            "REPRO_VALUE_CHECK", ""
        ) not in ("", "0")
        shards = min(resolve_shards(shards), self.n_procs)
        if value_check:
            # The value model is a serial-engine-only oracle.
            shards = 1
        return MachineConfig(
            config=self.config(),
            protocol=self.protocol,
            classify=self.classify,
            check_invariants=check,
            value_model=value_check,
            faults=self.faults,
            shards=shards,
        )

    def stream_key(self) -> str:
        """Request key of the recorded stream this spec replays.

        Specs differing only in protocol, timing overrides, faults, or
        observation flags share one key — one recording serves the whole
        sweep (see :mod:`repro.program.stream`)."""
        from repro.program.stream import stream_key

        return stream_key(self.app, self.app_params(), self.config())

    def recorded_stream(self, store=None):
        """This spec's recorded reference streams (recording at most
        once per process; ``store`` adds the on-disk tier)."""
        from repro.program.stream import recorded_stream

        return recorded_stream(
            self.app, self.app_params(), self.config(), store=store
        )

    def run(self, engine: Optional[str] = None, shards: Optional[int] = None):
        """Execute this spec on a fresh machine (no result caching).

        Pure: equal specs produce bit-identical :class:`RunResult`
        numbers under either engine and any shard count (the invariant
        checker and value model, when enabled, only observe; the replay
        engine is held bit-identical to the generator engine by the
        differential suite, and the sharded scheduler to the serial one
        by the sharding suite).  Callers wanting memoization go through
        :func:`repro.harness.experiments.run_spec`.
        """
        engine = resolve_engine(engine)
        mc = self.machine_config(shards=shards)
        machine = mc.build()
        if engine == "replay":
            from repro.results.store import default_store

            stream = self.recorded_stream(store=default_store())
            result = machine.replay(stream)
            if mc.value_model:
                from repro.apps import APPS
                from repro.apps.common import AppContext
                from repro.conformance.fuzz import verify_run

                app = APPS[self.app](
                    AppContext(mc.config), **self.app_params()
                )
                verify_run(machine, app)
            return result
        from repro.apps import APPS
        from repro.apps.common import AppContext

        app = APPS[self.app](
            AppContext.for_machine(machine), **self.app_params()
        )
        result = machine.run(
            [app.program(p) for p in range(mc.config.n_procs)]
        )
        if mc.value_model:
            from repro.conformance.fuzz import verify_run

            verify_run(machine, app)
        return result
