"""Busy-until occupancy resources.

Network interfaces, memory modules, local buses and protocol processors
are all modeled as serially-occupied resources: a request arriving at time
``t`` begins service at ``max(t, free_at)`` and holds the resource for its
occupancy.  Because the global event loop processes events in
non-decreasing time order, reservations are made in (approximately)
arrival order, which is exactly the endpoint-contention model the paper
uses ("contention at the sending and receiving nodes of a message, but
not at the nodes in-between").
"""

from __future__ import annotations


class Resource:
    """A single serially-reusable resource with busy-until semantics."""

    __slots__ = ("name", "free_at", "busy_cycles", "requests")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.free_at: int = 0
        self.busy_cycles: int = 0   # total occupancy, for utilization stats
        self.requests: int = 0

    def reserve(self, t: int, duration: int) -> int:
        """Reserve the resource at or after ``t`` for ``duration`` cycles.

        Returns the *completion* time of the reservation.  ``duration`` of
        zero returns ``max(t, free_at)`` without occupying anything.
        """
        start = t if t >= self.free_at else self.free_at
        end = start + duration
        self.free_at = end
        self.busy_cycles += duration
        self.requests += 1
        return end

    def enqueue(self, t: int, duration: int) -> int:
        """Like :meth:`reserve`, but return the *start* of service.

        Used where the caller wants the pipelined view: the transfer
        begins as soon as the resource frees up, and downstream latency is
        computed from that start time.
        """
        start = t if t >= self.free_at else self.free_at
        self.free_at = start + duration
        self.busy_cycles += duration
        self.requests += 1
        return start

    def start_after(self, t: int) -> int:
        """Earliest time a new reservation could begin (no side effects)."""
        return t if t >= self.free_at else self.free_at

    def reset(self) -> None:
        self.free_at = 0
        self.busy_cycles = 0
        self.requests = 0
