"""Discrete-event simulation engine.

The engine is deliberately tiny: a deterministic time-ordered event queue
(:mod:`repro.engine.events`), busy-until occupancy resources
(:mod:`repro.engine.resource`), and the global simulator loop
(:mod:`repro.engine.simulator`).  Everything protocol- or
machine-specific lives above this layer.
"""

from repro.engine.events import EventQueue
from repro.engine.resource import Resource
from repro.engine.simulator import Simulator

__all__ = ["EventQueue", "Resource", "Simulator"]
