"""Conservative time-windowed sharded PDES scheduler (DESIGN.md §14).

Partitions the mesh's nodes into ``K`` interleaved shards and runs each
shard's event loop independently inside a safe lookahead window, with
cross-shard arrivals exchanged at deterministic epoch barriers.  Results
are **bit-identical** to the serial :class:`~repro.engine.simulator.Simulator`.

Epoch structure::

    barrier:  drain the ShardBoundary into the shard queues
    window:   H1 = min_next + lookahead
              for each shard: pop-and-execute every event with t < H1
    repeat until all queues and the boundary are empty

Safety of the window (why no shard can miss a cross-shard arrival):
``lookahead`` is the minimum network latency between two distinct nodes
(``hop_latency`` — one hop, no payload).  Every event executed in a
window has time ``u >= min_next``, so any remote delivery it produces
has arrival ``>= u + lookahead >= H1``: at or beyond the *next* window.
Cross-shard sends queued at the boundary therefore never land in a
shard's past, and same-shard remote sends sit in the heap beyond the
horizon.  ``H1 > min_next`` also guarantees per-epoch progress.

Determinism (why execution order differences cannot be observed): code
executing "at node X" mutates only X-local state (cache, write buffer,
resources, per-proc stats), schedules only X-local events (local lane,
FIFO per queue) and remote arrivals carrying canonical
``(arrival, src, src_seq)`` keys, and bumps commutative machine-wide
counters.  Each node's event sequence is thus a pure function of the
simulated history, independent of the shard layout, and the aggregate
stats are sums of per-node streams.  The classifier defers to the same
canonical order (:meth:`~repro.stats.classification.MissClassifier.finalize`).
"""

from __future__ import annotations

from typing import Any, Callable, List

import os
import time

from repro.engine.events import EventQueue
from repro.engine.simulator import Simulator
from repro.network.fabric import ShardBoundary

#: Environment variable selecting how shards execute when ``shards > 1``
#: (transient, like ``REPRO_ENGINE`` — never part of a spec fingerprint):
#: ``inproc`` (default) runs the windowed loop in one process;
#: ``process`` forks one worker per shard (:mod:`repro.engine.shard_proc`).
ENV_SHARD_BACKEND = "REPRO_SHARD_BACKEND"

SHARD_BACKENDS = ("inproc", "process")


def resolve_shard_backend(backend: "str | None" = None) -> str:
    """Explicit argument, else ``REPRO_SHARD_BACKEND``, else ``inproc``."""
    b = backend or os.environ.get(ENV_SHARD_BACKEND, "") or "inproc"
    if b not in SHARD_BACKENDS:
        raise ValueError(
            f"unknown shard backend {b!r} (choose from {SHARD_BACKENDS})"
        )
    return b


def shard_map(n_procs: int, shards: int) -> List[int]:
    """Round-robin balanced partition: node ``i`` -> shard ``i % K``.

    Bit-identity holds for *any* partition (the window proof and the
    canonical tie-break never mention the layout), so the map is chosen
    purely for load balance: sync managers live at ``id % n_procs``
    (:meth:`~repro.protocols.base.Protocol.lock_home`), so the low node
    ids host every lock/barrier/flag manager of a typical app —
    interleaving spreads that protocol-event load across shards, where a
    contiguous split concentrates it in shard 0.
    """
    return [i % shards for i in range(n_procs)]


class ShardedSimulator(Simulator):
    """Windowed multi-queue drop-in for :class:`Simulator`.

    Exposes the same scheduling surface (``at``/``after``/
    ``deliver_remote``/``run``/``now``/``events_processed``); adds
    ``barrier_hook``, called as ``barrier_hook(t)`` after every epoch
    (the stall watchdog's shard-aware check point).
    """

    def __init__(
        self,
        n_procs: int,
        shards: int,
        lookahead: int,
        max_cycles: int = 1 << 62,
    ) -> None:
        super().__init__(max_cycles=max_cycles)
        if not 1 <= shards <= n_procs:
            raise ValueError(
                f"shards must be in 1..n_procs={n_procs}, got {shards}"
            )
        if lookahead < 1:
            raise ValueError("lookahead must be >= 1 cycle")
        self.n_shards = shards
        self.lookahead = lookahead
        self.shard_of = shard_map(n_procs, shards)
        self.queues = [EventQueue() for _ in range(shards)]
        self.boundary = ShardBoundary(shards)
        self.queue = self.queues[0]  # base-class slot; not used for routing
        self.epochs = 0
        self.barrier_hook = None
        self._cur = 0
        self._final = 0
        # Wall-clock seconds spent executing each shard's windows.  The
        # shards' windows are mutually independent within an epoch, so
        # ``max(busy)`` is the critical-path execution time a host with
        # >= n_shards cores would pay (benchmarks/test_pdes_scaling.py).
        self.busy = [0.0] * shards

    # -- routing -----------------------------------------------------------------

    def on_node(self, node_id: int) -> None:
        """Route subsequent scheduling to ``node_id``'s shard (used while
        seeding the initial per-node events, before the loop runs)."""
        self._cur = self.shard_of[node_id]

    def at(self, time: int, callback: Callable, *args: Any) -> None:
        if time < self.now:
            raise ValueError(
                f"event scheduled in the past: {time} < now={self.now}"
            )
        self.queues[self._cur].push(time, callback, *args)

    def after(self, delay: int, callback: Callable, *args: Any) -> None:
        self.queues[self._cur].push(self.now + delay, callback, *args)

    def deliver_remote(
        self,
        time: int,
        src: int,
        src_seq: int,
        dst: int,
        callback: Callable,
        *args: Any,
    ) -> None:
        ds = self.shard_of[dst]
        if ds == self._cur:
            # Same-shard arrival: straight into the heap; the window
            # proof puts it at or beyond the horizon.
            self.queues[ds].push_remote(time, src, src_seq, callback, args)
        else:
            self.boundary.route(ds, time, src, src_seq, callback, args)

    def has_pending(self) -> bool:
        return bool(self.boundary.count) or any(self.queues)

    # -- the windowed loop -------------------------------------------------------

    def min_next(self):
        """Earliest pending event time across all shard queues (barrier
        state: the boundary must be drained first), or ``None``."""
        best = None
        for q in self.queues:
            t = q.peek_time()
            if t is not None and (best is None or t < best):
                best = t
        return best

    def run_window(self, s: int, horizon: int) -> int:
        """Execute every event of shard ``s`` with time < ``horizon``;
        return the max event time executed so far (machine-wide)."""
        q = self.queues[s]
        heap = q._heap
        final = self.now if self.now > self._final else self._final
        if heap and heap[0][0] < horizon:
            hook = self.post_event_hook
            max_cycles = self.max_cycles
            self._cur = s
            t0 = time.perf_counter()
            while heap and heap[0][0] < horizon:
                t, callback, args = q.pop()
                if t > max_cycles:
                    raise RuntimeError(
                        f"simulation exceeded max_cycles={max_cycles}"
                    )
                self.now = t
                callback(*args)
                self.events_processed += 1
                if hook is not None:
                    hook()
            self.busy[s] += time.perf_counter() - t0
            if self.now > final:
                final = self.now
        self._final = final
        return final

    def run(self) -> int:
        boundary = self.boundary
        lookahead = self.lookahead
        while True:
            boundary.exchange(self.queues)
            nxt = self.min_next()
            if nxt is None:
                break
            horizon = nxt + lookahead
            for s in range(self.n_shards):
                self.run_window(s, horizon)
            self.epochs += 1
            if self.barrier_hook is not None:
                self.barrier_hook(self._final)
        self.now = self._final
        return self.now
