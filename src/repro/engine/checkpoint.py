"""Epoch checkpointing: snapshot/restore of a running machine (DESIGN.md §15).

A checkpoint captures the *entire* deterministic simulation state — the
nodes (caches, write buffers, processors), directories, fabric in-flight
queues, fault injector PRNG substreams, stats, and classifier logs — as
one serialized object graph, taken at a point where no event is mid-
execution (an epoch barrier for the sharded engine; any quiescent moment
between events for the serial one).  Because the simulation is a pure
function of that state, a machine restored from checkpoint N and resumed
finishes **bit-identical** to the uninterrupted run, checker on, faults
on (held to by ``tests/test_checkpoint.py``).

Serialization uses :mod:`cloudpickle` (bundled with the toolchain): the
protocols' continuation style (``done``/``arrived``/``guarded`` closures
inside event callbacks) defeats plain :mod:`pickle`, while cloudpickle
captures closures by value.  Loading needs only the stdlib unpickler.
Two kinds of state are deliberately *not* captured:

* **Transient hooks** installed by the current execution mode —
  ``sim.barrier_hook`` (the sharded watchdog's check point, or a
  caller's epoch callback) and a worker's instance-level
  ``sim.shard_effect`` closure.  They are stripped before pickling and
  re-armed by :func:`restore_machine` / the worker respawn path.
* **Live Python generators** (the ``generator`` engine's program state).
  Generators are unpicklable by design; :func:`snapshot_machine` raises
  :class:`CheckpointUnsupported` naming the engine rather than failing
  deep inside the pickler.  Replay-engine machines (the default) carry
  only packed-array cursors and checkpoint fine.

Envelope: a :class:`Checkpoint` is versioned and content-checksummed
(SHA-256 over the payload); :meth:`Checkpoint.verify` refuses truncated
or corrupt payloads before any unpickling happens, and the on-disk form
(:meth:`Checkpoint.save` / :meth:`Checkpoint.load`) is a one-line JSON
header followed by the raw payload, written atomically.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

#: Bumped on any incompatible change to what a checkpoint captures or
#: how restore re-arms transient state.
CHECKPOINT_VERSION = 1

_MAGIC = "repro-checkpoint"


class CheckpointError(RuntimeError):
    """A checkpoint could not be taken, verified, or restored."""


class CheckpointUnsupported(CheckpointError):
    """The machine holds state that cannot be serialized (and why)."""


@dataclass(frozen=True)
class Checkpoint:
    """One serialized machine state, versioned and content-checksummed."""

    version: int
    epoch: int          # sharded: epochs completed; serial: -1
    now: int            # simulated clock at capture
    payload: bytes      # cloudpickle of the machine object graph
    digest: str         # sha256 hex of payload

    def verify(self) -> None:
        """Raise :class:`CheckpointError` unless the envelope is intact."""
        if self.version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {self.version} != "
                f"supported {CHECKPOINT_VERSION}"
            )
        actual = hashlib.sha256(self.payload).hexdigest()
        if actual != self.digest:
            raise CheckpointError(
                f"checkpoint payload corrupt: sha256 {actual[:12]}... != "
                f"recorded {self.digest[:12]}... ({len(self.payload)} bytes)"
            )

    # -- on-disk form ---------------------------------------------------------

    def save(self, path: os.PathLike) -> Path:
        """Atomically write ``<json header>\\n<payload>`` to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        header = json.dumps(
            {
                "magic": _MAGIC,
                "version": self.version,
                "epoch": self.epoch,
                "now": self.now,
                "digest": self.digest,
                "size": len(self.payload),
            },
            separators=(",", ":"),
        )
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(header.encode("ascii") + b"\n")
                f.write(self.payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, path: os.PathLike) -> "Checkpoint":
        """Read and verify a checkpoint file; raises :class:`CheckpointError`
        on a missing, truncated, or corrupt file."""
        try:
            with open(path, "rb") as f:
                header_line = f.readline()
                payload = f.read()
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from None
        try:
            header = json.loads(header_line)
        except (ValueError, UnicodeDecodeError):
            raise CheckpointError(f"checkpoint {path} has a corrupt header") from None
        if header.get("magic") != _MAGIC:
            raise CheckpointError(f"{path} is not a checkpoint file")
        if header.get("size") != len(payload):
            raise CheckpointError(
                f"checkpoint {path} truncated: header says "
                f"{header.get('size')} bytes, file holds {len(payload)}"
            )
        cp = cls(
            version=header.get("version", -1),
            epoch=header.get("epoch", -1),
            now=header.get("now", 0),
            payload=payload,
            digest=header.get("digest", ""),
        )
        cp.verify()
        return cp


def _check_snapshot_supported(machine) -> None:
    for node in machine.nodes:
        if inspect.isgenerator(getattr(node.proc, "_gen", None)):
            raise CheckpointUnsupported(
                "cannot checkpoint a generator-engine machine: live "
                "program generators are unpicklable.  Use the replay "
                "engine (the default; REPRO_ENGINE=replay) for "
                "checkpointable runs"
            )


def snapshot_machine(machine) -> Checkpoint:
    """Serialize ``machine`` into a verified :class:`Checkpoint`.

    Must be called at a quiescent point — between events on the serial
    engine, or at an epoch barrier on the sharded one (the
    ``barrier_hook`` callback is exactly such a point).  Transient hooks
    (``barrier_hook``, a worker's instance-level ``shard_effect``) are
    stripped for the duration of the pickle and put back before
    returning, so taking a snapshot never perturbs the running machine.
    """
    import cloudpickle

    _check_snapshot_supported(machine)
    sim = machine.sim
    saved_hook = getattr(sim, "barrier_hook", None)
    # A worker's shard_effect closure lives in the sim's instance dict,
    # shadowing the class no-op; it captures the worker's pipe-adjacent
    # state and must not ride along.
    saved_effect = sim.__dict__.pop("shard_effect", None) if hasattr(sim, "__dict__") else None
    if saved_hook is not None:
        sim.barrier_hook = None
    try:
        payload = cloudpickle.dumps(machine, protocol=pickle.HIGHEST_PROTOCOL)
    except (TypeError, AttributeError, pickle.PicklingError) as exc:
        raise CheckpointUnsupported(
            f"machine state is not serializable: {exc}"
        ) from exc
    finally:
        if saved_hook is not None:
            sim.barrier_hook = saved_hook
        if saved_effect is not None:
            sim.shard_effect = saved_effect
    return Checkpoint(
        version=CHECKPOINT_VERSION,
        epoch=getattr(sim, "epochs", -1),
        now=sim.now,
        payload=payload,
        digest=hashlib.sha256(payload).hexdigest(),
    )


def restore_machine(checkpoint: Checkpoint):
    """Rebuild a machine from ``checkpoint`` and re-arm transient hooks.

    The restored machine resumes on the in-process path
    (:meth:`Machine.resume`): serial machines drain their single queue,
    sharded ones re-enter the windowed loop.  The stall watchdog is
    re-armed for sharded machines (its hook was stripped at snapshot
    time); serial machines carry the watchdog's self-rescheduling events
    inside the pickled queue and need nothing.
    """
    checkpoint.verify()
    try:
        machine = pickle.loads(checkpoint.payload)
    except Exception as exc:
        raise CheckpointError(f"checkpoint payload does not unpickle: {exc}") from exc
    sim = machine.sim
    if getattr(sim, "n_shards", 1) > 1 and machine.stall_cycles:
        from repro.faults.watchdog import StallWatchdog

        StallWatchdog(machine, machine.stall_cycles).arm()
    return machine


def snapshot_path(root: os.PathLike, tag: str) -> Path:
    """Canonical checkpoint location: ``<root>/<tag>.ckpt``."""
    return Path(root) / f"{tag}.ckpt"


__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "CheckpointUnsupported",
    "restore_machine",
    "snapshot_machine",
    "snapshot_path",
]
