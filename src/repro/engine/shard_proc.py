"""Forked worker-process backend for the sharded PDES scheduler.

The in-process :meth:`~repro.engine.shard.ShardedSimulator.run` loop and
this module execute the *same* epoch structure (DESIGN.md §14): drain
cross-shard arrivals, compute ``horizon = min_next + lookahead``, run
every shard's events below the horizon, repeat.  Here each shard's
window runs in its own forked worker process while the parent acts as
the epoch coordinator:

* The parent builds and seeds the machine, then forks one worker per
  shard — every process starts from an identical object graph, so a
  worker simply executes :meth:`run_window` for *its* shard and leaves
  the other shards' (identical) queues untouched.
* Per epoch the parent broadcasts ``(horizon, inbound)`` and gathers
  ``(min_next, outbound, progress)``; cross-shard arrivals are shipped
  as picklable records carrying their canonical ``(arrival, src,
  src_seq)`` keys plus the receive-NIC channel and the protocol handler
  *name*, and are rebound to the destination worker's own object graph
  on receipt.  The horizons, the per-shard event sets, and therefore the
  results are bit-identical to the in-process backend (and the serial
  engine).

Self-healing (DESIGN.md §15): the parent supervises its workers and
recovers from crashes and hangs without changing simulated results.

* **Journal** — every epoch message sent to a worker is appended to a
  per-shard in-memory journal ``(epoch, horizon, inbound, effects)``.
  Worker execution is a pure function of the seed state plus this
  message stream, so the journal is a complete recovery recipe.
* **Checkpoints** — each worker periodically (``REPRO_SHARD_CKPT_EPOCHS``
  epochs, default 64) serializes its machine to a per-shard checkpoint
  file (:mod:`repro.engine.checkpoint`) and reports the covered epoch
  count in its next reply; the parent trims the journal up to it.
* **Heartbeats / hang detection** — workers send a heartbeat when they
  begin a window; the parent polls with a deadline
  (``REPRO_SHARD_HANG_TIMEOUT`` seconds, default 120) and distinguishes
  a *crashed* worker (process dead / pipe EOF) from a *hung* one (alive
  but silent past the deadline).  Both are distinct from the stall
  watchdog, which monitors *simulated* progress.
* **Respawn** — a dead or hung worker is re-forked (bounded retries,
  jittered exponential backoff, ``REPRO_SHARD_RESPAWNS`` total budget,
  default 3): the fresh worker restores the shard checkpoint if one
  exists, silently replays the journaled epochs after it (its outbound
  is discarded — the parent already routed it), then rejoins live at
  the in-flight epoch.  Replayed execution is deterministic, so the
  recovered run is bit-identical to an undisturbed one.
* **Fallback** — when the respawn budget is exhausted the parent kills
  the workers, logs a structured warning, and re-runs the whole
  simulation on the in-process windowed loop from its own (pristine,
  never-executed) seed state: slower, never different.
* **Chaos** — a :class:`~repro.faults.plan.FaultPlan` may carry
  harness-level ``worker_kill`` events ``(epoch, shard)``; the parent
  SIGKILLs the named worker at the named epoch so CI exercises the
  recovery path deterministically.  ``machine.shard_recovery`` records
  kills, respawns, and fallbacks for assertions and post-mortems.

Scope: the plain :class:`~repro.network.fabric.Fabric` only.  The
reliable fabric, tracer, invariant checker, and value model all observe
one shared-memory machine; in process mode they would each see a
fragment, so those runs stay on the in-process backend
(:class:`UnsupportedBackend` names the offending observer, and
``Machine`` falls back to ``inproc`` with a warning rather than
silently mis-measuring).
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import os
import random
import signal
import tempfile
import time
from collections import deque
from typing import List, Optional

from repro.engine.checkpoint import Checkpoint, CheckpointError, restore_machine, snapshot_machine
from repro.engine.simulator import DeadlockError
from repro.faults.watchdog import SimulationStall
from repro.network.fabric import Fabric
from repro.network.messages import RELIABILITY_COUNTERS, MessageStats
from repro.stats.counters import _MACHINE_COUNTERS, ProcStats

log = logging.getLogger(__name__)

#: Worker checkpoint cadence in epochs (0 disables worker checkpoints;
#: recovery then replays the whole journal from the seed).
ENV_CKPT_EPOCHS = "REPRO_SHARD_CKPT_EPOCHS"
DEFAULT_CKPT_EPOCHS = 64

#: Seconds of worker silence (no heartbeat, no reply) before a live
#: worker is declared hung and recovered.
ENV_HANG_TIMEOUT = "REPRO_SHARD_HANG_TIMEOUT"
DEFAULT_HANG_TIMEOUT = 120.0

#: Total worker respawns allowed per run before falling back to inproc.
ENV_RESPAWNS = "REPRO_SHARD_RESPAWNS"
DEFAULT_RESPAWNS = 3

#: Respawn backoff: min(_BACKOFF_CAP, _BACKOFF_BASE * 2**attempt) scaled
#: by a uniform jitter in [0.5, 1.5) — wall-clock only, never simulated.
_BACKOFF_BASE = 0.05
_BACKOFF_CAP = 2.0


class UnsupportedBackend(ValueError):
    """The process shard backend cannot host this machine.

    ``observer`` names what is unsupported (``"faults"``, ``"tracer"``,
    ``"checker"``): all of them observe one shared-memory machine, which
    process mode splits into per-worker fragments.  ``Machine`` catches
    this and falls back to the in-process backend with a warning.
    """

    def __init__(self, observer: str, message: str) -> None:
        super().__init__(message)
        self.observer = observer


def _check_supported(machine) -> None:
    if type(machine.fabric) is not Fabric:
        raise UnsupportedBackend(
            "faults",
            "the process shard backend requires the plain fabric; run "
            "active fault plans on the in-process backend "
            "(REPRO_SHARD_BACKEND=inproc)",
        )
    if machine.tracer is not None or machine.checker is not None:
        observer = "tracer" if machine.tracer is not None else "checker"
        raise UnsupportedBackend(
            observer,
            f"the process shard backend does not support the {observer} "
            "(observers are process-local); use the in-process backend "
            "(REPRO_SHARD_BACKEND=inproc)",
        )
    if "fork" not in mp.get_all_start_methods():
        raise RuntimeError(
            "the process shard backend needs the fork start method "
            "(workers inherit the seeded machine); use the in-process "
            "backend on this platform"
        )


# -- wire format -------------------------------------------------------------------
#
# parent -> worker:
#   ("epoch",  eidx, horizon, inbound, effects)   live epoch
#   ("replay", eidx, horizon, inbound, effects)   recovery replay (output discarded)
#   ("stop",)                                     request the final payload
# worker -> parent:
#   ("hello", ckpt_count)                         on start; epochs covered by the
#                                                 restored checkpoint (0 = seed)
#   ("hb", eidx)                                  heartbeat at window start
#   ("ok", eidx, qnext, outbound, effects, progress, ckpt_count)
#   ("rok", eidx)                                 replay acknowledged
#   ("final", payload) | ("err", text)
#
# One cross-shard arrival:
#   (dst_shard, arrival, src, src_seq, ctl, dst, occ, handler_name, handler_args)
# The parent strips dst_shard when routing; workers rebind the receive
# NIC from (ctl, dst) and the handler from its name on their own
# protocol object.  Handler args are plain data (ints/tuples/None) for
# every protocol message — anything else fails loudly at encode time.


def _encode_outbound(machine) -> List[tuple]:
    """Drain the boundary into picklable cross-shard arrival records."""
    fab = machine.fabric
    arrive = Fabric._arrive
    boundary = machine.sim.boundary
    out = []
    if not boundary.count:
        return out
    for shard, recs in enumerate(boundary.pending):
        for time, src, sseq, callback, args in recs:
            if getattr(callback, "__func__", None) is not arrive:
                raise TypeError(
                    f"cannot ship callback {callback!r} between shard "
                    "processes (expected Fabric._arrive)"
                )
            nic_in, occ, handler, hargs = args
            name = nic_in.name  # "nic_in[7]" or "nic_in_ctl[7]"
            ctl = name.startswith("nic_in_ctl")
            dst = int(name[name.index("[") + 1 : -1])
            out.append(
                (shard, time, src, sseq, ctl, dst, occ, handler.__name__, hargs)
            )
        recs.clear()
    boundary.count = 0
    return out


def _push_inbound(machine, records) -> None:
    """Rebind shipped arrivals to this process's objects and enqueue them."""
    fab = machine.fabric
    sim = machine.sim
    for time, src, sseq, ctl, dst, occ, hname, hargs in records:
        nic = (fab.nic_in_ctl if ctl else fab.nic_in)[dst]
        handler = getattr(machine.protocol, hname)
        sim.queues[sim.shard_of[dst]].push_remote(
            time, src, sseq, fab._arrive, (nic, occ, handler, hargs)
        )


def _apply_effects(machine, effects) -> None:
    """Replay cross-shard state marks (see ``Simulator.shard_effect``).

    Applied at the epoch barrier, before any event of the next window
    runs; every observer of these marks runs at a message arrival at
    least ``lookahead`` after the mark was written, so barrier
    application is never late.  Increments commute, so the application
    order across emitting shards is immaterial.
    """
    nodes = machine.nodes
    for dst, kind, block in effects:
        if kind != "fill":
            raise ValueError(f"unknown shard effect kind {kind!r}")
        d = nodes[dst].fill_reply_pending
        d[block] = d.get(block, 0) + 1


# -- worker ------------------------------------------------------------------------


def _progress(machine) -> int:
    """The watchdog's monotone progress signal, computed in-worker.

    Only this worker's nodes ever move in its copy of the stats, so the
    sum over all procs is exactly this shard's contribution.
    """
    total = machine._finished
    for p in machine.stats.procs:
        total += p.reads + p.writes + p.acquires + p.releases + p.barriers
    return total


def _final_payload(machine, shard: int) -> dict:
    sim = machine.sim
    shard_of = sim.shard_of
    mine = [n.id for n in machine.nodes if shard_of[n.id] == shard]
    cls = machine.classifier
    return {
        "procs": {i: machine.stats.procs[i].to_dict() for i in mine},
        "machine": {c: getattr(machine.stats, c) for c in _MACHINE_COUNTERS},
        "traffic": machine.fabric.stats.to_dict(),
        "logs": dict(cls._logs) if cls is not None else None,
        "finished": machine._finished,
        "events": sim.events_processed,
        "now": sim._final,
        "unfinished": [
            (n.id, n.proc.block_reason, n.out_count)
            for n in machine.nodes
            if shard_of[n.id] == shard and not n.proc.done
        ],
    }


def _run_epoch(machine, shard: int, horizon, inbound, effects_in) -> None:
    if effects_in:
        _apply_effects(machine, effects_in)
    if inbound:
        _push_inbound(machine, inbound)
    machine.sim.run_window(shard, horizon)


def _shard_worker(
    machine,
    shard: int,
    conn,
    ckpt_path: Optional[str] = None,
    ckpt_every: int = 0,
    restore: bool = False,
) -> None:
    """Worker main: execute epoch windows for ``shard`` until told to stop.

    A respawned worker (``restore=True``) loads the shard checkpoint if
    one exists (otherwise it starts from the forked seed state) and
    reports the covered epoch count in its hello, so the parent knows
    which journal suffix to replay.
    """
    ckpt_count = 0
    if restore and ckpt_path and os.path.exists(ckpt_path):
        machine = restore_machine(Checkpoint.load(ckpt_path))
        ckpt_count = machine.sim.epochs
    sim = machine.sim
    shard_of = sim.shard_of
    effects: List[tuple] = []

    def shard_effect(dst, kind, block):
        # Replicate marks on nodes of *other* shards; same-shard marks
        # were just written to this worker's own objects.
        if shard_of[dst] != shard:
            effects.append((dst, kind, block))

    sim.shard_effect = shard_effect
    try:
        conn.send(("hello", ckpt_count))
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                break
            kind, eidx, horizon, inbound, effects_in = msg
            if kind == "epoch":
                conn.send(("hb", eidx))
            _run_epoch(machine, shard, horizon, inbound, effects_in)
            out = _encode_outbound(machine)
            out_effects = effects[:]
            effects.clear()
            sim.epochs = eidx + 1  # epochs covered by this worker's state
            if kind == "replay":
                # Recovery replay: the parent already routed this
                # epoch's output when the original worker produced it.
                conn.send(("rok", eidx))
                continue
            if ckpt_every and (eidx + 1) % ckpt_every == 0 and ckpt_path:
                snapshot_machine(machine).save(ckpt_path)
                ckpt_count = eidx + 1
            conn.send(
                (
                    "ok",
                    eidx,
                    sim.queues[shard].peek_time(),
                    out,
                    out_effects,
                    _progress(machine),
                    ckpt_count,
                )
            )
        conn.send(("final", _final_payload(machine, shard)))
        conn.close()
    except BaseException as exc:
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
            conn.close()
        except OSError:
            pass
        raise


# -- coordinator -------------------------------------------------------------------


class _WorkerDied(Exception):
    """The worker process exited or closed its pipe."""


class _WorkerHung(Exception):
    """The worker process is alive but silent past the hang deadline."""


class _RecoveryExhausted(Exception):
    """The respawn budget ran out; the caller falls back to inproc."""


class _Worker:
    __slots__ = ("proc", "conn", "last_beat")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        self.last_beat = time.monotonic()


def _kill_all(workers) -> None:
    from repro.harness.runner import _kill

    for w in workers:
        if w is not None:
            _kill(w.proc)


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "")
    return int(raw) if raw else default


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "")
    return float(raw) if raw else default


class _Coordinator:
    """Parent-side epoch loop with journaling, supervision, and recovery."""

    def __init__(self, machine, ckpt_dir: str) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.n = self.sim.n_shards
        self.ctx = mp.get_context("fork")
        self.ckpt_dir = ckpt_dir
        self.ckpt_every = _env_int(ENV_CKPT_EPOCHS, DEFAULT_CKPT_EPOCHS)
        self.hang_timeout = _env_float(ENV_HANG_TIMEOUT, DEFAULT_HANG_TIMEOUT)
        self.respawn_budget = _env_int(ENV_RESPAWNS, DEFAULT_RESPAWNS)
        self.workers: List[Optional[_Worker]] = [None] * self.n
        self.journals = [deque() for _ in range(self.n)]
        self.eidx = 0
        plan = machine.fault_plan
        self.kills = deque(sorted(plan.worker_kill)) if plan is not None else deque()
        # Structured recovery record, for tests and post-mortems.
        self.recovery = machine.shard_recovery = {
            "kills": 0,
            "respawns": 0,
            "fallback": False,
            "events": [],
        }

    def ckpt_path(self, k: int) -> str:
        return os.path.join(self.ckpt_dir, f"shard{k}.ckpt")

    # -- worker lifecycle -----------------------------------------------------

    def spawn(self, k: int, restore: bool = False) -> int:
        """Fork worker ``k``; returns the epoch count its state covers."""
        parent_conn, child_conn = self.ctx.Pipe()
        p = self.ctx.Process(
            target=_shard_worker,
            args=(
                self.machine,
                k,
                child_conn,
                self.ckpt_path(k),
                self.ckpt_every,
                restore,
            ),
            name=f"repro-shard-{k}",
            daemon=True,
        )
        p.start()
        child_conn.close()
        self.workers[k] = _Worker(p, parent_conn)
        hello = self.recv(k)
        if hello[0] != "hello":
            raise RuntimeError(f"shard worker {k} spoke {hello[0]!r}, not hello")
        return hello[1]

    def recv(self, k: int):
        """One message from worker ``k``, skipping heartbeats.

        Raises :class:`_WorkerDied` on a dead process / closed pipe and
        :class:`_WorkerHung` after ``hang_timeout`` seconds of silence
        from a live process; a worker-reported ``err`` is re-raised as
        :class:`RuntimeError` (a deterministic simulation failure would
        only recur under recovery).
        """
        w = self.workers[k]
        while True:
            try:
                if w.conn.poll(0.05):
                    msg = w.conn.recv()
                    w.last_beat = time.monotonic()
                    if msg[0] == "hb":
                        continue
                    if msg[0] == "err":
                        _kill_all(self.workers)
                        raise RuntimeError(f"shard worker {k} failed: {msg[1]}")
                    return msg
            except (EOFError, OSError):
                raise _WorkerDied(
                    f"shard worker {k} died (exit code {w.proc.exitcode})"
                ) from None
            if not w.proc.is_alive():
                raise _WorkerDied(
                    f"shard worker {k} died (exit code {w.proc.exitcode})"
                )
            if time.monotonic() - w.last_beat > self.hang_timeout:
                raise _WorkerHung(
                    f"shard worker {k} silent for {self.hang_timeout:g}s "
                    f"(pid {w.proc.pid} still alive)"
                )

    def send(self, k: int, msg) -> None:
        try:
            self.workers[k].conn.send(msg)
        except (BrokenPipeError, OSError):
            pass  # diagnosed by the next recv

    def respawn(self, k: int, reason: str, resend_current: bool) -> None:
        """Replace worker ``k``: backoff, re-fork, restore, replay journal.

        ``resend_current`` re-delivers the in-flight epoch message (the
        journal's tail) live after the replay, for recovery mid-epoch.
        """
        from repro.harness.runner import _kill

        attempt = 0
        while True:
            if self.recovery["respawns"] >= self.respawn_budget:
                raise _RecoveryExhausted(
                    f"worker respawn budget ({self.respawn_budget}) "
                    f"exhausted recovering shard {k}: {reason}"
                )
            self.recovery["respawns"] += 1
            self.recovery["events"].append(
                {"shard": k, "epoch": self.eidx, "reason": reason}
            )
            old = self.workers[k]
            if old is not None:
                _kill(old.proc)
                try:
                    old.conn.close()
                except OSError:
                    pass
            delay = min(_BACKOFF_CAP, _BACKOFF_BASE * (2 ** attempt))
            time.sleep(delay * (0.5 + random.random()))
            attempt += 1
            try:
                covered = self.spawn(k, restore=True)
                journal = self.journals[k]
                tail = journal[-1][0] if journal else -1
                log.warning(
                    "recovered shard %d worker after %s: restored %d "
                    "epochs from checkpoint, replaying journal to %d",
                    k, reason, covered, tail,
                )
                for ent in journal:
                    eidx = ent[0]
                    if eidx < covered:
                        continue
                    if eidx == self.eidx and resend_current:
                        break  # re-sent live by the caller's epoch logic
                    self.send(k, ("replay",) + ent)
                    ack = self.recv(k)
                    if ack[0] != "rok" or ack[1] != eidx:
                        raise _WorkerDied(
                            f"shard worker {k} replay desync at epoch {eidx}"
                        )
                if resend_current and journal and journal[-1][0] == self.eidx:
                    self.send(k, ("epoch",) + journal[-1])
                return
            except (_WorkerDied, _WorkerHung) as exc:
                reason = f"respawn failed: {exc}"
                continue

    def recv_recovering(self, k: int, resend_current: bool):
        """recv with automatic respawn on crash/hang."""
        while True:
            try:
                return self.recv(k)
            except (_WorkerDied, _WorkerHung) as exc:
                self.respawn(k, str(exc), resend_current)

    # -- chaos ----------------------------------------------------------------

    def chaos_kill(self) -> None:
        """Fire any scheduled ``worker_kill`` events for this epoch."""
        while self.kills and self.kills[0][0] <= self.eidx:
            epoch, shard = self.kills.popleft()
            w = self.workers[shard]
            if w is not None and w.proc.is_alive():
                self.recovery["kills"] += 1
                log.warning(
                    "chaos: SIGKILL shard %d worker (pid %d) at epoch %d",
                    shard, w.proc.pid, self.eidx,
                )
                try:
                    os.kill(w.proc.pid, signal.SIGKILL)
                    w.proc.join(timeout=10.0)
                except (OSError, ValueError):
                    pass

    # -- the supervised epoch loop --------------------------------------------

    def run(self) -> None:
        sim = self.sim
        machine = self.machine
        for k in range(self.n):
            self.spawn(k)
        routed: List[list] = [[] for _ in range(self.n)]
        routed_fx: List[list] = [[] for _ in range(self.n)]
        shard_of = sim.shard_of
        nxt = sim.min_next()  # parent's queues hold the identical seed
        lookahead = sim.lookahead
        stall = machine.stall_cycles
        last_prog = -1
        prog_time = 0
        while nxt is not None:
            horizon = nxt + lookahead
            self.chaos_kill()
            for k in range(self.n):
                ent = (self.eidx, horizon, routed[k], routed_fx[k])
                self.journals[k].append(ent)
                self.send(k, ("epoch",) + ent)
                routed[k] = []
                routed_fx[k] = []
            nxt = None
            total_prog = 0
            for k in range(self.n):
                msg = self.recv_recovering(k, resend_current=True)
                if msg[0] != "ok" or msg[1] != self.eidx:
                    raise RuntimeError(
                        f"shard worker {k} epoch desync: got {msg[:2]}, "
                        f"expected ('ok', {self.eidx})"
                    )
                _, _, qnext, outbound, out_fx, prog, ck = msg
                journal = self.journals[k]
                while journal and journal[0][0] < ck:
                    journal.popleft()
                total_prog += prog
                if qnext is not None and (nxt is None or qnext < nxt):
                    nxt = qnext
                for rec in outbound:
                    routed[rec[0]].append(rec[1:])
                    if nxt is None or rec[1] < nxt:
                        nxt = rec[1]
                for fx in out_fx:
                    routed_fx[shard_of[fx[0]]].append(fx)
            sim.epochs += 1
            self.eidx += 1
            if stall:
                if total_prog != last_prog:
                    last_prog = total_prog
                    prog_time = horizon
                elif horizon - prog_time >= stall:
                    _kill_all(self.workers)
                    raise SimulationStall(
                        f"no processor committed an operation for "
                        f"{stall} cycles (t={horizon}; sharded process "
                        f"backend, {self.n} workers)",
                        kind="watchdog",
                        cycle=horizon,
                    )
        finals = []
        for k in range(self.n):
            # A worker that dies here is respawned and replays its whole
            # journal (every epoch is acked by now); loop to re-send the
            # stop the dead worker never answered.
            while True:
                self.send(k, ("stop",))
                try:
                    msg = self.recv(k)
                    break
                except (_WorkerDied, _WorkerHung) as exc:
                    self.respawn(k, str(exc), resend_current=False)
            if msg[0] != "final":
                raise RuntimeError(
                    f"shard worker {k} spoke {msg[0]!r}, not final"
                )
            finals.append(msg[1])
        _merge(machine, finals)
        for k in range(self.n):
            self.workers[k].proc.join()

    def close(self) -> None:
        for w in self.workers:
            if w is not None:
                try:
                    w.conn.close()
                except OSError:
                    pass
        _kill_all(self.workers)


def _merge(machine, finals) -> None:
    """Fold the workers' measurements back into the parent machine.

    Worker payloads are disjoint by construction — proc stats and
    classifier logs are per-node and every node runs in exactly one
    worker; machine counters and traffic are commutative sums — so the
    merge (in fixed shard order) reproduces the serial totals exactly.
    """
    stats = machine.stats
    traffic = machine.fabric.stats
    cls = machine.classifier
    sim = machine.sim
    finished = 0
    events = 0
    now = 0
    unfinished = []
    for payload in finals:
        for i, d in payload["procs"].items():
            stats.procs[i] = ProcStats.from_dict(d)
        for c in _MACHINE_COUNTERS:
            setattr(stats, c, getattr(stats, c) + payload["machine"][c])
        t = MessageStats.from_dict(payload["traffic"])
        traffic.count.update(t.count)
        traffic.bytes.update(t.bytes)
        traffic.total_hops += t.total_hops
        for name in RELIABILITY_COUNTERS:
            setattr(traffic, name, getattr(traffic, name) + getattr(t, name))
        if cls is not None and payload["logs"]:
            for p, log_ in payload["logs"].items():
                cls._logs.setdefault(p, []).extend(log_)
        finished += payload["finished"]
        events += payload["events"]
        if payload["now"] > now:
            now = payload["now"]
        unfinished.extend(payload["unfinished"])
    machine._finished = finished
    sim.events_processed = events
    sim.now = sim._final = now
    if finished != machine.config.n_procs:
        # Raise here, where the workers' per-node diagnoses are at hand
        # (the parent's own node objects never executed).
        unfinished.sort()
        raise DeadlockError(
            f"{len(unfinished)} processors never finished "
            f"(id, reason, outstanding): {unfinished[:8]}"
        )


def run_forked(machine) -> int:
    """Run a seeded sharded machine with one worker process per shard.

    Drop-in replacement for ``machine.sim.run()``; returns the final
    simulated time with the parent machine's stats/traffic/classifier
    populated exactly as a serial or in-process-sharded run would have.
    Crashed or hung workers are respawned from their shard checkpoint
    (see the module docstring); an exhausted respawn budget falls back
    to the in-process loop on the parent's pristine seed state —
    slower, bit-identical, loudly logged.
    """
    sim = machine.sim
    _check_supported(machine)
    with tempfile.TemporaryDirectory(prefix="repro-shard-ckpt-") as ckpt_dir:
        coord = _Coordinator(machine, ckpt_dir)
        try:
            coord.run()
            return sim.now
        except (_WorkerDied, _WorkerHung) as exc:
            # Only the initial spawns are unsupervised; anything else
            # already went through the respawn path.
            raise RuntimeError(f"shard worker startup failed: {exc}") from None
        except _RecoveryExhausted as exc:
            log.warning(
                "process shard backend unrecoverable (%s); falling back "
                "to the in-process backend from the seed state", exc,
            )
            coord.recovery["fallback"] = True
        finally:
            coord.close()
    # Fallback: the parent never executed an event — its queues still
    # hold the exact seed — so the in-process windowed loop reproduces
    # the run bit-identically, at inproc speed.
    sim.epochs = 0
    return sim.run()
