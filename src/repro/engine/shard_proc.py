"""Forked worker-process backend for the sharded PDES scheduler.

The in-process :meth:`~repro.engine.shard.ShardedSimulator.run` loop and
this module execute the *same* epoch structure (DESIGN.md §14): drain
cross-shard arrivals, compute ``horizon = min_next + lookahead``, run
every shard's events below the horizon, repeat.  Here each shard's
window runs in its own forked worker process while the parent acts as
the epoch coordinator:

* The parent builds and seeds the machine, then forks one worker per
  shard — every process starts from an identical object graph, so a
  worker simply executes :meth:`run_window` for *its* shard and leaves
  the other shards' (identical) queues untouched.
* Per epoch the parent broadcasts ``(horizon, inbound)`` and gathers
  ``(min_next, outbound, progress)``; cross-shard arrivals are shipped
  as picklable records carrying their canonical ``(arrival, src,
  src_seq)`` keys plus the receive-NIC channel and the protocol handler
  *name*, and are rebound to the destination worker's own object graph
  on receipt.  The horizons, the per-shard event sets, and therefore the
  results are bit-identical to the in-process backend (and the serial
  engine).
* Supervision reuses :mod:`repro.harness.runner`'s machinery: the same
  terminate-then-SIGKILL ``_kill`` on failure, and a parent-side stall
  check driven by the workers' per-epoch progress reports (the
  process-mode analogue of the watchdog's barrier hook).

Scope: the plain :class:`~repro.network.fabric.Fabric` only.  The
reliable fabric, tracer, invariant checker, and value model all observe
one shared-memory machine; in process mode they would each see a
fragment, so those runs stay on the in-process backend (``Machine``
raises a clear error rather than silently mis-measuring).
"""

from __future__ import annotations

import multiprocessing as mp
from typing import List

from repro.engine.simulator import DeadlockError
from repro.faults.watchdog import SimulationStall
from repro.network.fabric import Fabric
from repro.network.messages import RELIABILITY_COUNTERS, MessageStats
from repro.stats.counters import _MACHINE_COUNTERS, ProcStats


def _check_supported(machine) -> None:
    if type(machine.fabric) is not Fabric:
        raise ValueError(
            "the process shard backend requires the plain fabric; run "
            "active fault plans on the in-process backend "
            "(REPRO_SHARD_BACKEND=inproc)"
        )
    if machine.tracer is not None or machine.checker is not None:
        raise ValueError(
            "the process shard backend does not support trace/"
            "check_invariants (observers are process-local); use the "
            "in-process backend (REPRO_SHARD_BACKEND=inproc)"
        )
    if "fork" not in mp.get_all_start_methods():
        raise RuntimeError(
            "the process shard backend needs the fork start method "
            "(workers inherit the seeded machine); use the in-process "
            "backend on this platform"
        )


# -- wire format -------------------------------------------------------------------
#
# One cross-shard arrival:
#   (dst_shard, arrival, src, src_seq, ctl, dst, occ, handler_name, handler_args)
# The parent strips dst_shard when routing; workers rebind the receive
# NIC from (ctl, dst) and the handler from its name on their own
# protocol object.  Handler args are plain data (ints/tuples/None) for
# every protocol message — anything else fails loudly at encode time.


def _encode_outbound(machine) -> List[tuple]:
    """Drain the boundary into picklable cross-shard arrival records."""
    fab = machine.fabric
    arrive = Fabric._arrive
    boundary = machine.sim.boundary
    out = []
    if not boundary.count:
        return out
    for shard, recs in enumerate(boundary.pending):
        for time, src, sseq, callback, args in recs:
            if getattr(callback, "__func__", None) is not arrive:
                raise TypeError(
                    f"cannot ship callback {callback!r} between shard "
                    "processes (expected Fabric._arrive)"
                )
            nic_in, occ, handler, hargs = args
            name = nic_in.name  # "nic_in[7]" or "nic_in_ctl[7]"
            ctl = name.startswith("nic_in_ctl")
            dst = int(name[name.index("[") + 1 : -1])
            out.append(
                (shard, time, src, sseq, ctl, dst, occ, handler.__name__, hargs)
            )
        recs.clear()
    boundary.count = 0
    return out


def _push_inbound(machine, records) -> None:
    """Rebind shipped arrivals to this process's objects and enqueue them."""
    fab = machine.fabric
    sim = machine.sim
    for time, src, sseq, ctl, dst, occ, hname, hargs in records:
        nic = (fab.nic_in_ctl if ctl else fab.nic_in)[dst]
        handler = getattr(machine.protocol, hname)
        sim.queues[sim.shard_of[dst]].push_remote(
            time, src, sseq, fab._arrive, (nic, occ, handler, hargs)
        )


def _apply_effects(machine, effects) -> None:
    """Replay cross-shard state marks (see ``Simulator.shard_effect``).

    Applied at the epoch barrier, before any event of the next window
    runs; every observer of these marks runs at a message arrival at
    least ``lookahead`` after the mark was written, so barrier
    application is never late.  Increments commute, so the application
    order across emitting shards is immaterial.
    """
    nodes = machine.nodes
    for dst, kind, block in effects:
        if kind != "fill":
            raise ValueError(f"unknown shard effect kind {kind!r}")
        d = nodes[dst].fill_reply_pending
        d[block] = d.get(block, 0) + 1


# -- worker ------------------------------------------------------------------------


def _progress(machine) -> int:
    """The watchdog's monotone progress signal, computed in-worker.

    Only this worker's nodes ever move in its copy of the stats, so the
    sum over all procs is exactly this shard's contribution.
    """
    total = machine._finished
    for p in machine.stats.procs:
        total += p.reads + p.writes + p.acquires + p.releases + p.barriers
    return total


def _final_payload(machine, shard: int) -> dict:
    sim = machine.sim
    shard_of = sim.shard_of
    mine = [n.id for n in machine.nodes if shard_of[n.id] == shard]
    cls = machine.classifier
    return {
        "procs": {i: machine.stats.procs[i].to_dict() for i in mine},
        "machine": {c: getattr(machine.stats, c) for c in _MACHINE_COUNTERS},
        "traffic": machine.fabric.stats.to_dict(),
        "logs": dict(cls._logs) if cls is not None else None,
        "finished": machine._finished,
        "events": sim.events_processed,
        "now": sim._final,
        "unfinished": [
            (n.id, n.proc.block_reason, n.out_count)
            for n in machine.nodes
            if shard_of[n.id] == shard and not n.proc.done
        ],
    }


def _shard_worker(machine, shard: int, conn) -> None:
    """Worker main: execute epoch windows for ``shard`` until told to stop."""
    sim = machine.sim
    shard_of = sim.shard_of
    effects: List[tuple] = []

    def shard_effect(dst, kind, block):
        # Replicate marks on nodes of *other* shards; same-shard marks
        # were just written to this worker's own objects.
        if shard_of[dst] != shard:
            effects.append((dst, kind, block))

    sim.shard_effect = shard_effect
    try:
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                break
            _, horizon, inbound, effects_in = msg
            if effects_in:
                _apply_effects(machine, effects_in)
            if inbound:
                _push_inbound(machine, inbound)
            sim.run_window(shard, horizon)
            out_effects = effects[:]
            effects.clear()
            conn.send(
                (
                    "ok",
                    sim.queues[shard].peek_time(),
                    _encode_outbound(machine),
                    out_effects,
                    _progress(machine),
                )
            )
        conn.send(("final", _final_payload(machine, shard)))
        conn.close()
    except BaseException as exc:
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
            conn.close()
        except OSError:
            pass
        raise


# -- coordinator -------------------------------------------------------------------


def _kill_all(procs) -> None:
    from repro.harness.runner import _kill

    for p in procs:
        _kill(p)


def _recv(conns, procs, k):
    """Receive one message from worker ``k``; diagnose a dead worker."""
    try:
        msg = conns[k].recv()
    except EOFError:
        _kill_all(procs)
        code = procs[k].exitcode
        raise RuntimeError(
            f"shard worker {k} died without reporting (exit code {code})"
        ) from None
    if msg[0] == "err":
        _kill_all(procs)
        raise RuntimeError(f"shard worker {k} failed: {msg[1]}")
    return msg


def _merge(machine, finals) -> None:
    """Fold the workers' measurements back into the parent machine.

    Worker payloads are disjoint by construction — proc stats and
    classifier logs are per-node and every node runs in exactly one
    worker; machine counters and traffic are commutative sums — so the
    merge (in fixed shard order) reproduces the serial totals exactly.
    """
    stats = machine.stats
    traffic = machine.fabric.stats
    cls = machine.classifier
    sim = machine.sim
    finished = 0
    events = 0
    now = 0
    unfinished = []
    for payload in finals:
        for i, d in payload["procs"].items():
            stats.procs[i] = ProcStats.from_dict(d)
        for c in _MACHINE_COUNTERS:
            setattr(stats, c, getattr(stats, c) + payload["machine"][c])
        t = MessageStats.from_dict(payload["traffic"])
        traffic.count.update(t.count)
        traffic.bytes.update(t.bytes)
        traffic.total_hops += t.total_hops
        for name in RELIABILITY_COUNTERS:
            setattr(traffic, name, getattr(traffic, name) + getattr(t, name))
        if cls is not None and payload["logs"]:
            for p, log in payload["logs"].items():
                cls._logs.setdefault(p, []).extend(log)
        finished += payload["finished"]
        events += payload["events"]
        if payload["now"] > now:
            now = payload["now"]
        unfinished.extend(payload["unfinished"])
    machine._finished = finished
    sim.events_processed = events
    sim.now = sim._final = now
    if finished != machine.config.n_procs:
        # Raise here, where the workers' per-node diagnoses are at hand
        # (the parent's own node objects never executed).
        unfinished.sort()
        raise DeadlockError(
            f"{len(unfinished)} processors never finished "
            f"(id, reason, outstanding): {unfinished[:8]}"
        )


def run_forked(machine) -> int:
    """Run a seeded sharded machine with one worker process per shard.

    Drop-in replacement for ``machine.sim.run()``; returns the final
    simulated time with the parent machine's stats/traffic/classifier
    populated exactly as a serial or in-process-sharded run would have.
    """
    sim = machine.sim
    _check_supported(machine)
    ctx = mp.get_context("fork")
    conns = []
    procs = []
    for k in range(sim.n_shards):
        parent_conn, child_conn = ctx.Pipe()
        p = ctx.Process(
            target=_shard_worker,
            args=(machine, k, child_conn),
            name=f"repro-shard-{k}",
            daemon=True,
        )
        p.start()
        child_conn.close()
        conns.append(parent_conn)
        procs.append(p)
    try:
        routed: List[list] = [[] for _ in range(sim.n_shards)]
        routed_fx: List[list] = [[] for _ in range(sim.n_shards)]
        shard_of = sim.shard_of
        nxt = sim.min_next()  # parent's queues hold the identical seed
        lookahead = sim.lookahead
        stall = machine.stall_cycles
        last_prog = -1
        prog_time = 0
        while nxt is not None:
            horizon = nxt + lookahead
            for k, conn in enumerate(conns):
                try:
                    conn.send(("epoch", horizon, routed[k], routed_fx[k]))
                except (BrokenPipeError, OSError):
                    pass  # diagnosed by _recv below
                routed[k] = []
                routed_fx[k] = []
            nxt = None
            total_prog = 0
            for k in range(sim.n_shards):
                _, qnext, outbound, out_fx, prog = _recv(conns, procs, k)
                total_prog += prog
                if qnext is not None and (nxt is None or qnext < nxt):
                    nxt = qnext
                for rec in outbound:
                    routed[rec[0]].append(rec[1:])
                    if nxt is None or rec[1] < nxt:
                        nxt = rec[1]
                for fx in out_fx:
                    routed_fx[shard_of[fx[0]]].append(fx)
            sim.epochs += 1
            if stall:
                if total_prog != last_prog:
                    last_prog = total_prog
                    prog_time = horizon
                elif horizon - prog_time >= stall:
                    _kill_all(procs)
                    raise SimulationStall(
                        f"no processor committed an operation for "
                        f"{stall} cycles (t={horizon}; sharded process "
                        f"backend, {sim.n_shards} workers)",
                        kind="watchdog",
                        cycle=horizon,
                    )
        for conn in conns:
            conn.send(("stop",))
        finals = []
        for k in range(sim.n_shards):
            finals.append(_recv(conns, procs, k)[1])
        _merge(machine, finals)
        for p in procs:
            p.join()
    finally:
        for conn in conns:
            conn.close()
        _kill_all(procs)
    return sim.now
