"""Global simulation loop.

The simulator owns the event queue and the global clock.  Processors and
protocol components schedule callbacks on it; :meth:`Simulator.run` drains
events until the queue is empty (all programs finished) or a safety limit
is reached.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.engine.events import EventQueue


class DeadlockError(RuntimeError):
    """Raised when the event queue empties while processors are blocked."""


class Simulator:
    """Event loop with a monotonically non-decreasing global clock."""

    __slots__ = ("queue", "now", "max_cycles", "events_processed", "post_event_hook")

    def __init__(self, max_cycles: int = 1 << 62) -> None:
        self.queue = EventQueue()
        self.now: int = 0
        self.max_cycles = max_cycles
        self.events_processed: int = 0
        # Observability hook called (with no arguments) after every event;
        # set before run() (e.g. per-event invariant checking).
        self.post_event_hook = None

    def at(self, time: int, callback: Callable, *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute ``time``.

        Scheduling in the past is a programming error and raises.
        """
        if time < self.now:
            raise ValueError(
                f"event scheduled in the past: {time} < now={self.now}"
            )
        self.queue.push(time, callback, *args)

    def after(self, delay: int, callback: Callable, *args: Any) -> None:
        """Schedule ``callback(*args)`` ``delay`` cycles from now."""
        self.queue.push(self.now + delay, callback, *args)

    def run(self) -> int:
        """Drain the event queue; return the final simulated time."""
        queue = self.queue
        hook = self.post_event_hook
        while queue:
            time, callback, args = queue.pop()
            if time > self.max_cycles:
                raise RuntimeError(
                    f"simulation exceeded max_cycles={self.max_cycles}"
                )
            self.now = time
            callback(*args)
            self.events_processed += 1
            if hook is not None:
                hook()
        return self.now
