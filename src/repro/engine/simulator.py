"""Global simulation loop.

The simulator owns the event queue and the global clock.  Processors and
protocol components schedule callbacks on it; :meth:`Simulator.run` drains
events until the queue is empty (all programs finished) or a safety limit
is reached.

Cross-node deliveries go through :meth:`Simulator.deliver_remote`, which
inserts them with the canonical remote-lane key ``(time, src, src_seq)``
(see :mod:`repro.engine.events`).  The sharded scheduler
(:mod:`repro.engine.shard`) overrides only that routing decision — the
per-event execution discipline is this class's, which is what makes
sharded runs bit-identical to serial ones.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.engine.events import EventQueue


class DeadlockError(RuntimeError):
    """Raised when the event queue empties while processors are blocked."""


class Simulator:
    """Event loop with a monotonically non-decreasing global clock."""

    __slots__ = (
        "queue",
        "now",
        "max_cycles",
        "events_processed",
        "post_event_hook",
        "machine",
    )

    def __init__(self, max_cycles: int = 1 << 62) -> None:
        self.queue = EventQueue()
        self.now: int = 0
        self.max_cycles = max_cycles
        # Observability hook called (with no arguments) after every event;
        # set before run() (e.g. per-event invariant checking).
        self.events_processed: int = 0
        self.post_event_hook = None
        # Back-reference to the owning Machine (set by Machine.__init__);
        # snapshot() needs the whole object graph, and events reference
        # it anyway through their callbacks.
        self.machine = None

    def on_node(self, node_id: int) -> None:
        """Scheduling-affinity hint: subsequent events belong to
        ``node_id``.  The serial simulator has one queue and ignores it;
        the sharded scheduler routes to the node's shard."""

    def shard_effect(self, dst: int, kind: str, block: int) -> None:
        """Declare a cross-node state mark just written to node ``dst``
        (e.g. the "reply in flight" counters protocols set on a *remote*
        node at send time).  A no-op under shared memory — serial and
        in-process-sharded runs see the write directly; the forked
        process backend replicates it to ``dst``'s worker at the next
        epoch barrier, which precedes every event that could observe it
        (the mark's observers all run at message arrivals, ``>=``
        lookahead after the write)."""

    def has_pending(self) -> bool:
        """Whether any event (including in-flight cross-shard ones) exists."""
        return bool(self.queue)

    def at(self, time: int, callback: Callable, *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute ``time``.

        Scheduling in the past is a programming error and raises.
        """
        if time < self.now:
            raise ValueError(
                f"event scheduled in the past: {time} < now={self.now}"
            )
        self.queue.push(time, callback, *args)

    def after(self, delay: int, callback: Callable, *args: Any) -> None:
        """Schedule ``callback(*args)`` ``delay`` cycles from now."""
        self.queue.push(self.now + delay, callback, *args)

    def deliver_remote(
        self,
        time: int,
        src: int,
        src_seq: int,
        dst: int,
        callback: Callable,
        *args: Any,
    ) -> None:
        """Schedule a cross-node arrival at ``dst`` with the canonical
        remote-lane key ``(time, src, src_seq)``.

        ``dst`` routes the event to its owning shard in sharded mode; the
        serial simulator has a single queue and ignores it.
        """
        self.queue.push_remote(time, src, src_seq, callback, args)

    # -- checkpointing (engine.checkpoint; DESIGN.md §15) ------------------------

    def snapshot(self):
        """Checkpoint the owning machine's full state at this quiescent
        point; returns a verified :class:`~repro.engine.checkpoint.Checkpoint`.

        Event callbacks reference the machine graph, so a simulator is
        only checkpointable as part of its machine.  Call between events
        (serial) or from ``barrier_hook`` (sharded).
        """
        from repro.engine.checkpoint import CheckpointError, snapshot_machine

        if self.machine is None:
            raise CheckpointError(
                "this simulator has no owning Machine; snapshot whole "
                "machines (Machine.snapshot), not bare simulators"
            )
        return snapshot_machine(self.machine)

    @staticmethod
    def restore(checkpoint) -> "Simulator":
        """Rebuild the checkpointed machine; returns its simulator
        (``sim.machine`` reaches the rest)."""
        from repro.engine.checkpoint import restore_machine

        return restore_machine(checkpoint).sim

    def run(self) -> int:
        """Drain the event queue; return the final simulated time."""
        queue = self.queue
        hook = self.post_event_hook
        max_cycles = self.max_cycles
        while queue:
            time, callback, args = queue.pop()
            if time > max_cycles:
                raise RuntimeError(
                    f"simulation exceeded max_cycles={self.max_cycles}"
                )
            self.now = time
            callback(*args)
            self.events_processed += 1
            if hook is not None:
                hook()
        return self.now
