"""The replay half of the record/replay engine.

A :class:`~repro.program.stream.RecordedStream` is compiled — once per
stream, cached on the stream object — into per-processor *micro-programs*:
flat Python lists in which

* scalar ops keep their legacy tuple forms (the run loop's dispatch for
  them is unchanged), and
* every run op is decomposed into **block spans**: maximal runs of
  consecutive elements that fall in one cache block, pre-tagged with the
  block number and (for write/rw spans) the tuple of word indices the
  elements touch.

The :class:`ReplayProcessor` drives a machine from a micro-program with
a slot-based cursor (plain integer index into the list; no generator
frames, no per-op allocation).  Its fast path retires a whole span with
a handful of Python operations — one tag compare, one bulk stats/time
update, one ``set.update`` for coalescing-buffer words — instead of the
per-reference loop, which is where the engine's order-of-magnitude
speedup on run-op-dense apps comes from.

Bit-identity contract: every batched span is *provably* equivalent to
the per-element legacy loop, because no simulator event can run between
the elements of a span (the CPU loop is synchronous within a quantum)
and the batch formulas reproduce the legacy per-element time/stat
arithmetic exactly, including quantum-deadline splits.  Any condition
the fast path does not cover — a miss, a cold coalescing-buffer entry, a
write-buffer stall, an attached miss classifier or value model — is
*demoted*: the span re-enters the dispatch loop as a legacy run-op tuple
and takes the exact code path the generator engine takes.  The
differential suite (``tests/test_replay.py``) and the golden fixtures
hold the two engines to bit-identical :class:`RunResult`\\ s.
"""

from __future__ import annotations

from typing import List

from repro.core.processor import B_READ, B_SYNC, B_WB, Processor
from repro.program.ops import (
    ACQUIRE,
    BARRIER,
    COMPUTE,
    FENCE,
    READ,
    READ_RUN,
    RELEASE,
    RW_RESUME,
    RW_RUN,
    SET_FLAG,
    WAIT_FLAG,
    WRITE,
    WRITE_RUN,
)

#: Micro-op opcodes for block spans (disjoint from the program opcodes).
READ_SPAN = 32
WRITE_SPAN = 33
RW_SPAN = 34

_RUN_KINDS = (READ_RUN, WRITE_RUN, RW_RUN)

def compile_stream(stream) -> List[list]:
    """Per-proc micro-programs for ``stream``, compiled once and cached.

    Span decomposition depends only on the stream's own geometry
    (``line_size`` / ``word_size`` are part of the stream's identity), so
    the compiled form is valid for every machine the stream may legally
    replay on, whatever its cache size or timing parameters.
    """
    if stream._compiled is not None:
        return stream._compiled
    line_size = stream.meta["line_size"]
    lsh = line_size.bit_length() - 1
    wmask = (line_size // stream.meta["word_size"]) - 1
    programs: List[list] = []
    for pid in range(stream.n_procs):
        sl = stream.proc_slice(pid)
        out: list = []
        push = out.append
        for kind, x, y, z in zip(
            stream.op[sl].tolist(),
            stream.a[sl].tolist(),
            stream.b[sl].tolist(),
            stream.c[sl].tolist(),
        ):
            if kind in _RUN_KINDS:
                base, count, stride = x, y, z
                j = 0
                addr = base
                while j < count:
                    block = addr >> lsh
                    k = 1
                    nxt = addr + stride
                    while j + k < count and (nxt >> lsh) == block:
                        k += 1
                        nxt += stride
                    if kind == READ_RUN:
                        push((READ_SPAN, block, addr, k, stride))
                    else:
                        words = tuple(
                            ((addr + m * stride) >> 3) & wmask for m in range(k)
                        )
                        push((
                            WRITE_SPAN if kind == WRITE_RUN else RW_SPAN,
                            block, addr, k, stride, words,
                        ))
                    j += k
                    addr = nxt
            elif kind == FENCE:
                push((FENCE,))
            else:
                push((kind, x))
        programs.append(out)
    stream._compiled = programs
    return programs


class ReplayProcessor(Processor):
    """Drives one node from a compiled micro-program.

    The cursor is a plain index (``_i``) into the micro-program list —
    slot-based and allocation-free; blocking continuations reuse the
    legacy pending-tuple forms, so the protocol-facing surface
    (:meth:`block`, :meth:`unblock`, :meth:`complete_pending_write`) is
    byte-for-byte the legacy one.
    """

    __slots__ = ("_mops", "_i", "_n")

    def __init__(self, node, machine) -> None:
        super().__init__(node, machine)
        self._mops: list = []
        self._i = 0
        self._n = 0

    def set_micro_program(self, mops: list) -> None:
        self._mops = mops
        self._i = 0
        self._n = len(mops)
        if self.node.cbuf is not None:
            self._wt_words = self.node.cbuf.words

    def set_program(self, gen) -> None:  # pragma: no cover - guard
        raise RuntimeError(
            "ReplayProcessor consumes micro-programs; use set_micro_program()"
        )

    # The dispatch loop mirrors Processor.run_quantum exactly, with two
    # changes: ops come from the micro-program cursor instead of a
    # generator, and the three span opcodes get batched fast paths that
    # demote to the legacy run-op branches whenever anything interesting
    # (miss, stall, observer) happens.
    def run_quantum(self) -> None:
        sim = self.sim
        t = sim.now
        deadline = t + self._quantum
        node = self.node
        cache = node.cache
        tags = cache.tags
        states = cache.states
        mask = cache.set_mask
        lsh = self._line_shift
        wmask = self._word_mask
        stats = self.stats
        prot = self.protocol
        wb = node.wb
        wb_words = wb.words if wb is not None else None
        obs = self.machine.classifier
        vm = self.machine.valmodel
        my_id = self.id
        mops = self._mops
        i = self._i
        n = self._n
        # Spans stay batched with a classifier attached: the classifier's
        # logged mode takes whole spans as single compact records
        # (record_write_span) stamped with the per-element retire times
        # the legacy loop would have used.  Only a value model still
        # demotes spans to the per-element branches.
        plain = vm is None

        pend = self._pending
        self._pending = None

        while True:
            if pend is not None:
                op = pend
                pend = None
            elif i < n:
                op = mops[i]
                i += 1
                self._i = i
            else:
                self._finish(t)
                return
            kind = op[0]

            # -- span fast paths ------------------------------------------------
            if kind == READ_SPAN:
                _, block, base, count, stride = op
                s = block & mask
                if vm is None and (
                    (tags[s] == block and states[s])
                    or (wb_words is not None and block in wb_words)
                ):
                    left = deadline - t
                    if count <= left:
                        stats.reads += count
                        t += count
                    else:
                        stats.reads += left
                        t += left
                        self._pending = (READ_RUN, base, count, stride, left)
                        sim.at(t, self.run_quantum)
                        return
                else:
                    pend = (READ_RUN, base, count, stride)
                    continue

            elif kind == WRITE_SPAN:
                _, block, base, count, stride, words = op
                s = block & mask
                if plain and tags[s] == block and states[s] == 2:
                    wt = self._wt_words
                    ws = wt.get(block) if wt is not None else None
                    if wt is not None and ws is None:
                        # Cold coalescing-buffer entry: retire the first
                        # write through the protocol exactly as the legacy
                        # loop does (cpu_write never stalls in state 2),
                        # then re-check the preconditions for the tail.
                        if obs is not None:
                            obs.record_write(my_id, block, words[0], t)
                        t = prot.cpu_write(node, t, block, words[0])
                        stats.writes += 1
                        if count > 1:
                            if t >= deadline:
                                self._pending = (WRITE_RUN, base, count, stride, 1)
                                sim.at(t, self.run_quantum)
                                return
                            ws = wt.get(block)
                            if ws is None or tags[s] != block or states[s] != 2:
                                pend = (WRITE_RUN, base, count, stride, 1)
                                continue
                            m = count - 1
                            left = deadline - t
                            if m <= left:
                                if obs is not None:
                                    obs.record_write_span(
                                        my_id, t, block, words[1:], 1
                                    )
                                ws.update(words[1:])
                                stats.writes += m
                                t += m
                            else:
                                if obs is not None:
                                    obs.record_write_span(
                                        my_id, t, block, words[1 : 1 + left], 1
                                    )
                                ws.update(words[1 : 1 + left])
                                stats.writes += left
                                t += left
                                self._pending = (
                                    WRITE_RUN, base, count, stride, 1 + left,
                                )
                                sim.at(t, self.run_quantum)
                                return
                    elif count <= (left := deadline - t):
                        if obs is not None:
                            obs.record_write_span(my_id, t, block, words, 1)
                        if ws is not None:
                            ws.update(words)
                        stats.writes += count
                        t += count
                    else:
                        if obs is not None:
                            obs.record_write_span(my_id, t, block, words[:left], 1)
                        if ws is not None:
                            ws.update(words[:left])
                        stats.writes += left
                        t += left
                        self._pending = (WRITE_RUN, base, count, stride, left)
                        sim.at(t, self.run_quantum)
                        return
                else:
                    pend = (WRITE_RUN, base, count, stride)
                    continue

            elif kind == RW_SPAN:
                _, block, base, count, stride, words = op
                s = block & mask
                if plain and tags[s] == block and states[s] == 2:
                    wt = self._wt_words
                    ws = wt.get(block) if wt is not None else None
                    if wt is not None and ws is None:
                        # Cold coalescing-buffer entry: element 0 is a
                        # read hit (state 2) plus a protocol write that
                        # starts the entry, exactly as the legacy loop
                        # does; then re-check and batch the tail.
                        stats.reads += 1
                        t += 1
                        if obs is not None:
                            obs.record_write(my_id, block, words[0], t)
                        t = prot.cpu_write(node, t, block, words[0])
                        stats.writes += 1
                        if count > 1:
                            if t >= deadline:
                                self._pending = (RW_RUN, base, count, stride, 1)
                                sim.at(t, self.run_quantum)
                                return
                            ws = wt.get(block)
                            if ws is None or tags[s] != block or states[s] != 2:
                                pend = (RW_RUN, base, count, stride, 1)
                                continue
                            m = count - 1
                            k = (deadline - t + 1) >> 1
                            if m <= k:
                                if obs is not None:
                                    obs.record_write_span(
                                        my_id, t + 1, block, words[1:], 2
                                    )
                                ws.update(words[1:])
                                stats.reads += m
                                stats.writes += m
                                t += 2 * m
                            else:
                                if obs is not None:
                                    obs.record_write_span(
                                        my_id, t + 1, block, words[1 : 1 + k], 2
                                    )
                                ws.update(words[1 : 1 + k])
                                stats.reads += k
                                stats.writes += k
                                t += 2 * k
                                self._pending = (RW_RUN, base, count, stride, 1 + k)
                                sim.at(t, self.run_quantum)
                                return
                    elif count <= (k := (deadline - t + 1) >> 1):
                        if obs is not None:
                            obs.record_write_span(my_id, t + 1, block, words, 2)
                        if ws is not None:
                            ws.update(words)
                        stats.reads += count
                        stats.writes += count
                        t += 2 * count
                    else:
                        if obs is not None:
                            obs.record_write_span(my_id, t + 1, block, words[:k], 2)
                        if ws is not None:
                            ws.update(words[:k])
                        stats.reads += k
                        stats.writes += k
                        t += 2 * k
                        self._pending = (RW_RUN, base, count, stride, k)
                        sim.at(t, self.run_quantum)
                        return
                else:
                    pend = (RW_RUN, base, count, stride)
                    continue

            # -- legacy branches (identical to Processor.run_quantum) -----------
            elif kind == READ:
                addr = op[1]
                block = addr >> lsh
                s = block & mask
                stats.reads += 1
                if tags[s] == block and states[s]:
                    t += 1
                    if vm is not None:
                        vm.read_hit(my_id, block, (addr >> 3) & wmask)
                elif wb_words is not None and block in wb_words:
                    t += 1  # read bypasses / forwards from the write buffer
                    if vm is not None:
                        vm.read_wb(my_id, block, (addr >> 3) & wmask)
                else:
                    stats.read_misses += 1
                    word = (addr >> 3) & wmask
                    if obs is not None:
                        obs.classify_miss(my_id, block, word, t)
                    if vm is not None:
                        vm.read_miss(my_id, block, word)
                    self.block(t, B_READ)
                    prot.cpu_read_miss(node, t, block)
                    return

            elif kind == WRITE:
                addr = op[1]
                block = addr >> lsh
                s = block & mask
                word = (addr >> 3) & wmask
                if obs is not None:
                    obs.record_write(my_id, block, word, t)
                if tags[s] == block and states[s] == 2:
                    wt = self._wt_words
                    if wt is None:
                        stats.writes += 1
                        t += 1
                    else:
                        ws = wt.get(block)
                        if ws is not None:
                            ws.add(word)
                            stats.writes += 1
                            t += 1
                        else:
                            t = prot.cpu_write(node, t, block, word)
                            stats.writes += 1
                    if vm is not None:
                        vm.write(my_id, block, word)
                else:
                    nt = prot.cpu_write(node, t, block, word)
                    if nt < 0:
                        self._pending = op
                        self.block(t, B_WB)
                        return
                    stats.writes += 1
                    t = nt
                    if vm is not None:
                        vm.write(my_id, block, word)

            elif kind == READ_RUN or kind == WRITE_RUN or kind == RW_RUN or kind == RW_RESUME:
                if len(op) == 5:
                    _, base, count, stride, j = op
                else:
                    _, base, count, stride = op
                    j = 0
                skip_read_once = kind == RW_RESUME
                if skip_read_once:
                    kind = RW_RUN
                is_read = kind == READ_RUN
                is_rw = kind == RW_RUN
                addr = base + j * stride
                while j < count:
                    block = addr >> lsh
                    s = block & mask
                    word = (addr >> 3) & wmask
                    if (is_read or is_rw) and not skip_read_once:
                        stats.reads += 1
                        if tags[s] == block and states[s]:
                            t += 1
                            if vm is not None:
                                vm.read_hit(my_id, block, word)
                        elif wb_words is not None and block in wb_words:
                            t += 1
                            if vm is not None:
                                vm.read_wb(my_id, block, word)
                        else:
                            stats.read_misses += 1
                            if obs is not None:
                                obs.classify_miss(my_id, block, word, t)
                            if vm is not None:
                                vm.read_miss(my_id, block, word)
                            if is_rw:
                                self._pending = (RW_RESUME, base, count, stride, j)
                            else:
                                self._pending = (kind, base, count, stride, j + 1)
                            self.block(t, B_READ)
                            prot.cpu_read_miss(node, t, block)
                            return
                    skip_read_once = False
                    if not is_read:
                        if obs is not None:
                            obs.record_write(my_id, block, word, t)
                        if tags[s] == block and states[s] == 2:
                            wt = self._wt_words
                            if wt is None:
                                stats.writes += 1
                                t += 1
                            else:
                                ws = wt.get(block)
                                if ws is not None:
                                    ws.add(word)
                                    stats.writes += 1
                                    t += 1
                                else:
                                    t = prot.cpu_write(node, t, block, word)
                                    stats.writes += 1
                            if vm is not None:
                                vm.write(my_id, block, word)
                        else:
                            nt = prot.cpu_write(node, t, block, word)
                            if nt < 0:
                                self._pending = (
                                    (RW_RESUME if is_rw else kind),
                                    base,
                                    count,
                                    stride,
                                    j,
                                )
                                self.block(t, B_WB)
                                return
                            stats.writes += 1
                            t = nt
                            if vm is not None:
                                vm.write(my_id, block, word)
                    j += 1
                    addr += stride
                    if t >= deadline and j < count:
                        self._pending = (kind, base, count, stride, j)
                        sim.at(t, self.run_quantum)
                        return

            elif kind == COMPUTE:
                c = op[1]
                if t + c <= deadline:
                    t += c
                else:
                    done_now = deadline - t
                    self._pending = (COMPUTE, c - done_now)
                    sim.at(deadline, self.run_quantum)
                    return

            elif kind == ACQUIRE:
                stats.acquires += 1
                self.block(t, B_SYNC)
                prot.cpu_acquire(node, t, op[1])
                return

            elif kind == RELEASE:
                stats.releases += 1
                self.block(t, B_SYNC)
                prot.cpu_release(node, t, op[1])
                return

            elif kind == BARRIER:
                stats.barriers += 1
                self.block(t, B_SYNC)
                prot.cpu_barrier(node, t, op[1])
                return

            elif kind == FENCE:
                self.block(t, B_SYNC)
                prot.cpu_fence(node, t)
                return

            elif kind == SET_FLAG:
                stats.releases += 1
                self.block(t, B_SYNC)
                prot.cpu_set_flag(node, t, op[1])
                return

            elif kind == WAIT_FLAG:
                stats.acquires += 1
                self.block(t, B_SYNC)
                prot.cpu_wait_flag(node, t, op[1])
                return

            else:
                raise ValueError(f"unknown opcode {kind!r}")

            if t >= deadline:
                self._pending = None
                sim.at(t, self.run_quantum)
                return


def install_replay(machine, stream) -> None:
    """Swap every node's CPU for a :class:`ReplayProcessor` fed from
    ``stream`` and start them at cycle 0."""
    programs = compile_stream(stream)
    tracer = machine.tracer
    for node, mops in zip(machine.nodes, programs):
        proc = ReplayProcessor(node, machine)
        node.proc = proc
        proc.set_micro_program(mops)
        machine.sim.on_node(node.id)  # seed into the node's shard
        proc.start()
    # (tracer/checker hold node references, not processor ones, so the
    # swap is invisible to observability — asserted by the checked ==
    # unchecked replay sweeps.)
    del tracer
