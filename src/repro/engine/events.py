"""Deterministic time-ordered event queue.

A thin wrapper over :mod:`heapq` that breaks time ties by insertion order,
so two runs of the same configuration produce bit-identical schedules —
a property the test suite checks explicitly.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional, Tuple


class EventQueue:
    """Min-heap of ``(time, seq, callback, args)`` events."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list = []
        self._seq: int = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: int, callback: Callable, *args: Any) -> None:
        """Schedule ``callback(*args)`` at ``time``.

        Events at equal times fire in insertion (FIFO) order.
        """
        if time < 0:
            raise ValueError("event time must be non-negative")
        heapq.heappush(self._heap, (time, self._seq, callback, args))
        self._seq += 1

    def pop(self) -> Tuple[int, Callable, tuple]:
        """Remove and return the earliest ``(time, callback, args)``."""
        time, _seq, callback, args = heapq.heappop(self._heap)
        return time, callback, args

    def peek_time(self) -> Optional[int]:
        """Time of the earliest pending event, or ``None`` if empty."""
        return self._heap[0][0] if self._heap else None
