"""Deterministic time-ordered event queue.

A thin wrapper over :mod:`heapq` whose ordering key is *canonical*: it
depends only on simulated time plus per-source sequence numbers, never
on which partition of the machine happened to insert the event first.
That property is what lets the sharded PDES scheduler (DESIGN.md §14)
reproduce the serial engine bit-for-bit — serial and sharded modes share
this queue and therefore the same same-timestamp tie-break.

Two lanes exist at every timestamp:

* **local** (lane 0) — events a node schedules for itself (CPU quanta,
  protocol follow-ups, resource completions).  Ties break by an explicit
  monotonic insertion sequence, so same-time local events fire in FIFO
  order.  Local events of *different* nodes commute (each touches only
  its own node's state), so the insertion counter does not need to be
  shared across shards.
* **remote** (lane 1) — cross-node arrivals injected by the fabric.
  Ties break by ``(src, src_seq)``: the sending node's id plus its
  per-source send counter.  Both are properties of the *sender's* own
  deterministic execution, so remote arrivals sort identically no matter
  which shard delivered them or when they crossed an epoch barrier.

At equal timestamps the local lane fires before the remote lane.  Heap
entries always carry the full ``(time, lane, k1, k2, seq)`` key before
the callback, so tuple comparison can never fall through to comparing
callbacks (the bug class the explicit-seq tie-break exists to prevent).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional, Tuple

#: Lane of events a node schedules for itself (FIFO by insertion).
LANE_LOCAL = 0
#: Lane of cross-node arrivals (ordered by ``(src, src_seq)``).
LANE_REMOTE = 1


class EventQueue:
    """Min-heap of ``(time, lane, k1, k2, seq, callback, args)`` events."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list = []
        self._seq: int = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: int, callback: Callable, *args: Any) -> None:
        """Schedule local-lane ``callback(*args)`` at ``time``.

        Events at equal times fire in insertion (FIFO) order, by an
        explicit monotonic sequence number.
        """
        if time < 0:
            raise ValueError("event time must be non-negative")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(
            self._heap, (time, LANE_LOCAL, seq, 0, seq, callback, args)
        )

    def push_remote(
        self, time: int, src: int, src_seq: int, callback: Callable, args: tuple
    ) -> None:
        """Schedule a remote arrival from ``src`` with canonical key
        ``(time, src, src_seq)``.

        ``src_seq`` must be unique per source (the fabric's per-node send
        counter), making the key a total order independent of insertion
        order — and therefore of the shard layout.
        """
        if time < 0:
            raise ValueError("event time must be non-negative")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(
            self._heap, (time, LANE_REMOTE, src, src_seq, seq, callback, args)
        )

    def pop(self) -> Tuple[int, Callable, tuple]:
        """Remove and return the earliest ``(time, callback, args)``."""
        entry = heapq.heappop(self._heap)
        return entry[0], entry[5], entry[6]

    def peek_time(self) -> Optional[int]:
        """Time of the earliest pending event, or ``None`` if empty."""
        return self._heap[0][0] if self._heap else None
