"""Gauss: Gaussian elimination without pivoting (SPLASH-style kernel).

"Gauss performs Gaussian elimination without pivoting on a 448x448
matrix."  Rows are assigned cyclically; the producer of pivot row ``k``
signals a per-row flag, and consumers read the freshly-written (dirty)
row under tight synchronization — the access pattern that makes eager
protocols pay 3-hop transactions and contention at the producer, while
the lazy protocol reads the up-to-date home memory in 2 hops
(Section 4.2's analysis of gauss).

No false sharing: rows are cache-line aligned.
"""

from __future__ import annotations

from typing import Iterator

from repro.apps.common import App, register
from repro.program.ops import (
    BARRIER,
    COMPUTE,
    READ,
    READ_RUN,
    RW_RUN,
    SET_FLAG,
    WAIT_FLAG,
)


@register
class Gauss(App):
    name = "gauss"

    def setup(self, n: int = 96, flops_per_elem: int = 2) -> None:
        """``n`` — matrix dimension (paper: 448; scaled default 96)."""
        self.n = n
        self.flops = flops_per_elem
        cfg = self.cfg
        # Row-major n x n matrix of doubles, rows padded to a whole number
        # of cache lines so rows never falsely share a line.
        line = cfg.line_size
        self.row_bytes = -(-n * 8 // line) * line
        self.a = self.space.alloc(n * self.row_bytes, "gauss.A")
        self.row_flag = self.flag_id(n)
        self.end_barrier = self.barrier_id()

    def row_addr(self, i: int, j: int) -> int:
        return self.a.base + i * self.row_bytes + j * 8

    def program(self, pid: int) -> Iterator:
        n = self.n
        np_ = self.n_procs
        flops = self.flops
        for k in range(n - 1):
            width = n - k
            if k % np_ == pid:
                # Normalize pivot row k (divide by the pivot): read+write
                # the active part of the row, then publish it.
                yield (RW_RUN, self.row_addr(k, k), width, 8)
                yield (COMPUTE, flops * width)
                yield (SET_FLAG, self.row_flag + k)
            else:
                yield (WAIT_FLAG, self.row_flag + k)
            # Eliminate column k from my rows below k.
            pivot_base = self.row_addr(k, k + 1)
            for i in range(k + 1 + (pid - (k + 1)) % np_, n, np_):
                yield (READ, self.row_addr(i, k))       # the multiplier
                yield (READ_RUN, pivot_base, width - 1, 8)
                yield (RW_RUN, self.row_addr(i, k + 1), width - 1, 8)
                yield (COMPUTE, flops * (width - 1))
        yield (BARRIER, self.end_barrier)
