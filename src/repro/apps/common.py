"""Application framework.

An :class:`App` is constructed against an :class:`AppContext` — a
lightweight ``(SystemConfig, AddressSpace)`` pair — and then produces one
reference-stream generator per processor via :meth:`App.program`.  App
construction involves no live machine: the context is all an app needs
to allocate its shared data and emit its streams, which is what lets the
record/replay engine (:mod:`repro.program.stream`,
:mod:`repro.engine.replay`) execute an app's Python exactly once per
workload and replay the recorded stream across a whole
protocol × config sweep.

The pre-redesign calling convention ``App(machine, ...)`` still works
through a one-release compatibility shim (a :class:`DeprecationWarning`
plus an adapter that wraps the machine's config and address space in a
context); new code should pass an :class:`AppContext`, or an existing
machine via ``AppContext.for_machine(machine)`` when the app must
allocate directly into a live machine's address space (the legacy
generator execution path).

Conventions used by all apps:

* synchronization name spaces: lock ids, flag ids, and barrier ids are
  independent (the runtime keys them separately), but each app keeps its
  own ids disjoint per kind anyway, allocated via the ``lock_id`` /
  ``flag_id`` / ``barrier_id`` helpers;
* ``COMPUTE`` gaps model the arithmetic between memory references (one
  cycle per reference is charged implicitly by the CPU model);
* every app ends with a global barrier so all processors finish together
  (as the SPLASH programs do).
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterator, List, Optional, Type

import numpy as np

from repro.program.address_space import AddressSpace, RecordingAddressSpace
from repro.program.ops import (
    ACQUIRE,
    BARRIER,
    COMPUTE,
    READ,
    READ_RUN,
    RELEASE,
    RW_RUN,
    SET_FLAG,
    WAIT_FLAG,
    WRITE,
    WRITE_RUN,
)

APPS: Dict[str, Type] = {}


def register(cls: Type) -> Type:
    """Class decorator: add an app to the global registry."""
    APPS[cls.name] = cls
    return cls


class AppContext:
    """What an app builds against: a config plus an address space.

    By default the space is a :class:`RecordingAddressSpace`, so any app
    constructed from a fresh context can later be recorded into a
    :class:`~repro.program.stream.RecordedStream` (the stream carries the
    allocation log).  ``for_machine`` wraps a live machine's own space
    instead — the legacy generator path, where the app allocates directly
    into the machine it will run on.
    """

    __slots__ = ("config", "space", "machine")

    def __init__(
        self, config, space: Optional[AddressSpace] = None, machine=None
    ) -> None:
        self.config = config
        self.space = space if space is not None else RecordingAddressSpace(config)
        self.machine = machine

    @classmethod
    def for_machine(cls, machine) -> "AppContext":
        """A context sharing a live machine's config and address space.

        The machine is kept as a backref (``ctx.machine``), so
        :func:`repro.core.api.run_app` can run the app on the machine it
        allocated against.
        """
        return cls(machine.config, machine.space, machine)

    @property
    def alloc_log(self):
        log = getattr(self.space, "alloc_log", None)
        if log is None:
            raise TypeError(
                "this context wraps a non-recording address space; "
                "apps built against it cannot be recorded"
            )
        return log


class App:
    """Base class for workload generators."""

    name = "app"

    def __init__(self, ctx, seed: int = 0, **params) -> None:
        if not isinstance(ctx, AppContext):
            # One-release compatibility shim: App(machine, ...) still
            # works, wrapped in a context over the machine's space.
            warnings.warn(
                f"constructing {type(self).__name__} against a Machine is "
                "deprecated; pass an AppContext (or "
                "AppContext.for_machine(machine)) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            ctx = AppContext.for_machine(ctx)
        self.machine = ctx.machine
        self.ctx = ctx
        self.space = ctx.space
        self.cfg = ctx.config
        self.n_procs = ctx.config.n_procs
        self.rng = np.random.default_rng(ctx.config.seed + seed)
        self._next_lock = 0
        self._next_flag = 0
        self._next_barrier = 0
        self.setup(**params)

    # -- to be provided by subclasses ------------------------------------------

    def setup(self, **params) -> None:
        raise NotImplementedError

    def program(self, pid: int) -> Iterator:
        raise NotImplementedError

    # -- id allocators ------------------------------------------------------------

    def lock_id(self, n: int = 1) -> int:
        base = self._next_lock
        self._next_lock += n
        return base

    def flag_id(self, n: int = 1) -> int:
        base = self._next_flag
        self._next_flag += n
        return base

    def barrier_id(self) -> int:
        b = self._next_barrier
        self._next_barrier += 1
        return b

    # -- partitioning helpers --------------------------------------------------------

    def cyclic(self, total: int, pid: int) -> range:
        """Indices owned by ``pid`` under cyclic (round-robin) assignment."""
        return range(pid, total, self.n_procs)

    def blocked(self, total: int, pid: int) -> range:
        """Indices owned by ``pid`` under contiguous block assignment."""
        per = -(-total // self.n_procs)
        lo = min(pid * per, total)
        hi = min(lo + per, total)
        return range(lo, hi)

    def owner_cyclic(self, index: int) -> int:
        return index % self.n_procs
