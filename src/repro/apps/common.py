"""Application framework.

An :class:`App` is constructed against a machine (it allocates its shared
data in the machine's address space) and then produces one reference-
stream generator per processor via :meth:`App.program`.

Conventions used by all apps:

* synchronization name spaces: lock ids, flag ids, and barrier ids are
  independent (the runtime keys them separately), but each app keeps its
  own ids disjoint per kind anyway, allocated via the ``lock_id`` /
  ``flag_id`` / ``barrier_id`` helpers;
* ``COMPUTE`` gaps model the arithmetic between memory references (one
  cycle per reference is charged implicitly by the CPU model);
* every app ends with a global barrier so all processors finish together
  (as the SPLASH programs do).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Type

import numpy as np

from repro.program.ops import (
    ACQUIRE,
    BARRIER,
    COMPUTE,
    READ,
    READ_RUN,
    RELEASE,
    RW_RUN,
    SET_FLAG,
    WAIT_FLAG,
    WRITE,
    WRITE_RUN,
)

APPS: Dict[str, Type] = {}


def register(cls: Type) -> Type:
    """Class decorator: add an app to the global registry."""
    APPS[cls.name] = cls
    return cls


class App:
    """Base class for workload generators."""

    name = "app"

    def __init__(self, machine, seed: int = 0, **params) -> None:
        self.machine = machine
        self.space = machine.space
        self.cfg = machine.config
        self.n_procs = machine.config.n_procs
        self.rng = np.random.default_rng(machine.config.seed + seed)
        self._next_lock = 0
        self._next_flag = 0
        self._next_barrier = 0
        self.setup(**params)

    # -- to be provided by subclasses ------------------------------------------

    def setup(self, **params) -> None:
        raise NotImplementedError

    def program(self, pid: int) -> Iterator:
        raise NotImplementedError

    # -- id allocators ------------------------------------------------------------

    def lock_id(self, n: int = 1) -> int:
        base = self._next_lock
        self._next_lock += n
        return base

    def flag_id(self, n: int = 1) -> int:
        base = self._next_flag
        self._next_flag += n
        return base

    def barrier_id(self) -> int:
        b = self._next_barrier
        self._next_barrier += 1
        return b

    # -- partitioning helpers --------------------------------------------------------

    def cyclic(self, total: int, pid: int) -> range:
        """Indices owned by ``pid`` under cyclic (round-robin) assignment."""
        return range(pid, total, self.n_procs)

    def blocked(self, total: int, pid: int) -> range:
        """Indices owned by ``pid`` under contiguous block assignment."""
        per = -(-total // self.n_procs)
        lo = min(pid * per, total)
        hi = min(lo + per, total)
        return range(lo, hi)

    def owner_cyclic(self, index: int) -> int:
        return index % self.n_procs
