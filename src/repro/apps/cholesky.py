"""Sparse Cholesky factorization.

"Cholesky performs Cholesky factorization on a sparse matrix using the
bcsstk15 matrix as input."  The Harwell-Boeing input is not
redistributable here, so a synthetic sparse SPD *structure* is generated
instead (seeded, banded-plus-random fill — see DESIGN.md): what the
coherence protocols observe is the left-looking column-update access
pattern, which the synthetic structure reproduces:

* a lock-protected task counter (the SPLASH task queue),
* per-column dependency flags (a column waits for the earlier columns
  that update it),
* reads of each completed dependency column's data followed by a
  read-modify-write sweep of the column being factored.

The profile this produces matches Table 2's cholesky row: dominated by
cold, eviction, and write-upgrade misses with almost no false sharing
(column payloads are line-aligned).
"""

from __future__ import annotations

from typing import Iterator, List

from repro.apps.common import App, register
from repro.program.ops import (
    ACQUIRE,
    BARRIER,
    COMPUTE,
    READ_RUN,
    RELEASE,
    RW_RUN,
    SET_FLAG,
    WAIT_FLAG,
)


@register
class Cholesky(App):
    name = "cholesky"

    def setup(
        self,
        ncols: int = 400,
        band: int = 24,
        max_deps: int = 4,
        min_nz: int = 16,
        max_nz: int = 48,
        flops_per_nz: int = 2,
    ) -> None:
        """Synthetic elimination structure with ``ncols`` columns."""
        self.ncols = ncols
        self.flops = flops_per_nz
        rng = self.rng
        # Nonzero count per column and dependency lists (all backward).
        self.nz: List[int] = [
            int(rng.integers(min_nz, max_nz + 1)) for _ in range(ncols)
        ]
        self.deps: List[List[int]] = []
        for j in range(ncols):
            lo = max(0, j - band)
            k = int(rng.integers(0, max_deps + 1)) if j else 0
            k = min(k, j - lo)
            deps = sorted(rng.choice(range(lo, j), size=k, replace=False)) if k else []
            self.deps.append([int(d) for d in deps])
        # Column data, line-aligned so columns never falsely share.
        line = self.cfg.line_size
        self.col_off: List[int] = []
        off = 0
        for j in range(ncols):
            self.col_off.append(off)
            off += -(-self.nz[j] * 8 // line) * line
        self.cols = self.space.alloc(off, "cholesky.cols")
        self.qlock = self.lock_id()
        self.qcount = self.space.alloc(self.cfg.page_size, "cholesky.queue")
        self.col_flag = self.flag_id(ncols)
        self.end_barrier = self.barrier_id()

    def col_addr(self, j: int) -> int:
        return self.cols.base + self.col_off[j]

    def program(self, pid: int) -> Iterator:
        flops = self.flops
        for j in self.cyclic(self.ncols, pid):
            # Task acquisition: the SPLASH queue is a lock-protected
            # shared counter (assignment here is static for determinism;
            # the *traffic* of the queue operation is what matters).
            yield (ACQUIRE, self.qlock)
            yield (RW_RUN, self.qcount.base, 1, 8)
            yield (RELEASE, self.qlock)
            # Wait for and apply every updating column.
            for k in self.deps[j]:
                yield (WAIT_FLAG, self.col_flag + k)
                yield (READ_RUN, self.col_addr(k), self.nz[k], 8)
                yield (RW_RUN, self.col_addr(j), min(self.nz[j], self.nz[k]), 8)
                yield (COMPUTE, flops * self.nz[k])
            # Scale the column (cdiv) and publish it.
            yield (RW_RUN, self.col_addr(j), self.nz[j], 8)
            yield (COMPUTE, flops * self.nz[j])
            yield (SET_FLAG, self.col_flag + j)
        yield (BARRIER, self.end_barrier)
