"""KVStore: a sharded key-value server under zipfian client traffic.

The first of the *service-shaped* workloads (DESIGN.md §13): where the
SPLASH seven model scientific kernels — lock rounds, producer/consumer
pipelines, barrier phases — an internet service is a storm of small
independent requests whose key popularity follows a power law.  Each
processor is one client thread of a sharded in-memory store:

* the key space is split across ``shards`` shard locks (key → shard by
  a seeded permutation, so hot keys spread across shards);
* every request acquires its shard's lock, read-modify-writes the shard
  header (the LRU/stats word every real store touches per op), then
  reads (GET) or read-modify-writes (PUT) the value words of the record;
* keys are drawn from a zipfian distribution with exponent ``theta`` —
  a handful of hot keys absorb most of the traffic, which is precisely
  the high-sharing, invalidation-heavy pattern where eager protocols
  pay fan-out per write and timestamp coherence (tardis) claims to win;
* records are packed (not line-aligned), so neighbouring keys falsely
  share cache lines like real slab allocators do.

All request sequences are materialized in ``setup`` from the app's
seeded rng, so the reference streams are a pure function of
``(config.seed, params)`` — identical seeds give identical request
streams, stream fingerprints, and RunResults.

Synchronization discipline: every shared access happens between the
shard lock's acquire and release, so the program is data-race-free and
safe for the invariant checker under all five protocols.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.apps.common import App, register
from repro.program.ops import (
    ACQUIRE,
    BARRIER,
    COMPUTE,
    READ_RUN,
    RELEASE,
    RW_RUN,
    WRITE_RUN,
)


def zipf_cdf(n: int, theta: float) -> np.ndarray:
    """Cumulative distribution of a zipfian(theta) law over ranks 0..n-1."""
    weights = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), theta)
    cdf = np.cumsum(weights)
    return cdf / cdf[-1]


@register
class KVStore(App):
    name = "kvstore"

    def setup(
        self,
        n_keys: int = 256,
        shards: int = 8,
        ops: int = 96,
        theta: float = 0.9,
        read_frac: float = 0.9,
        val_words: int = 4,
        think: int = 12,
    ) -> None:
        """``ops`` requests per client; ``theta`` is the zipf exponent
        (0.9 ≈ the YCSB default); ``read_frac`` the GET fraction."""
        if shards < 1 or n_keys < shards:
            raise ValueError("need at least one key per shard")
        self.n_keys = n_keys
        self.n_shards = shards
        self.val_words = val_words
        self.think = think
        rng = self.rng
        # Popularity rank -> key id: a seeded permutation scatters the
        # hot ranks across the shard space.
        self.key_of_rank = rng.permutation(n_keys)
        cdf = zipf_cdf(n_keys, theta)
        # Shard headers: one line each (version/stat word at the base),
        # so shard metadata never falsely shares between shards.
        line = self.cfg.line_size
        self.headers = self.space.alloc(shards * line, "kv.headers")
        self.header_stride = line
        # The record heap: packed val_words-word records, deliberately
        # not line-aligned (slab-style false sharing between neighbours).
        self.records = self.space.alloc(n_keys * val_words * 8, "kv.records")
        self.shard_lock = self.lock_id(shards)
        self.load_barrier = self.barrier_id()
        self.end_barrier = self.barrier_id()
        # Materialize every client's request tape now: (key, is_get).
        self.requests: List[List[Tuple[int, bool]]] = []
        for _pid in range(self.n_procs):
            ranks = np.searchsorted(cdf, rng.random(ops))
            gets = rng.random(ops) < read_frac
            self.requests.append(
                [(int(self.key_of_rank[r]), bool(g)) for r, g in zip(ranks, gets)]
            )

    def shard_of(self, key: int) -> int:
        return key % self.n_shards

    def record_addr(self, key: int) -> int:
        return self.records.base + key * self.val_words * 8

    def header_addr(self, shard: int) -> int:
        return self.headers.base + shard * self.header_stride

    def program(self, pid: int) -> Iterator:
        # Load phase: each client populates its blocked share of the key
        # space, then a barrier publishes the initial image.
        for key in self.blocked(self.n_keys, pid):
            yield (WRITE_RUN, self.record_addr(key), self.val_words, 8)
        yield (BARRIER, self.load_barrier)
        for key, is_get in self.requests[pid]:
            shard = self.shard_of(key)
            yield (ACQUIRE, self.shard_lock + shard)
            # Shard header: version bump / stats, written by every op.
            yield (RW_RUN, self.header_addr(shard), 1, 8)
            if is_get:
                yield (READ_RUN, self.record_addr(key), self.val_words, 8)
            else:
                yield (RW_RUN, self.record_addr(key), self.val_words, 8)
            yield (RELEASE, self.shard_lock + shard)
            yield (COMPUTE, self.think)
        yield (BARRIER, self.end_barrier)
