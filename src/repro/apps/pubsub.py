"""PubSub: topic-based publish/subscribe fan-out (service-shaped).

The third service workload (DESIGN.md §13): publishers append messages
to per-topic rings and flag-signal them; subscribers wait on the flag
and read the message.  Topic popularity is zipfian — hot topics carry
most subscribers — so one release-time write fans out to many readers:

* under eager protocols every publish invalidates every subscriber's
  cached copy of the ring line and each re-read is a fresh miss at the
  publisher (the 1-writer-N-reader broadcast the paper's flag analysis
  covers);
* under tardis the publish is one timestamp bump with *no* fan-out and
  subscribers self-expire at their acquire — the exact asymmetry the
  sc-vs-lazy-vs-tardis crossover question is about.

Each ``(topic, message)`` pair has its own flag: ``SET_FLAG`` is a
release (the message body performs first), ``WAIT_FLAG`` an acquire,
and flags stay set, so subscribers may arrive long after the publish.
Every program emits its publishes before its subscriptions, so no
wait-cycle exists and the run cannot deadlock.  A message slot is
written exactly once, by its topic's single publisher, before the flag
set that every reader waits on — data-race-free by construction.

All fan-out choices (which processors subscribe to which topics) are
drawn in ``setup`` from the app's seeded rng: same seed, same streams.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.apps.common import App, register
from repro.program.ops import (
    BARRIER,
    COMPUTE,
    READ_RUN,
    SET_FLAG,
    WAIT_FLAG,
    WRITE_RUN,
)


@register
class PubSub(App):
    name = "pubsub"

    def setup(
        self,
        topics: int = 8,
        messages: int = 8,
        msg_words: int = 8,
        theta: float = 0.8,
        min_subs: int = 1,
        think: int = 10,
    ) -> None:
        """``messages`` per topic; subscriber counts follow a
        zipfian(theta) popularity law over topics (every topic keeps at
        least ``min_subs`` subscribers)."""
        self.n_topics = topics
        self.n_msgs = messages
        self.msg_words = msg_words
        self.think = think
        rng = self.rng
        # Ring storage: topic-major, packed message slots.
        self.rings = self.space.alloc(
            topics * messages * msg_words * 8, "ps.rings"
        )
        self.msg_flag = self.flag_id(topics * messages)
        self.end_barrier = self.barrier_id()
        # Fan-out: the publisher of topic k is processor k mod P; the
        # subscriber count decays zipf-style with topic rank, and the
        # subscribers themselves are a seeded sample of the other procs.
        self.publisher = [k % self.n_procs for k in range(topics)]
        self.subscribers: List[List[int]] = []
        avail = max(1, self.n_procs - 1)
        for k in range(topics):
            weight = 1.0 / float(k + 1) ** theta
            n_subs = min(avail, max(min_subs, int(round(weight * avail))))
            others = np.array(
                [p for p in range(self.n_procs) if p != self.publisher[k]]
                or [self.publisher[k]]
            )
            subs = rng.choice(others, size=min(n_subs, len(others)), replace=False)
            self.subscribers.append(sorted(int(s) for s in subs))

    def slot_addr(self, topic: int, msg: int) -> int:
        return self.rings.base + (topic * self.n_msgs + msg) * self.msg_words * 8

    def flag_of(self, topic: int, msg: int) -> int:
        return self.msg_flag + topic * self.n_msgs + msg

    def program(self, pid: int) -> Iterator:
        # Publish everything I own first (flags persist, so subscribers
        # may trail arbitrarily; publish-before-subscribe means no
        # wait-for cycle between processors is possible).
        for topic in range(self.n_topics):
            if self.publisher[topic] != pid:
                continue
            for msg in range(self.n_msgs):
                yield (WRITE_RUN, self.slot_addr(topic, msg), self.msg_words, 8)
                yield (SET_FLAG, self.flag_of(topic, msg))
                yield (COMPUTE, self.think)
        # Consume my subscriptions, round-robin across topics (message 0
        # of every topic, then message 1, ...): an interleaved delivery
        # loop like a real subscriber event loop.
        for msg in range(self.n_msgs):
            for topic in range(self.n_topics):
                if pid not in self.subscribers[topic]:
                    continue
                yield (WAIT_FLAG, self.flag_of(topic, msg))
                yield (READ_RUN, self.slot_addr(topic, msg), self.msg_words, 8)
                yield (COMPUTE, self.think)
        yield (BARRIER, self.end_barrier)
