"""FFT: one-dimensional radix-2 FFT in barrier-separated phases.

"Fft computes a one-dimensional FFT on a 65536-element array of complex
numbers."  The classic iterative radix-2 algorithm runs log2(m) butterfly
phases with a global barrier between phases.  Elements are partitioned in
contiguous chunks; each processor updates exactly the elements of its own
chunk, reading each element's butterfly partner (index XOR distance),
which is remote in the early (long-distance) phases and local later.

Sharing is coarse and aligned (a complex number is 16 bytes, so lines
hold 8 elements of contiguous data): essentially no false sharing, a
large eviction-miss component (the dataset exceeds the cache), and —
because all writes in a phase are announced together at the barrier —
the workload where the lazier (deferred-notice) protocol's combining
actually wins (Section 4.3).
"""

from __future__ import annotations

from typing import Iterator

from repro.apps.common import App, register
from repro.program.ops import BARRIER, COMPUTE, READ_RUN, RW_RUN


@register
class FFT(App):
    name = "fft"

    def setup(self, m: int = 4096, flops_per_butterfly: int = 8) -> None:
        """``m`` — number of complex points, a power of two (paper: 65536)."""
        if m & (m - 1):
            raise ValueError("m must be a power of two")
        self.m = m
        self.flops = flops_per_butterfly
        # Complex array: 16 bytes (two doubles) per element.
        self.data = self.space.alloc(m * 16, "fft.data", elem_size=16)
        self.log_m = m.bit_length() - 1
        self.phase_barrier = [self.barrier_id() for _ in range(self.log_m + 1)]

    def elem(self, i: int) -> int:
        return self.data.base + i * 16

    def program(self, pid: int) -> Iterator:
        m = self.m
        chunk = self.blocked(m, pid)
        lo, hi = chunk.start, chunk.stop
        flops = self.flops
        for s in range(self.log_m):
            d = m >> (s + 1)
            # Walk my chunk in runs that stay on one side of a butterfly
            # group: for every element i the partner is i ^ d, and within
            # a d-aligned segment the partner run is contiguous too.
            i = lo
            while i < hi:
                seg_end = min((i // d + 1) * d, hi)
                count = seg_end - i
                partner = i ^ d
                yield (READ_RUN, self.elem(partner), count * 2, 8)
                yield (RW_RUN, self.elem(i), count * 2, 8)
                yield (COMPUTE, flops * count)
                i = seg_end
            yield (BARRIER, self.phase_barrier[s])
        # Bit-reversal-order touch-up pass over my own chunk (models the
        # final reorder/normalization sweep).
        yield (RW_RUN, self.elem(lo), (hi - lo) * 2, 8)
        yield (BARRIER, self.phase_barrier[self.log_m])
