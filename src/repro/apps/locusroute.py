"""LocusRoute: VLSI standard-cell router.

"Locusroute is a VLSI standard cell router using the circuit
Primary2.grin containing 3029 wires."  The proprietary circuit is
replaced by a seeded synthetic wire list (see DESIGN.md); the router's
memory behavior is preserved:

* a shared *cost grid* whose cells record routing occupancy;
* wires are picked off a lock-protected task queue;
* routing a wire evaluates several candidate two-bend (L/Z) routes by
  *reading* every grid cell along each candidate, then *read-modify-
  writes* the cells of the chosen route — without any synchronization
  around the grid (the data races the paper discusses: locusroute does
  not obey the release-consistency model);
* a rip-up-and-reroute pass repeats the process.

Grid cells are 8 bytes, so 16 cells share a 128-byte line: concurrent
routing in nearby regions yields the heavy false sharing of Table 2
(33% of locusroute's misses).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.apps.common import App, register
from repro.program.ops import (
    ACQUIRE,
    BARRIER,
    COMPUTE,
    READ_RUN,
    RELEASE,
    RW_RUN,
)


@register
class LocusRoute(App):
    name = "locusroute"

    def setup(
        self,
        width: int = 128,
        height: int = 24,
        wires: int = 192,
        passes: int = 2,
        candidates: int = 3,
        cost_per_cell: int = 3,
    ) -> None:
        """Synthetic circuit: ``wires`` random two-pin nets on a
        ``width`` x ``height`` routing grid (paper: Primary2.grin, 3029
        wires)."""
        self.w = width
        self.h = height
        self.n_wires = wires
        self.passes = passes
        self.n_cand = candidates
        self.flops = cost_per_cell
        rng = self.rng
        self.grid = self.space.alloc(width * height * 8, "locus.grid")
        self.wire_list: List[Tuple[int, int, int, int]] = []
        for _ in range(wires):
            x1 = int(rng.integers(0, width))
            x2 = int(rng.integers(0, width))
            y1 = int(rng.integers(0, height))
            y2 = int(rng.integers(0, height))
            self.wire_list.append((x1, y1, x2, y2))
        # Chosen candidate per wire per pass (the real router picks the
        # cheapest; the choice itself doesn't change the traffic shape).
        self.choice = [
            [int(rng.integers(0, candidates)) for _ in range(wires)]
            for _ in range(passes)
        ]
        self.qlock = self.lock_id()
        self.qhead = self.space.alloc(self.cfg.page_size, "locus.queue")
        self.pass_barrier = [self.barrier_id() for _ in range(passes)]

    def cell(self, x: int, y: int) -> int:
        return self.grid.base + (y * self.w + x) * 8

    def _route_segments(self, wire, cand: int):
        """The horizontal/vertical segments of candidate ``cand``.

        Candidate 0 routes x-then-y at y1, candidate 1 routes y-then-x,
        candidate k>=2 uses an intermediate "Z" row between y1 and y2.
        """
        x1, y1, x2, y2 = wire
        xa, xb = sorted((x1, x2))
        ya, yb = sorted((y1, y2))
        segs = []
        if cand == 0:
            segs.append(("h", y1, xa, xb))
            segs.append(("v", x2, ya, yb))
        elif cand == 1:
            segs.append(("v", x1, ya, yb))
            segs.append(("h", y2, xa, xb))
        else:
            ymid = (y1 + y2) // 2 if yb > ya else y1
            segs.append(("v", x1, min(y1, ymid), max(y1, ymid)))
            segs.append(("h", ymid, xa, xb))
            segs.append(("v", x2, min(ymid, y2), max(ymid, y2)))
        return segs

    def _emit_segments(self, segs, write: bool):
        op = RW_RUN if write else READ_RUN
        for kind, fixed, a, b in segs:
            count = b - a + 1
            if kind == "h":
                yield (op, self.cell(a, fixed), count, 8)
            else:
                yield (op, self.cell(fixed, a), count, self.w * 8)

    def program(self, pid: int) -> Iterator:
        for p in range(self.passes):
            for wid in self.cyclic(self.n_wires, pid):
                # Task queue pop.
                yield (ACQUIRE, self.qlock)
                yield (RW_RUN, self.qhead.base, 1, 8)
                yield (RELEASE, self.qlock)
                wire = self.wire_list[wid]
                ncells = 0
                # Cost-evaluate every candidate (reads only).
                for cand in range(self.n_cand):
                    segs = self._route_segments(wire, cand)
                    yield from self._emit_segments(segs, write=False)
                    ncells += sum(s[3] - s[2] + 1 for s in segs)
                yield (COMPUTE, self.flops * ncells)
                # Commit the chosen route (read-modify-write, unsynchronized).
                chosen = self._route_segments(wire, self.choice[p][wid])
                yield from self._emit_segments(chosen, write=True)
            yield (BARRIER, self.pass_barrier[p])
