"""The Section 4.2 quality-of-solution study for mp3d.

The paper: "we have experimented with two versions of mp3d running
natively on our SGI.  One version uses software caching to capture the
behavior of the lazy protocol in data propagation while the other
version captures the behavior of a sequentially consistent protocol...
We have compared the cumulative (over all particles) velocity vector
after 10 time steps... the Y and Z coordinates of the velocity vector
were less than one tenth of a percent apart while the X coordinate was
6.7% apart."

This module runs an actual (small, numeric) mp3d-style simulation twice:

* ``mode="sc"`` — every read of shared cell state sees the latest value;
* ``mode="lazy"`` — each processor works against a stale snapshot of the
  cell state refreshed only at synchronization points (step barriers),
  emulating what the lazy protocol's delayed invalidations let racy
  reads observe.

Both runs use identical seeds, so the divergence of the cumulative
velocity vector isolates the effect of stale reads on this data-racy
application.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


def run_quality_model(
    particles: int = 2048,
    steps: int = 10,
    cells: int = 64,
    procs: int = 8,
    mode: str = "sc",
    seed: int = 42,
) -> np.ndarray:
    """Return the cumulative velocity vector (sum over particles, 3-D)."""
    if mode not in ("sc", "lazy"):
        raise ValueError("mode must be 'sc' or 'lazy'")
    rng = np.random.default_rng(seed)
    pos = rng.random(particles) * cells          # 1-D tunnel position in cells
    vel = rng.normal(0.0, 0.1, size=(particles, 3))
    vel[:, 0] += 1.0                             # wind along X
    owner = (np.arange(particles) * procs) // particles
    # Shared cell state: running mean velocity per cell.
    cell_v = np.zeros((cells, 3))
    cell_n = np.zeros(cells)
    collide = rng.random((steps, particles)) < 0.3
    for s in range(steps):
        # Lazy: snapshot at the step barrier; all reads within the step
        # see it, while writes still merge into the live state.
        snap_v = cell_v.copy() if mode == "lazy" else None
        snap_n = cell_n.copy() if mode == "lazy" else None
        for proc in range(procs):
            mine = np.nonzero(owner == proc)[0]
            for p in mine:
                c = int(pos[p]) % cells
                if mode == "lazy":
                    n, v = snap_n[c], snap_v[c]
                else:
                    n, v = cell_n[c], cell_v[c]
                if collide[s, p] and n > 0:
                    # Relax toward the (possibly stale) cell mean.
                    vel[p] = 0.7 * vel[p] + 0.3 * v
                # Update the live cell statistics (writes are never lost;
                # the protocols only delay their *visibility*).
                cell_v[c] = (cell_v[c] * cell_n[c] + vel[p]) / (cell_n[c] + 1)
                cell_n[c] += 1
                pos[p] = (pos[p] + vel[p, 0]) % cells
        # Step barrier: decay the running statistics (fresh estimates per
        # step, like mp3d's per-step cell reset).
        cell_v *= 0.5
        cell_n *= 0.5
    return vel.sum(axis=0)


def quality_divergence(**kw) -> Dict[str, float]:
    """Per-axis divergence between lazy and SC propagation.

    Each axis's absolute divergence is normalized by the magnitude of
    the SC cumulative velocity vector (the transverse components sum to
    near zero, so normalizing per-axis would divide by noise).
    """
    v_sc = run_quality_model(mode="sc", **kw)
    v_lazy = run_quality_model(mode="lazy", **kw)
    scale = float(np.linalg.norm(v_sc))
    return {
        axis: float(abs(v_lazy[i] - v_sc[i]) / scale)
        for i, axis in enumerate("XYZ")
    }
