"""TaskQueue: a work-stealing task pool (service-shaped workload).

The second service workload (DESIGN.md §13): a fixed batch of tasks is
produced into per-processor deques, and workers drain their own queue
before stealing from victims — the scheduling substrate of every
thread-pool-backed service.  The coherence traffic it stresses is
different from both the SPLASH kernels and the KV store:

* queue headers are small, hot, multi-writer words protected by
  per-queue locks — thieves hammer a victim's header from across the
  machine (lock + line ping-pong);
* task payloads written by the *producer* are consumed by whichever
  worker pops the task; stolen tasks make that a producer→thief
  migratory transfer, the pattern the paper's migratory analysis and
  Tardis's lease renewal both care about.

Because apps are reference-stream generators, the steal schedule is
decided ahead of time from the app's seeded rng (``steal_frac`` of the
tasks execute on a processor other than their home): the *traffic
shape* of stealing — remote queue pops, migratory payloads — is
preserved while the run stays deterministic and replayable.  Every
queue pop happens under that queue's lock and every payload is written
before the ``produce`` barrier and executed by exactly one worker after
it, so the program is data-race-free.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.apps.common import App, register
from repro.program.ops import (
    ACQUIRE,
    BARRIER,
    COMPUTE,
    RELEASE,
    RW_RUN,
    WRITE_RUN,
)


@register
class TaskQueue(App):
    name = "taskqueue"

    def setup(
        self,
        tasks: int = 128,
        task_words: int = 8,
        steal_frac: float = 0.25,
        work: int = 40,
    ) -> None:
        """``tasks`` total tasks (homes assigned cyclically);
        ``steal_frac`` of them run on a random non-home worker."""
        if tasks < self.n_procs:
            raise ValueError("need at least one task per processor")
        self.n_tasks = tasks
        self.task_words = task_words
        self.work = work
        rng = self.rng
        line = self.cfg.line_size
        # Per-queue header line (head/tail/count words) + per-queue lock.
        self.qheaders = self.space.alloc(self.n_procs * line, "tq.queues")
        self.qstride = line
        self.qlock = self.lock_id(self.n_procs)
        # Packed task payloads (task descriptors + arguments).
        self.taskdata = self.space.alloc(tasks * task_words * 8, "tq.tasks")
        self.produce_barrier = self.barrier_id()
        self.end_barrier = self.barrier_id()
        # The steal schedule: executor[t] == home for local pops, else a
        # seeded thief.  Executor lists keep each worker's pop order
        # interleaved home-first, steals last (drain-then-steal).
        self.executor: List[int] = []
        for t in range(tasks):
            home = t % self.n_procs
            if self.n_procs > 1 and rng.random() < steal_frac:
                thief = int(rng.integers(0, self.n_procs - 1))
                self.executor.append(thief if thief < home else thief + 1)
            else:
                self.executor.append(home)
        self.my_tasks: List[List[int]] = [[] for _ in range(self.n_procs)]
        for t in range(tasks):
            self.my_tasks[self.executor[t]].append(t)
        # Local work first, steals afterwards, like a real deque drain.
        for pid in range(self.n_procs):
            self.my_tasks[pid].sort(
                key=lambda t: (0 if t % self.n_procs == pid else 1, t)
            )

    def qheader_addr(self, q: int) -> int:
        return self.qheaders.base + q * self.qstride

    def task_addr(self, t: int) -> int:
        return self.taskdata.base + t * self.task_words * 8

    def program(self, pid: int) -> Iterator:
        # Produce: each home writes its tasks' payloads and (under its
        # own lock) publishes them on its queue header.
        for t in range(pid, self.n_tasks, self.n_procs):
            yield (WRITE_RUN, self.task_addr(t), self.task_words, 8)
            yield (ACQUIRE, self.qlock + pid)
            yield (RW_RUN, self.qheader_addr(pid), 2, 8)  # tail++, count++
            yield (RELEASE, self.qlock + pid)
        yield (BARRIER, self.produce_barrier)
        # Execute: pop each assigned task from its *home* queue (lock +
        # header update — remote for stolen tasks), then run it.
        for t in self.my_tasks[pid]:
            home = t % self.n_procs
            yield (ACQUIRE, self.qlock + home)
            yield (RW_RUN, self.qheader_addr(home), 2, 8)  # head++, count--
            yield (RELEASE, self.qlock + home)
            yield (RW_RUN, self.task_addr(t), self.task_words, 8)
            yield (COMPUTE, self.work)
        yield (BARRIER, self.end_barrier)
