"""Randomized conformance workload (DESIGN.md §9).

Unlike the SPLASH re-implementations, ``fuzz`` is not a model of any
real program: it materializes a seeded, data-race-free random program
from :mod:`repro.conformance.generator` so the differential oracles of
:mod:`repro.conformance.fuzz` can check a protocol's *values*, not just
its timing.  The program is a pure function of ``(config.seed, n_procs,
n_ops, mode)``, so the same :class:`~repro.harness.spec.ExperimentSpec`
(with a ``seed`` override selecting the iteration) regenerates the same
reference streams in every worker process.
"""

from __future__ import annotations

from typing import Iterator, Optional, Union

from repro.apps.common import App, register
from repro.conformance.generator import generate
from repro.conformance.program import ProgramSpec, materialize


@register
class Fuzz(App):
    name = "fuzz"

    def setup(
        self,
        n_ops: int = 120,
        mode: str = "auto",
        program: Optional[Union[ProgramSpec, str, dict]] = None,
    ) -> None:
        """``program`` (a spec, its dict, or its JSON) bypasses generation
        — used to replay and minimize saved reproducers."""
        if program is None:
            program = generate(self.cfg.seed, self.n_procs, n_ops=n_ops, mode=mode)
        elif isinstance(program, str):
            program = ProgramSpec.from_json(program)
        elif isinstance(program, dict):
            program = ProgramSpec.from_dict(program)
        if program.n_procs != self.n_procs:
            raise ValueError(
                f"program wants {program.n_procs} processors, machine has {self.n_procs}"
            )
        self.spec = program
        self.seg = self.space.alloc(program.n_words * 8, "fuzz")

    def program(self, pid: int) -> Iterator:
        return materialize(self.spec.proc_ops(pid), self.seg.base)
