"""MP3D: rarefied-fluid-flow (wind tunnel) particle simulation.

"Mp3d is a wind-tunnel airflow simulation of 40000 particles for 10
steps."  Each step moves every particle, updates the *space cell* it
lands in (an unsynchronized read-modify-write of a shared cell record —
mp3d is the canonical data-racy SPLASH program), and occasionally
collides it with a partner particle found in the same cell.

Memory behavior reproduced:

* particle records are 64 bytes (two per cache line): the per-step
  read-modify-write of each processor's own particles plus collision
  reads of remote partners gives true sharing and boundary false sharing;
* space-cell records are 64 bytes (two per line — mp3d's cells carry
  particle counts and momentum sums): writes from whichever processor's
  particle lands there make cells the write-miss- and true-sharing-
  dominated structure of Table 2 (46.5% write misses, 31.1% true
  sharing for mp3d), with neighbor-cell false sharing on top;
* one global barrier per step.

Particle trajectories are precomputed (seeded) at app construction, so
all protocols replay the identical workload.  The Section 4.2
quality-of-solution experiment (stale reads vs. sequentially consistent
reads) lives in :mod:`repro.apps.mp3d_quality`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.apps.common import App, register
from repro.program.ops import (
    BARRIER,
    COMPUTE,
    READ,
    READ_RUN,
    RW_RUN,
)

PARTICLE_BYTES = 64  # position, velocity, type: 8 words
CELL_BYTES = 64      # particle count, momentum/energy sums: 8 words


@register
class MP3D(App):
    name = "mp3d"

    def setup(
        self,
        particles: int = 2048,
        steps: int = 4,
        cells: int = 512,
        collide_prob: float = 0.25,
        flops_per_move: int = 8,
    ) -> None:
        """``particles`` (paper: 40000), ``steps`` (paper: 10)."""
        self.n_particles = particles
        self.steps = steps
        self.n_cells = cells
        self.flops = flops_per_move
        rng = self.rng
        # Precomputed trajectories: cell index per (step, particle), a
        # drifting pseudo-random walk (wind flows along the tunnel).
        cell_idx = rng.integers(0, cells, size=particles)
        traj = np.empty((steps, particles), dtype=np.int64)
        for s in range(steps):
            drift = rng.integers(0, 4, size=particles)  # mostly forward
            cell_idx = (cell_idx + drift) % cells
            traj[s] = cell_idx
        self.traj = traj
        # Collision partner (or -1): a particle sharing the cell this step.
        self.partner = np.full((steps, particles), -1, dtype=np.int64)
        for s in range(steps):
            order = {}
            for p in range(particles):
                c = int(traj[s, p])
                if c in order and rng.random() < collide_prob:
                    self.partner[s, p] = order[c]
                order[c] = p
        self.particles_seg = self.space.alloc(
            particles * PARTICLE_BYTES, "mp3d.particles"
        )
        self.cells_seg = self.space.alloc(cells * CELL_BYTES, "mp3d.cells")
        # One cache line per processor of global statistics.
        self.reservoir = self.space.alloc(
            self.n_procs * self.cfg.line_size, "mp3d.global"
        )
        self.step_barrier = [self.barrier_id() for _ in range(steps)]

    def particle_addr(self, p: int) -> int:
        return self.particles_seg.base + p * PARTICLE_BYTES

    def cell_addr(self, c: int) -> int:
        return self.cells_seg.base + c * CELL_BYTES

    def program(self, pid: int) -> Iterator:
        mine = self.blocked(self.n_particles, pid)
        flops = self.flops
        traj = self.traj
        partner = self.partner
        for s in range(self.steps):
            for p in mine:
                # Move: read and rewrite my particle's record.
                yield (RW_RUN, self.particle_addr(p), 6, 8)
                # Update the destination space cell (unsynchronized!):
                # bump the count and fold in the particle's momentum.
                yield (RW_RUN, self.cell_addr(int(traj[s, p])), 3, 8)
                mate = int(partner[s, p])
                if mate >= 0:
                    # Collide: read the partner's record, rewrite mine.
                    yield (READ_RUN, self.particle_addr(mate), 4, 8)
                    yield (RW_RUN, self.particle_addr(p) + 8, 3, 8)
                    yield (COMPUTE, flops)
                yield (COMPUTE, flops)
            # Tally step statistics into this processor's line of the
            # global record.
            yield (RW_RUN, self.reservoir.base + pid * self.cfg.line_size, 2, 8)
            yield (BARRIER, self.step_barrier[s])
