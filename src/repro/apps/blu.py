"""Blocked right-looking LU decomposition (the paper's "blu").

"Blu is an implementation of the blocked right-looking LU decomposition
algorithm presented in [5] on a 448x448 matrix."

The matrix is stored row-major and divided into BxB blocks assigned
block-cyclically to a 2-D processor grid.  Each step ``kb``:

1. the owner of the diagonal block factors it and raises a flag;
2. owners of the blocks in pivot column/row ``kb`` compute their
   triangular solves and raise per-block flags;
3. everyone applies the rank-B update to their trailing blocks, reading
   the pivot-column block to the left and pivot-row block above.

The default block size (12 doubles = 96 bytes) deliberately does *not*
divide the 128-byte cache line, so adjacent blocks owned by different
processors share lines — the false-sharing component that Table 2
reports at 24% of blu's misses and that lazy release consistency
tolerates (Section 4.2).
"""

from __future__ import annotations

from typing import Iterator

from repro.apps.common import App, register
from repro.program.ops import (
    BARRIER,
    COMPUTE,
    READ_RUN,
    RW_RUN,
    SET_FLAG,
    WAIT_FLAG,
)


@register
class BlockedLU(App):
    name = "blu"

    def setup(self, n: int = 96, block: int = 12, flops_per_elem: int = 2) -> None:
        """``n`` — matrix dimension (paper: 448), ``block`` — block size."""
        if n % block:
            raise ValueError("block must divide n")
        self.n = n
        self.b = block
        self.nb = n // block
        self.flops = flops_per_elem
        self.a = self.space.alloc(n * n * 8, "blu.A")
        # 2-D processor grid, as close to square as possible.
        from repro.config import _mesh_dims

        self.py, self.px = _mesh_dims(self.n_procs)
        # Barrier-phase synchronization, as in the reference blocked-LU
        # implementations: factor -> barrier -> panel solves -> barrier ->
        # trailing update -> barrier.
        self.phase_barrier = [self.barrier_id() for _ in range(3 * self.nb)]
        self.end_barrier = self.barrier_id()

    def owner(self, ib: int, jb: int) -> int:
        """Block-cyclic 2-D owner of block (ib, jb)."""
        return (ib % self.py) * self.px + (jb % self.px)

    def addr(self, i: int, j: int) -> int:
        return self.a.base + (i * self.n + j) * 8

    def _block_rw(self, ib: int, jb: int):
        """Read-modify-write every element of block (ib, jb), row by row."""
        b = self.b
        for r in range(ib * b, ib * b + b):
            yield (RW_RUN, self.addr(r, jb * b), b, 8)

    def _block_read(self, ib: int, jb: int):
        b = self.b
        for r in range(ib * b, ib * b + b):
            yield (READ_RUN, self.addr(r, jb * b), b, 8)

    def program(self, pid: int) -> Iterator:
        nb, b, flops = self.nb, self.b, self.flops
        for kb in range(nb):
            # 1. Factor the diagonal block.
            if self.owner(kb, kb) == pid:
                yield from self._block_rw(kb, kb)
                yield (COMPUTE, flops * b * b * b // 3)
            yield (BARRIER, self.phase_barrier[3 * kb])
            # 2. Triangular solves on the pivot column and pivot row.
            for ib in range(kb + 1, nb):
                if self.owner(ib, kb) == pid:
                    yield from self._block_read(kb, kb)
                    yield from self._block_rw(ib, kb)
                    yield (COMPUTE, flops * b * b * b // 2)
            for jb in range(kb + 1, nb):
                if self.owner(kb, jb) == pid:
                    yield from self._block_read(kb, kb)
                    yield from self._block_rw(kb, jb)
                    yield (COMPUTE, flops * b * b * b // 2)
            yield (BARRIER, self.phase_barrier[3 * kb + 1])
            # 3. Rank-B update of my trailing blocks.
            for ib in range(kb + 1, nb):
                for jb in range(kb + 1, nb):
                    if self.owner(ib, jb) != pid:
                        continue
                    yield from self._block_read(ib, kb)
                    yield from self._block_read(kb, jb)
                    yield from self._block_rw(ib, jb)
                    yield (COMPUTE, flops * b * b * b)
            yield (BARRIER, self.phase_barrier[3 * kb + 2])
        yield (BARRIER, self.end_barrier)
