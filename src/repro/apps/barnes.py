"""Barnes-Hut N-body simulation.

"Barnes-Hut is an N-body application that simulates the evolution of 4K
bodies under the influence of gravitational forces for 4 time steps."

A real quadtree is built over deterministic pseudo-random body positions
at app-construction time (positions evolve slightly every step, so the
trees differ across steps); the per-processor reference streams are then
generated from actual tree operations:

1. **tree build** — processors insert their bodies; every cell on the
   insertion path is read-modified-written under that cell's lock
   (migratory data: consecutive writers of a cell are usually different
   processors);
2. **force computation** — each body traverses the tree with the usual
   opening criterion, reading cell multipoles (read-mostly shared) and
   leaf bodies, then writes the body's acceleration;
3. **update** — positions/velocities of owned bodies are read-modified-
   written.

Bodies are 64-byte records: two bodies share each 128-byte line, so
partition boundaries and force-phase reads of remotely-updated bodies
produce both the false-sharing and the write-after-read upgrades the
paper highlights for barnes (Section 4.2: the gain comes mainly from
reduced synchronization waits on migratory data).
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.apps.common import App, register
from repro.program.ops import (
    ACQUIRE,
    BARRIER,
    COMPUTE,
    READ_RUN,
    RELEASE,
    RW_RUN,
)

BODY_BYTES = 64   # position, velocity, acceleration, mass: 8 words
CELL_BYTES = 64   # center of mass, total mass, child summary: 8 words


class _Cell:
    __slots__ = ("idx", "children", "bodies", "cx", "cy", "half")

    def __init__(self, idx: int, cx: float, cy: float, half: float) -> None:
        self.idx = idx
        self.children = [None, None, None, None]
        self.bodies: List[int] = []
        self.cx = cx
        self.cy = cy
        self.half = half


class _Quadtree:
    """A genuine 2-D Barnes-Hut quadtree (leaf capacity > 1)."""

    def __init__(self, positions: np.ndarray, leaf_cap: int = 4) -> None:
        self.positions = positions
        self.leaf_cap = leaf_cap
        self.cells: List[_Cell] = []
        self.root = self._new_cell(0.5, 0.5, 0.5)
        self.paths: List[List[int]] = []  # per body: cells on insertion path
        for b in range(len(positions)):
            self.paths.append(self._insert(b))

    def _new_cell(self, cx: float, cy: float, half: float) -> _Cell:
        c = _Cell(len(self.cells), cx, cy, half)
        self.cells.append(c)
        return c

    def _quadrant(self, cell: _Cell, b: int) -> int:
        x, y = self.positions[b]
        return (1 if x >= cell.cx else 0) | (2 if y >= cell.cy else 0)

    def _child_center(self, cell: _Cell, q: int):
        h = cell.half / 2
        return (
            cell.cx + (h if q & 1 else -h),
            cell.cy + (h if q & 2 else -h),
            h,
        )

    def _insert(self, b: int) -> List[int]:
        # Descend to the leaf covering b's position.
        path = []
        cell = self.root
        depth = 0
        while any(ch is not None for ch in cell.children):
            path.append(cell.idx)
            q = self._quadrant(cell, b)
            if cell.children[q] is None:
                cell.children[q] = self._new_cell(*self._child_center(cell, q))
            cell = cell.children[q]
            depth += 1
        path.append(cell.idx)
        cell.bodies.append(b)
        # Split overfull leaves, following b down as the tree deepens.
        while len(cell.bodies) > self.leaf_cap and depth <= 20:
            spill = cell.bodies
            cell.bodies = []
            for sb in spill:
                q = self._quadrant(cell, sb)
                if cell.children[q] is None:
                    cell.children[q] = self._new_cell(*self._child_center(cell, q))
                cell.children[q].bodies.append(sb)
            cell = cell.children[self._quadrant(cell, b)]
            path.append(cell.idx)
            depth += 1
        return path

    def traversal(self, b: int, theta: float = 0.7):
        """Cells visited and leaf-bodies examined computing force on b."""
        x, y = self.positions[b]
        cells: List[int] = []
        bodies: List[int] = []
        stack = [self.root]
        while stack:
            cell = stack.pop()
            cells.append(cell.idx)
            dx = cell.cx - x
            dy = cell.cy - y
            dist = max((dx * dx + dy * dy) ** 0.5, 1e-9)
            if 2 * cell.half / dist < theta and not cell.bodies:
                continue  # far enough: use the cell's multipole
            if cell.bodies:
                bodies.extend(sb for sb in cell.bodies if sb != b)
                continue
            for ch in cell.children:
                if ch is not None:
                    stack.append(ch)
        return cells, bodies


@register
class BarnesHut(App):
    name = "barnes"

    def setup(
        self,
        bodies: int = 256,
        steps: int = 2,
        theta: float = 0.7,
        flops_per_interaction: int = 6,
    ) -> None:
        """``bodies`` — N (paper: 4096); ``steps`` — time steps (paper: 4)."""
        self.n_bodies = bodies
        self.steps = steps
        self.flops = flops_per_interaction
        pos = self.rng.random((bodies, 2))
        # Precompute a tree per step; positions drift between steps so the
        # trees (and thus sharing patterns) differ.
        self.trees: List[_Quadtree] = []
        for _ in range(steps):
            self.trees.append(_Quadtree(pos.copy()))
            pos = np.clip(
                pos + self.rng.normal(0, 0.02, pos.shape), 0.0, 0.999999
            )
        max_cells = max(len(t.cells) for t in self.trees)
        self.bodies_seg = self.space.alloc(bodies * BODY_BYTES, "barnes.bodies")
        self.cells_seg = self.space.alloc(max_cells * CELL_BYTES, "barnes.cells")
        self.cell_lock = self.lock_id(max_cells)
        self.build_barrier = [self.barrier_id() for _ in range(steps)]
        self.force_barrier = [self.barrier_id() for _ in range(steps)]
        self.update_barrier = [self.barrier_id() for _ in range(steps)]

    def body_addr(self, b: int) -> int:
        return self.bodies_seg.base + b * BODY_BYTES

    def cell_addr(self, c: int) -> int:
        return self.cells_seg.base + c * CELL_BYTES

    def program(self, pid: int) -> Iterator:
        mine = self.blocked(self.n_bodies, pid)
        flops = self.flops
        for step in range(self.steps):
            tree = self.trees[step]
            # -- phase 1: tree build.  Interior cells on the insertion path
            # are read while descending; only the leaf actually modified is
            # locked (as in the SPLASH code).  Leaf cells are migratory:
            # consecutive writers are usually different processors.
            for b in mine:
                yield (READ_RUN, self.body_addr(b), 4, 8)  # position+mass
                path = tree.paths[b]
                for cidx in path[:-1]:
                    yield (READ_RUN, self.cell_addr(cidx), 2, 8)
                leaf = path[-1]
                yield (ACQUIRE, self.cell_lock + leaf)
                yield (RW_RUN, self.cell_addr(leaf), 4, 8)
                yield (RELEASE, self.cell_lock + leaf)
            yield (BARRIER, self.build_barrier[step])
            # -- phase 2: force computation (read-mostly tree traversal)
            for b in mine:
                cells, nbodies = tree.traversal(b)
                for cidx in cells:
                    yield (READ_RUN, self.cell_addr(cidx), 4, 8)
                for sb in nbodies:
                    yield (READ_RUN, self.body_addr(sb), 4, 8)
                yield (COMPUTE, flops * (len(cells) + len(nbodies)))
                # Write the accumulated acceleration into my body.
                yield (RW_RUN, self.body_addr(b) + 32, 2, 8)
            yield (BARRIER, self.force_barrier[step])
            # -- phase 3: position/velocity update
            for b in mine:
                yield (RW_RUN, self.body_addr(b), 6, 8)
            yield (COMPUTE, 10 * len(mine))
            yield (BARRIER, self.update_barrier[step])
