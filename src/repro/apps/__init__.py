"""The paper's application suite (Section 3), plus service workloads.

Three computational kernels — :class:`Gauss`, :class:`FFT`,
:class:`BlockedLU` — and four complete applications —
:class:`BarnesHut`, :class:`Cholesky`, :class:`LocusRoute`,
:class:`MP3D` — all SPLASH programs re-implemented as reference-stream
generators that execute the real algorithms' control flow (see
DESIGN.md for the MINT-substitution rationale).

Beyond the paper's suite: the randomized conformance workload
(:class:`Fuzz`, DESIGN.md §9) and three *service-shaped* apps —
:class:`KVStore`, :class:`TaskQueue`, :class:`PubSub` (DESIGN.md §13) —
that model internet-service sharing patterns (zipfian key traffic,
work stealing, publish/subscribe fan-out) rather than scientific
kernels.
"""

from repro.apps.common import App, AppContext, APPS, register
from repro.apps.gauss import Gauss
from repro.apps.fft import FFT
from repro.apps.blu import BlockedLU
from repro.apps.barnes import BarnesHut
from repro.apps.cholesky import Cholesky
from repro.apps.locusroute import LocusRoute
from repro.apps.mp3d import MP3D
from repro.apps.fuzz_app import Fuzz
from repro.apps.kvstore import KVStore
from repro.apps.taskqueue import TaskQueue
from repro.apps.pubsub import PubSub

#: The service-shaped workloads (next to the SPLASH seven).
SERVICE_APPS = ("kvstore", "taskqueue", "pubsub")

__all__ = [
    "App",
    "AppContext",
    "APPS",
    "SERVICE_APPS",
    "register",
    "Gauss",
    "FFT",
    "BlockedLU",
    "BarnesHut",
    "Cholesky",
    "LocusRoute",
    "MP3D",
    "Fuzz",
    "KVStore",
    "TaskQueue",
    "PubSub",
]
