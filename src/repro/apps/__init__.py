"""The paper's application suite (Section 3).

Three computational kernels — :class:`Gauss`, :class:`FFT`,
:class:`BlockedLU` — and four complete applications —
:class:`BarnesHut`, :class:`Cholesky`, :class:`LocusRoute`,
:class:`MP3D` — all SPLASH programs re-implemented as reference-stream
generators that execute the real algorithms' control flow (see
DESIGN.md for the MINT-substitution rationale).
"""

from repro.apps.common import App, AppContext, APPS, register
from repro.apps.gauss import Gauss
from repro.apps.fft import FFT
from repro.apps.blu import BlockedLU
from repro.apps.barnes import BarnesHut
from repro.apps.cholesky import Cholesky
from repro.apps.locusroute import LocusRoute
from repro.apps.mp3d import MP3D
from repro.apps.fuzz_app import Fuzz

__all__ = [
    "App",
    "AppContext",
    "APPS",
    "register",
    "Gauss",
    "FFT",
    "BlockedLU",
    "BarnesHut",
    "Cholesky",
    "LocusRoute",
    "MP3D",
    "Fuzz",
]
