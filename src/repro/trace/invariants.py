"""Runtime coherence-invariant checker.

The four protocols encode subtle distributed state machines (Figure 1's
Uncached/Shared/Dirty/Weak transitions, ack collection, multi-writer
merging); a protocol bug otherwise surfaces only as a silently wrong
cycle count.  The checker is the runtime-sanitizer equivalent: it
validates structural invariants at configurable points and fails fast
with an :class:`InvariantViolation` naming the node/block/state involved
(and, when a tracer is attached, a ``violation`` trace event whose
sequence number anchors the event window around the failure).

Checkpoints (``level``):

* ``"end"``   — one sweep after the event queue drains;
* ``"sync"``  — additionally at every release-continuation firing and
  after every acquire-side invalidation pass (the protocol's commit
  points) — the default;
* ``"event"`` — additionally a full scan after *every* simulator event
  (paranoid mode for pinpointing the first bad transition; slow).

Invariants checked mid-run (must hold at any instant):

* ``out_count >= 0`` on every node;
* write/coalescing buffers are internally consistent (FIFO order and
  word map agree, occupancy within capacity);
* lazy directory entries: ``writers ⊆ sharers``, members in range, the
  UNCACHED/SHARED/DIRTY/WEAK state matches the sharer/writer sets,
  ``pending_acks >= 0``, and waiting requesters imply an open ack
  collection;
* MSI directory entries: state DIRTY iff an owner is recorded, the owner
  is a sharer, members in range;
* Tardis entries: ``0 <= wts <= rts``; per node, the logical clock
  ``pts`` is monotone and the lease table mirrors cache residency.

At sync points:

* when a release's continuation fires: the write buffer and coalescing
  buffer are empty and no transaction is outstanding;
* after acquire invalidation processing: ``pending_inval`` is empty
  (tardis: every surviving resident lease covers the new ``pts`` — the
  relaxed-mode lease-validity obligation).

At end of run, additionally:

* every processor finished and every node's ``out_count`` is balanced;
* write buffers drained, no write fetch or background flush in flight;
* every ack collection drained (``pending_acks == 0``) with no stranded
  ``pending_requesters``; no open home-side transaction (``home_busy`` /
  ``home_queue`` / ``msi_pending``);
* directory contents agree with the actual per-node cache states
  (sharers = nodes caching the block; writers/owner hold it read-write,
  modulo lrc-ext notices still deferred on nodes that never released);
* lock/barrier/flag manager state is quiescent (no held locks, no queued
  or stranded waiters).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.cache.state import INVALID, RO, RW
from repro.directory.lazy import LazyDirectory
from repro.directory.timestamp import TardisDirectory, TardisEntry
from repro.directory.entry import (
    DIRTY,
    LazyEntry,
    MSIEntry,
    SHARED,
    UNCACHED,
    WEAK,
    dir_state_name,
)

LEVELS = ("end", "sync", "event")


class InvariantViolation(RuntimeError):
    """A coherence invariant does not hold.

    ``seq`` is the sequence number of the ``violation`` event the checker
    emitted into the attached tracer (``None`` without a tracer); pass it
    to :meth:`repro.trace.tracer.Tracer.window` for surrounding context.
    """

    def __init__(self, message: str, seq: Optional[int] = None) -> None:
        super().__init__(message)
        self.seq = seq


class InvariantChecker:
    """Validates protocol/machine state; raises on the first violation."""

    def __init__(self, machine, tracer=None, level: str = "sync") -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown check level {level!r} (expected one of {LEVELS})")
        self.machine = machine
        self.tracer = tracer
        self.level = level
        self.checks_run = 0
        self._last_pts = {}  # tardis: node id -> last observed clock

    # -- failure path ----------------------------------------------------------

    def _fail(self, node_id: int, message: str) -> None:
        seq = None
        if self.tracer is not None:
            seq = self.tracer.emit("violation", node_id, message=message)
        raise InvariantViolation(message, seq=seq)

    # -- checkpoint hooks --------------------------------------------------------

    def on_release_fire(self, node, t: int) -> None:
        """A release continuation is about to run: previous writes must
        have globally performed."""
        if node.wb is not None and not node.wb.empty:
            self._fail(
                node.id,
                f"node {node.id}: release fired at t={t} with "
                f"{len(node.wb)} write-buffer entries pending",
            )
        if node.cbuf is not None and not node.cbuf.empty:
            self._fail(
                node.id,
                f"node {node.id}: release fired at t={t} with "
                f"{len(node.cbuf)} coalescing-buffer entries unflushed",
            )
        if node.out_count != 0:
            self._fail(
                node.id,
                f"node {node.id}: release fired at t={t} with "
                f"{node.out_count} transactions outstanding",
            )
        if self.machine.protocol.timestamp_coherence and node.ts_dirty:
            self._fail(
                node.id,
                f"node {node.id}: release fired at t={t} with unbumped "
                f"dirty blocks {sorted(node.ts_dirty)[:8]}",
            )
        if self.level in ("sync", "event"):
            self.scan()

    def on_acquire_done(self, node, t: int) -> None:
        """Acquire-side invalidation processing completed: every noticed
        line must have been dealt with."""
        if node.pending_inval:
            self._fail(
                node.id,
                f"node {node.id}: acquire completed at t={t} with pending "
                f"invalidations unprocessed: {sorted(node.pending_inval)[:8]}",
            )
        if self.machine.protocol.timestamp_coherence:
            stale = [b for b, l in node.ts_lease.items() if l < node.pts]
            if stale:
                self._fail(
                    node.id,
                    f"node {node.id}: acquire completed at t={t} with expired "
                    f"leases still resident (pts={node.pts}): "
                    f"{[(b, node.ts_lease[b]) for b in sorted(stale)[:8]]}",
                )
        if self.level in ("sync", "event"):
            self.scan()

    def on_event(self) -> None:
        """Per-event hook (installed as the simulator's post-event hook)."""
        self.scan()

    # -- structural scan (valid at any instant) ----------------------------------

    def scan(self) -> None:
        """Check every invariant that must hold between any two events."""
        self.checks_run += 1
        n = self.machine.config.n_procs
        for node in self.machine.nodes:
            if node.out_count < 0:
                self._fail(node.id, f"node {node.id}: negative out_count {node.out_count}")
            self._check_buffer(node.id, node.wb, "write buffer")
            self._check_buffer(node.id, node.cbuf, "coalescing buffer")
            if node.wt_drain_busy < 0:
                self._fail(
                    node.id,
                    f"node {node.id}: negative background-flush count "
                    f"{node.wt_drain_busy}",
                )
            for block, entry in node.directory.entries.items():
                if isinstance(entry, LazyEntry):
                    self._check_lazy_entry(node.id, block, entry, n)
                elif isinstance(entry, TardisEntry):
                    self._check_tardis_entry(node.id, block, entry)
                else:
                    self._check_msi_entry(node.id, block, entry, n)
            if self.machine.protocol.timestamp_coherence:
                self._check_tardis_node(node)

    def _check_buffer(self, node_id: int, buf, what: str) -> None:
        if buf is None:
            return
        if len(buf.order) > buf.capacity:
            self._fail(
                node_id,
                f"node {node_id}: {what} over capacity "
                f"({len(buf.order)} > {buf.capacity})",
            )
        if set(buf.order) != set(buf.words):
            self._fail(
                node_id,
                f"node {node_id}: {what} FIFO order and word map disagree "
                f"(order={list(buf.order)}, words={sorted(buf.words)})",
            )

    def _check_lazy_entry(self, home: int, block: int, e: LazyEntry, n: int) -> None:
        if not e.writers <= e.sharers:
            self._fail(
                home,
                f"home {home}, block {block:#x}: writers {sorted(e.writers)} "
                f"not a subset of sharers {sorted(e.sharers)}",
            )
        if not all(0 <= s < n for s in e.sharers):
            self._fail(
                home,
                f"home {home}, block {block:#x}: out-of-range sharer in "
                f"{sorted(e.sharers)}",
            )
        derived = _derive_lazy_state(e)
        if e.state != derived:
            self._fail(
                home,
                f"home {home}, block {block:#x}: state "
                f"{dir_state_name(e.state)} does not match sharers/writers "
                f"(sharers={sorted(e.sharers)}, writers={sorted(e.writers)} "
                f"imply {dir_state_name(derived)})",
            )
        if e.pending_acks < 0:
            self._fail(
                home,
                f"home {home}, block {block:#x}: negative pending_acks "
                f"{e.pending_acks}",
            )
        if e.pending_requesters and e.pending_acks == 0:
            self._fail(
                home,
                f"home {home}, block {block:#x}: requesters "
                f"{[r for r, _ in e.pending_requesters]} waiting on a "
                f"closed ack collection",
            )

    def _check_tardis_entry(self, home: int, block: int, e: TardisEntry) -> None:
        if not 0 <= e.wts <= e.rts:
            self._fail(
                home,
                f"home {home}, block {block:#x}: timestamp order violated "
                f"(wts={e.wts}, rts={e.rts})",
            )

    def _check_tardis_node(self, node) -> None:
        last = self._last_pts.get(node.id, 0)
        if node.pts < last:
            self._fail(
                node.id,
                f"node {node.id}: logical clock moved backwards "
                f"({last} -> {node.pts})",
            )
        self._last_pts[node.id] = node.pts
        resident = set(node.cache.resident_blocks())
        leased = set(node.ts_lease)
        if resident != leased:
            self._fail(
                node.id,
                f"node {node.id}: lease table disagrees with cache residency "
                f"(unleased resident={sorted(resident - leased)[:8]}, "
                f"leased absent={sorted(leased - resident)[:8]})",
            )

    def _check_msi_entry(self, home: int, block: int, e: MSIEntry, n: int) -> None:
        if (e.state == DIRTY) != (e.owner is not None):
            self._fail(
                home,
                f"home {home}, block {block:#x}: state "
                f"{dir_state_name(e.state)} inconsistent with owner {e.owner}",
            )
        if e.owner is not None and e.owner not in e.sharers:
            self._fail(
                home,
                f"home {home}, block {block:#x}: owner {e.owner} missing "
                f"from sharers {sorted(e.sharers)}",
            )
        if not all(0 <= s < n for s in e.sharers):
            self._fail(
                home,
                f"home {home}, block {block:#x}: out-of-range sharer in "
                f"{sorted(e.sharers)}",
            )

    # -- end of run --------------------------------------------------------------

    def end_of_run(self) -> None:
        """Full sweep once the event queue has drained."""
        self.scan()
        m = self.machine
        for node in m.nodes:
            nid = node.id
            if not node.proc.done:
                self._fail(nid, f"node {nid}: processor never finished")
            if node.out_count != 0:
                self._fail(
                    nid,
                    f"node {nid}: {node.out_count} transactions still "
                    f"outstanding at end of run",
                )
            if node.wb is not None and not node.wb.empty:
                self._fail(
                    nid,
                    f"node {nid}: write buffer holds "
                    f"{list(node.wb.order)} at end of run",
                )
            if node.fill_pending or node.fill_fixup:
                self._fail(
                    nid,
                    f"node {nid}: fills still in flight at end of run "
                    f"(pending={sorted(node.fill_pending)}, "
                    f"fixups={sorted(node.fill_fixup)})",
                )
            if node.wb_fetching:
                self._fail(
                    nid,
                    f"node {nid}: write fetches still in flight for blocks "
                    f"{sorted(node.wb_fetching)}",
                )
            if node.wt_drain_busy:
                self._fail(
                    nid,
                    f"node {nid}: {node.wt_drain_busy} background flushes "
                    f"still in flight",
                )
            if node.home_busy or any(node.home_queue.values()):
                self._fail(
                    nid,
                    f"home {nid}: open transactions at end of run "
                    f"(busy={sorted(node.home_busy)}, "
                    f"queued={sorted(b for b, q in node.home_queue.items() if q)})",
                )
            if node.msi_pending:
                self._fail(
                    nid,
                    f"home {nid}: uncollected invalidation acks for blocks "
                    f"{sorted(node.msi_pending)}",
                )
            for block, e in node.directory.entries.items():
                if isinstance(e, LazyEntry) and (e.pending_acks or e.pending_requesters):
                    self._fail(
                        nid,
                        f"home {nid}, block {block:#x}: ack collection never "
                        f"drained (pending_acks={e.pending_acks}, requesters="
                        f"{[r for r, _ in e.pending_requesters]})",
                    )
            self._check_sync_quiescent(node)
        self._check_directory_agreement()

    def _check_sync_quiescent(self, node) -> None:
        for key, st in node.lock_state.items():
            if isinstance(key, tuple):  # flag: ("f", flag_id)
                if st["waiters"]:
                    self._fail(
                        node.id,
                        f"home {node.id}: flag {key[1]} still has waiters "
                        f"{list(st['waiters'])} at end of run",
                    )
            else:
                if st["held"]:
                    self._fail(
                        node.id,
                        f"home {node.id}: lock {key} still held at end of run",
                    )
                if st["queue"]:
                    self._fail(
                        node.id,
                        f"home {node.id}: lock {key} still has queued "
                        f"requesters {list(st['queue'])} at end of run",
                    )
        for bid, st in node.barrier_state.items():
            if st["waiters"]:
                self._fail(
                    node.id,
                    f"home {node.id}: barrier {bid} still has waiters "
                    f"{list(st['waiters'])} at end of run",
                )

    def _check_directory_agreement(self) -> None:
        """Directories and caches must tell the same story at quiescence."""
        m = self.machine
        # Per-node view: every resident line must be registered at its home.
        for node in m.nodes:
            for block in node.cache.resident_blocks():
                state = node.cache.lookup(block)
                home = m.nodes[m.home_of(block)]
                e = home.directory.entries.get(block)
                if isinstance(home.directory, TardisDirectory):
                    # Tardis homes track no sharers; the per-node story is
                    # the lease table, which scan() already reconciled with
                    # residency.  A resident block must have been fetched,
                    # so its home entry exists with a granted lease.
                    if e is None or e.rts == 0:
                        self._fail(
                            node.id,
                            f"node {node.id} caches block {block:#x} but home "
                            f"{home.id} never granted a lease for it",
                        )
                elif isinstance(home.directory, LazyDirectory):
                    if e is None or node.id not in e.sharers:
                        self._fail(
                            node.id,
                            f"node {node.id} caches block {block:#x} "
                            f"({'RW' if state == RW else 'RO'}) but home "
                            f"{home.id} does not list it as a sharer",
                        )
                    if (
                        state == RW
                        and node.id not in e.writers
                        and block not in node.deferred_notices
                    ):
                        self._fail(
                            node.id,
                            f"node {node.id} holds block {block:#x} read-write "
                            f"but home {home.id} does not know it writes "
                            f"(writers={sorted(e.writers)}, no deferred notice)",
                        )
                else:
                    if e is None:
                        self._fail(
                            node.id,
                            f"node {node.id} caches block {block:#x} but home "
                            f"{home.id} has no directory entry",
                        )
                    elif state == RW and e.owner != node.id:
                        self._fail(
                            node.id,
                            f"node {node.id} holds block {block:#x} read-write "
                            f"but home {home.id} records owner {e.owner}",
                        )
                    elif state == RO and node.id not in e.sharers:
                        self._fail(
                            node.id,
                            f"node {node.id} caches block {block:#x} read-only "
                            f"but home {home.id} does not list it as a sharer",
                        )
        # Home view: every registered sharer must actually cache the block.
        for home in m.nodes:
            for block, e in home.directory.entries.items():
                if isinstance(e, TardisEntry):
                    continue  # no sharer bookkeeping to reconcile
                for s in e.sharers:
                    if m.nodes[s].cache.lookup(block) == INVALID:
                        self._fail(
                            home.id,
                            f"home {home.id} lists node {s} as a sharer of "
                            f"block {block:#x}, but node {s} does not cache it",
                        )
                if isinstance(e, MSIEntry) and e.owner is not None:
                    if m.nodes[e.owner].cache.lookup(block) != RW:
                        self._fail(
                            home.id,
                            f"home {home.id} records node {e.owner} as dirty "
                            f"owner of block {block:#x}, but the node does not "
                            f"hold it read-write",
                        )


def _derive_lazy_state(e: LazyEntry) -> int:
    """The Figure 1 state implied by the sharer/writer sets."""
    if not e.sharers:
        return UNCACHED
    if not e.writers:
        return SHARED
    if len(e.sharers) == 1:
        return DIRTY
    return WEAK
