"""Protocol observability: structured event tracing + invariant checking.

Usage::

    machine = Machine(cfg, protocol="lrc", trace=True, check_invariants=True)
    machine.run(programs)           # InvariantViolation on a protocol bug
    machine.tracer.to_jsonl(open("trace.jsonl", "w"))

or from the harness/CLI::

    spec.with_(check_invariants=True).run()
    REPRO_CHECK_INVARIANTS=1 python -m repro run mp3d --small
    python -m repro trace mp3d --protocol lrc --procs 8 --small
"""

from repro.trace.invariants import InvariantChecker, InvariantViolation, LEVELS
from repro.trace.tracer import Tracer

__all__ = ["Tracer", "InvariantChecker", "InvariantViolation", "LEVELS"]
