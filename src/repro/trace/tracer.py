"""Structured protocol event tracer.

The tracer records coherence-protocol events — message sends, directory
transitions, cache installs/invalidations, buffer operations, outstanding
transaction bookkeeping, sync milestones — into a bounded ring buffer.

Design constraints:

* **Zero overhead when off.**  The tracer is attached to components only
  when tracing is enabled; every instrumentation point is a single
  ``if tracer is not None`` check against a ``None`` attribute otherwise.
* **Pure observation.**  Emitting an event never touches simulated time,
  resources, or protocol state, so enabling the tracer cannot change any
  cycle count (the CI sweep asserts this).
* **Bounded memory.**  The ring buffer keeps the most recent ``capacity``
  events; older ones are dropped (and counted), so tracing a long run
  costs O(capacity) memory while the window around a violation is intact.

Events are ``(seq, t, kind, node, fields)`` tuples; :meth:`Tracer.to_jsonl`
exports them as one JSON object per line for offline digging.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Deque, Dict, List, Optional, TextIO, Tuple

#: Event kinds emitted by the built-in instrumentation points.
KINDS = (
    "msg",            # fabric send (src, dst, type, send/deliver times)
    "dir_read",       # directory read transition at the home
    "dir_write",      # directory write transition at the home
    "dir_remove",     # sharer removed (relinquish / eviction)
    "cache_install",  # line installed (with victim, if any)
    "cache_inval",    # line invalidated by coherence
    "wb_add",         # write-buffer entry created
    "wb_full",        # write buffer rejected an entry (CPU will stall)
    "wb_retire",      # write-buffer head retired
    "cbuf_add",       # coalescing-buffer entry created (victim, if any)
    "cbuf_remove",    # coalescing-buffer entry forced out
    "cbuf_drain",     # release-point drain of the coalescing buffer
    "txn_start",      # outstanding-transaction counter incremented
    "txn_done",       # outstanding-transaction counter decremented
    "release_fire",   # a release continuation fired
    "acquire_done",   # acquire-side invalidation processing completed
    "violation",      # invariant checker failure (always the last event)
)

Event = Tuple[int, int, str, int, Dict[str, Any]]


class Tracer:
    """Bounded ring buffer of structured protocol events."""

    __slots__ = ("sim", "buf", "capacity", "emitted", "dropped")

    def __init__(self, sim, capacity: int = 1 << 16) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.buf: Deque[Event] = deque(maxlen=capacity)
        self.emitted = 0
        self.dropped = 0

    def emit(self, kind: str, node: int, t: Optional[int] = None, **fields) -> int:
        """Record one event; returns its sequence number.

        ``t`` defaults to the simulator's current time — instrumentation
        points that know a more precise component-local time pass it
        explicitly.
        """
        seq = self.emitted
        self.emitted += 1
        if len(self.buf) == self.capacity:
            self.dropped += 1
        self.buf.append((seq, self.sim.now if t is None else t, kind, node, fields))
        return seq

    def __len__(self) -> int:
        return len(self.buf)

    # -- queries ---------------------------------------------------------------

    def events(
        self,
        kind: Optional[str] = None,
        node: Optional[int] = None,
    ) -> List[Event]:
        """Buffered events, optionally filtered by kind and/or node."""
        return [
            ev
            for ev in self.buf
            if (kind is None or ev[2] == kind) and (node is None or ev[3] == node)
        ]

    def tail(self, n: int) -> List[Event]:
        """The most recent ``n`` buffered events."""
        if n <= 0:
            return []
        return list(self.buf)[-n:]

    def window(self, seq: int, before: int = 20, after: int = 20) -> List[Event]:
        """Buffered events with sequence numbers in ``[seq-before, seq+after]``.

        This is the violation-debugging view: pass the sequence number a
        :class:`~repro.trace.invariants.InvariantViolation` carries and get
        the surrounding protocol activity (as much of it as the ring still
        holds).
        """
        lo, hi = seq - before, seq + after
        return [ev for ev in self.buf if lo <= ev[0] <= hi]

    # -- export ----------------------------------------------------------------

    @staticmethod
    def event_dict(ev: Event) -> Dict[str, Any]:
        seq, t, kind, node, fields = ev
        return {"seq": seq, "t": t, "kind": kind, "node": node, **fields}

    @staticmethod
    def format_event(ev: Event) -> str:
        seq, t, kind, node, fields = ev
        detail = " ".join(f"{k}={v}" for k, v in fields.items())
        return f"[{seq:>8d}] t={t:<10d} n{node:<3d} {kind:<14s} {detail}"

    def to_jsonl(self, out: TextIO, events: Optional[List[Event]] = None) -> int:
        """Write events (default: the whole buffer) as JSON Lines.

        Returns the number of lines written.  Non-JSON-native field values
        (e.g. sets of word offsets) are stringified.
        """
        evs = list(self.buf) if events is None else events
        for ev in evs:
            out.write(json.dumps(self.event_dict(ev), default=_jsonable))
            out.write("\n")
        return len(evs)


def _jsonable(v):
    if isinstance(v, (set, frozenset)):
        return sorted(v)
    return str(v)
