"""repro — Lazy Release Consistency for Hardware-Coherent Multiprocessors.

A full reproduction of Kontothanassis, Scott & Bianchini (Supercomputing
'95): an execution-driven simulator for a mesh-connected multiprocessor
with programmable protocol processors, four coherence protocols
(sequentially consistent, eager RC, lazy RC, and the lazier
deferred-notice variant), the seven SPLASH-style applications of the
paper's evaluation, and a harness that regenerates every table and
figure.

Quick start::

    from repro import SystemConfig, simulate
    from repro.apps import Gauss

    lazy  = simulate(Gauss, SystemConfig.scaled(n_procs=16), "lrc", n=64)
    eager = simulate(Gauss, SystemConfig.scaled(n_procs=16), "erc", n=64)
    print(lazy.exec_time / eager.exec_time)
"""

from repro.config import SystemConfig
from repro.core.api import build_machine, run_app, simulate
from repro.core.machine import Machine, RunResult

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "Machine",
    "RunResult",
    "build_machine",
    "run_app",
    "simulate",
    "__version__",
]
