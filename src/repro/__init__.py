"""repro — Lazy Release Consistency for Hardware-Coherent Multiprocessors.

A full reproduction of Kontothanassis, Scott & Bianchini (Supercomputing
'95): an execution-driven simulator for a mesh-connected multiprocessor
with programmable protocol processors, four coherence protocols
(sequentially consistent, eager RC, lazy RC, and the lazier
deferred-notice variant), the seven SPLASH-style applications of the
paper's evaluation, and a harness that regenerates every table and
figure.

Quick start::

    from repro import SystemConfig, simulate
    from repro.apps import Gauss

    lazy  = simulate(Gauss, SystemConfig.scaled(n_procs=16), "lrc", n=64)
    eager = simulate(Gauss, SystemConfig.scaled(n_procs=16), "erc", n=64)
    print(lazy.exec_time / eager.exec_time)

Preset experiments go through the spec-based engine (memoized, optionally
parallel and disk-cached; see ``python -m repro figures --help``)::

    from repro import ExperimentSpec, run_spec

    result = run_spec(ExperimentSpec("mp3d", "lrc", n_procs=16, small=True))
"""

from repro.config import SystemConfig
from repro.core.api import build_machine, run_app, simulate
from repro.core.machine import Machine, RunResult
from repro.harness.spec import ExperimentSpec
from repro.results.store import ResultStore


def run_spec(spec, **kwargs):
    """Memoized spec execution — see :func:`repro.harness.experiments.run_spec`.

    (A lazy indirection: importing :mod:`repro` must not pull in the whole
    harness, which imports every application.)
    """
    from repro.harness.experiments import run_spec as _run_spec

    return _run_spec(spec, **kwargs)


__version__ = "1.1.0"

__all__ = [
    "SystemConfig",
    "Machine",
    "RunResult",
    "ExperimentSpec",
    "ResultStore",
    "build_machine",
    "run_app",
    "run_spec",
    "simulate",
    "__version__",
]
