"""Persistent, content-addressed experiment results."""

from repro.results.store import SCHEMA_VERSION, ResultStore, default_store

__all__ = ["SCHEMA_VERSION", "ResultStore", "default_store"]
