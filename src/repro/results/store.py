"""On-disk result store, keyed by experiment-spec fingerprint.

Layout (``.repro-results/`` by default)::

    <root>/
        <fingerprint>.json      one file per completed experiment

Each file holds a schema-versioned envelope::

    {
      "schema": 1,
      "fingerprint": "<spec.fingerprint()>",
      "spec": {...ExperimentSpec.to_dict()...},   # for humans / debugging
      "result": {...RunResult.to_dict()...}
    }

Invalidation rule: a stored entry is used only when *both* its schema
version matches :data:`SCHEMA_VERSION` *and* its filename fingerprint
matches the requesting spec.  The fingerprint covers every spec field
plus ``SPEC_VERSION`` (see :mod:`repro.harness.spec`), so changing any
experiment parameter — or the meaning of one — is automatically a store
miss; bumping :data:`SCHEMA_VERSION` orphans (but does not delete) all
old entries.  Corrupt or truncated files are treated as misses, never
as errors: the store is a cache, the simulator is the source of truth.

Writes are atomic (temp file + ``os.replace``) so concurrent runner
workers and concurrent CLI invocations can share one store directory;
last-writer-wins is harmless because results are deterministic.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.core.machine import RunResult
from repro.harness.spec import ExperimentSpec

#: Version of the RunResult JSON layout.  Bump on any breaking change to
#: ``RunResult.to_dict()`` (or the nested stats/traffic/classifier dicts).
SCHEMA_VERSION = 1

#: Default store location (relative to the working directory).
DEFAULT_ROOT = ".repro-results"

#: Environment variable that switches on a process-wide default store.
ENV_STORE_DIR = "REPRO_RESULTS_DIR"


class ResultStore:
    """A directory of ``<fingerprint>.json`` experiment results."""

    def __init__(self, root: os.PathLike = DEFAULT_ROOT) -> None:
        self.root = Path(root)

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r})"

    def path_for(self, spec: ExperimentSpec) -> Path:
        return self.root / f"{spec.fingerprint()}.json"

    # -- persistence ----------------------------------------------------------

    def save(self, spec: ExperimentSpec, result: RunResult) -> Path:
        """Atomically persist one result; returns the file written."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": SCHEMA_VERSION,
            "fingerprint": spec.fingerprint(),
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        final = self.path_for(spec)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=final.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(payload, f, separators=(",", ":"))
            os.replace(tmp, final)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return final

    def load(self, spec: ExperimentSpec) -> Optional[RunResult]:
        """Return the stored result for ``spec``, or None on any miss
        (absent, wrong schema version, or unreadable/corrupt file)."""
        path = self.path_for(spec)
        try:
            with open(path) as f:
                payload = json.load(f)
        except (OSError, json.JSONDecodeError):
            return None
        try:
            if payload["schema"] != SCHEMA_VERSION:
                return None
            if payload["fingerprint"] != spec.fingerprint():
                return None
            return RunResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None

    def __contains__(self, spec: ExperimentSpec) -> bool:
        return self.load(spec) is not None

    # -- maintenance ----------------------------------------------------------

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every stored entry; returns how many were removed."""
        n = 0
        if self.root.is_dir():
            for p in self.root.glob("*.json"):
                p.unlink()
                n += 1
        return n


def default_store() -> Optional[ResultStore]:
    """The process-wide store, or None when disk caching is off.

    Library calls (``run_experiment`` / ``run_spec``) touch disk only
    when ``REPRO_RESULTS_DIR`` is set, keeping tests hermetic; the
    ``python -m repro figures`` CLI passes a store explicitly.
    """
    root = os.environ.get(ENV_STORE_DIR)
    return ResultStore(root) if root else None
