"""On-disk result store, keyed by experiment-spec fingerprint.

Layout (``.repro-results/`` by default)::

    <root>/
        <fingerprint>.json       one file per completed experiment
        <fingerprint>.fail.json  structured RunFailure for a crashed /
                                 stalled / timed-out run (superseded by
                                 a later successful result)
        <stream-key>.stream.npz  one recorded reference stream per
                                 (app, params, stream-config) — the
                                 record phase's output, reused by every
                                 replay that shares the key
        <name>.artifact.json     named summary artifacts (e.g. a
                                 scenario run's per-protocol summary),
                                 keyed by name rather than fingerprint

Each file holds a schema-versioned envelope::

    {
      "schema": 1,
      "fingerprint": "<spec.fingerprint()>",
      "checksum": "<sha256 of the canonical content JSON>",
      "spec": {...ExperimentSpec.to_dict()...},   # for humans / debugging
      "result": {...RunResult.to_dict()...}
    }

``checksum`` is a content integrity check over the payload (the result,
failure, or artifact dict): a file corrupted *after* its atomic write —
truncated by a crashed filesystem, bit-flipped on disk — reads as a
miss with a logged warning rather than silently feeding a figure wrong
numbers.  Envelopes written before the field existed verify as intact
(there is nothing to check against), so old stores stay warm.

Invalidation rule: a stored entry is used only when *both* its schema
version matches :data:`SCHEMA_VERSION` *and* its filename fingerprint
matches the requesting spec.  The fingerprint covers every spec field
plus ``SPEC_VERSION`` (see :mod:`repro.harness.spec`), so changing any
experiment parameter — or the meaning of one — is automatically a store
miss; bumping :data:`SCHEMA_VERSION` orphans (but does not delete) all
old entries.  Corrupt or truncated files are treated as misses, never
as errors: the store is a cache, the simulator is the source of truth.

Writes are atomic (temp file + ``os.replace``) so concurrent runner
workers and concurrent CLI invocations can share one store directory;
last-writer-wins is harmless because results are deterministic.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
import time
import traceback as _traceback
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

log = logging.getLogger(__name__)

from repro.core.machine import RunResult
from repro.harness.spec import ExperimentSpec

#: Version of the RunResult JSON layout.  Bump on any breaking change to
#: ``RunResult.to_dict()`` (or the nested stats/traffic/classifier dicts).
SCHEMA_VERSION = 1

#: Default store location (relative to the working directory).
DEFAULT_ROOT = ".repro-results"

#: Environment variable that switches on a process-wide default store.
ENV_STORE_DIR = "REPRO_RESULTS_DIR"

#: Filename suffix of failure records (``<fingerprint>.fail.json``).
FAILURE_SUFFIX = ".fail.json"

#: Minimum age (seconds) before an orphaned ``*.tmp`` file is swept.
#: Younger temp files may belong to a write in flight in another
#: process; anything older than this was left behind by a crash between
#: ``mkstemp`` and ``os.replace``.
TMP_SWEEP_AGE = 300.0

def _content_checksum(content) -> str:
    """SHA-256 over the canonical JSON of a payload dict."""
    canon = json.dumps(content, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


def _verify_checksum(payload: dict, key: str, path) -> bool:
    """True when ``payload[key]`` matches the envelope's checksum.

    Envelopes without a checksum (written before the field existed)
    verify trivially; a mismatch is logged, never raised — the store is
    a cache and a corrupt entry is just a miss.
    """
    recorded = payload.get("checksum")
    if recorded is None:
        return True
    actual = _content_checksum(payload.get(key))
    if actual != recorded:
        log.warning(
            "%s failed its content checksum (recorded %s..., actual "
            "%s...); treating it as missing", path, recorded[:12], actual[:12],
        )
        return False
    return True


def _failure_body(payload: dict, path) -> Optional[dict]:
    """The failure dict inside an envelope, or None if corrupt.

    Failure envelopes come in two generations: the original flat layout
    (the failure's own fields spread at top level, no checksum) and the
    current ``{"schema": ..., "checksum": ..., "failure": {...}}`` one.
    """
    if "failure" in payload:
        if not _verify_checksum(payload, "failure", path):
            return None
        return payload["failure"]
    return payload


#: Exception class name -> stable failure kind.  Anything unlisted is
#: recorded under its own class name, so no failure is ever anonymous.
_KIND_BY_EXCEPTION = {
    "SimulationStall": "stall",
    "DeadlockError": "deadlock",
    "InvariantViolation": "invariant",
    "ConformanceViolation": "conformance",
    "TimeoutError": "timeout",
}


@dataclass
class RunFailure:
    """A structured record of one crashed / stalled / timed-out run.

    Persisted next to results as ``<fingerprint>.fail.json`` so a failed
    sweep leaves evidence behind instead of losing the diagnosis with
    the worker process.  A later *successful* run of the same spec
    supersedes (deletes) the record.
    """

    kind: str          # stall | deadlock | invariant | timeout | <ExcName>
    message: str
    traceback: str
    fingerprint: str
    spec: dict

    @classmethod
    def from_exception(cls, spec: ExperimentSpec, exc: BaseException) -> "RunFailure":
        name = type(exc).__name__
        return cls(
            kind=_KIND_BY_EXCEPTION.get(name, name),
            message=str(exc),
            traceback="".join(
                _traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
            fingerprint=spec.fingerprint(),
            spec=spec.to_dict(),
        )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "message": self.message,
            "traceback": self.traceback,
            "fingerprint": self.fingerprint,
            "spec": self.spec,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunFailure":
        return cls(
            kind=d["kind"],
            message=d["message"],
            traceback=d.get("traceback", ""),
            fingerprint=d["fingerprint"],
            spec=d.get("spec", {}),
        )


class ResultStore:
    """A directory of ``<fingerprint>.json`` experiment results."""

    def __init__(self, root: os.PathLike = DEFAULT_ROOT) -> None:
        self.root = Path(root)
        self._sweep_orphaned_tmp()

    def _sweep_orphaned_tmp(self, min_age: float = TMP_SWEEP_AGE) -> int:
        """Delete ``*.tmp`` files older than ``min_age`` seconds.

        Atomic writes go through ``mkstemp`` + ``os.replace``; a worker
        killed in between leaves the temp file behind forever (nothing
        else knows its randomized name).  Age-gating keeps the sweep
        safe to run concurrently with live writers, and every unlink
        tolerates losing the race to another sweeper.
        """
        n = 0
        if not self.root.is_dir():
            return n
        cutoff = time.time() - min_age
        for p in self.root.glob("*.tmp"):
            try:
                if p.stat().st_mtime <= cutoff:
                    p.unlink()
                    n += 1
            except OSError:
                continue
        return n

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r})"

    def path_for(self, spec: ExperimentSpec) -> Path:
        return self.root / f"{spec.fingerprint()}.json"

    def failure_path_for(self, spec: ExperimentSpec) -> Path:
        return self.root / f"{spec.fingerprint()}{FAILURE_SUFFIX}"

    # -- persistence ----------------------------------------------------------

    def _atomic_write(self, final: Path, payload: dict) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=final.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(payload, f, separators=(",", ":"))
            os.replace(tmp, final)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return final

    def save(self, spec: ExperimentSpec, result: RunResult) -> Path:
        """Atomically persist one result; returns the file written.

        A success supersedes any earlier failure record for the spec.
        """
        d = result.to_dict()
        final = self._atomic_write(
            self.path_for(spec),
            {
                "schema": SCHEMA_VERSION,
                "fingerprint": spec.fingerprint(),
                "checksum": _content_checksum(d),
                "spec": spec.to_dict(),
                "result": d,
            },
        )
        try:
            self.failure_path_for(spec).unlink()
        except OSError:
            pass
        return final

    def load(self, spec: ExperimentSpec) -> Optional[RunResult]:
        """Return the stored result for ``spec``, or None on any miss
        (absent, wrong schema version, or unreadable/corrupt file)."""
        path = self.path_for(spec)
        try:
            with open(path) as f:
                payload = json.load(f)
        except (OSError, json.JSONDecodeError):
            return None
        try:
            if payload["schema"] != SCHEMA_VERSION:
                return None
            if payload["fingerprint"] != spec.fingerprint():
                return None
            if not _verify_checksum(payload, "result", path):
                return None
            return RunResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None

    def __contains__(self, spec: ExperimentSpec) -> bool:
        return self.load(spec) is not None

    # -- failure records -------------------------------------------------------

    def save_failure(self, spec: ExperimentSpec, failure: RunFailure) -> Path:
        """Atomically persist one failure record; returns the file written."""
        d = failure.to_dict()
        return self._atomic_write(
            self.failure_path_for(spec),
            {
                "schema": SCHEMA_VERSION,
                "checksum": _content_checksum(d),
                "failure": d,
            },
        )

    def load_failure(self, spec: ExperimentSpec) -> Optional[RunFailure]:
        """The stored failure record for ``spec``, or None.

        Same tolerance as :meth:`load`: absent, wrong-schema, or corrupt
        records read as None, never as errors.
        """
        path = self.failure_path_for(spec)
        try:
            with open(path) as f:
                payload = json.load(f)
        except (OSError, json.JSONDecodeError):
            return None
        try:
            if payload["schema"] != SCHEMA_VERSION:
                return None
            d = _failure_body(payload, path)
            return RunFailure.from_dict(d) if d is not None else None
        except (KeyError, TypeError, ValueError):
            return None

    def failures(self) -> List[RunFailure]:
        """Every readable failure record in the store."""
        out: List[RunFailure] = []
        if not self.root.is_dir():
            return out
        for path in sorted(self.root.glob(f"*{FAILURE_SUFFIX}")):
            try:
                with open(path) as f:
                    payload = json.load(f)
                if payload.get("schema") == SCHEMA_VERSION:
                    d = _failure_body(payload, path)
                    if d is not None:
                        out.append(RunFailure.from_dict(d))
            except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                # A half-written or corrupt record is a skip, not an
                # error — but a silent skip hides evidence, so say so.
                log.warning("skipping unreadable failure record %s: %s", path, exc)
                continue
        return out

    # -- named summary artifacts ----------------------------------------------

    def artifact_path_for(self, name: str) -> Path:
        return self.root / f"{name}.artifact.json"

    def save_artifact(self, name: str, payload: dict) -> Path:
        """Atomically persist a named summary artifact.

        Unlike results, artifacts are keyed by *name*, not fingerprint:
        they are derived documents (e.g. a scenario run's per-protocol
        summary, ``scenario-<name>.artifact.json``) whose inputs are
        already fingerprint-cached individually.  Last-writer-wins, like
        every other store write.
        """
        return self._atomic_write(
            self.artifact_path_for(name),
            {
                "schema": SCHEMA_VERSION,
                "name": name,
                "checksum": _content_checksum(payload),
                "artifact": payload,
            },
        )

    def load_artifact(self, name: str) -> Optional[dict]:
        """The stored artifact payload for ``name``, or None on any miss."""
        path = self.artifact_path_for(name)
        try:
            with open(path) as f:
                payload = json.load(f)
        except (OSError, json.JSONDecodeError):
            return None
        try:
            if payload["schema"] != SCHEMA_VERSION:
                return None
            if not _verify_checksum(payload, "artifact", path):
                return None
            return payload["artifact"]
        except (KeyError, TypeError):
            return None

    # -- recorded streams ------------------------------------------------------

    def stream_path_for(self, key: str) -> Path:
        return self.root / f"{key}.stream.npz"

    def save_stream(self, key: str, stream) -> Path:
        """Atomically persist one recorded stream under its request key."""
        final = self.stream_path_for(key)
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, prefix=key, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                f.write(stream.to_bytes())
            os.replace(tmp, final)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return final

    def load_stream(self, key: str):
        """The stored stream for ``key``, or None on any miss.

        Same tolerance as :meth:`load`: absent, wrong-version, corrupt,
        or fingerprint-mismatched blobs read as None, never as errors —
        the record phase simply runs again.
        """
        from repro.program.stream import RecordedStream

        try:
            blob = self.stream_path_for(key).read_bytes()
        except OSError:
            return None
        try:
            return RecordedStream.from_bytes(blob)
        except Exception:
            return None

    # -- maintenance ----------------------------------------------------------

    def __len__(self) -> int:
        """Number of stored *results* (failure records and named
        artifacts not included)."""
        if not self.root.is_dir():
            return 0
        return sum(
            1
            for p in self.root.glob("*.json")
            if not p.name.endswith(FAILURE_SUFFIX)
            and not p.name.endswith(".artifact.json")
        )

    def clear(self) -> int:
        """Delete every stored entry (results, failure records,
        recorded streams, and orphaned temp files); returns how many
        files were removed."""
        n = 0
        if self.root.is_dir():
            for pattern in ("*.json", "*.stream.npz", "*.tmp"):
                for p in self.root.glob(pattern):
                    try:
                        p.unlink()
                        n += 1
                    except OSError:
                        continue  # lost a race to a concurrent clear
        return n


def default_store() -> Optional[ResultStore]:
    """The process-wide store, or None when disk caching is off.

    Library calls (``run_experiment`` / ``run_spec``) touch disk only
    when ``REPRO_RESULTS_DIR`` is set, keeping tests hermetic; the
    ``python -m repro figures`` CLI passes a store explicitly.
    """
    root = os.environ.get(ENV_STORE_DIR)
    return ResultStore(root) if root else None
