"""Write-ahead campaign journal: resumable long-running sweeps (DESIGN.md §15).

A campaign (``repro figures``, ``repro faults``, ``repro scenarios run``,
``repro fuzz``) is a planned list of *cells* (experiment specs, fuzz
iterations, sweep rates).  The journal records, as an append-only JSONL
file under the result store, each planned cell and its outcome::

    <store-root>/journal/<kind>-<params-digest>.wal

    {"schema":1,"op":"plan","cell":"*","data":{...campaign params...},"sha":...}
    {"schema":1,"op":"start","cell":"<key>","data":null,"sha":...}
    {"schema":1,"op":"done","cell":"<key>","data":{...outcome...},"sha":...}
    {"schema":1,"op":"fail","cell":"<key>","data":{"kind":...,"message":...},"sha":...}

Appends are atomic at the line level (single ``write`` of one line,
flushed and fsynced); every record carries a content checksum, so a
process killed mid-append leaves at most one torn final line, which
:meth:`CampaignJournal.outcomes` detects and drops with a warning.  A
corrupt record mid-file truncates recovery at that point — later
records could depend on lost state, so they are ignored, and the
affected cells simply re-run.

Resume semantics (``--resume`` on the CLI): cells with a journaled
``done`` or ``fail`` outcome are *skipped* and their journaled data is
reused to rebuild the campaign's report/artifact — bit-identical to an
uninterrupted run, because cell execution is deterministic and the
journaled data is exactly what the live run would have produced.  Cells
with only a ``start`` (in flight when the campaign died) re-run.

The journal file is keyed by a digest of the campaign parameters, so
``--resume`` with different arguments opens a *different* journal
rather than mixing incompatible campaigns; the ``plan`` record keeps
the parameters readable for humans.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from pathlib import Path
from typing import Any, Dict, Optional

log = logging.getLogger(__name__)

JOURNAL_SCHEMA = 1

#: Journal files live under ``<store-root>/journal/``.
JOURNAL_SUBDIR = "journal"

#: The pseudo-cell key of the campaign-level ``plan`` record.
PLAN_CELL = "*"


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _record_sha(record: Dict[str, Any]) -> str:
    body = {k: v for k, v in record.items() if k != "sha"}
    return hashlib.sha256(_canonical(body).encode()).hexdigest()[:16]


def params_digest(params: Dict[str, Any]) -> str:
    """Stable digest of a campaign's parameters (filename-safe hex)."""
    return hashlib.sha256(_canonical(params).encode()).hexdigest()[:12]


class CampaignJournal:
    """Append-only, checksummed outcome log for one campaign."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)

    @classmethod
    def for_campaign(
        cls, store_root: os.PathLike, kind: str, params: Dict[str, Any]
    ) -> "CampaignJournal":
        """The journal for (``kind``, ``params``) under a store root;
        writes the ``plan`` record if the journal is new."""
        path = (
            Path(store_root)
            / JOURNAL_SUBDIR
            / f"{kind}-{params_digest(params)}.wal"
        )
        journal = cls(path)
        if not path.exists():
            journal.append("plan", PLAN_CELL, params)
        return journal

    # -- writing --------------------------------------------------------------

    def append(self, op: str, cell: str, data: Any = None) -> None:
        """Atomically append one checksummed record (flush + fsync)."""
        record = {
            "schema": JOURNAL_SCHEMA,
            "op": op,
            "cell": cell,
            "data": data,
        }
        record["sha"] = _record_sha(record)
        line = json.dumps(record, separators=(",", ":")) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as f:
            f.write(line)
            f.flush()
            os.fsync(f.fileno())

    def start(self, cell: str) -> None:
        self.append("start", cell)

    def done(self, cell: str, data: Any = None) -> None:
        self.append("done", cell, data)

    def fail(self, cell: str, kind: str, message: str) -> None:
        self.append("fail", cell, {"kind": kind, "message": message})

    # -- reading --------------------------------------------------------------

    def records(self):
        """Yield verified records in order; stop (with a warning) at the
        first torn or corrupt line — later records may depend on state
        that was lost with it."""
        try:
            with open(self.path) as f:
                lines = f.readlines()
        except OSError:
            return
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                kind = "torn tail" if i == len(lines) - 1 else "corrupt record"
                log.warning(
                    "%s: %s at line %d; ignoring it and %d later record(s)",
                    self.path, kind, i + 1, len(lines) - i - 1,
                )
                return
            if (
                not isinstance(record, dict)
                or record.get("schema") != JOURNAL_SCHEMA
                or record.get("sha") != _record_sha(record)
            ):
                log.warning(
                    "%s: checksum mismatch at line %d; ignoring it and "
                    "%d later record(s)",
                    self.path, i + 1, len(lines) - i - 1,
                )
                return
            yield record

    def outcomes(self) -> Dict[str, Dict[str, Any]]:
        """Latest outcome per cell: ``{cell: {"op": ..., "data": ...}}``.

        ``done``/``fail`` supersede ``start``; a later record for the
        same cell supersedes an earlier one (re-runs are appended, never
        rewritten).  The campaign ``plan`` appears under ``"*"``.
        """
        out: Dict[str, Dict[str, Any]] = {}
        for record in self.records():
            out[record["cell"]] = {"op": record["op"], "data": record["data"]}
        return out

    def plan(self) -> Optional[Dict[str, Any]]:
        """The campaign parameters recorded at creation, or None."""
        entry = self.outcomes().get(PLAN_CELL)
        return entry["data"] if entry and entry["op"] == "plan" else None

    def completed(self) -> Dict[str, Dict[str, Any]]:
        """Cells whose outcome is known (``done`` or ``fail``)."""
        return {
            cell: entry
            for cell, entry in self.outcomes().items()
            if entry["op"] in ("done", "fail")
        }

    def clear(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass
