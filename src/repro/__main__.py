"""Command-line interface: ``python -m repro``.

    python -m repro list
    python -m repro run gauss --protocol lrc --procs 16 --small
    python -m repro compare mp3d --procs 16
"""

from __future__ import annotations

import argparse
import sys

from repro.apps import APPS
from repro.harness import run_experiment
from repro.harness.presets import APP_PRESETS, APP_PRESETS_SMALL
from repro.protocols import PROTOCOLS
from repro.stats.report import format_table


def _cmd_list(_args) -> int:
    print("applications:")
    for name in sorted(APPS):
        print(f"  {name:12s} presets: {APP_PRESETS[name]}")
    print("protocols:", ", ".join(sorted(PROTOCOLS)))
    return 0


def _cmd_run(args) -> int:
    r = run_experiment(
        args.app, args.protocol, n_procs=args.procs, small=args.small
    )
    s = r.summary()
    rows = [[k, v if not isinstance(v, float) else f"{v:.4f}"] for k, v in s.items()]
    print(format_table(["metric", "value"], rows,
                       title=f"{args.app} / {args.protocol} / {args.procs} procs"))
    return 0


def _cmd_compare(args) -> int:
    rows = []
    base = None
    for proto in ("sc", "erc", "lrc", "lrc-ext"):
        r = run_experiment(args.app, proto, n_procs=args.procs, small=args.small)
        if base is None:
            base = r.exec_time
        b = r.breakdown()
        rows.append(
            [
                proto,
                r.exec_time,
                f"{r.exec_time / base:.3f}",
                f"{r.miss_rate * 100:.2f}%",
                b["read"],
                b["write"],
                b["sync"],
            ]
        )
    print(
        format_table(
            ["protocol", "cycles", "norm", "miss", "read", "write", "sync"],
            rows,
            title=f"{args.app}, {args.procs} processors",
        )
    )
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)

    sub.add_parser("list", help="list applications and protocols")

    p_run = sub.add_parser("run", help="run one app under one protocol")
    p_run.add_argument("app", choices=sorted(APPS))
    p_run.add_argument("--protocol", default="lrc", choices=sorted(PROTOCOLS))
    p_run.add_argument("--procs", type=int, default=16)
    p_run.add_argument("--small", action="store_true")

    p_cmp = sub.add_parser("compare", help="run one app under all protocols")
    p_cmp.add_argument("app", choices=sorted(APPS))
    p_cmp.add_argument("--procs", type=int, default=16)
    p_cmp.add_argument("--small", action="store_true")

    args = ap.parse_args(argv)
    if args.cmd == "list":
        return _cmd_list(args)
    if args.cmd == "run":
        return _cmd_run(args)
    return _cmd_compare(args)


if __name__ == "__main__":
    sys.exit(main())
