"""Command-line interface: ``python -m repro``.

    python -m repro list
    python -m repro run gauss --protocol lrc --procs 16 --small
    python -m repro compare mp3d --procs 16
    python -m repro figures --jobs 4 --procs 16 --small
    python -m repro figures --only t3 f4 --jobs 4
    python -m repro trace locusroute --protocol sc --procs 4 --small
    python -m repro fuzz --seed 0 --iters 50 --procs 8
    python -m repro fuzz --iters 50 --faults drop=0.02,dup=0.02,delay=0.05
    python -m repro fuzz --iters 30 --mode service
    python -m repro faults --iters 10 --rates 0.01 0.02 0.05
    python -m repro faults --rates 0.02 --apps kvstore pubsub
    python -m repro scenarios list
    python -m repro scenarios run satellite_link --protocols lrc tardis

``figures`` regenerates the paper's tables and figures, fanning the
underlying simulations out over ``--jobs`` worker processes and caching
every result in an on-disk store (``.repro-results/`` by default), so a
repeated invocation renders from disk without simulating anything.
Failed experiments are persisted as structured failure records and
summarized at the end instead of aborting the sweep.

``fuzz --faults`` runs the differential conformance campaign under
seeded message-level fault injection (drop/dup/delay/reorder at the NIC
boundary); the reliable-delivery layer must recover transparently, so
the oracle comparison is unchanged and the recovery-traffic counters
are reported.  ``faults`` sweeps fault rates across every protocol and
tabulates failures and recovery traffic; ``--apps`` additionally runs
named applications (e.g. the service workloads) under each swept plan
with the invariant checker on.

``scenarios`` runs the named-scenario library (DESIGN.md §13): each
scenario is a versioned JSON document bundling an app, its parameters,
the machine shape, and a phase-scripted fault plan; ``scenarios run``
sweeps it across protocols and persists a summary artifact in the
result store.

``trace`` runs one simulation with the protocol event tracer and the
coherence-invariant checker enabled; on a violation it prints the event
window around the failure.  ``run``/``compare``/``figures`` accept
``--check-invariants`` (or ``REPRO_CHECK_INVARIANTS=1``) to validate
every simulation they perform — checking is pure observation, so cycle
counts and result-store fingerprints are unchanged.
"""

from __future__ import annotations

import argparse
import logging
import os
import sys
import time

from repro.apps import APPS
from repro.faults.plan import FaultPlan
from repro.harness import run_experiment
from repro.harness.experiments import (
    ARTIFACT_KEYS,
    all_artifact_specs,
    figure4_normalized_time,
    figure5_breakdown,
    figure6_lazier,
    figure7_lazier_breakdown,
    figure8_future,
    figure9_future_breakdown,
    prefetch,
    sensitivity_sweep,
    table1,
    table2_miss_classification,
    table3_miss_rates,
)
from repro.harness.presets import APP_PRESETS, APP_PRESETS_SMALL
from repro.harness.spec import ENGINES, ENV_ENGINE, ENV_SHARDS
from repro.protocols import REGISTRY, all_names
from repro.results.store import DEFAULT_ROOT, ResultStore
from repro.stats.report import format_table
from repro.trace import LEVELS, Tracer


def _campaign_journal(store_root, kind: str, params: dict, resume: bool):
    """The write-ahead journal for one CLI campaign.

    Campaigns always journal (so any run can be resumed after a crash);
    ``--resume`` decides whether existing outcomes are honored.  Without
    it the journal is truncated first — a fresh run, not a continuation.
    """
    from repro.results.journal import CampaignJournal

    if not resume:
        CampaignJournal.for_campaign(store_root, kind, params).clear()
    return CampaignJournal.for_campaign(store_root, kind, params)


def _cmd_list(_args) -> int:
    print("applications:")
    for name in sorted(APPS):
        print(f"  {name:12s} presets: {APP_PRESETS[name]}")
    print("protocols:", ", ".join(all_names()))
    return 0


def _cmd_run(args) -> int:
    from repro.harness.experiments import run_spec
    from repro.harness.spec import ExperimentSpec

    spec = ExperimentSpec(
        args.app,
        args.protocol,
        n_procs=args.procs,
        small=args.small,
        check_invariants=args.check_invariants,
        faults=FaultPlan.parse(args.faults) if args.faults else None,
    )
    r = run_spec(spec)
    s = r.summary()
    rows = [[k, v if not isinstance(v, float) else f"{v:.4f}"] for k, v in s.items()]
    print(format_table(["metric", "value"], rows,
                       title=f"{args.app} / {args.protocol} / {args.procs} procs"))
    return 0


def _cmd_compare(args) -> int:
    rows = []
    base = None
    for proto in all_names():
        r = run_experiment(
            args.app,
            proto,
            n_procs=args.procs,
            small=args.small,
            check_invariants=args.check_invariants,
        )
        if base is None:
            base = r.exec_time
        b = r.breakdown()
        rows.append(
            [
                proto,
                r.exec_time,
                f"{r.exec_time / base:.3f}",
                f"{r.miss_rate * 100:.2f}%",
                b["read"],
                b["write"],
                b["sync"],
            ]
        )
    print(
        format_table(
            ["protocol", "cycles", "norm", "miss", "read", "write", "sync"],
            rows,
            title=f"{args.app}, {args.procs} processors",
        )
    )
    return 0


def _cmd_figures(args) -> int:
    logging.basicConfig(
        level=logging.INFO, format="%(message)s", stream=sys.stderr
    )
    n, small = args.procs, args.small
    wanted = args.only or list(ARTIFACT_KEYS)
    store = None if args.no_store else ResultStore(args.store_dir)

    t0 = time.monotonic()
    specs = all_artifact_specs(wanted, n_procs=n, small=small)
    if args.check_invariants:
        specs = [s.with_(check_invariants=True) for s in specs]

    # Campaign journal (cells are spec fingerprints): a crashed sweep
    # resumed with --resume re-reports journaled failures without
    # re-running them, and journaled successes load straight from the
    # store.  Cells that were in flight when the sweep died re-run.
    journal = None
    failures = {}
    todo = specs
    if store is not None:
        from repro.results.store import RunFailure

        journal = _campaign_journal(
            store.root, "figures",
            {"artifacts": list(wanted), "procs": n, "small": small,
             "check_invariants": bool(args.check_invariants)},
            args.resume,
        )
        completed = journal.completed()
        todo = []
        for spec in specs:
            entry = completed.get(spec.fingerprint())
            if entry is not None and entry["op"] == "fail":
                failures[spec] = RunFailure(
                    kind=entry["data"]["kind"],
                    message=entry["data"]["message"],
                    traceback="",
                    fingerprint=spec.fingerprint(),
                    spec=spec.to_dict(),
                )
            else:
                todo.append(spec)
        if len(todo) < len(specs):
            print(
                f"repro figures: resume: {len(specs) - len(todo)} of "
                f"{len(specs)} cells journaled as failed, skipping them",
                file=sys.stderr,
            )
        for spec in todo:
            if completed.get(spec.fingerprint()) is None:
                journal.start(spec.fingerprint())

    new_failures = {}
    prefetch(
        todo, jobs=args.jobs, store=store, timeout=args.timeout,
        on_failure="record", failures_out=new_failures,
    )
    if journal is not None:
        for spec in todo:
            fp = spec.fingerprint()
            entry = completed.get(fp)
            if spec in new_failures:
                f = new_failures[spec]
                journal.fail(fp, f.kind, f.message)
            elif entry is None or entry["op"] != "done":
                journal.done(fp)
    failures.update(new_failures)
    sim_elapsed = time.monotonic() - t0
    if failures:
        print(
            f"repro figures: {len(failures)} of {len(specs)} experiments failed"
            + (" (records persisted to the store):" if store else ":"),
            file=sys.stderr,
        )
        for spec, failure in failures.items():
            print(f"  {spec.label()}: {failure.kind}: {failure.message}",
                  file=sys.stderr)
        return 1

    renderers = {
        "t1": lambda: table1(),
        "t2": lambda: table2_miss_classification(n, small)[1],
        "t3": lambda: table3_miss_rates(n, small)[1],
        "f4": lambda: figure4_normalized_time(n, small)[1],
        "f5": lambda: figure5_breakdown(n, small)[1],
        "f6": lambda: figure6_lazier(n, small)[1],
        "f7": lambda: figure7_lazier_breakdown(n, small)[1],
        "f8": lambda: figure8_future(n, small)[1],
        "f9": lambda: figure9_future_breakdown(n, small)[1],
        "sweep": lambda: sensitivity_sweep(
            app="mp3d", n_procs=min(n, 16), small=small
        )[1],
    }
    for key in wanted:
        print(renderers[key]())
        print("=" * 72)
    print(
        f"{len(specs)} experiments ready in {sim_elapsed:.1f}s "
        f"({args.jobs} jobs"
        + (f", store: {store.root})" if store else ", store off)"),
        file=sys.stderr,
    )
    return 0


def _cmd_trace(args) -> int:
    from collections import Counter

    from repro.core.machine import Machine
    from repro.harness.presets import bench_config
    from repro.trace import InvariantViolation

    cfg = bench_config(n_procs=args.procs)
    machine = Machine(
        cfg,
        protocol=args.protocol,
        trace=True,
        check_invariants=not args.no_check,
        trace_capacity=args.capacity,
        check_level=args.check_level,
    )
    from repro.apps.common import AppContext

    params = (APP_PRESETS_SMALL if args.small else APP_PRESETS)[args.app]
    app = APPS[args.app](AppContext.for_machine(machine), **params)
    tracer = machine.tracer
    try:
        result = machine.run([app.program(p) for p in range(cfg.n_procs)])
    except InvariantViolation as e:
        print(f"INVARIANT VIOLATION: {e}", file=sys.stderr)
        if e.seq is not None:
            print(
                f"\nevent window (+/- {args.window} around seq {e.seq}):",
                file=sys.stderr,
            )
            for ev in tracer.window(e.seq, before=args.window, after=args.window):
                print(Tracer.format_event(ev), file=sys.stderr)
        if args.out:
            with open(args.out, "w") as f:
                n = tracer.to_jsonl(f)
            print(f"\n{n} buffered events written to {args.out}", file=sys.stderr)
        return 1
    counts = Counter(ev[2] for ev in tracer.buf)
    rows = [[k, counts[k]] for k in sorted(counts)]
    rows.append(["(buffered/emitted)", f"{len(tracer)}/{tracer.emitted}"])
    print(
        format_table(
            ["event kind", "count"],
            rows,
            title=(
                f"{args.app} / {args.protocol} / {args.procs} procs: "
                f"{result.exec_time} cycles, invariants "
                + ("not checked" if args.no_check else "ok")
            ),
        )
    )
    if args.out:
        with open(args.out, "w") as f:
            n = tracer.to_jsonl(f)
        print(f"{n} events written to {args.out}")
    return 0


def _format_traffic(traffic: dict) -> str:
    return ", ".join(f"{k}={traffic.get(k, 0)}" for k in sorted(traffic))


def _cmd_fuzz(args) -> int:
    from repro.conformance import fuzz_run, write_reproducers
    from repro.conformance.fuzz import replay_reproducer

    say = lambda s: print(s, file=sys.stderr)
    if args.replay:
        return replay_reproducer(args.replay, window=args.window, log=say)
    protocols = tuple(args.protocols)
    faults = FaultPlan.parse(args.faults) if args.faults else None
    journal = _campaign_journal(
        args.store_dir, "fuzz",
        {"seed": args.seed, "iters": args.iters, "procs": args.procs,
         "n_ops": args.n_ops, "protocols": list(protocols),
         "mode": args.mode,
         "faults": faults.to_dict() if faults else None},
        args.resume,
    )
    summary = fuzz_run(
        seed=args.seed,
        iters=args.iters,
        n_procs=args.procs,
        n_ops=args.n_ops,
        protocols=protocols,
        mode=args.mode,
        do_minimize=args.minimize,
        jobs=args.jobs,
        window=args.window,
        faults=faults,
        log=say,
        journal=journal,
    )
    failures = summary["failures"]
    if faults is not None:
        say(f"fault plan [{faults.label()}]: "
            + _format_traffic(summary.get("traffic", {})))
    if not failures:
        print(
            f"fuzz: {args.iters} programs x {len(protocols)} protocols "
            f"({', '.join(protocols)}), {args.procs} procs: all clean"
            + (f" under faults [{faults.label()}]" if faults else "")
        )
        return 0
    if args.out:
        write_reproducers(summary, args.out)
        say(f"reproducers written to {args.out}")
    for f in failures:
        print(f"FAIL seed={f['seed']} {f['protocol']} {f['reason']}: {f['message']}")
        for line in f.get("trace_window") or []:
            print(f"    {line}")
    print(f"fuzz: {len(failures)} failure(s) in {args.iters} iterations")
    return 1


def _cmd_faults(args) -> int:
    """Fault-rate sweep: the conformance campaign at each rate, with the
    recovery-traffic counters tabulated per rate."""
    from repro.conformance import fuzz_run

    say = lambda s: print(s, file=sys.stderr)
    protocols = tuple(args.protocols)
    base = FaultPlan.parse(args.faults) if args.faults else FaultPlan()
    journal = _campaign_journal(
        args.store_dir, "faults",
        {"seed": args.seed, "iters": args.iters, "procs": args.procs,
         "protocols": list(protocols), "rates": [float(r) for r in args.rates],
         "faults": base.to_dict(), "apps": list(args.apps)},
        args.resume,
    )
    completed = journal.completed()
    rows = []
    bad = 0
    for rate in args.rates:
        cell = f"rate-{rate:g}"
        entry = completed.get(cell)
        if entry is not None and entry["op"] == "done":
            say(f"rate {rate:g}: journaled, skipping")
            bad += entry["data"]["n_fail"]
            rows.append(entry["data"]["row"])
            continue
        plan = FaultPlan.from_dict(
            {
                **base.to_dict(),
                "seed": args.seed,
                "drop": rate,
                "dup": rate,
                "delay": min(1.0, 2 * rate),
            }
        )
        say(f"rate {rate:g}: fuzzing under [{plan.label()}] ...")
        journal.start(cell)
        summary = fuzz_run(
            seed=args.seed,
            iters=args.iters,
            n_procs=args.procs,
            protocols=protocols,
            do_minimize=False,
            jobs=args.jobs,
            faults=plan,
            log=say,
        )
        t = summary.get("traffic", {})
        n_fail = len(summary["failures"])
        bad += n_fail
        row = [
            f"{rate:g}",
            n_fail,
            t.get("retransmits", 0),
            t.get("dup_drops", 0),
            t.get("drops_injected", 0),
            t.get("dups_injected", 0),
            t.get("delays_injected", 0),
        ]
        journal.done(cell, {"row": row, "n_fail": n_fail})
        rows.append(row)
    print(
        format_table(
            ["rate", "failures", "retransmits", "dup_drops",
             "dropped", "duped", "delayed"],
            rows,
            title=(
                f"fault sweep: {args.iters} programs x "
                f"{len(protocols)} protocols ({', '.join(protocols)}), "
                f"{args.procs} procs"
            ),
        )
    )
    if args.apps:
        bad += _faults_app_campaign(args, base, say, journal)
    if bad:
        print(f"faults: {bad} failure(s); rerun `repro fuzz --faults ...` "
              "at the failing rate to diagnose and minimize")
        return 1
    print("faults: all runs recovered and agreed with the oracle")
    return 0


def _faults_app_campaign(args, base: FaultPlan, say, journal=None) -> int:
    """The ``faults --apps`` leg: each named app under each swept plan,
    across every protocol, with the invariant checker on."""
    from repro.harness.spec import ExperimentSpec
    from repro.scenarios.runner import RECOVERY_COUNTERS

    completed = journal.completed() if journal is not None else {}
    rows = []
    bad = 0
    for rate in args.rates:
        plan = FaultPlan.from_dict(
            {
                **base.to_dict(),
                "seed": args.seed,
                "drop": rate,
                "dup": rate,
                "delay": min(1.0, 2 * rate),
            }
        )
        for app in args.apps:
            cell = f"apps-{rate:g}-{app}"
            entry = completed.get(cell)
            if entry is not None and entry["op"] == "done":
                say(f"rate {rate:g}: {app}: journaled, skipping")
                bad += entry["data"]["n_fail"]
                rows.append(entry["data"]["row"])
                continue
            say(f"rate {rate:g}: {app} under [{plan.label()}] ...")
            if journal is not None:
                journal.start(cell)
            totals = dict.fromkeys(RECOVERY_COUNTERS, 0)
            n_fail = 0
            for proto in args.protocols:
                spec = ExperimentSpec(
                    app=app, protocol=proto, n_procs=args.procs,
                    small=True, faults=plan, check_invariants=True,
                )
                try:
                    r = spec.run()
                except Exception as e:
                    n_fail += 1
                    say(f"  FAIL {spec.label()}: {type(e).__name__}: {e}")
                    continue
                for name in RECOVERY_COUNTERS:
                    totals[name] += getattr(r.traffic, name, 0)
            bad += n_fail
            row = [f"{rate:g}", app, n_fail,
                   *[totals[name] for name in RECOVERY_COUNTERS]]
            if journal is not None:
                journal.done(cell, {"row": row, "n_fail": n_fail})
            rows.append(row)
    print(
        format_table(
            ["rate", "app", "failures", "retransmits", "dup_drops",
             "dropped", "duped", "delayed"],
            rows,
            title=(
                f"service-app fault campaign: "
                f"{len(args.protocols)} protocols, {args.procs} procs, "
                f"invariant checker on"
            ),
        )
    )
    return bad


def _cmd_scenarios(args) -> int:
    from repro.scenarios import builtin_scenarios, load_scenario, run_scenario

    say = lambda s: print(s, file=sys.stderr)
    if args.action == "list":
        for name, path in sorted(builtin_scenarios().items()):
            sc = load_scenario(name)
            faults = sc.faults.label() if sc.faults else "none"
            print(f"{name:26s} app={sc.app:10s} procs={sc.n_procs:<3d} "
                  f"faults[{faults}]")
            if args.verbose:
                print(f"    {sc.description}")
        return 0
    store = None if args.no_store else ResultStore(args.store_dir)
    bad = 0
    for name in args.names:
        sc = load_scenario(name)
        say(f"scenario {sc.name}: {sc.description}")
        journal = None
        if store is not None:
            journal = _campaign_journal(
                store.root, "scenario",
                {"scenario": sc.name, "protocols": list(args.protocols),
                 "procs": args.procs,
                 "check_invariants": bool(args.check_invariants)},
                args.resume,
            )
        summary = run_scenario(
            sc,
            protocols=args.protocols or None,
            n_procs=args.procs,
            check_invariants=args.check_invariants,
            store=store,
            progress=say,
            journal=journal,
        )
        rows = []
        base_time = None
        for proto in summary["protocols"]:
            row = summary["results"][proto]
            if not row["ok"]:
                bad += 1
                rows.append([proto, "FAIL", row["kind"], row["message"][:40],
                             "", "", ""])
                continue
            if base_time is None:
                base_time = row["exec_time"]
            rows.append([
                proto,
                row["exec_time"],
                f"{row['exec_time'] / base_time:.3f}",
                row["messages"],
                row["retransmits"],
                row["drops_injected"],
                row["delays_injected"],
            ])
        print(format_table(
            ["protocol", "cycles", "norm", "messages",
             "retransmits", "dropped", "delayed"],
            rows,
            title=f"scenario {sc.name} ({sc.app}, "
                  f"{summary['n_procs']} procs)",
        ))
        if store is not None:
            say(f"summary artifact: "
                f"{store.artifact_path_for('scenario-' + sc.name)}")
    if bad:
        print(f"scenarios: {bad} cell(s) failed (failure records persisted)")
        return 1
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)

    sub.add_parser("list", help="list applications and protocols")

    check_help = (
        "run the coherence-invariant checker during every simulation "
        "(pure observation: cycle counts and fingerprints are unchanged; "
        "cached results are served without re-checking)"
    )
    engine_help = (
        "execution engine: 'replay' (default) records each app's "
        "reference streams once and drives protocols from packed "
        "arrays; 'generator' resumes app generators per reference "
        "(kept for differential testing) — results are bit-identical"
    )

    shards_help = (
        "shard count for the windowed PDES scheduler (default 1 = "
        "serial); sharded runs are bit-identical to serial ones, so the "
        "choice — like --engine — never enters result fingerprints; "
        "clamped to the machine's node count"
    )

    def add_engine(p) -> None:
        p.add_argument(
            "--engine", default=None, choices=ENGINES, help=engine_help
        )
        p.add_argument("--shards", type=int, default=None, help=shards_help)

    p_run = sub.add_parser("run", help="run one app under one protocol")
    p_run.add_argument("app", choices=sorted(APPS))
    p_run.add_argument("--protocol", default="lrc", choices=sorted(REGISTRY))
    p_run.add_argument("--procs", type=int, default=16)
    p_run.add_argument("--small", action="store_true")
    p_run.add_argument("--check-invariants", action="store_true", help=check_help)
    p_run.add_argument(
        "--faults", default=None, metavar="PLAN",
        help="attach a fault plan (FaultPlan mini-language, e.g. "
        "drop=0.02,seed=7); worker_kill=E:S;... schedules harness-level "
        "chaos — SIGKILL shard S's worker at epoch E (process backend) — "
        "without perturbing the simulated network",
    )
    add_engine(p_run)

    p_cmp = sub.add_parser("compare", help="run one app under all protocols")
    p_cmp.add_argument("app", choices=sorted(APPS))
    p_cmp.add_argument("--procs", type=int, default=16)
    p_cmp.add_argument("--small", action="store_true")
    p_cmp.add_argument("--check-invariants", action="store_true", help=check_help)
    add_engine(p_cmp)

    p_fig = sub.add_parser(
        "figures",
        help="regenerate paper tables/figures (parallel, with a result store)",
    )
    p_fig.add_argument(
        "--only", nargs="*", choices=ARTIFACT_KEYS, metavar="ARTIFACT",
        help=f"subset of artifacts ({', '.join(ARTIFACT_KEYS)})",
    )
    p_fig.add_argument("--procs", type=int, default=16)
    p_fig.add_argument("--small", action="store_true")
    p_fig.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the simulation fan-out (default 1)",
    )
    p_fig.add_argument(
        "--store-dir", default=DEFAULT_ROOT,
        help=f"result-store directory (default {DEFAULT_ROOT})",
    )
    p_fig.add_argument(
        "--no-store", action="store_true",
        help="do not read or write the on-disk result store",
    )
    p_fig.add_argument(
        "--timeout", type=float, default=None,
        help="per-experiment timeout in seconds (one retry on expiry)",
    )
    p_fig.add_argument("--check-invariants", action="store_true", help=check_help)
    resume_help = (
        "continue an interrupted campaign from its write-ahead journal: "
        "cells with a journaled outcome are skipped (their data reused "
        "verbatim — artifacts come out bit-identical), cells that were "
        "in flight re-run; without this flag the journal is truncated "
        "and the campaign starts fresh"
    )
    p_fig.add_argument("--resume", action="store_true", help=resume_help)
    add_engine(p_fig)

    p_tr = sub.add_parser(
        "trace",
        help="run one simulation with event tracing + invariant checking; "
        "on a violation, print the event window around it",
    )
    p_tr.add_argument("app", choices=sorted(APPS))
    p_tr.add_argument("--protocol", default="lrc", choices=sorted(REGISTRY))
    p_tr.add_argument("--procs", type=int, default=4)
    p_tr.add_argument("--small", action="store_true")
    p_tr.add_argument(
        "--check-level", default="sync", choices=LEVELS,
        help="invariant checkpoint density (default sync)",
    )
    p_tr.add_argument(
        "--no-check", action="store_true",
        help="trace only, without the invariant checker",
    )
    p_tr.add_argument(
        "--window", type=int, default=25,
        help="events to print on each side of a violation (default 25)",
    )
    p_tr.add_argument(
        "--capacity", type=int, default=1 << 16,
        help="event ring-buffer size (default 65536)",
    )
    p_tr.add_argument(
        "--out", default=None, metavar="FILE",
        help="also export the buffered events as JSON Lines",
    )

    p_fz = sub.add_parser(
        "fuzz",
        help="randomized-program conformance fuzzing: generated DRF "
        "programs under every protocol, checked against a sequential "
        "oracle; failures are minimized to small reproducers",
    )
    p_fz.add_argument("--seed", type=int, default=0)
    p_fz.add_argument("--iters", type=int, default=50)
    p_fz.add_argument("--procs", type=int, default=8)
    p_fz.add_argument("--n-ops", type=int, default=120,
                      help="target ops per processor (default 120)")
    p_fz.add_argument(
        "--protocols", nargs="*", default=list(all_names()),
        choices=sorted(REGISTRY), metavar="PROTO",
    )
    from repro.conformance.generator import MODES as FUZZ_MODES

    p_fz.add_argument(
        "--mode", default="auto", choices=FUZZ_MODES,
        help="program-generator mode (default auto; 'service' favors "
        "pub/sub fan-out and zipf-skewed hot-lock episodes)",
    )
    p_fz.add_argument(
        "--minimize", action=argparse.BooleanOptionalAction, default=True,
        help="delta-debug failing programs to minimal reproducers",
    )
    p_fz.add_argument(
        "--jobs", type=int, default=1,
        help="verify iterations in parallel worker processes first; "
        "failures are re-diagnosed sequentially",
    )
    p_fz.add_argument(
        "--window", type=int, default=12,
        help="trace events to print around a violation (default 12)",
    )
    p_fz.add_argument(
        "--out", default=None, metavar="FILE",
        help="write failing programs + minimized reproducers as JSON",
    )
    p_fz.add_argument(
        "--replay", default=None, metavar="FILE",
        help="re-run the reproducers in a fuzz JSON report instead of fuzzing",
    )
    p_fz.add_argument(
        "--faults", default=None, metavar="PLAN",
        help="inject seeded message faults, e.g. "
        "drop=0.02,dup=0.02,delay=0.05 (keys are FaultPlan fields); "
        "the oracle comparison is unchanged — the reliable-delivery "
        "layer must recover transparently",
    )
    p_fz.add_argument(
        "--store-dir", default=DEFAULT_ROOT,
        help="directory holding the campaign journal "
        f"(default {DEFAULT_ROOT})",
    )
    p_fz.add_argument("--resume", action="store_true", help=resume_help)
    add_engine(p_fz)

    p_fl = sub.add_parser(
        "faults",
        help="fault-injection sweep: the conformance campaign at each "
        "fault rate, tabulating failures and recovery traffic",
    )
    p_fl.add_argument("--seed", type=int, default=0)
    p_fl.add_argument("--iters", type=int, default=10,
                      help="programs per rate (default 10)")
    p_fl.add_argument("--procs", type=int, default=8)
    p_fl.add_argument(
        "--protocols", nargs="*", default=list(all_names()),
        choices=sorted(REGISTRY), metavar="PROTO",
    )
    p_fl.add_argument(
        "--rates", nargs="*", type=float, default=[0.01, 0.02, 0.05],
        metavar="RATE",
        help="drop/dup rates to sweep; delay rate is 2x (default "
        "0.01 0.02 0.05)",
    )
    p_fl.add_argument(
        "--faults", default=None, metavar="PLAN",
        help="base plan the swept rates are applied on top of "
        "(e.g. burst_every=50000,burst_len=2000)",
    )
    p_fl.add_argument(
        "--jobs", type=int, default=1,
        help="verify iterations in parallel worker processes",
    )
    p_fl.add_argument(
        "--apps", nargs="*", default=[], choices=sorted(APPS), metavar="APP",
        help="also run these applications (small presets, invariant "
        "checker on) under each swept fault plan, e.g. the service "
        "workloads kvstore taskqueue pubsub",
    )
    p_fl.add_argument(
        "--store-dir", default=DEFAULT_ROOT,
        help="directory holding the campaign journal "
        f"(default {DEFAULT_ROOT})",
    )
    p_fl.add_argument("--resume", action="store_true", help=resume_help)
    add_engine(p_fl)

    p_sc = sub.add_parser(
        "scenarios",
        help="named scenario library: versioned JSON documents bundling "
        "an app, machine shape, and phase-scripted fault plan",
    )
    sc_sub = p_sc.add_subparsers(dest="action", required=True)
    p_sc_list = sc_sub.add_parser("list", help="list the builtin scenarios")
    p_sc_list.add_argument(
        "--verbose", "-v", action="store_true",
        help="also print each scenario's description",
    )
    p_sc_run = sc_sub.add_parser(
        "run", help="run scenarios across their protocol sweeps"
    )
    p_sc_run.add_argument(
        "names", nargs="+", metavar="NAME",
        help="builtin scenario names (or paths to scenario JSON files)",
    )
    p_sc_run.add_argument(
        "--protocols", nargs="*", default=[],
        choices=sorted(REGISTRY), metavar="PROTO",
        help="restrict the sweep (default: the scenario's own list, or "
        "every protocol)",
    )
    p_sc_run.add_argument(
        "--procs", type=int, default=None,
        help="override the scenario's machine size (CI smokes use this)",
    )
    p_sc_run.add_argument(
        "--check-invariants", action="store_true", help=check_help
    )
    p_sc_run.add_argument(
        "--store-dir", default=DEFAULT_ROOT,
        help=f"result-store directory (default {DEFAULT_ROOT})",
    )
    p_sc_run.add_argument(
        "--no-store", action="store_true",
        help="do not read or write the on-disk result store",
    )
    p_sc_run.add_argument("--resume", action="store_true", help=resume_help)
    add_engine(p_sc_run)

    args = ap.parse_args(argv)
    if getattr(args, "engine", None):
        # Via the environment so parallel workers inherit the choice.
        os.environ[ENV_ENGINE] = args.engine
    if getattr(args, "shards", None):
        os.environ[ENV_SHARDS] = str(args.shards)
    if args.cmd == "list":
        return _cmd_list(args)
    if args.cmd == "run":
        return _cmd_run(args)
    if args.cmd == "figures":
        return _cmd_figures(args)
    if args.cmd == "trace":
        return _cmd_trace(args)
    if args.cmd == "fuzz":
        return _cmd_fuzz(args)
    if args.cmd == "faults":
        return _cmd_faults(args)
    if args.cmd == "scenarios":
        return _cmd_scenarios(args)
    return _cmd_compare(args)


if __name__ == "__main__":
    sys.exit(main())
