"""Command-line interface: ``python -m repro``.

    python -m repro list
    python -m repro run gauss --protocol lrc --procs 16 --small
    python -m repro compare mp3d --procs 16
    python -m repro figures --jobs 4 --procs 16 --small
    python -m repro figures --only t3 f4 --jobs 4
    python -m repro trace locusroute --protocol sc --procs 4 --small
    python -m repro fuzz --seed 0 --iters 50 --procs 8

``figures`` regenerates the paper's tables and figures, fanning the
underlying simulations out over ``--jobs`` worker processes and caching
every result in an on-disk store (``.repro-results/`` by default), so a
repeated invocation renders from disk without simulating anything.

``trace`` runs one simulation with the protocol event tracer and the
coherence-invariant checker enabled; on a violation it prints the event
window around the failure.  ``run``/``compare``/``figures`` accept
``--check-invariants`` (or ``REPRO_CHECK_INVARIANTS=1``) to validate
every simulation they perform — checking is pure observation, so cycle
counts and result-store fingerprints are unchanged.
"""

from __future__ import annotations

import argparse
import logging
import sys
import time

from repro.apps import APPS
from repro.harness import run_experiment
from repro.harness.runner import ExperimentError
from repro.harness.experiments import (
    ARTIFACT_KEYS,
    all_artifact_specs,
    figure4_normalized_time,
    figure5_breakdown,
    figure6_lazier,
    figure7_lazier_breakdown,
    figure8_future,
    figure9_future_breakdown,
    prefetch,
    sensitivity_sweep,
    table1,
    table2_miss_classification,
    table3_miss_rates,
)
from repro.harness.presets import APP_PRESETS, APP_PRESETS_SMALL
from repro.protocols import PROTOCOLS
from repro.results.store import DEFAULT_ROOT, ResultStore
from repro.stats.report import format_table
from repro.trace import LEVELS, Tracer


def _cmd_list(_args) -> int:
    print("applications:")
    for name in sorted(APPS):
        print(f"  {name:12s} presets: {APP_PRESETS[name]}")
    print("protocols:", ", ".join(sorted(PROTOCOLS)))
    return 0


def _cmd_run(args) -> int:
    r = run_experiment(
        args.app,
        args.protocol,
        n_procs=args.procs,
        small=args.small,
        check_invariants=args.check_invariants,
    )
    s = r.summary()
    rows = [[k, v if not isinstance(v, float) else f"{v:.4f}"] for k, v in s.items()]
    print(format_table(["metric", "value"], rows,
                       title=f"{args.app} / {args.protocol} / {args.procs} procs"))
    return 0


def _cmd_compare(args) -> int:
    rows = []
    base = None
    for proto in ("sc", "erc", "lrc", "lrc-ext"):
        r = run_experiment(
            args.app,
            proto,
            n_procs=args.procs,
            small=args.small,
            check_invariants=args.check_invariants,
        )
        if base is None:
            base = r.exec_time
        b = r.breakdown()
        rows.append(
            [
                proto,
                r.exec_time,
                f"{r.exec_time / base:.3f}",
                f"{r.miss_rate * 100:.2f}%",
                b["read"],
                b["write"],
                b["sync"],
            ]
        )
    print(
        format_table(
            ["protocol", "cycles", "norm", "miss", "read", "write", "sync"],
            rows,
            title=f"{args.app}, {args.procs} processors",
        )
    )
    return 0


def _cmd_figures(args) -> int:
    logging.basicConfig(
        level=logging.INFO, format="%(message)s", stream=sys.stderr
    )
    n, small = args.procs, args.small
    wanted = args.only or list(ARTIFACT_KEYS)
    store = None if args.no_store else ResultStore(args.store_dir)

    t0 = time.monotonic()
    specs = all_artifact_specs(wanted, n_procs=n, small=small)
    if args.check_invariants:
        specs = [s.with_(check_invariants=True) for s in specs]
    try:
        prefetch(specs, jobs=args.jobs, store=store, timeout=args.timeout)
    except ExperimentError as e:
        print(f"repro figures: error: {e}", file=sys.stderr)
        return 1
    sim_elapsed = time.monotonic() - t0

    renderers = {
        "t1": lambda: table1(),
        "t2": lambda: table2_miss_classification(n, small)[1],
        "t3": lambda: table3_miss_rates(n, small)[1],
        "f4": lambda: figure4_normalized_time(n, small)[1],
        "f5": lambda: figure5_breakdown(n, small)[1],
        "f6": lambda: figure6_lazier(n, small)[1],
        "f7": lambda: figure7_lazier_breakdown(n, small)[1],
        "f8": lambda: figure8_future(n, small)[1],
        "f9": lambda: figure9_future_breakdown(n, small)[1],
        "sweep": lambda: sensitivity_sweep(
            app="mp3d", n_procs=min(n, 16), small=small
        )[1],
    }
    for key in wanted:
        print(renderers[key]())
        print("=" * 72)
    print(
        f"{len(specs)} experiments ready in {sim_elapsed:.1f}s "
        f"({args.jobs} jobs"
        + (f", store: {store.root})" if store else ", store off)"),
        file=sys.stderr,
    )
    return 0


def _cmd_trace(args) -> int:
    from collections import Counter

    from repro.core.machine import Machine
    from repro.harness.presets import bench_config
    from repro.trace import InvariantViolation

    cfg = bench_config(n_procs=args.procs)
    machine = Machine(
        cfg,
        protocol=args.protocol,
        trace=True,
        check_invariants=not args.no_check,
        trace_capacity=args.capacity,
        check_level=args.check_level,
    )
    params = (APP_PRESETS_SMALL if args.small else APP_PRESETS)[args.app]
    app = APPS[args.app](machine, **params)
    tracer = machine.tracer
    try:
        result = machine.run([app.program(p) for p in range(cfg.n_procs)])
    except InvariantViolation as e:
        print(f"INVARIANT VIOLATION: {e}", file=sys.stderr)
        if e.seq is not None:
            print(
                f"\nevent window (+/- {args.window} around seq {e.seq}):",
                file=sys.stderr,
            )
            for ev in tracer.window(e.seq, before=args.window, after=args.window):
                print(Tracer.format_event(ev), file=sys.stderr)
        if args.out:
            with open(args.out, "w") as f:
                n = tracer.to_jsonl(f)
            print(f"\n{n} buffered events written to {args.out}", file=sys.stderr)
        return 1
    counts = Counter(ev[2] for ev in tracer.buf)
    rows = [[k, counts[k]] for k in sorted(counts)]
    rows.append(["(buffered/emitted)", f"{len(tracer)}/{tracer.emitted}"])
    print(
        format_table(
            ["event kind", "count"],
            rows,
            title=(
                f"{args.app} / {args.protocol} / {args.procs} procs: "
                f"{result.exec_time} cycles, invariants "
                + ("not checked" if args.no_check else "ok")
            ),
        )
    )
    if args.out:
        with open(args.out, "w") as f:
            n = tracer.to_jsonl(f)
        print(f"{n} events written to {args.out}")
    return 0


def _cmd_fuzz(args) -> int:
    from repro.conformance import fuzz_run, write_reproducers
    from repro.conformance.fuzz import replay_reproducer

    say = lambda s: print(s, file=sys.stderr)
    if args.replay:
        return replay_reproducer(args.replay, window=args.window, log=say)
    protocols = tuple(args.protocols)
    summary = fuzz_run(
        seed=args.seed,
        iters=args.iters,
        n_procs=args.procs,
        n_ops=args.n_ops,
        protocols=protocols,
        do_minimize=args.minimize,
        jobs=args.jobs,
        window=args.window,
        log=say,
    )
    failures = summary["failures"]
    if not failures:
        print(
            f"fuzz: {args.iters} programs x {len(protocols)} protocols "
            f"({', '.join(protocols)}), {args.procs} procs: all clean"
        )
        return 0
    if args.out:
        write_reproducers(summary, args.out)
        say(f"reproducers written to {args.out}")
    for f in failures:
        print(f"FAIL seed={f['seed']} {f['protocol']} {f['reason']}: {f['message']}")
        for line in f.get("trace_window") or []:
            print(f"    {line}")
    print(f"fuzz: {len(failures)} failure(s) in {args.iters} iterations")
    return 1


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)

    sub.add_parser("list", help="list applications and protocols")

    check_help = (
        "run the coherence-invariant checker during every simulation "
        "(pure observation: cycle counts and fingerprints are unchanged; "
        "cached results are served without re-checking)"
    )

    p_run = sub.add_parser("run", help="run one app under one protocol")
    p_run.add_argument("app", choices=sorted(APPS))
    p_run.add_argument("--protocol", default="lrc", choices=sorted(PROTOCOLS))
    p_run.add_argument("--procs", type=int, default=16)
    p_run.add_argument("--small", action="store_true")
    p_run.add_argument("--check-invariants", action="store_true", help=check_help)

    p_cmp = sub.add_parser("compare", help="run one app under all protocols")
    p_cmp.add_argument("app", choices=sorted(APPS))
    p_cmp.add_argument("--procs", type=int, default=16)
    p_cmp.add_argument("--small", action="store_true")
    p_cmp.add_argument("--check-invariants", action="store_true", help=check_help)

    p_fig = sub.add_parser(
        "figures",
        help="regenerate paper tables/figures (parallel, with a result store)",
    )
    p_fig.add_argument(
        "--only", nargs="*", choices=ARTIFACT_KEYS, metavar="ARTIFACT",
        help=f"subset of artifacts ({', '.join(ARTIFACT_KEYS)})",
    )
    p_fig.add_argument("--procs", type=int, default=16)
    p_fig.add_argument("--small", action="store_true")
    p_fig.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the simulation fan-out (default 1)",
    )
    p_fig.add_argument(
        "--store-dir", default=DEFAULT_ROOT,
        help=f"result-store directory (default {DEFAULT_ROOT})",
    )
    p_fig.add_argument(
        "--no-store", action="store_true",
        help="do not read or write the on-disk result store",
    )
    p_fig.add_argument(
        "--timeout", type=float, default=None,
        help="per-experiment timeout in seconds (one retry on expiry)",
    )
    p_fig.add_argument("--check-invariants", action="store_true", help=check_help)

    p_tr = sub.add_parser(
        "trace",
        help="run one simulation with event tracing + invariant checking; "
        "on a violation, print the event window around it",
    )
    p_tr.add_argument("app", choices=sorted(APPS))
    p_tr.add_argument("--protocol", default="lrc", choices=sorted(PROTOCOLS))
    p_tr.add_argument("--procs", type=int, default=4)
    p_tr.add_argument("--small", action="store_true")
    p_tr.add_argument(
        "--check-level", default="sync", choices=LEVELS,
        help="invariant checkpoint density (default sync)",
    )
    p_tr.add_argument(
        "--no-check", action="store_true",
        help="trace only, without the invariant checker",
    )
    p_tr.add_argument(
        "--window", type=int, default=25,
        help="events to print on each side of a violation (default 25)",
    )
    p_tr.add_argument(
        "--capacity", type=int, default=1 << 16,
        help="event ring-buffer size (default 65536)",
    )
    p_tr.add_argument(
        "--out", default=None, metavar="FILE",
        help="also export the buffered events as JSON Lines",
    )

    p_fz = sub.add_parser(
        "fuzz",
        help="randomized-program conformance fuzzing: generated DRF "
        "programs under every protocol, checked against a sequential "
        "oracle; failures are minimized to small reproducers",
    )
    p_fz.add_argument("--seed", type=int, default=0)
    p_fz.add_argument("--iters", type=int, default=50)
    p_fz.add_argument("--procs", type=int, default=8)
    p_fz.add_argument("--n-ops", type=int, default=120,
                      help="target ops per processor (default 120)")
    p_fz.add_argument(
        "--protocols", nargs="*", default=["sc", "erc", "lrc", "lrc-ext"],
        choices=sorted(PROTOCOLS), metavar="PROTO",
    )
    p_fz.add_argument(
        "--minimize", action=argparse.BooleanOptionalAction, default=True,
        help="delta-debug failing programs to minimal reproducers",
    )
    p_fz.add_argument(
        "--jobs", type=int, default=1,
        help="verify iterations in parallel worker processes first; "
        "failures are re-diagnosed sequentially",
    )
    p_fz.add_argument(
        "--window", type=int, default=12,
        help="trace events to print around a violation (default 12)",
    )
    p_fz.add_argument(
        "--out", default=None, metavar="FILE",
        help="write failing programs + minimized reproducers as JSON",
    )
    p_fz.add_argument(
        "--replay", default=None, metavar="FILE",
        help="re-run the reproducers in a fuzz JSON report instead of fuzzing",
    )

    args = ap.parse_args(argv)
    if args.cmd == "list":
        return _cmd_list(args)
    if args.cmd == "run":
        return _cmd_run(args)
    if args.cmd == "figures":
        return _cmd_figures(args)
    if args.cmd == "trace":
        return _cmd_trace(args)
    if args.cmd == "fuzz":
        return _cmd_fuzz(args)
    return _cmd_compare(args)


if __name__ == "__main__":
    sys.exit(main())
