"""Command-line interface: ``python -m repro``.

    python -m repro list
    python -m repro run gauss --protocol lrc --procs 16 --small
    python -m repro compare mp3d --procs 16
    python -m repro figures --jobs 4 --procs 16 --small
    python -m repro figures --only t3 f4 --jobs 4

``figures`` regenerates the paper's tables and figures, fanning the
underlying simulations out over ``--jobs`` worker processes and caching
every result in an on-disk store (``.repro-results/`` by default), so a
repeated invocation renders from disk without simulating anything.
"""

from __future__ import annotations

import argparse
import logging
import sys
import time

from repro.apps import APPS
from repro.harness import run_experiment
from repro.harness.runner import ExperimentError
from repro.harness.experiments import (
    ARTIFACT_KEYS,
    all_artifact_specs,
    figure4_normalized_time,
    figure5_breakdown,
    figure6_lazier,
    figure7_lazier_breakdown,
    figure8_future,
    figure9_future_breakdown,
    prefetch,
    sensitivity_sweep,
    table1,
    table2_miss_classification,
    table3_miss_rates,
)
from repro.harness.presets import APP_PRESETS, APP_PRESETS_SMALL
from repro.protocols import PROTOCOLS
from repro.results.store import DEFAULT_ROOT, ResultStore
from repro.stats.report import format_table


def _cmd_list(_args) -> int:
    print("applications:")
    for name in sorted(APPS):
        print(f"  {name:12s} presets: {APP_PRESETS[name]}")
    print("protocols:", ", ".join(sorted(PROTOCOLS)))
    return 0


def _cmd_run(args) -> int:
    r = run_experiment(
        args.app, args.protocol, n_procs=args.procs, small=args.small
    )
    s = r.summary()
    rows = [[k, v if not isinstance(v, float) else f"{v:.4f}"] for k, v in s.items()]
    print(format_table(["metric", "value"], rows,
                       title=f"{args.app} / {args.protocol} / {args.procs} procs"))
    return 0


def _cmd_compare(args) -> int:
    rows = []
    base = None
    for proto in ("sc", "erc", "lrc", "lrc-ext"):
        r = run_experiment(args.app, proto, n_procs=args.procs, small=args.small)
        if base is None:
            base = r.exec_time
        b = r.breakdown()
        rows.append(
            [
                proto,
                r.exec_time,
                f"{r.exec_time / base:.3f}",
                f"{r.miss_rate * 100:.2f}%",
                b["read"],
                b["write"],
                b["sync"],
            ]
        )
    print(
        format_table(
            ["protocol", "cycles", "norm", "miss", "read", "write", "sync"],
            rows,
            title=f"{args.app}, {args.procs} processors",
        )
    )
    return 0


def _cmd_figures(args) -> int:
    logging.basicConfig(
        level=logging.INFO, format="%(message)s", stream=sys.stderr
    )
    n, small = args.procs, args.small
    wanted = args.only or list(ARTIFACT_KEYS)
    store = None if args.no_store else ResultStore(args.store_dir)

    t0 = time.monotonic()
    specs = all_artifact_specs(wanted, n_procs=n, small=small)
    try:
        prefetch(specs, jobs=args.jobs, store=store, timeout=args.timeout)
    except ExperimentError as e:
        print(f"repro figures: error: {e}", file=sys.stderr)
        return 1
    sim_elapsed = time.monotonic() - t0

    renderers = {
        "t1": lambda: table1(),
        "t2": lambda: table2_miss_classification(n, small)[1],
        "t3": lambda: table3_miss_rates(n, small)[1],
        "f4": lambda: figure4_normalized_time(n, small)[1],
        "f5": lambda: figure5_breakdown(n, small)[1],
        "f6": lambda: figure6_lazier(n, small)[1],
        "f7": lambda: figure7_lazier_breakdown(n, small)[1],
        "f8": lambda: figure8_future(n, small)[1],
        "f9": lambda: figure9_future_breakdown(n, small)[1],
        "sweep": lambda: sensitivity_sweep(
            app="mp3d", n_procs=min(n, 16), small=small
        )[1],
    }
    for key in wanted:
        print(renderers[key]())
        print("=" * 72)
    print(
        f"{len(specs)} experiments ready in {sim_elapsed:.1f}s "
        f"({args.jobs} jobs"
        + (f", store: {store.root})" if store else ", store off)"),
        file=sys.stderr,
    )
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)

    sub.add_parser("list", help="list applications and protocols")

    p_run = sub.add_parser("run", help="run one app under one protocol")
    p_run.add_argument("app", choices=sorted(APPS))
    p_run.add_argument("--protocol", default="lrc", choices=sorted(PROTOCOLS))
    p_run.add_argument("--procs", type=int, default=16)
    p_run.add_argument("--small", action="store_true")

    p_cmp = sub.add_parser("compare", help="run one app under all protocols")
    p_cmp.add_argument("app", choices=sorted(APPS))
    p_cmp.add_argument("--procs", type=int, default=16)
    p_cmp.add_argument("--small", action="store_true")

    p_fig = sub.add_parser(
        "figures",
        help="regenerate paper tables/figures (parallel, with a result store)",
    )
    p_fig.add_argument(
        "--only", nargs="*", choices=ARTIFACT_KEYS, metavar="ARTIFACT",
        help=f"subset of artifacts ({', '.join(ARTIFACT_KEYS)})",
    )
    p_fig.add_argument("--procs", type=int, default=16)
    p_fig.add_argument("--small", action="store_true")
    p_fig.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the simulation fan-out (default 1)",
    )
    p_fig.add_argument(
        "--store-dir", default=DEFAULT_ROOT,
        help=f"result-store directory (default {DEFAULT_ROOT})",
    )
    p_fig.add_argument(
        "--no-store", action="store_true",
        help="do not read or write the on-disk result store",
    )
    p_fig.add_argument(
        "--timeout", type=float, default=None,
        help="per-experiment timeout in seconds (one retry on expiry)",
    )

    args = ap.parse_args(argv)
    if args.cmd == "list":
        return _cmd_list(args)
    if args.cmd == "run":
        return _cmd_run(args)
    if args.cmd == "figures":
        return _cmd_figures(args)
    return _cmd_compare(args)


if __name__ == "__main__":
    sys.exit(main())
