"""System configuration for the simulated multiprocessor.

The defaults reproduce Table 1 of the paper:

=======================  =============================
Cache line size          128 bytes
Cache size               128 Kbytes direct-mapped
Memory setup time        20 cycles
Memory bandwidth         2 bytes/cycle
Bus bandwidth            2 bytes/cycle
Network bandwidth        2 bytes/cycle (bidirectional)
Switch node latency      2 cycles
Wire latency             1 cycle
Write notice processing  4 cycles
LRC directory access     25 cycles
ERC directory access     15 cycles
=======================  =============================

Three presets are provided:

* :meth:`SystemConfig.paper` — the exact Table 1 machine (64 processors,
  128 KB caches).
* :meth:`SystemConfig.scaled` — same relative geometry but with smaller
  caches, matching the paper's own methodology of shrinking caches along
  with the (simulation-constrained) input sizes so that capacity and
  conflict misses are still exercised.
* :meth:`SystemConfig.future` — the Section 4.3 "future machine": 40-cycle
  memory startup, 4 bytes/cycle bandwidth, 256-byte cache lines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace


def _mesh_dims(n: int) -> tuple:
    """Closest-to-square factorization of ``n`` for the 2-D mesh."""
    best = (1, n)
    for a in range(1, int(math.isqrt(n)) + 1):
        if n % a == 0:
            best = (a, n // a)
    return best


@dataclass(frozen=True)
class SystemConfig:
    """Immutable description of the simulated machine.

    All times are in processor cycles, all sizes in bytes, all bandwidths
    in bytes/cycle.  Instances are hashable so they can key result caches
    in the experiment harness.
    """

    # -- topology -----------------------------------------------------------
    n_procs: int = 64

    # -- caches (Table 1) ----------------------------------------------------
    line_size: int = 128
    cache_size: int = 128 * 1024

    # -- memory (Table 1) ----------------------------------------------------
    mem_setup: int = 20
    mem_bw: float = 2.0

    # -- interconnect (Table 1) ----------------------------------------------
    bus_bw: float = 2.0
    net_bw: float = 2.0
    switch_latency: int = 2
    wire_latency: int = 1

    # -- protocol processor costs (Table 1) -----------------------------------
    notice_cost: int = 4       # processing one write notice at a sharer
    lrc_dir_cost: int = 25     # directory access, lazy protocols
    erc_dir_cost: int = 15     # directory access, eager / SC protocols
    tardis_lease: int = 10     # read-lease length (logical ts) for tardis

    # -- buffering (Section 3 / Section 2) ------------------------------------
    wb_entries: int = 4        # CPU write buffer (relaxed protocols)
    cbuf_entries: int = 16     # coalescing write-through buffer (lazy protocols)

    # -- layout ---------------------------------------------------------------
    page_size: int = 4096
    word_size: int = 8

    # -- simulation knobs (not architectural) ---------------------------------
    quantum: int = 200         # max cycles a CPU advances before rescheduling
    control_occupancy: int = 2  # NIC occupancy of a header-only message
    lock_mgr_cost: int = 4     # lock/barrier manager processing per message
    seed: int = 12345

    def __post_init__(self) -> None:
        if self.n_procs < 1:
            raise ValueError("n_procs must be >= 1")
        if self.line_size & (self.line_size - 1):
            raise ValueError("line_size must be a power of two")
        if self.cache_size % self.line_size:
            raise ValueError("cache_size must be a multiple of line_size")
        if self.page_size % self.line_size:
            raise ValueError("page_size must be a multiple of line_size")
        if self.wb_entries < 1 or self.cbuf_entries < 1:
            raise ValueError("buffer sizes must be >= 1")

    # -- derived geometry -----------------------------------------------------

    @property
    def n_sets(self) -> int:
        """Number of lines in the (direct-mapped) cache."""
        return self.cache_size // self.line_size

    @property
    def line_shift(self) -> int:
        return self.line_size.bit_length() - 1

    @property
    def mesh_dims(self) -> tuple:
        return _mesh_dims(self.n_procs)

    @property
    def hop_latency(self) -> int:
        """Per-hop latency: one switch traversal plus one wire."""
        return self.switch_latency + self.wire_latency

    def hops(self, src: int, dst: int) -> int:
        """Dimension-order (Manhattan) hop count between two mesh nodes."""
        if src == dst:
            return 0
        w, _h = self.mesh_dims
        sx, sy = src % w, src // w
        dx, dy = dst % w, dst // w
        return abs(sx - dx) + abs(sy - dy)

    # -- canonical latency components (used by fabric / memory / protocols) ---

    def transit(self, src: int, dst: int, size: int) -> int:
        """Network transit time for a message of ``size`` payload bytes.

        Header-only (control) messages cost ``hop_latency * hops``; data
        messages add the serialization time of the payload.  This matches
        the worked example in Section 3 of the paper: a 10-hop request is
        (2+1)*10 = 30 cycles, and the 128-byte data reply is
        (2+1)*10 + 128/2 = 94 cycles.
        """
        t = self.hop_latency * self.hops(src, dst)
        if size:
            t += int(math.ceil(size / self.net_bw))
        return t

    def nic_occupancy(self, size: int) -> int:
        """Cycles a message occupies a network interface endpoint."""
        if size:
            return int(math.ceil(size / self.net_bw))
        return self.control_occupancy

    def memory_time(self, size: int) -> int:
        """DRAM access time: setup plus transfer."""
        return self.mem_setup + int(math.ceil(size / self.mem_bw))

    def bus_time(self, size: int) -> int:
        """Local bus transfer time (e.g. filling a line into the cache)."""
        return int(math.ceil(size / self.bus_bw))

    def line_fill_cost(self, src: int, dst: int) -> int:
        """Uncontended end-to-end cost of a remote cache fill (Section 3).

        request transit + memory access + data reply transit + local bus
        fill.  With the Table 1 parameters and 10 hops this is exactly
        30 + 84 + 94 + 64 = 272 cycles.
        """
        return (
            self.transit(src, dst, 0)
            + self.memory_time(self.line_size)
            + self.transit(dst, src, self.line_size)
            + self.bus_time(self.line_size)
        )

    # -- presets ---------------------------------------------------------------

    @classmethod
    def paper(cls, **over) -> "SystemConfig":
        """The exact Table 1 machine (64 processors, 128 KB caches)."""
        return cls(**over)

    @classmethod
    def scaled(cls, n_procs: int = 64, cache_size: int = 8 * 1024, **over) -> "SystemConfig":
        """Scaled-down machine for tractable pure-Python simulation.

        The paper shrank caches relative to real machines because its
        inputs were shrunk for simulation speed; we shrink both one more
        step for the same reason.  All Table 1 latency/bandwidth
        parameters are preserved.
        """
        return cls(n_procs=n_procs, cache_size=cache_size, **over)

    @classmethod
    def future(cls, n_procs: int = 64, cache_size: int = 8 * 1024, **over) -> "SystemConfig":
        """The Section 4.3 future machine.

        High latency (40-cycle memory startup), high bandwidth
        (4 bytes/cycle on memory, bus and network), long 256-byte lines.
        """
        over.setdefault("mem_setup", 40)
        over.setdefault("mem_bw", 4.0)
        over.setdefault("bus_bw", 4.0)
        over.setdefault("net_bw", 4.0)
        over.setdefault("line_size", 256)
        return cls(n_procs=n_procs, cache_size=cache_size, **over)

    def with_(self, **over) -> "SystemConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **over)
