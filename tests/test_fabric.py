"""Tests for the mesh topology and the message fabric timing model."""

import pytest

from repro.config import SystemConfig
from repro.engine.simulator import Simulator
from repro.network.fabric import Fabric
from repro.network.messages import DATA_BEARING, MsgType
from repro.network.topology import Mesh


def make_fabric(n=16):
    sim = Simulator()
    return Fabric(SystemConfig(n_procs=n), sim), sim


class TestMesh:
    def test_dims_cover_nodes(self):
        m = Mesh(SystemConfig(n_procs=16))
        assert m.width * m.height == 16

    def test_coords_roundtrip(self):
        m = Mesh(SystemConfig(n_procs=16))
        for node in range(16):
            x, y = m.coords(node)
            assert m.node_at(x, y) == node

    def test_hop_counts_match_manhattan(self):
        m = Mesh(SystemConfig(n_procs=16))
        for a in range(16):
            for b in range(16):
                ax, ay = m.coords(a)
                bx, by = m.coords(b)
                assert m.hops(a, b) == abs(ax - bx) + abs(ay - by)

    def test_route_endpoints_and_length(self):
        m = Mesh(SystemConfig(n_procs=64))
        path = list(m.route(0, 63))
        assert path[0] == 0 and path[-1] == 63
        assert len(path) == m.hops(0, 63) + 1

    def test_route_is_dimension_order(self):
        m = Mesh(SystemConfig(n_procs=16))
        path = list(m.route(0, 15))
        # X varies first, then Y.
        ys = [m.coords(n)[1] for n in path]
        assert ys == sorted(ys)

    def test_average_distance(self):
        m = Mesh(SystemConfig(n_procs=4))  # 2x2
        # distances: each node has two at 1 hop and one at 2 hops.
        assert m.average_distance() == pytest.approx((2 * 1 + 2) / 3)

    def test_single_node_mesh(self):
        m = Mesh(SystemConfig(n_procs=1))
        assert m.average_distance() == 0.0
        assert m.hops(0, 0) == 0


class TestFabricTiming:
    def test_control_message_latency(self):
        f, sim = make_fabric(16)
        got = []
        f.send(0, 3, MsgType.ACK, 0, lambda t: got.append(t))
        sim.run()
        # 3 hops * (2+1) cycles, no serialization term.
        assert got == [9]

    def test_data_message_latency(self):
        f, sim = make_fabric(16)
        got = []
        f.send(0, 3, MsgType.DATA_REPLY, 0, lambda t: got.append(t))
        sim.run()
        # 3 hops * 3 + 128/2 serialization.
        assert got == [9 + 64]

    def test_local_delivery_is_free(self):
        f, sim = make_fabric(16)
        got = []
        f.send(5, 5, MsgType.DATA_REPLY, 42, lambda t: got.append(t))
        sim.run()
        assert got == [42]

    def test_control_and_data_use_separate_channels(self):
        f, sim = make_fabric(16)
        got = {}
        # A data message saturates the data channel...
        f.send(0, 3, MsgType.DATA_REPLY, 0, lambda t: got.setdefault("data", t))
        # ...but a control message sent right after is not delayed by it.
        f.send(0, 3, MsgType.ACK, 0, lambda t: got.setdefault("ctl", t))
        sim.run()
        assert got["ctl"] == 9

    def test_same_channel_contention_serializes(self):
        f, sim = make_fabric(16)
        got = []
        f.send(0, 3, MsgType.DATA_REPLY, 0, lambda t: got.append(("a", t)))
        f.send(0, 3, MsgType.DATA_REPLY, 0, lambda t: got.append(("b", t)))
        sim.run()
        (_, ta), (_, tb) = sorted(got, key=lambda x: x[1])
        # Second transfer starts after the first's 64-cycle occupancy.
        assert tb - ta == 64

    def test_size_override(self):
        f, sim = make_fabric(16)
        got = []
        f.send(0, 3, MsgType.WRITE_THROUGH, 0, lambda t: got.append(t), size=16)
        sim.run()
        # 3 hops * 3 + 16/2 serialization.
        assert got == [9 + 8]

    def test_fifo_between_same_pair_same_kind(self):
        f, sim = make_fabric(16)
        order = []
        for i in range(5):
            f.send(0, 7, MsgType.ACK, 0, lambda t, i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_traffic_accounting(self):
        f, sim = make_fabric(16)
        f.send(0, 3, MsgType.DATA_REPLY, 0, lambda t: None)
        f.send(0, 1, MsgType.ACK, 0, lambda t: None)
        sim.run()
        assert f.stats.total_messages == 2
        assert f.stats.bytes[MsgType.DATA_REPLY] == 128
        assert f.stats.bytes[MsgType.ACK] == 0
        assert f.stats.total_hops == 4

    def test_handler_args_passed(self):
        f, sim = make_fabric(4)
        got = []
        f.send(0, 1, MsgType.ACK, 0, lambda t, a, b: got.append((a, b)), "x", 7)
        sim.run()
        assert got == [("x", 7)]


class TestMessageTypes:
    def test_data_bearing_set(self):
        assert MsgType.DATA_REPLY in DATA_BEARING
        assert MsgType.OWNER_DATA in DATA_BEARING
        assert MsgType.WRITEBACK in DATA_BEARING
        assert MsgType.ACK not in DATA_BEARING
        assert MsgType.WRITE_NOTICE not in DATA_BEARING

    def test_payload_size(self):
        f, _ = make_fabric(4)
        assert f.payload_size(MsgType.DATA_REPLY) == 128
        assert f.payload_size(MsgType.READ_REQ) == 0
