"""Tests for the experiment harness (presets, caching, rendering)."""

import pytest

from repro.harness import (
    APP_PRESETS,
    bench_config,
    clear_cache,
    future_config,
    run_experiment,
    sensitivity_sweep,
    table1,
)
from repro.harness.presets import APP_LABELS, APP_ORDER, APP_PRESETS_SMALL
from repro.stats.report import breakdown_bar, format_table


class TestPresets:
    def test_presets_cover_all_apps(self):
        # APP_ORDER lists the paper's benchmark suite; the fuzz
        # conformance workload and the service apps (DESIGN.md §13)
        # have presets but no figure slot.
        from repro.apps import SERVICE_APPS

        assert (
            set(APP_PRESETS)
            == set(APP_PRESETS_SMALL)
            == set(APP_ORDER) | {"fuzz"} | set(SERVICE_APPS)
        )
        assert set(APP_LABELS) == set(APP_ORDER)

    def test_bench_config_defaults(self):
        c = bench_config()
        assert c.n_procs == 64
        assert c.cache_size == 8 * 1024
        assert c.line_size == 128  # Table 1 parameters preserved

    def test_future_config(self):
        c = future_config()
        assert c.mem_setup == 40
        assert c.line_size == 256
        assert c.net_bw == 4.0

    def test_config_overrides(self):
        c = bench_config(n_procs=8, line_size=64)
        assert c.n_procs == 8 and c.line_size == 64


class TestRunExperiment:
    def test_small_experiment_runs(self):
        r = run_experiment("mp3d", "lrc", n_procs=4, small=True)
        assert r.exec_time > 0
        assert r.protocol == "lrc"

    def test_cache_returns_same_object(self):
        a = run_experiment("mp3d", "lrc", n_procs=4, small=True)
        b = run_experiment("mp3d", "lrc", n_procs=4, small=True)
        assert a is b

    def test_cache_distinguishes_overrides(self):
        a = run_experiment("mp3d", "lrc", n_procs=4, small=True)
        b = run_experiment("mp3d", "lrc", n_procs=4, small=True, line_size=64)
        assert a is not b
        assert b.config.line_size == 64

    def test_clear_cache(self):
        a = run_experiment("mp3d", "lrc", n_procs=4, small=True)
        clear_cache()
        b = run_experiment("mp3d", "lrc", n_procs=4, small=True)
        assert a is not b
        # Determinism: same numbers even from distinct runs.
        assert a.exec_time == b.exec_time

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("mp3d", "lrc", kind="quantum", n_procs=4, small=True)

    def test_classifier_attached_when_requested(self):
        r = run_experiment("mp3d", "erc", n_procs=4, small=True, classify=True)
        assert r.classifier is not None
        assert r.classifier.total > 0


class TestRendering:
    def test_table1_contains_all_parameters(self):
        text = table1()
        for needle in ("128 bytes", "128 Kbytes", "20 cycles", "25 cycles", "272"):
            assert needle in text

    def test_format_table(self):
        out = format_table(["app", "ratio"], [["gauss", 0.918]], title="T")
        assert "gauss" in out and "0.918" in out and out.startswith("T")

    def test_breakdown_bar_width(self):
        bar = breakdown_bar({"cpu": 1, "read": 1, "write": 1, "sync": 1}, width=40)
        assert 36 <= len(bar) <= 44

    def test_sensitivity_sweep_small(self):
        rows, text = sensitivity_sweep(app="mp3d", n_procs=4, small=True)
        assert len(rows) == 5
        assert "baseline" in text
