"""Tests for the sharded PDES scheduler (DESIGN.md §14).

Covers the canonical event-queue tie-break both engines share, the
shard-map/backend plumbing, bit-identity of sharded runs against the
serial engine (both backends), the shard-aware stall watchdog, and the
256-node determinism regression.
"""

import json

import pytest

from repro.core.machine import Machine
from repro.engine.events import EventQueue
from repro.engine.shard import (
    ShardedSimulator,
    resolve_shard_backend,
    shard_map,
)
from repro.faults.plan import FaultPlan
from repro.faults.watchdog import SimulationStall, StallWatchdog
from repro.harness.presets import bench_config
from repro.harness.spec import ExperimentSpec, resolve_shards


def run_spec(app, protocol, n_procs, monkeypatch, shards=1, backend=None,
             check=False, faults=None):
    """One spec run → canonical JSON of everything measured."""
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    monkeypatch.delenv("REPRO_SHARD_BACKEND", raising=False)
    if shards > 1:
        monkeypatch.setenv("REPRO_SHARDS", str(shards))
        if backend:
            monkeypatch.setenv("REPRO_SHARD_BACKEND", backend)
    spec = ExperimentSpec(
        app=app, protocol=protocol, n_procs=n_procs, classify=True,
        small=True, check_invariants=check, faults=faults,
    )
    return json.dumps(spec.run().to_dict(), sort_keys=True)


class TestEventQueueTieBreak:
    """Satellite: the explicit same-timestamp tie-break (two lanes)."""

    def _drain(self, q):
        out = []
        while q:
            _, cb, args = q.pop()
            cb(*args)
        return out

    def test_local_fifo_at_equal_timestamps(self):
        q = EventQueue()
        order = []
        # Interleave pushes at two equal-time groups: each group must
        # fire in exactly its insertion order (explicit monotonic seq,
        # never callback comparison).
        for i in range(8):
            q.push(5, order.append, ("t5", i))
            q.push(9, order.append, ("t9", i))
        while q:
            _, cb, args = q.pop()
            cb(*args)
        assert order == [("t5", i) for i in range(8)] + \
                        [("t9", i) for i in range(8)]

    def test_local_lane_fires_before_remote_at_equal_time(self):
        q = EventQueue()
        order = []
        q.push_remote(7, 0, 0, order.append, ("remote",))
        q.push(7, order.append, "local")
        while q:
            _, cb, args = q.pop()
            cb(*args)
        assert order == ["local", "remote"]

    def test_remote_lane_orders_by_src_then_seq(self):
        q = EventQueue()
        order = []
        # Inserted in scrambled order; must fire sorted by (src, seq) —
        # the canonical key that makes remote order shard-independent.
        for src, seq in [(2, 0), (0, 1), (1, 5), (0, 0), (1, 2)]:
            q.push_remote(4, src, seq, order.append, ((src, seq),))
        while q:
            _, cb, args = q.pop()
            cb(*args)
        assert order == [(0, 0), (0, 1), (1, 2), (1, 5), (2, 0)]

    def test_remote_rejects_negative_time(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push_remote(-1, 0, 0, lambda: None, ())


class TestShardPlumbing:
    def test_shard_map_is_interleaved_and_balanced(self):
        m = shard_map(16, 4)
        assert set(m) == {0, 1, 2, 3}
        assert all(m.count(s) == 4 for s in range(4))
        # Round-robin: consecutive node ids land on distinct shards, so
        # the low-id sync-manager homes spread across every shard.
        assert m[:4] == [0, 1, 2, 3]
        m = shard_map(10, 3)  # uneven split still covers every shard
        assert set(m) == {0, 1, 2}
        assert max(m.count(s) for s in range(3)) - \
               min(m.count(s) for s in range(3)) <= 1

    def test_resolve_shards(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert resolve_shards() == 1
        assert resolve_shards(4) == 4
        monkeypatch.setenv("REPRO_SHARDS", "3")
        assert resolve_shards() == 3
        assert resolve_shards(2) == 2  # explicit argument wins
        with pytest.raises(ValueError):
            resolve_shards(0)

    def test_resolve_shard_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD_BACKEND", raising=False)
        assert resolve_shard_backend() == "inproc"
        assert resolve_shard_backend("process") == "process"
        monkeypatch.setenv("REPRO_SHARD_BACKEND", "process")
        assert resolve_shard_backend() == "process"
        with pytest.raises(ValueError, match="unknown shard backend"):
            resolve_shard_backend("threads")

    def test_sharded_simulator_validation(self):
        with pytest.raises(ValueError, match="shards"):
            ShardedSimulator(n_procs=4, shards=5, lookahead=3)
        with pytest.raises(ValueError, match="lookahead"):
            ShardedSimulator(n_procs=4, shards=2, lookahead=0)

    def test_value_model_requires_serial(self):
        with pytest.raises(ValueError, match="value_model"):
            Machine(bench_config(n_procs=4), shards=2, value_model=True)

    def test_process_backend_rejects_reliable_fabric(self):
        from repro.engine.shard_proc import UnsupportedBackend, run_forked

        m = Machine(bench_config(n_procs=4), shards=2,
                    shard_backend="process", faults=FaultPlan(drop=0.1))
        with pytest.raises(UnsupportedBackend, match="plain fabric") as ei:
            run_forked(m)
        assert ei.value.observer == "faults"
        assert isinstance(ei.value, ValueError)  # back-compat contract

    def test_process_backend_rejects_observers(self):
        from repro.engine.shard_proc import UnsupportedBackend, run_forked

        m = Machine(bench_config(n_procs=4), shards=2,
                    shard_backend="process", check_invariants=True)
        with pytest.raises(UnsupportedBackend, match="in-process backend") as ei:
            run_forked(m)
        assert ei.value.observer == "checker"

    def test_machine_falls_back_to_inproc_with_a_warning(self, caplog):
        """An unsupported observer demotes the backend loudly, never
        silently: the run completes on inproc and the warning names it."""
        import logging

        m = Machine(bench_config(n_procs=4), protocol="lrc", shards=2,
                    shard_backend="process", check_invariants=True)
        ref = Machine(bench_config(n_procs=4), protocol="lrc", shards=2,
                      check_invariants=True)
        from repro.apps import APPS, AppContext
        from repro.harness.presets import APP_PRESETS_SMALL

        def run(machine):
            app = APPS["kvstore"](AppContext.for_machine(machine),
                                  **APP_PRESETS_SMALL["kvstore"])
            return machine.run([app.program(p) for p in range(4)])

        with caplog.at_level(logging.WARNING, logger="repro.engine.shard_proc"):
            r = run(m)
        assert m.shard_backend == "inproc"
        assert any("checker" in rec.getMessage() for rec in caplog.records)
        assert json.dumps(r.to_dict(), sort_keys=True) == \
            json.dumps(run(ref).to_dict(), sort_keys=True)


class TestShardedBitIdentity:
    """Sharded runs reproduce the serial engine bit-for-bit.

    Tier-1 keeps a small slice; the full 3-app × 5-protocol ×
    {2,3,4}-shard × both-backend matrix runs in CI's sharded smoke and
    was validated when the scheduler landed.
    """

    @pytest.mark.parametrize("app,protocol", [
        ("gauss", "lrc"),
        ("kvstore", "sc"),
        ("mp3d", "tardis"),
    ])
    def test_inproc_two_shards(self, app, protocol, monkeypatch):
        serial = run_spec(app, protocol, 8, monkeypatch)
        sharded = run_spec(app, protocol, 8, monkeypatch, shards=2)
        assert sharded == serial

    def test_process_backend(self, monkeypatch):
        serial = run_spec("kvstore", "sc", 8, monkeypatch)
        forked = run_spec("kvstore", "sc", 8, monkeypatch, shards=2,
                          backend="process")
        assert forked == serial

    def test_faulty_run_is_identical_inproc(self, monkeypatch):
        faults = FaultPlan(drop=0.02, delay=0.05, delay_cycles=40, seed=7)
        serial = run_spec("kvstore", "lrc", 8, monkeypatch, faults=faults)
        sharded = run_spec("kvstore", "lrc", 8, monkeypatch, shards=2,
                           faults=faults)
        assert sharded == serial

    def test_shards_capped_at_n_procs(self, monkeypatch):
        # REPRO_SHARDS beyond the node count degrades gracefully.
        serial = run_spec("gauss", "sc", 4, monkeypatch)
        assert run_spec("gauss", "sc", 4, monkeypatch, shards=16) == serial


class TestShardWatchdog:
    """Satellite: shard-aware stall detection (barrier-hook mode)."""

    def _sharded_machine(self):
        return Machine(bench_config(n_procs=4), protocol="lrc", shards=2,
                       stall_cycles=0)

    def test_barrier_heavy_run_does_not_trip(self, monkeypatch):
        """A barrier-heavy workload spends many epochs with whole shards
        idle at the barrier; a modest budget must not misread that."""
        from repro.apps import APPS, AppContext

        results = []
        for shards, stall in ((1, 0), (2, 20_000)):
            spec = ExperimentSpec("gauss", "lrc", n_procs=8, small=True,
                                  classify=True)
            mc = spec.machine_config(shards=shards).with_(stall_cycles=stall)
            m = mc.build()
            app = APPS["gauss"](AppContext.for_machine(m),
                                **spec.app_params())
            r = m.run([app.program(p) for p in range(8)])
            results.append(json.dumps(r.to_dict(), sort_keys=True))
        assert results[0] == results[1]  # and the watchdog never fired

    def test_idle_shard_with_global_progress_does_not_trip(self):
        """Shard 1 stays empty for the whole run while shard 0 commits
        work: machine-wide progress must keep resetting the window."""
        m = self._sharded_machine()
        stop = 50_000

        def tick():
            m.stats.procs[0].reads += 1  # forward progress, shard 0 only
            if m.sim.now < stop:
                m.sim.at(m.sim.now + 100, tick)

        m.sim.on_node(0)
        m.sim.at(0, tick)
        StallWatchdog(m, 1_000).arm()
        m.sim.run()  # drains without a stall

    def test_genuine_livelock_still_raises(self):
        m = self._sharded_machine()

        def tick():
            m.sim.at(m.sim.now + 100, tick)  # busy, zero commits

        m.sim.on_node(0)
        m.sim.at(0, tick)
        StallWatchdog(m, 1_000).arm()
        with pytest.raises(SimulationStall) as ei:
            m.sim.run()
        assert ei.value.kind == "watchdog"
        assert ei.value.cycle >= 1_000


class TestDeterminism256:
    """Satellite: 256-node seed-determinism regression.

    shards=1 vs shards=4 must produce bit-identical RunResults with the
    invariant checker on, for every protocol."""

    @pytest.mark.parametrize(
        "protocol", ["sc", "erc", "lrc", "lrc-ext", "tardis"]
    )
    def test_kvstore_256(self, protocol, monkeypatch):
        serial = run_spec("kvstore", protocol, 256, monkeypatch, check=True)
        sharded = run_spec("kvstore", protocol, 256, monkeypatch, shards=4,
                           check=True)
        assert sharded == serial


class TestSelfHealing:
    """Tentpole (DESIGN.md §15): the process backend survives worker
    crashes — respawn from checkpoint + journal replay — bit-identically,
    and falls back to inproc when the respawn budget runs out."""

    def _run(self, monkeypatch, plan=None, backend=None, respawns=None,
             ckpt_epochs=None):
        from repro.harness.presets import APP_PRESETS_SMALL
        from repro.program.stream import recorded_stream

        monkeypatch.delenv("REPRO_SHARD_CKPT_EPOCHS", raising=False)
        monkeypatch.delenv("REPRO_SHARD_RESPAWNS", raising=False)
        if ckpt_epochs is not None:
            monkeypatch.setenv("REPRO_SHARD_CKPT_EPOCHS", str(ckpt_epochs))
        if respawns is not None:
            monkeypatch.setenv("REPRO_SHARD_RESPAWNS", str(respawns))
        cfg = bench_config(n_procs=8)
        m = Machine(cfg, protocol="sc", shards=2, stall_cycles=0,
                    faults=plan, **({"shard_backend": backend} if backend else {}))
        stream = recorded_stream("kvstore", APP_PRESETS_SMALL["kvstore"], cfg)
        return m, json.dumps(m.replay(stream).to_dict(), sort_keys=True)

    def test_worker_kill_plan_stays_inert(self):
        # Harness-level chaos must not pull in the reliable fabric (the
        # process backend requires the plain one) or change fingerprints.
        plan = FaultPlan(worker_kill=((3, 0),))
        assert not plan.active
        spec = ExperimentSpec(app="kvstore", protocol="sc", n_procs=8,
                              small=True, faults=plan)
        bare = ExperimentSpec(app="kvstore", protocol="sc", n_procs=8,
                              small=True)
        assert spec.fingerprint() == bare.fingerprint()

    def test_chaos_kill_recovers_bit_identical(self, monkeypatch):
        _, ref = self._run(monkeypatch)
        plan = FaultPlan(worker_kill=((3, 0), (6, 1)))
        m, out = self._run(monkeypatch, plan=plan, backend="process",
                           ckpt_epochs=4)
        assert out == ref
        rec = m.shard_recovery
        assert rec["kills"] == 2
        assert rec["respawns"] >= 2
        assert rec["fallback"] is False

    def test_exhausted_respawn_budget_falls_back(self, monkeypatch, caplog):
        import logging

        _, ref = self._run(monkeypatch)
        plan = FaultPlan(worker_kill=((3, 0),))
        with caplog.at_level(logging.WARNING, logger="repro.engine.shard_proc"):
            m, out = self._run(monkeypatch, plan=plan, backend="process",
                               respawns=0)
        assert out == ref
        assert m.shard_recovery["fallback"] is True
        assert any("falling back" in rec.getMessage()
                   for rec in caplog.records)
