"""Tests for the event queue, resources, and simulator loop."""

import pytest

from repro.engine import EventQueue, Resource, Simulator
from repro.engine.simulator import DeadlockError


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        out = []
        q.push(5, out.append, "b")
        q.push(1, out.append, "a")
        q.push(9, out.append, "c")
        while q:
            _, cb, args = q.pop()
            cb(*args)
        assert out == ["a", "b", "c"]

    def test_fifo_on_ties(self):
        q = EventQueue()
        order = []
        for i in range(10):
            q.push(7, order.append, i)
        while q:
            _, cb, args = q.pop()
            cb(*args)
        assert order == list(range(10))

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        q.push(0, lambda: None)
        assert q and len(q) == 1

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(42, lambda: None)
        assert q.peek_time() == 42

    def test_rejects_negative_time(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(-1, lambda: None)


class TestResource:
    def test_uncontended_reserve(self):
        r = Resource()
        assert r.reserve(10, 5) == 15
        assert r.free_at == 15

    def test_contended_reserve_queues(self):
        r = Resource()
        assert r.reserve(0, 10) == 10
        assert r.reserve(3, 10) == 20  # waits for the first

    def test_reserve_after_idle_gap(self):
        r = Resource()
        r.reserve(0, 5)
        assert r.reserve(100, 5) == 105

    def test_enqueue_returns_start(self):
        r = Resource()
        assert r.enqueue(0, 10) == 0
        assert r.enqueue(0, 10) == 10  # starts when the first ends

    def test_zero_duration(self):
        r = Resource()
        assert r.reserve(5, 0) == 5

    def test_busy_accounting(self):
        r = Resource()
        r.reserve(0, 5)
        r.reserve(0, 7)
        assert r.busy_cycles == 12
        assert r.requests == 2

    def test_reset(self):
        r = Resource()
        r.reserve(0, 5)
        r.reset()
        assert r.free_at == 0 and r.busy_cycles == 0


class TestSimulator:
    def test_runs_events_in_order(self):
        sim = Simulator()
        seen = []
        sim.at(10, lambda: seen.append(("a", sim.now)))
        sim.at(5, lambda: seen.append(("b", sim.now)))
        end = sim.run()
        assert seen == [("b", 5), ("a", 10)]
        assert end == 10

    def test_after_is_relative(self):
        sim = Simulator()
        times = []

        def first():
            sim.after(7, lambda: times.append(sim.now))

        sim.at(3, first)
        sim.run()
        assert times == [10]

    def test_rejects_past_events(self):
        sim = Simulator()
        sim.at(10, lambda: sim.at(5, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_cascading_events(self):
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100:
                sim.after(1, tick)

        sim.at(0, tick)
        assert sim.run() == 99
        assert count[0] == 100

    def test_max_cycles_guard(self):
        sim = Simulator(max_cycles=50)

        def forever():
            sim.after(10, forever)

        sim.at(0, forever)
        with pytest.raises(RuntimeError):
            sim.run()

    def test_event_count(self):
        sim = Simulator()
        for i in range(5):
            sim.at(i, lambda: None)
        sim.run()
        assert sim.events_processed == 5
