"""Tests for RunResult serialization and the on-disk result store."""

import json

import pytest

from repro.core.machine import RunResult
from repro.harness.experiments import clear_cache, run_spec
from repro.harness.spec import ExperimentSpec
from repro.results.store import SCHEMA_VERSION, ResultStore, RunFailure
from repro.stats.classification import CATEGORIES


@pytest.fixture(scope="module")
def classified_result():
    spec = ExperimentSpec("mp3d", "erc", n_procs=4, classify=True, small=True)
    return spec, spec.run()


@pytest.fixture(scope="module")
def plain_result():
    spec = ExperimentSpec("gauss", "lrc", n_procs=4, small=True,
                          overrides={"line_size": 64})
    return spec, spec.run()


class TestRunResultRoundTrip:
    def test_schema_version_is_pinned(self):
        # The round-trip layout below is what SCHEMA_VERSION == 1 means;
        # changing RunResult.to_dict() requires bumping it.
        assert SCHEMA_VERSION == 1

    def test_dict_is_json_safe(self, classified_result):
        _, r = classified_result
        back = json.loads(json.dumps(r.to_dict()))
        assert back == r.to_dict()

    def test_core_numbers_survive(self, plain_result):
        _, r = plain_result
        back = RunResult.from_dict(json.loads(json.dumps(r.to_dict())))
        assert back.exec_time == r.exec_time
        assert back.miss_rate == r.miss_rate
        assert back.protocol == r.protocol
        assert back.config == r.config
        assert back.config.line_size == 64

    def test_cycle_bucket_breakdowns_survive(self, plain_result):
        _, r = plain_result
        back = RunResult.from_dict(r.to_dict())
        assert back.breakdown() == r.breakdown()
        assert back.stats.total_cycles == r.stats.total_cycles
        base = r.stats.total_cycles
        assert back.stats.breakdown_normalized(base) == r.stats.breakdown_normalized(base)
        assert back.summary() == r.summary()

    def test_per_processor_counters_survive(self, plain_result):
        _, r = plain_result
        back = RunResult.from_dict(r.to_dict())
        assert len(back.stats.procs) == len(r.stats.procs)
        for a, b in zip(back.stats.procs, r.stats.procs):
            assert a.to_dict() == b.to_dict()

    def test_traffic_survives(self, plain_result):
        _, r = plain_result
        back = RunResult.from_dict(r.to_dict())
        assert back.traffic.total_messages == r.traffic.total_messages
        assert back.traffic.total_bytes == r.traffic.total_bytes
        assert back.traffic.total_hops == r.traffic.total_hops
        assert back.traffic.as_dict() == r.traffic.as_dict()

    def test_classifier_percentages_survive(self, classified_result):
        _, r = classified_result
        back = RunResult.from_dict(json.loads(json.dumps(r.to_dict())))
        assert back.classifier is not None
        assert back.classifier.total == r.classifier.total > 0
        assert back.classifier.counts == r.classifier.counts
        assert back.classifier.percentages() == r.classifier.percentages()
        assert set(back.classifier.percentages()) == set(CATEGORIES)

    def test_absent_classifier_round_trips_as_none(self, plain_result):
        _, r = plain_result
        assert r.classifier is None
        assert RunResult.from_dict(r.to_dict()).classifier is None


class TestResultStore:
    def test_save_then_load(self, tmp_path, plain_result):
        spec, r = plain_result
        store = ResultStore(tmp_path / "rs")
        path = store.save(spec, r)
        assert path.name == f"{spec.fingerprint()}.json"
        back = store.load(spec)
        assert back is not None
        assert back.exec_time == r.exec_time
        assert back.summary() == r.summary()
        assert spec in store and len(store) == 1

    def test_miss_on_absent(self, tmp_path):
        store = ResultStore(tmp_path / "rs")
        assert store.load(ExperimentSpec("mp3d", "lrc", n_procs=4, small=True)) is None

    def test_different_spec_is_a_miss(self, tmp_path, plain_result):
        spec, r = plain_result
        store = ResultStore(tmp_path / "rs")
        store.save(spec, r)
        assert store.load(spec.with_(protocol="erc")) is None

    def test_corrupt_file_is_a_miss(self, tmp_path, plain_result):
        spec, r = plain_result
        store = ResultStore(tmp_path / "rs")
        store.save(spec, r)
        store.path_for(spec).write_text("{ not json")
        assert store.load(spec) is None

    def test_schema_mismatch_is_a_miss(self, tmp_path, plain_result):
        spec, r = plain_result
        store = ResultStore(tmp_path / "rs")
        path = store.save(spec, r)
        payload = json.loads(path.read_text())
        payload["schema"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        assert store.load(spec) is None

    def test_clear(self, tmp_path, plain_result):
        spec, r = plain_result
        store = ResultStore(tmp_path / "rs")
        store.save(spec, r)
        assert store.clear() == 1
        assert len(store) == 0 and spec not in store

    def test_clear_sweeps_orphaned_tmp_files(self, tmp_path, plain_result):
        spec, r = plain_result
        store = ResultStore(tmp_path / "rs")
        store.save(spec, r)
        # A worker killed between mkstemp and os.replace leaves this behind.
        orphan = store.root / "deadbeef0123.json-abc123.tmp"
        orphan.write_text("{ half-written")
        assert store.clear() == 2
        assert not orphan.exists()
        assert list(store.root.iterdir()) == []

    def test_init_sweeps_old_tmp_but_keeps_fresh_ones(self, tmp_path):
        import os
        import time

        root = tmp_path / "rs"
        root.mkdir()
        stale = root / "stale.json-xyz.tmp"
        stale.write_text("{")
        os.utime(stale, (time.time() - 3600, time.time() - 3600))
        fresh = root / "fresh.json-abc.tmp"
        fresh.write_text("{")  # could be a write in flight elsewhere
        ResultStore(root)
        assert not stale.exists()
        assert fresh.exists()

    def test_failure_records_do_not_count_as_results(self, tmp_path, plain_result):
        spec, r = plain_result
        store = ResultStore(tmp_path / "rs")
        store.save_failure(spec, RunFailure.from_exception(spec, ValueError("x")))
        assert len(store) == 0 and spec not in store
        store.save(spec, r)
        assert len(store) == 1

    def test_run_spec_uses_store_across_memo_clears(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "rs")
        spec = ExperimentSpec("mp3d", "lrc", n_procs=4, small=True)
        clear_cache()
        first = run_spec(spec, store=store)
        assert len(store) == 1
        clear_cache()
        # A fresh process would hit the store, not re-simulate: make any
        # attempt to simulate blow up.
        monkeypatch.setattr(
            ExperimentSpec, "run", lambda self: pytest.fail("re-simulated")
        )
        second = run_spec(spec, store=store)
        assert second is not first
        assert second.exec_time == first.exec_time
        assert second.summary() == first.summary()
        clear_cache()


class TestRunFailureRecords:
    SPEC = ExperimentSpec("mp3d", "lrc", n_procs=4, small=True)

    def _failure(self):
        return RunFailure.from_exception(self.SPEC, ValueError("boom"))

    def test_from_exception_maps_known_kinds(self):
        from repro.engine.simulator import DeadlockError
        from repro.faults.watchdog import SimulationStall

        f = RunFailure.from_exception(self.SPEC, SimulationStall("stuck"))
        assert f.kind == "stall" and f.message == "stuck"
        assert f.fingerprint == self.SPEC.fingerprint()
        assert "SimulationStall" in f.traceback or f.traceback
        assert RunFailure.from_exception(
            self.SPEC, DeadlockError("d")).kind == "deadlock"
        # Unknown exceptions keep their class name: never anonymous.
        assert RunFailure.from_exception(
            self.SPEC, ValueError("v")).kind == "ValueError"

    def test_save_then_load_round_trips(self, tmp_path):
        store = ResultStore(tmp_path / "rs")
        f = self._failure()
        path = store.save_failure(self.SPEC, f)
        assert path.name == f"{self.SPEC.fingerprint()}.fail.json"
        back = store.load_failure(self.SPEC)
        assert back == f
        assert store.failures() == [f]

    def test_json_round_trip(self):
        f = self._failure()
        assert RunFailure.from_dict(json.loads(json.dumps(f.to_dict()))) == f

    def test_absent_and_corrupt_read_as_none(self, tmp_path):
        store = ResultStore(tmp_path / "rs")
        assert store.load_failure(self.SPEC) is None
        store.save_failure(self.SPEC, self._failure())
        store.failure_path_for(self.SPEC).write_text("{ not json")
        assert store.load_failure(self.SPEC) is None
        assert store.failures() == []

    def test_corrupt_record_is_skipped_with_a_warning(self, tmp_path, caplog):
        import logging

        store = ResultStore(tmp_path / "rs")
        good = self._failure()
        store.save_failure(self.SPEC, good)
        other = ExperimentSpec("gauss", "sc", n_procs=4, small=True)
        store.save_failure(other, RunFailure.from_exception(other, ValueError("y")))
        store.failure_path_for(other).write_text("{ not json")
        with caplog.at_level(logging.WARNING, logger="repro.results.store"):
            assert store.failures() == [good]
        assert any(
            "unreadable failure record" in rec.getMessage()
            for rec in caplog.records
        )

    def test_success_supersedes_failure(self, tmp_path, plain_result):
        spec, r = plain_result
        store = ResultStore(tmp_path / "rs")
        store.save_failure(spec, RunFailure.from_exception(spec, ValueError("x")))
        assert store.load_failure(spec) is not None
        store.save(spec, r)
        assert store.load_failure(spec) is None
        assert store.load(spec) is not None

    def test_clear_removes_failure_records_too(self, tmp_path):
        store = ResultStore(tmp_path / "rs")
        store.save_failure(self.SPEC, self._failure())
        assert store.clear() == 1
        assert store.failures() == []


class TestContentChecksums:
    """Stored JSON carries a content checksum, verified on every load
    (DESIGN.md §15): silent bit-rot reads as a miss, never as data."""

    SPEC = ExperimentSpec("mp3d", "lrc", n_procs=4, small=True)

    def _tamper(self, path, key, mutate):
        """Edit the envelope's payload without touching its checksum."""
        payload = json.loads(path.read_text())
        mutate(payload[key])
        path.write_text(json.dumps(payload))

    def test_tampered_result_reads_as_none(self, tmp_path, plain_result, caplog):
        import logging

        spec, r = plain_result
        store = ResultStore(tmp_path / "rs")
        path = store.save(spec, r)
        assert store.load(spec) is not None
        self._tamper(path, "result", lambda d: d.__setitem__("exec_time", 1))
        with caplog.at_level(logging.WARNING, logger="repro.results.store"):
            assert store.load(spec) is None
        assert any("content checksum" in rec.getMessage()
                   for rec in caplog.records)

    def test_tampered_failure_reads_as_none(self, tmp_path):
        store = ResultStore(tmp_path / "rs")
        f = RunFailure.from_exception(self.SPEC, ValueError("boom"))
        path = store.save_failure(self.SPEC, f)
        assert store.load_failure(self.SPEC) == f
        self._tamper(path, "failure", lambda d: d.__setitem__("message", "benign"))
        assert store.load_failure(self.SPEC) is None
        assert store.failures() == []

    def test_tampered_artifact_reads_as_none(self, tmp_path):
        store = ResultStore(tmp_path / "rs")
        path = store.save_artifact("scenario-x", {"rows": [1, 2, 3]})
        assert store.load_artifact("scenario-x") == {"rows": [1, 2, 3]}
        self._tamper(path, "artifact", lambda d: d.__setitem__("rows", []))
        assert store.load_artifact("scenario-x") is None

    def test_envelopes_without_checksum_still_load(self, tmp_path, plain_result):
        # Files written before the checksum field existed verify trivially.
        spec, r = plain_result
        store = ResultStore(tmp_path / "rs")
        path = store.save(spec, r)
        payload = json.loads(path.read_text())
        del payload["checksum"]
        path.write_text(json.dumps(payload))
        assert store.load(spec) is not None

    def test_legacy_flat_failure_record_still_loads(self, tmp_path):
        # Old layout: failure fields flat in the envelope, no checksum.
        store = ResultStore(tmp_path / "rs")
        f = RunFailure.from_exception(self.SPEC, ValueError("boom"))
        path = store.failure_path_for(self.SPEC)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"schema": SCHEMA_VERSION, **f.to_dict()}))
        assert store.load_failure(self.SPEC) == f
