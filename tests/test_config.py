"""Tests for SystemConfig: Table 1 defaults, derived geometry, presets."""

import math

import pytest

from repro.config import SystemConfig, _mesh_dims


class TestTable1Defaults:
    def test_table1_values(self):
        c = SystemConfig.paper()
        assert c.line_size == 128
        assert c.cache_size == 128 * 1024
        assert c.mem_setup == 20
        assert c.mem_bw == 2.0
        assert c.bus_bw == 2.0
        assert c.net_bw == 2.0
        assert c.switch_latency == 2
        assert c.wire_latency == 1
        assert c.notice_cost == 4
        assert c.lrc_dir_cost == 25
        assert c.erc_dir_cost == 15

    def test_default_machine_is_64_nodes(self):
        assert SystemConfig().n_procs == 64

    def test_buffer_defaults(self):
        c = SystemConfig()
        assert c.wb_entries == 4
        assert c.cbuf_entries == 16


class TestWorkedExample:
    """Section 3 computes a 272-cycle uncontended fill at 10 hops."""

    def test_fill_cost_matches_paper_at_10_hops(self):
        # Build a machine wide enough to contain a 10-hop pair.
        c = SystemConfig(n_procs=64)
        # 8x8 mesh: (0,0) -> (5,5) is 10 hops.
        src, dst = 0, 5 * 8 + 5
        assert c.hops(src, dst) == 10
        assert c.transit(src, dst, 0) == 30
        assert c.memory_time(128) == 84
        assert c.transit(dst, src, 128) == 94
        assert c.bus_time(128) == 64
        assert c.line_fill_cost(src, dst) == 272

    def test_memory_time_components(self):
        c = SystemConfig()
        assert c.memory_time(0) == 20
        assert c.memory_time(2) == 21


class TestGeometry:
    def test_n_sets(self):
        assert SystemConfig().n_sets == 1024
        assert SystemConfig.scaled(cache_size=8 * 1024).n_sets == 64

    def test_line_shift(self):
        c = SystemConfig()
        assert 1 << c.line_shift == c.line_size

    def test_mesh_dims_square(self):
        assert SystemConfig(n_procs=64).mesh_dims == (8, 8)
        assert SystemConfig(n_procs=16).mesh_dims == (4, 4)

    def test_mesh_dims_nonsquare(self):
        assert _mesh_dims(8) == (2, 4)
        assert _mesh_dims(2) == (1, 2)
        assert _mesh_dims(1) == (1, 1)

    def test_hops_self_is_zero(self):
        c = SystemConfig(n_procs=16)
        for i in range(16):
            assert c.hops(i, i) == 0

    def test_hops_symmetric(self):
        c = SystemConfig(n_procs=16)
        for a in range(16):
            for b in range(16):
                assert c.hops(a, b) == c.hops(b, a)


class TestPresets:
    def test_future_machine(self):
        c = SystemConfig.future()
        assert c.mem_setup == 40
        assert c.mem_bw == 4.0
        assert c.net_bw == 4.0
        assert c.line_size == 256

    def test_future_overrides_respected(self):
        c = SystemConfig.future(line_size=128)
        assert c.line_size == 128
        assert c.mem_setup == 40

    def test_with_returns_modified_copy(self):
        a = SystemConfig()
        b = a.with_(line_size=256)
        assert a.line_size == 128
        assert b.line_size == 256

    def test_config_hashable(self):
        assert hash(SystemConfig()) == hash(SystemConfig())
        assert SystemConfig() == SystemConfig()


class TestValidation:
    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ValueError):
            SystemConfig(line_size=100)

    def test_rejects_zero_procs(self):
        with pytest.raises(ValueError):
            SystemConfig(n_procs=0)

    def test_rejects_misaligned_cache(self):
        with pytest.raises(ValueError):
            SystemConfig(cache_size=1000)

    def test_rejects_bad_buffers(self):
        with pytest.raises(ValueError):
            SystemConfig(wb_entries=0)
