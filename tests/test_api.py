"""Tests for the public convenience API (build_machine / run_app / simulate),
in particular run_app's validation of protocol and classify against the
app's pre-built machine."""

import pytest

from repro import SystemConfig, build_machine, run_app, simulate
from repro.apps import AppContext, Gauss


def cfg(n=2):
    return SystemConfig.scaled(n_procs=n, cache_size=8 * 128)


class TestBuildMachine:
    def test_protocol_and_classifier_wiring(self):
        m = build_machine(cfg(), protocol="erc", classify=True)
        assert m.protocol_name == "erc"
        assert m.classifier is not None
        assert build_machine(cfg()).classifier is None


class TestRunApp:
    def test_runs_on_the_apps_machine(self):
        app = Gauss(AppContext.for_machine(build_machine(cfg(), protocol="lrc")), n=8)
        r = run_app(app)
        assert r.exec_time > 0 and r.protocol == "lrc"

    def test_protocol_assertion_matches(self):
        app = Gauss(AppContext.for_machine(build_machine(cfg(), protocol="erc")), n=8)
        assert run_app(app, protocol="erc").protocol == "erc"

    def test_protocol_mismatch_raises(self):
        app = Gauss(AppContext.for_machine(build_machine(cfg(), protocol="erc")), n=8)
        with pytest.raises(ValueError, match="'erc', not 'lrc'"):
            run_app(app, protocol="lrc")

    def test_classify_true_without_classifier_raises(self):
        app = Gauss(AppContext.for_machine(build_machine(cfg(), protocol="lrc")), n=8)
        with pytest.raises(ValueError, match="classify"):
            run_app(app, classify=True)

    def test_classify_false_with_classifier_raises(self):
        app = Gauss(AppContext.for_machine(build_machine(cfg(), protocol="lrc", classify=True)), n=8)
        with pytest.raises(ValueError, match="classify"):
            run_app(app, classify=False)

    def test_classify_assertion_propagates(self):
        app = Gauss(AppContext.for_machine(build_machine(cfg(), protocol="lrc", classify=True)), n=8)
        r = run_app(app, classify=True)
        assert r.classifier is not None
        assert r.classifier.total > 0


class TestSimulate:
    def test_classify_reaches_the_result(self):
        r = simulate(Gauss, cfg(), "erc", classify=True, n=8)
        assert r.classifier is not None and r.classifier.total > 0

    def test_default_has_no_classifier(self):
        r = simulate(Gauss, cfg(), "erc", n=8)
        assert r.classifier is None
