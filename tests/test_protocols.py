"""Protocol-level scenario tests on small machines.

These drive specific sharing patterns and check the *protocol-visible*
consequences: directory states, invalidation behavior, message mixes,
and stall accounting — the mechanisms Section 2 of the paper describes.
"""

import pytest

from repro import Machine, SystemConfig
from repro.directory.entry import DIRTY, SHARED, UNCACHED, WEAK
from repro.network.messages import MsgType
from repro.program.ops import (
    ACQUIRE,
    BARRIER,
    COMPUTE,
    FENCE,
    READ,
    READ_RUN,
    RELEASE,
    SET_FLAG,
    WAIT_FLAG,
    WRITE,
    WRITE_RUN,
)


def cfg(n=4, **kw):
    kw.setdefault("cache_size", 32 * 128)
    return SystemConfig.scaled(n_procs=n, **kw)


def run(machine, progs):
    return machine.run(progs)


def dir_entry(machine, addr):
    block = addr >> machine.config.line_shift
    home = machine.home_of(block)
    return machine.nodes[home].directory, block


class TestLRCMechanisms:
    def test_reader_keeps_stale_line_until_acquire(self):
        """The core laziness: a write elsewhere does not invalidate a
        cached reader until the reader synchronizes."""
        m = Machine(cfg(2), protocol="lrc")
        seg = m.space.alloc(4096, "d")

        def writer(pid):
            yield (COMPUTE, 5000)
            yield (WRITE, seg.base)       # notice goes out...
            yield (COMPUTE, 20000)
            yield (BARRIER, 0)

        def reader(pid):
            yield (READ, seg.base)        # cache it
            yield (COMPUTE, 10000)
            yield (READ, seg.base)        # ...but this still HITS (stale)
            yield (BARRIER, 0)

        r = run(m, [writer(0), reader(1)])
        # One read miss only: the post-write read hit the stale line.
        assert r.stats.procs[1].read_misses == 1
        # The reader recorded a pending notice for the line.
        assert m.stats.notices_sent >= 1

    def test_acquire_invalidates_noticed_line(self):
        m = Machine(cfg(2), protocol="lrc")
        seg = m.space.alloc(4096, "d")

        def writer(pid):
            yield (COMPUTE, 5000)
            yield (WRITE, seg.base)
            yield (FENCE,)
            yield (BARRIER, 0)

        def reader(pid):
            yield (READ, seg.base)
            yield (COMPUTE, 30000)         # let the notice arrive
            yield (ACQUIRE, 3)
            yield (RELEASE, 3)
            yield (READ, seg.base)         # must miss now
            yield (BARRIER, 0)

        r = run(m, [writer(0), reader(1)])
        assert r.stats.procs[1].read_misses == 2
        assert r.stats.procs[1].acquire_invalidations >= 1

    def test_multiple_concurrent_writers_no_stall(self):
        """Both CPUs write the same line without waiting for ownership."""
        m = Machine(cfg(2), protocol="lrc")
        seg = m.space.alloc(4096, "d")

        def prog(pid):
            yield (READ, seg.base + 8 * pid)
            yield (WRITE, seg.base + 8 * pid)
            yield (COMPUTE, 10000)
            yield (BARRIER, 0)

        r = run(m, [prog(0), prog(1)])
        d, block = dir_entry(m, seg.base)
        for p in r.stats.procs:
            assert p.wb_stall == 0

    def test_directory_weak_transition_and_recovery(self):
        m = Machine(cfg(2), protocol="lrc")
        seg = m.space.alloc(4096, "d")

        def writer(pid):
            yield (READ, seg.base)
            yield (WRITE, seg.base)
            yield (COMPUTE, 20000)
            yield (BARRIER, 0)
            # After the barrier the other processor has relinquished.
            yield (BARRIER, 1)

        def reader(pid):
            yield (COMPUTE, 5000)
            yield (READ, seg.base)         # share a dirty block -> WEAK
            yield (COMPUTE, 15000)
            yield (BARRIER, 0)             # acquire: reader invalidates
            yield (BARRIER, 1)

        run(m, [writer(0), reader(1)])
        d, block = dir_entry(m, seg.base)
        # The reader relinquished at its barrier; with only the writer
        # left the block reverted to DIRTY (one writer, one sharer).
        assert d.state_of(block) in (DIRTY, SHARED, UNCACHED)
        assert d.state_of(block) != WEAK

    def test_lrc_never_forwards_reads(self):
        m = Machine(cfg(2), protocol="lrc")
        seg = m.space.alloc(4096, "d")

        def writer(pid):
            yield (READ, seg.base)
            yield (WRITE, seg.base)
            yield (COMPUTE, 10000)
            yield (BARRIER, 0)

        def reader(pid):
            yield (COMPUTE, 5000)
            yield (READ, seg.base)  # dirty at writer: still 2-hop
            yield (BARRIER, 0)

        r = run(m, [writer(0), reader(1)])
        assert r.stats.three_hop_reads == 0
        assert r.traffic.count[MsgType.FORWARD] == 0

    def test_release_waits_for_write_through(self):
        """A fence may not complete before memory acknowledged the data."""
        m = Machine(cfg(1), protocol="lrc")
        seg = m.space.alloc(4096, "d")

        def prog(pid):
            yield (WRITE_RUN, seg.base, 32, 8)
            yield (FENCE,)

        r = run(m, [prog(0)])
        assert r.stats.write_throughs > 0
        assert r.stats.procs[0].sync_stall > 0

    def test_eviction_informs_home(self):
        m = Machine(cfg(1, cache_size=4 * 128), protocol="lrc")
        seg = m.space.alloc(8192, "d")

        def prog(pid):
            yield (READ_RUN, seg.base, 64, 128)  # 64 lines through 4 sets

        r = run(m, [prog(0)])
        assert r.traffic.count[MsgType.EVICT_NOTICE] > 0
        # Home directory forgot the evicted lines (bounded storage).
        d = m.nodes[0].directory

    def test_weak_flag_via_read_reply(self):
        """A reader of a weak block learns from the reply, not a notice."""
        m = Machine(cfg(3), protocol="lrc")
        seg = m.space.alloc(4096, "d")

        def writer(pid):
            yield (READ, seg.base)
            yield (WRITE, seg.base)
            yield (COMPUTE, 30000)
            yield (BARRIER, 0)

        def reader1(pid):  # makes the block weak
            yield (COMPUTE, 5000)
            yield (READ, seg.base)
            yield (COMPUTE, 25000)
            yield (BARRIER, 0)

        def reader2(pid):  # joins a weak block
            yield (COMPUTE, 15000)
            yield (READ, seg.base)
            yield (COMPUTE, 15000)
            yield (BARRIER, 0)

        m_nodes = m.nodes
        run(m, [writer(0), reader1(1), reader2(2)])
        block = seg.base >> m.config.line_shift
        # Reader 2 was marked for invalidation via the reply (weak flag)
        # or already invalidated at the final barrier.
        # Either way the run completed; the notice count stays at the
        # single writer-transition notice.


class TestERCMechanisms:
    def test_eager_invalidation_on_write(self):
        """A write invalidates remote sharers immediately."""
        m = Machine(cfg(2), protocol="erc")
        seg = m.space.alloc(4096, "d")

        def writer(pid):
            yield (COMPUTE, 5000)
            yield (READ, seg.base)
            yield (WRITE, seg.base)
            yield (COMPUTE, 20000)
            yield (BARRIER, 0)

        def reader(pid):
            yield (READ, seg.base)
            yield (COMPUTE, 20000)
            yield (READ, seg.base)     # MISSES: eagerly invalidated
            yield (BARRIER, 0)

        r = run(m, [writer(0), reader(1)])
        assert r.stats.eager_invalidations >= 1
        assert r.stats.procs[1].read_misses == 2

    def test_read_of_dirty_block_is_three_hop(self):
        m = Machine(cfg(2), protocol="erc")
        seg = m.space.alloc(4096, "d")

        def writer(pid):
            yield (READ, seg.base)
            yield (WRITE, seg.base)
            yield (COMPUTE, 10000)
            yield (BARRIER, 0)

        def reader(pid):
            yield (COMPUTE, 5000)
            yield (READ, seg.base)
            yield (BARRIER, 0)

        r = run(m, [writer(0), reader(1)])
        assert r.stats.three_hop_reads == 1
        assert r.traffic.count[MsgType.FORWARD] == 1
        assert r.traffic.count[MsgType.OWNER_DATA] == 1

    def test_dirty_eviction_writes_back(self):
        m = Machine(cfg(1, cache_size=4 * 128), protocol="erc")
        seg = m.space.alloc(8192, "d")

        def prog(pid):
            # Write lines that conflict in the 4-set cache.
            yield (WRITE_RUN, seg.base, 16, 128 * 4)
            yield (FENCE,)

        r = run(m, [prog(0)])
        assert r.traffic.count[MsgType.WRITEBACK] > 0

    def test_write_buffer_full_stalls_cpu(self):
        # Writes to distinct remote lines that all need ownership faster
        # than the 4-entry buffer can drain them.
        m = Machine(cfg(2, wb_entries=2), protocol="erc")
        seg = m.space.alloc(1 << 15, "d")

        def writer(pid):
            yield (WRITE_RUN, seg.base, 32, 128)
            yield (BARRIER, 0)

        def idle(pid):
            yield (COMPUTE, 100)
            yield (BARRIER, 0)

        r = run(m, [writer(0), idle(1)])
        assert r.stats.procs[0].wb_stall > 0


class TestSCMechanisms:
    def test_writes_stall_cpu(self):
        m = Machine(cfg(1), protocol="sc")
        seg = m.space.alloc(4096, "d")

        def prog(pid):
            yield (WRITE, seg.base)

        r = run(m, [prog(0)])
        assert r.stats.procs[0].wb_stall > 0  # SC write-miss stall bucket

    def test_release_is_immediate(self):
        """All writes already performed: SC releases carry no fence wait
        beyond the one cycle of the lock message hand-off."""
        m = Machine(cfg(1), protocol="sc")
        seg = m.space.alloc(4096, "d")

        def prog(pid):
            yield (ACQUIRE, 0)
            yield (WRITE, seg.base)
            yield (RELEASE, 0)

        r = run(m, [prog(0)])
        assert r.stats.procs[0].sync_stall < 100


class TestSyncPrimitives:
    @pytest.mark.parametrize("proto", ["sc", "erc", "lrc", "lrc-ext"])
    def test_lock_mutual_exclusion_order(self, proto):
        """FIFO lock: earlier requester gets the lock first."""
        m = Machine(cfg(2), protocol=proto)
        seg = m.space.alloc(4096, "d")

        def first(pid):
            yield (ACQUIRE, 0)
            yield (COMPUTE, 5000)
            yield (RELEASE, 0)
            yield (BARRIER, 0)

        def second(pid):
            yield (COMPUTE, 1000)
            yield (ACQUIRE, 0)
            yield (RELEASE, 0)
            yield (BARRIER, 0)

        r = run(m, [first(0), second(1)])
        # The second processor waited roughly the first's hold time.
        assert r.stats.procs[1].sync_stall > 3000

    @pytest.mark.parametrize("proto", ["sc", "erc", "lrc", "lrc-ext"])
    def test_flag_orders_producer_consumer(self, proto):
        m = Machine(cfg(2), protocol=proto)

        def producer(pid):
            yield (COMPUTE, 8000)
            yield (SET_FLAG, 5)
            yield (BARRIER, 0)

        def consumer(pid):
            yield (WAIT_FLAG, 5)
            yield (BARRIER, 0)

        r = run(m, [producer(0), consumer(1)])
        assert r.stats.procs[1].sync_stall >= 7000

    @pytest.mark.parametrize("proto", ["sc", "erc", "lrc", "lrc-ext"])
    def test_flag_already_set_passes_quickly(self, proto):
        m = Machine(cfg(2), protocol=proto)

        def producer(pid):
            yield (SET_FLAG, 5)
            yield (BARRIER, 0)

        def consumer(pid):
            yield (COMPUTE, 20000)
            yield (WAIT_FLAG, 5)
            yield (BARRIER, 0)

        r = run(m, [producer(0), consumer(1)])
        assert r.stats.procs[1].sync_stall < 2000

    @pytest.mark.parametrize("proto", ["sc", "erc", "lrc", "lrc-ext"])
    def test_flag_traffic_uses_flag_message_types(self, proto):
        """Flag sync sends FLAG_SET/FLAG_WAIT/FLAG_GRANT, not LOCK_* —
        the per-type traffic counters must tell them apart."""
        m = Machine(cfg(2), protocol=proto)

        def producer(pid):
            yield (COMPUTE, 500)
            yield (SET_FLAG, 5)

        def consumer(pid):
            yield (WAIT_FLAG, 5)

        r = run(m, [producer(0), consumer(1)])
        c = r.traffic.count
        assert c[MsgType.FLAG_SET] == 1
        assert c[MsgType.FLAG_WAIT] == 1
        assert c[MsgType.FLAG_GRANT] == 1
        assert c[MsgType.LOCK_REQ] == 0
        assert c[MsgType.LOCK_GRANT] == 0
        assert c[MsgType.LOCK_RELEASE] == 0

    @pytest.mark.parametrize("proto", ["sc", "erc", "lrc", "lrc-ext"])
    def test_block_reason_naming(self, proto):
        from repro.core.processor import B_SYNC, B_WB

        m = Machine(cfg(2), protocol=proto)
        proc = m.nodes[0].proc
        assert proc.block_reason is None
        assert not proc.blocked_on_write_buffer
        proc.blocked = True
        proc._block_bucket = B_WB
        assert proc.block_reason == "write-buffer"
        assert proc.blocked_on_write_buffer
        proc._block_bucket = B_SYNC
        assert proc.block_reason == "sync"
        assert not proc.blocked_on_write_buffer
        proc.blocked = False

    def test_lock_ids_and_flag_ids_do_not_collide(self):
        m = Machine(cfg(2), protocol="lrc")

        def a(pid):
            yield (ACQUIRE, 7)
            yield (COMPUTE, 100)
            yield (RELEASE, 7)
            yield (SET_FLAG, 7)     # same numeric id, distinct namespace
            yield (BARRIER, 0)

        def b(pid):
            yield (WAIT_FLAG, 7)
            yield (ACQUIRE, 7)
            yield (RELEASE, 7)
            yield (BARRIER, 0)

        run(m, [a(0), b(1)])  # must not deadlock or corrupt state


class TestLazyExt:
    def test_notices_deferred_until_release(self):
        m = Machine(cfg(2), protocol="lrc-ext")
        seg = m.space.alloc(4096, "d")

        def writer(pid):
            yield (COMPUTE, 5000)
            yield (WRITE, seg.base)
            yield (COMPUTE, 5000)
            # No release yet: the sharer must NOT have been notified.
            yield (COMPUTE, 10000)
            yield (FENCE,)              # now the deferred notice goes out
            yield (BARRIER, 0)

        def reader(pid):
            yield (READ, seg.base)
            yield (COMPUTE, 12000)
            yield (ACQUIRE, 1)          # before writer's release: no inval
            yield (RELEASE, 1)
            yield (READ, seg.base)      # still a hit
            yield (BARRIER, 0)

        r = run(m, [writer(0), reader(1)])
        assert r.stats.procs[1].read_misses == 1
        assert r.stats.deferred_notices >= 1

    def test_eviction_posts_deferred_notice(self):
        m = Machine(cfg(1, cache_size=4 * 128), protocol="lrc-ext")
        seg = m.space.alloc(8192, "d")

        def prog(pid):
            yield (WRITE_RUN, seg.base, 16, 128 * 4)  # conflict evictions
            yield (FENCE,)

        r = run(m, [prog(0)])
        assert r.stats.deferred_notices > 0


class TestTardisMechanisms:
    def test_write_publishes_without_fanout(self):
        """The Tardis trade: a release bumps timestamps at the home
        instead of invalidating sharers — no notices, no acks, no
        eager invalidations."""
        m = Machine(cfg(2), protocol="tardis")
        seg = m.space.alloc(4096, "d")

        def writer(pid):
            yield (COMPUTE, 5000)
            yield (WRITE, seg.base)
            yield (FENCE,)
            yield (BARRIER, 0)

        def reader(pid):
            yield (READ, seg.base)
            yield (COMPUTE, 30000)
            yield (BARRIER, 0)

        run(m, [writer(0), reader(1)])
        assert m.stats.ts_bumps >= 1
        assert m.stats.notices_sent == 0
        assert m.stats.eager_invalidations == 0
        assert m.stats.writebacks == 0

    def test_reader_keeps_stale_line_until_acquire(self):
        """Same laziness as LRC, via leases: a concurrent write does not
        reach into the reader's cache; the copy only expires once the
        reader's clock passes its lease at a sync point."""
        m = Machine(cfg(2), protocol="tardis")
        seg = m.space.alloc(4096, "d")

        def writer(pid):
            yield (COMPUTE, 5000)
            yield (WRITE, seg.base)
            yield (FENCE,)
            yield (BARRIER, 0)
            yield (BARRIER, 1)

        def reader(pid):
            yield (READ, seg.base)
            yield (COMPUTE, 30000)
            yield (READ, seg.base)        # still a hit: lease unexpired
            yield (BARRIER, 0)
            yield (READ, seg.base)        # barrier adopted writer's pts
            yield (BARRIER, 1)

        r = run(m, [writer(0), reader(1)])
        procs = r.stats.procs
        assert procs[1].read_misses == 2  # initial fill + post-barrier re-read
        assert procs[1].acquire_invalidations >= 1
        assert m.stats.lease_expirations >= 1

    def test_release_timestamp_flows_through_lock(self):
        """LOCK_RELEASE carries the releaser's clock; the next grantee
        adopts it, expiring every copy the releaser's epoch outdated."""
        m = Machine(cfg(2), protocol="tardis")
        seg = m.space.alloc(4096, "d")

        def writer(pid):
            yield (ACQUIRE, 0)
            yield (WRITE, seg.base)
            yield (RELEASE, 0)
            yield (BARRIER, 0)

        def reader(pid):
            yield (READ, seg.base)         # cache it early
            yield (COMPUTE, 30000)
            yield (ACQUIRE, 0)             # serialized after the release
            yield (READ, seg.base)         # must miss: lease < adopted pts
            yield (RELEASE, 0)
            yield (BARRIER, 0)

        r = run(m, [writer(0), reader(1)])
        assert r.stats.procs[1].read_misses == 2
        assert m.nodes[1].pts >= m.stats.ts_bumps  # clock adopted, not stale

    def test_eviction_is_silent(self):
        """No sharer bookkeeping at the home means nothing to tell it on
        eviction — unlike every other protocol here."""
        m = Machine(cfg(1, cache_size=4 * 128), protocol="tardis")
        seg = m.space.alloc(8192, "d")

        def prog(pid):
            yield (READ_RUN, seg.base, 16, 128 * 4)  # conflict evictions
            yield (FENCE,)

        r = run(m, [prog(0)])
        assert r.traffic.count[MsgType.EVICT_NOTICE] == 0
        assert r.traffic.count[MsgType.RELINQUISH] == 0


class TestProtocolRegistry:
    def test_registry_is_the_single_name_table(self):
        from repro.protocols import PROTOCOLS, REGISTRY, all_names

        assert PROTOCOLS is REGISTRY
        assert all_names() == ("sc", "erc", "lrc", "lrc-ext", "tardis")
        for name, cls in REGISTRY.items():
            assert cls.name == name

    def test_make_protocol_rejects_unknown_name(self):
        from repro.protocols import make_protocol

        with pytest.raises(ValueError, match="unknown protocol"):
            make_protocol("mesi", machine=None)

    def test_spec_and_cli_resolve_through_registry(self, monkeypatch):
        from repro.harness.spec import ExperimentSpec
        from repro.protocols import REGISTRY, TardisProtocol

        # A monkeypatched registry entry is immediately a valid spec
        # protocol: there is no second name table to update.
        monkeypatch.setitem(REGISTRY, "tardis-2", TardisProtocol)
        spec = ExperimentSpec("gauss", "tardis-2", n_procs=2, small=True)
        assert spec.protocol == "tardis-2"
        with pytest.raises(ValueError, match="unknown protocol"):
            ExperimentSpec("gauss", "mesi", n_procs=2, small=True)
