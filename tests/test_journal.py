"""Campaign-journal tests (DESIGN.md §15).

The journal is the write-ahead log behind ``--resume``: append-only,
checksummed per record, tolerant of a torn final line (the process was
killed mid-append) and loud about corruption anywhere else.
"""

import json

import pytest

from repro.results.journal import (
    JOURNAL_SCHEMA,
    PLAN_CELL,
    CampaignJournal,
    params_digest,
)


@pytest.fixture
def journal(tmp_path):
    return CampaignJournal(tmp_path / "j.wal")


class TestRecords:
    def test_append_round_trips(self, journal):
        journal.start("a")
        journal.done("a", {"rows": 3})
        journal.fail("b", "stall", "no progress")
        ops = [(r["op"], r["cell"]) for r in journal.records()]
        assert ops == [("start", "a"), ("done", "a"), ("fail", "b")]
        assert all(r["schema"] == JOURNAL_SCHEMA for r in journal.records())

    def test_outcomes_latest_record_wins(self, journal):
        journal.start("a")
        journal.fail("a", "stall", "first try died")
        journal.start("a")
        journal.done("a", {"ok": True})
        out = journal.outcomes()
        assert out["a"] == {"op": "done", "data": {"ok": True}}

    def test_completed_excludes_in_flight_cells(self, journal):
        journal.done("finished", 1)
        journal.fail("broken", "stall", "x")
        journal.start("inflight")
        done = journal.completed()
        assert set(done) == {"finished", "broken"}
        assert done["broken"]["op"] == "fail"

    def test_missing_file_reads_as_empty(self, journal):
        assert list(journal.records()) == []
        assert journal.outcomes() == {}
        assert journal.plan() is None


class TestCorruption:
    def test_torn_tail_is_dropped_with_a_warning(self, journal, caplog):
        journal.done("a", 1)
        journal.done("b", 2)
        with open(journal.path, "a") as f:
            f.write('{"schema":1,"op":"done","cel')  # killed mid-append
        with caplog.at_level("WARNING", logger="repro.results.journal"):
            out = journal.outcomes()
        assert set(out) == {"a", "b"}
        assert any("torn tail" in r.getMessage() for r in caplog.records)

    def test_corrupt_mid_file_record_truncates_recovery(self, journal, caplog):
        journal.done("a", 1)
        journal.done("b", 2)
        journal.done("c", 3)
        lines = journal.path.read_text().splitlines()
        bad = json.loads(lines[1])
        bad["data"] = 999  # tampered: sha no longer matches
        lines[1] = json.dumps(bad, separators=(",", ":"))
        journal.path.write_text("\n".join(lines) + "\n")
        with caplog.at_level("WARNING", logger="repro.results.journal"):
            out = journal.outcomes()
        # Recovery stops at the bad record: "c" is dropped too.
        assert set(out) == {"a"}
        assert any("checksum mismatch" in r.getMessage() for r in caplog.records)

    def test_wrong_schema_is_refused(self, journal, caplog):
        journal.done("a", 1)
        record = {"schema": 99, "op": "done", "cell": "b", "data": 2}
        with open(journal.path, "a") as f:
            f.write(json.dumps(record) + "\n")
        with caplog.at_level("WARNING", logger="repro.results.journal"):
            assert set(journal.outcomes()) == {"a"}


class TestForCampaign:
    def test_plan_record_written_once(self, tmp_path):
        params = {"kind": "faults", "rates": [0.01, 0.05]}
        j = CampaignJournal.for_campaign(tmp_path, "faults", params)
        assert j.plan() == params
        j.done("rate-0.01", {"n_fail": 0})
        # Reopening the same campaign appends nothing.
        again = CampaignJournal.for_campaign(tmp_path, "faults", params)
        assert again.path == j.path
        assert [r["op"] for r in again.records()] == ["plan", "done"]

    def test_different_params_open_different_journals(self, tmp_path):
        a = CampaignJournal.for_campaign(tmp_path, "fuzz", {"seed": 1})
        b = CampaignJournal.for_campaign(tmp_path, "fuzz", {"seed": 2})
        assert a.path != b.path
        a.done("iter-1")
        assert b.completed() == {}

    def test_digest_is_stable_under_key_order(self):
        assert params_digest({"a": 1, "b": 2}) == params_digest({"b": 2, "a": 1})

    def test_clear_removes_the_file(self, tmp_path):
        j = CampaignJournal.for_campaign(tmp_path, "fuzz", {"seed": 3})
        assert j.path.exists()
        j.clear()
        assert not j.path.exists()
        j.clear()  # idempotent
        assert list(j.records()) == []

    def test_plan_cell_is_reserved(self, journal):
        journal.append("plan", PLAN_CELL, {"x": 1})
        journal.done("real-cell", 1)
        assert PLAN_CELL not in journal.completed()
        assert journal.plan() == {"x": 1}
