"""Scenario library + service workloads: determinism, round-trip,
schema rejection, runner artifacts, and the ``scenarios`` CLI.

Three layers:

* **service-app determinism** — identical seeds produce identical
  zipfian request tapes, identical recorded-stream fingerprints, and
  bit-identical :class:`RunResult` numbers (the property the golden
  fixtures and the replay cache both stand on);
* **documents** — every builtin scenario round-trips through
  dict/JSON, and malformed documents (unknown keys at any level, bad
  phase windows, wrong schema, name/filename drift) are rejected at
  load time;
* **runner/CLI** — ``run_scenario`` persists a summary artifact through
  the ResultStore, records per-cell failures without aborting the
  sweep, and the ``scenarios list``/``scenarios run`` subcommands work
  end to end.
"""

import json

import pytest

from repro.__main__ import main
from repro.apps import SERVICE_APPS, AppContext, KVStore, PubSub, TaskQueue
from repro.config import SystemConfig
from repro.harness.spec import ExperimentSpec
from repro.program.stream import RecordedStream
from repro.results.store import ResultStore
from repro.scenarios import (
    Scenario,
    builtin_scenarios,
    load_scenario,
    run_scenario,
)

#: The names the library must provide (the CLI and CI smoke by name).
REQUIRED_SCENARIOS = (
    "satellite_link",
    "burst_loss",
    "congestion_collapse",
    "intermittent_connectivity",
)


def cfg(n=4, **kw):
    kw.setdefault("cache_size", 4096)
    return SystemConfig.scaled(n_procs=n, **kw)


class TestServiceAppDeterminism:
    def test_identical_seeds_identical_request_tapes(self):
        a = KVStore(AppContext(cfg()), n_keys=64, shards=4, ops=32)
        b = KVStore(AppContext(cfg()), n_keys=64, shards=4, ops=32)
        assert [list(map(tuple, r)) for r in a.requests] == \
               [list(map(tuple, r)) for r in b.requests]
        assert list(a.key_of_rank) == list(b.key_of_rank)

    def test_different_seed_different_tape(self):
        a = KVStore(AppContext(cfg(seed=1)), n_keys=64, shards=4, ops=32)
        b = KVStore(AppContext(cfg(seed=2)), n_keys=64, shards=4, ops=32)
        assert [list(map(tuple, r)) for r in a.requests] != \
               [list(map(tuple, r)) for r in b.requests]

    @pytest.mark.parametrize("cls,params", [
        (KVStore, dict(n_keys=64, shards=4, ops=32)),
        (TaskQueue, dict(tasks=48, work=16)),
        (PubSub, dict(topics=4, messages=3)),
    ])
    def test_stream_fingerprints_stable_across_records(self, cls, params):
        a = RecordedStream.record(cls(AppContext(cfg()), **params))
        b = RecordedStream.record(cls(AppContext(cfg()), **params))
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize("app", SERVICE_APPS)
    def test_run_results_bit_identical(self, app):
        spec = ExperimentSpec(app, "lrc", n_procs=4, small=True)
        assert spec.run().to_dict() == spec.run().to_dict()


class TestScenarioDocuments:
    def test_library_has_required_names(self):
        lib = builtin_scenarios()
        assert set(REQUIRED_SCENARIOS) <= set(lib)
        assert len(lib) >= 4

    @pytest.mark.parametrize("name", sorted(builtin_scenarios()))
    def test_builtin_round_trips(self, name):
        sc = load_scenario(name)
        assert Scenario.from_dict(sc.to_dict()) == sc
        assert Scenario.from_json(sc.to_json()) == sc
        # Canonical JSON is itself stable.
        assert Scenario.from_json(sc.to_json()).to_json() == sc.to_json()

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ValueError, match="unknown Scenario fields"):
            Scenario.from_dict({"name": "x", "app": "kvstore", "appp": 1})

    def test_unknown_fault_key_rejected(self):
        with pytest.raises(ValueError, match="unknown FaultPlan fields"):
            Scenario.from_dict(
                {"name": "x", "app": "kvstore", "faults": {"dorp": 0.5}}
            )

    def test_unknown_phase_key_rejected(self):
        with pytest.raises(ValueError, match="unknown FaultPhase fields"):
            Scenario.from_dict({
                "name": "x", "app": "kvstore",
                "faults": {"phases": [{"start": 0, "end": 1, "bad": 2}]},
            })

    def test_bad_phase_window_rejected(self):
        with pytest.raises(ValueError, match="start < end"):
            Scenario.from_dict({
                "name": "x", "app": "kvstore",
                "faults": {"phases": [{"start": 5, "end": 5}]},
            })
        with pytest.raises(ValueError, match="sorted and non-overlapping"):
            Scenario.from_dict({
                "name": "x", "app": "kvstore",
                "faults": {"phases": [{"start": 0, "end": 10, "drop": 0.1},
                                      {"start": 5, "end": 15, "drop": 0.1}]},
            })

    def test_wrong_schema_version_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            Scenario.from_dict({"name": "x", "app": "kvstore", "schema": 99})

    def test_missing_required_fields_rejected(self):
        with pytest.raises(ValueError, match="missing required"):
            Scenario.from_dict({"name": "x"})

    def test_unknown_app_protocol_and_params_rejected(self):
        with pytest.raises(ValueError, match="unknown application"):
            Scenario(name="x", app="nosuch")
        with pytest.raises(ValueError, match="unknown protocols"):
            Scenario(name="x", app="kvstore", protocols=("mesi",))
        with pytest.raises(ValueError, match="does not accept params"):
            Scenario(name="x", app="kvstore", params={"keys": 10})

    def test_bad_name_slug_rejected(self):
        with pytest.raises(ValueError, match="slug"):
            Scenario(name="Satellite Link", app="kvstore")

    def test_name_filename_drift_rejected(self, tmp_path):
        sc = load_scenario("baseline_perfect")
        path = tmp_path / "renamed.json"
        path.write_text(sc.to_json())
        with pytest.raises(ValueError, match="rename"):
            load_scenario(path)

    def test_load_unknown_name_lists_library(self):
        with pytest.raises(ValueError, match="satellite_link"):
            load_scenario("nosuch_scenario")

    def test_spec_for_carries_params_and_faults(self):
        sc = load_scenario("satellite_link")
        spec = sc.spec_for("lrc", n_procs=4)
        assert spec.faults == sc.faults
        assert spec.n_procs == 4
        assert dict(spec.params) == dict(sc.params)


class TestRunnerAndCli:
    def small(self, name="tiny_kv", **kw):
        kw.setdefault("app", "kvstore")
        kw.setdefault("small", True)
        kw.setdefault("n_procs", 4)
        return Scenario(name=name, **kw)

    def test_runner_persists_summary_artifact(self, tmp_path):
        store = ResultStore(tmp_path)
        summary = run_scenario(
            self.small(), protocols=["lrc", "sc"],
            check_invariants=True, store=store,
        )
        assert summary["ok"]
        assert summary["protocols"] == ["lrc", "sc"]
        art = store.load_artifact("scenario-tiny_kv")
        assert art["results"]["lrc"]["exec_time"] > 0
        assert art["scenario"]["app"] == "kvstore"

    def test_runner_records_failures_and_keeps_sweeping(self, tmp_path, monkeypatch):
        import repro.harness.experiments as exp

        real = exp.run_spec

        def flaky(spec, **kw):
            if spec.protocol == "sc":
                raise RuntimeError("boom")
            return real(spec, **kw)

        monkeypatch.setattr(exp, "run_spec", flaky)
        store = ResultStore(tmp_path)
        summary = run_scenario(
            self.small(), protocols=["sc", "lrc"], store=store
        )
        assert not summary["ok"]
        assert not summary["results"]["sc"]["ok"]
        assert summary["results"]["lrc"]["ok"]
        spec = self.small().spec_for("sc")
        assert store.load_failure(spec) is not None

    def test_faulted_scenario_reports_recovery_traffic(self, tmp_path):
        sc = self.small(
            name="tiny_faulted",
            faults={"seed": 7, "drop": 0.02, "dup": 0.02},
        )
        summary = run_scenario(
            sc, protocols=["lrc"], store=ResultStore(tmp_path)
        )
        row = summary["results"]["lrc"]
        assert row["drops_injected"] > 0
        assert row["retransmits"] > 0

    def test_cli_list_names_every_builtin(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in REQUIRED_SCENARIOS:
            assert name in out

    def test_cli_run_end_to_end(self, tmp_path, capsys):
        path = tmp_path / "tiny_kv.json"
        path.write_text(self.small().to_json())
        rc = main([
            "scenarios", "run", str(path),
            "--protocols", "lrc", "tardis",
            "--check-invariants", "--store-dir", str(tmp_path / "store"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tiny_kv" in out and "lrc" in out and "tardis" in out
        art = json.loads(
            (tmp_path / "store" / "scenario-tiny_kv.artifact.json").read_text()
        )
        assert art["artifact"]["ok"]
