"""Property-based tests (hypothesis) for core data structures and
protocol invariants."""

from hypothesis import given, settings, strategies as st

from repro.cache import INVALID, RO, RW, Cache, CoalescingBuffer, WriteBuffer
from repro.config import SystemConfig
from repro.directory import LazyDirectory, MSIDirectory, UNCACHED, WEAK, SHARED, DIRTY
from repro.engine import EventQueue, Resource


# ---------------------------------------------------------------------------
# Event queue
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=200))
def test_event_queue_pops_in_time_order(times):
    q = EventQueue()
    for t in times:
        q.push(t, lambda: None)
    popped = []
    while q:
        popped.append(q.pop()[0])
    assert popped == sorted(times)


@given(st.lists(st.tuples(st.integers(0, 100), st.integers(0, 1000)), max_size=100))
def test_resource_reservations_never_overlap(reqs):
    r = Resource()
    intervals = []
    # Requests must arrive in non-decreasing time, as in the simulator.
    for t, dur in sorted(reqs):
        end = r.reserve(t, dur)
        intervals.append((end - dur, end))
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        assert s2 >= e1  # strictly serialized


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------

@st.composite
def cache_ops(draw):
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["install_ro", "install_rw", "invalidate", "lookup"]),
                st.integers(0, 200),
            ),
            max_size=200,
        )
    )


@given(cache_ops())
def test_cache_agrees_with_model(ops):
    cfg = SystemConfig.scaled(n_procs=4, cache_size=16 * 128)
    c = Cache(cfg)
    model = {}  # set -> (block, state)
    for op, block in ops:
        s = block & c.set_mask
        if op == "install_ro" or op == "install_rw":
            state = RO if op == "install_ro" else RW
            c.install(block, state)
            model[s] = (block, state)
        elif op == "invalidate":
            c.invalidate(block)
            if s in model and model[s][0] == block:
                del model[s]
        else:
            expect = INVALID
            if s in model and model[s][0] == block:
                expect = model[s][1]
            assert c.lookup(block) == expect
    # Final full agreement.
    assert sorted(c.resident_blocks()) == sorted(b for b, _ in model.values())


@given(cache_ops())
def test_cache_at_most_one_block_per_set(ops):
    cfg = SystemConfig.scaled(n_procs=4, cache_size=8 * 128)
    c = Cache(cfg)
    for op, block in ops:
        if op.startswith("install"):
            c.install(block, RO)
    blocks = c.resident_blocks()
    sets = [b & c.set_mask for b in blocks]
    assert len(sets) == len(set(sets))


# ---------------------------------------------------------------------------
# Write buffer
# ---------------------------------------------------------------------------

@given(
    st.lists(st.tuples(st.integers(0, 10), st.integers(0, 15)), max_size=100),
    st.integers(1, 8),
)
def test_write_buffer_never_exceeds_capacity_and_keeps_fifo(writes, cap):
    wb = WriteBuffer(cap)
    accepted = []
    for block, word in writes:
        if wb.add(block, word):
            if block not in accepted:
                accepted.append(block)
        if len(wb) == cap and wb.head() is not None:
            # Drain the head to make room, FIFO order must hold.
            head = wb.head()
            assert head == accepted[0]
            wb.retire_head()
            accepted.pop(0)
        assert len(wb) <= cap
    # Remaining entries retire in insertion order.
    while not wb.empty:
        assert wb.head() == accepted.pop(0)
        wb.retire_head()


@given(
    st.lists(st.tuples(st.integers(0, 10), st.integers(0, 15)), max_size=100),
    st.integers(1, 8),
)
def test_write_buffer_capacity_stall_rejects_only_new_blocks(writes, cap):
    """A full buffer stalls *new* entries but always coalesces into
    existing ones, and a rejected add leaves the buffer untouched."""
    wb = WriteBuffer(cap)
    for block, word in writes:
        before = (list(wb.order), {b: set(w) for b, w in wb.words.items()})
        ok = wb.add(block, word)
        if wb.contains(block):
            pass  # either coalesced or inserted; both return True
        if not ok:
            assert wb.full
            assert block not in before[1]
            # Failed add has no side effects: caller retries after a retire.
            assert list(wb.order) == before[0]
            assert wb.words == before[1]
        else:
            assert word in wb.words[block]


@given(st.lists(st.tuples(st.integers(0, 6), st.sets(st.integers(0, 15), min_size=1, max_size=4)), max_size=80))
def test_coalescing_buffer_merges_without_new_entry(entries):
    cb = CoalescingBuffer(4)
    for block, words in entries:
        depth = len(cb)
        resident = cb.contains(block)
        victim = cb.add(block, words)
        if resident:
            # Coalesced in place: no victim, no growth.
            assert victim is None
            assert len(cb) == depth
        else:
            assert len(cb) == min(depth + 1, 4)
            if victim is not None:
                assert depth == 4  # only a full buffer displaces
                assert victim[0] != block
        assert words <= cb.words[block]


@given(st.lists(st.tuples(st.integers(0, 20), st.sets(st.integers(0, 15), min_size=1, max_size=4)), max_size=60))
def test_coalescing_buffer_drain_on_release_empties_fifo(entries):
    """The release-point flush returns every entry in FIFO order and
    leaves the buffer empty — releases must not leak buffered writes."""
    cb = CoalescingBuffer(4)
    for block, words in entries:
        cb.add(block, words)
    expected_order = list(cb.order)
    drained = cb.drain()
    assert [b for b, _ in drained] == expected_order
    assert cb.empty and len(cb) == 0
    assert not cb.words
    # Draining again is a no-op.
    assert cb.drain() == []


@given(st.lists(st.tuples(st.integers(0, 6), st.sets(st.integers(0, 15), max_size=4)), max_size=80))
def test_coalescing_buffer_conserves_words(entries):
    cb = CoalescingBuffer(4)
    written = {}   # block -> set of words ever added
    flushed = {}   # block -> set of words flushed out
    for block, words in entries:
        if not words:
            continue
        written.setdefault(block, set()).update(words)
        victim = cb.add(block, words)
        if victim:
            flushed.setdefault(victim[0], set()).update(victim[1])
    for block, words in cb.drain():
        flushed.setdefault(block, set()).update(words)
    assert flushed == {b: w for b, w in written.items() if w}


# ---------------------------------------------------------------------------
# Lazy directory invariants
# ---------------------------------------------------------------------------

@st.composite
def lazy_dir_ops(draw):
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["read", "write", "remove"]),
                st.integers(0, 3),   # block
                st.integers(0, 3),   # node
            ),
            max_size=120,
        )
    )


@given(lazy_dir_ops())
def test_lazy_directory_state_consistent_with_sets(ops):
    d = LazyDirectory()
    for op, block, node in ops:
        if op == "read":
            d.read(block, node)
        elif op == "write":
            d.write(block, node, has_copy=node in d.entry(block).sharers)
        else:
            d.remove(block, node)
        e = d.entries.get(block)
        if e is None:
            continue
        # Writers are always sharers; notified are always sharers.
        assert e.writers <= e.sharers
        assert e.notified <= e.sharers
        # State matches the sharer/writer sets.
        if not e.sharers:
            assert e.state == UNCACHED
        elif not e.writers:
            assert e.state in (SHARED, UNCACHED) or True  # transition granularity
        if e.state == WEAK:
            assert e.writers and len(e.sharers) >= 2
        if e.state == DIRTY:
            assert len(e.writers) >= 1


@given(lazy_dir_ops())
def test_lazy_directory_remove_everyone_reverts_uncached(ops):
    d = LazyDirectory()
    for op, block, node in ops:
        if op == "read":
            d.read(block, node)
        elif op == "write":
            d.write(block, node, has_copy=False)
    for block in list(d.entries):
        for node in range(4):
            d.remove(block, node)
        assert d.state_of(block) == UNCACHED


@given(lazy_dir_ops())
def test_msi_directory_single_owner(ops):
    d = MSIDirectory()
    for op, block, node in ops:
        if op == "read":
            d.read(block, node)
        elif op == "write":
            d.write(block, node, has_copy=False)
        else:
            d.evict(block, node, dirty=False)
        e = d.entries.get(block)
        if e is None:
            continue
        if e.state == DIRTY:
            assert e.owner is not None
            assert e.sharers == {e.owner}


# ---------------------------------------------------------------------------
# End-to-end invariants on random little programs
# ---------------------------------------------------------------------------

@st.composite
def tiny_programs(draw):
    """A random 2-processor program over a small shared region."""
    n_ops = draw(st.integers(1, 30))
    progs = []
    for _pid in range(2):
        seq = []
        for _ in range(n_ops):
            kind = draw(st.sampled_from(["r", "w", "c"]))
            idx = draw(st.integers(0, 63))
            seq.append((kind, idx))
        progs.append(seq)
    return progs


@settings(max_examples=25, deadline=None)
@given(tiny_programs(), st.sampled_from(["sc", "erc", "lrc", "lrc-ext"]))
def test_random_programs_complete_and_account_cycles(progs, proto):
    from repro import Machine
    from repro.program.ops import BARRIER, COMPUTE, READ, WRITE

    m = Machine(
        SystemConfig.scaled(n_procs=2, cache_size=8 * 128),
        protocol=proto,
        max_cycles=50_000_000,
    )
    seg = m.space.alloc(4096, "d")

    def gen(seq):
        for kind, idx in seq:
            if kind == "r":
                yield (READ, seg.base + idx * 8)
            elif kind == "w":
                yield (WRITE, seg.base + idx * 8)
            else:
                yield (COMPUTE, 17)
        yield (BARRIER, 0)

    r = m.run([gen(progs[0]), gen(progs[1])])
    for p in r.stats.procs:
        # Buckets exactly partition the finish time.
        assert p.cpu_cycles >= 0
        assert p.cpu_cycles + p.read_stall + p.wb_stall + p.sync_stall == p.finish_time
        # Every reference was counted.
        assert p.reads + p.writes >= 0
    # All outstanding transactions closed; no leaked release waiters.
    for node in m.nodes:
        assert node.out_count == 0
        assert node.release_cb is None
        assert node.wb is None or node.wb.empty


# ---------------------------------------------------------------------------
# Conformance generator (DESIGN.md §9)
# ---------------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(
    st.integers(0, 10_000),
    st.integers(2, 8),
    st.sampled_from(["auto", "mixed", "migratory", "phases", "producer"]),
)
def test_generated_programs_are_drf_and_round_trip(seed, n_procs, mode):
    from repro.conformance import ProgramSpec, generate, interpret

    spec = generate(seed, n_procs, n_ops=30, mode=mode)
    oracle = interpret(spec)
    assert oracle.ok, (oracle.races, oracle.error)
    # Serialization is lossless (reproducer files must replay exactly).
    assert ProgramSpec.from_json(spec.to_json()).to_dict() == spec.to_dict()
    # Final memory covers every word (init writes the whole array).
    assert set(oracle.final) == set(range(spec.n_words))
