"""Tests for the Table 2 miss classifier."""

from repro.stats.classification import (
    CATEGORIES,
    COLD,
    EVICTION,
    FALSE_SHARING,
    MissClassifier,
    TRUE_SHARING,
    WRITE_MISS,
)


class TestClassifier:
    def test_first_access_is_cold(self):
        c = MissClassifier()
        assert c.classify_miss(proc=0, block=1, word=0) == COLD

    def test_second_proc_first_access_also_cold(self):
        c = MissClassifier()
        c.classify_miss(0, 1, 0)
        assert c.classify_miss(1, 1, 0) == COLD

    def test_eviction_miss(self):
        c = MissClassifier()
        c.classify_miss(0, 1, 0)
        c.record_eviction(0, 1)
        assert c.classify_miss(0, 1, 0) == EVICTION

    def test_true_sharing(self):
        c = MissClassifier()
        c.classify_miss(0, 1, 0)
        c.record_invalidation(0, 1)
        c.record_write(proc=1, block=1, word=0)  # another proc writes my word
        assert c.classify_miss(0, 1, 0) == TRUE_SHARING

    def test_false_sharing_different_word(self):
        c = MissClassifier()
        c.classify_miss(0, 1, 0)
        c.record_invalidation(0, 1)
        c.record_write(proc=1, block=1, word=5)  # a different word
        assert c.classify_miss(0, 1, 0) == FALSE_SHARING

    def test_false_sharing_no_writes_at_all(self):
        c = MissClassifier()
        c.classify_miss(0, 1, 0)
        c.record_invalidation(0, 1)
        assert c.classify_miss(0, 1, 0) == FALSE_SHARING

    def test_own_write_does_not_make_true_sharing(self):
        c = MissClassifier()
        c.classify_miss(0, 1, 0)
        c.record_invalidation(0, 1)
        c.record_write(proc=0, block=1, word=0)  # my own write
        assert c.classify_miss(0, 1, 0) == FALSE_SHARING

    def test_write_before_loss_is_not_true_sharing(self):
        c = MissClassifier()
        c.record_write(proc=1, block=1, word=0)  # happens before the loss
        c.classify_miss(0, 1, 0)
        c.record_invalidation(0, 1)
        assert c.classify_miss(0, 1, 0) == FALSE_SHARING

    def test_write_upgrade_category(self):
        c = MissClassifier()
        assert c.classify_write_upgrade(0, 1) == WRITE_MISS
        assert c.counts[WRITE_MISS] == 1

    def test_upgrade_marks_block_touched(self):
        c = MissClassifier()
        c.classify_write_upgrade(0, 1)
        # Not cold anymore: the block was present (read-only) already.
        c.record_invalidation(0, 1)
        c.record_write(1, 1, 0)
        assert c.classify_miss(0, 1, 0) == TRUE_SHARING

    def test_percentages_sum_to_100(self):
        c = MissClassifier()
        c.classify_miss(0, 1, 0)
        c.record_eviction(0, 1)
        c.classify_miss(0, 1, 0)
        c.classify_write_upgrade(0, 1)
        p = c.percentages()
        assert abs(sum(p.values()) - 100.0) < 1e-9
        assert set(p) == set(CATEGORIES)

    def test_percentages_empty(self):
        p = MissClassifier().percentages()
        assert all(v == 0.0 for v in p.values())

    def test_eviction_takes_precedence_over_foreign_writes(self):
        # A capacity miss is an eviction miss even if others wrote since:
        # the processor would have missed regardless of coherence.
        c = MissClassifier()
        c.classify_miss(0, 1, 0)
        c.record_eviction(0, 1)
        c.record_write(1, 1, 0)
        assert c.classify_miss(0, 1, 0) == EVICTION

    def test_counts_accumulate(self):
        c = MissClassifier()
        for b in range(5):
            c.classify_miss(0, b, 0)
        assert c.counts[COLD] == 5
        assert c.total == 5

    def test_per_proc_blocks_independent(self):
        c = MissClassifier()
        c.classify_miss(0, 1, 0)
        c.record_invalidation(0, 1)
        # proc 1's history with block 1 is separate.
        assert c.classify_miss(1, 1, 0) == COLD
