"""Shared pytest plumbing for the tier-1 suite."""

import os

import pytest

from repro.faults.watchdog import DEFAULT_STALL_CYCLES, ENV_STALL_CYCLES

# The stall watchdog is on for every machine built under pytest (unless
# a test pins its own budget): a livelocked simulation becomes a
# diagnosable SimulationStall instead of a hung test run.  Watchdog
# checks are pure observation, so simulated numbers are unchanged.
os.environ.setdefault(ENV_STALL_CYCLES, str(DEFAULT_STALL_CYCLES))


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the tests/golden/ regression fixtures from the "
        "current simulator output instead of comparing against them",
    )


@pytest.fixture
def update_golden(request):
    return request.config.getoption("--update-golden")
