"""Shared pytest plumbing for the tier-1 suite."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the tests/golden/ regression fixtures from the "
        "current simulator output instead of comparing against them",
    )


@pytest.fixture
def update_golden(request):
    return request.config.getoption("--update-golden")
