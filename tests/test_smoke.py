"""End-to-end smoke tests: tiny hand-written programs on all protocols."""

import pytest

from repro import Machine, SystemConfig
from repro.program.ops import (
    ACQUIRE,
    BARRIER,
    COMPUTE,
    FENCE,
    READ,
    READ_RUN,
    RELEASE,
    RW_RUN,
    WRITE,
    WRITE_RUN,
)

PROTOCOLS = ["sc", "erc", "lrc", "lrc-ext", "tardis"]


def cfg(n=4, **kw):
    kw.setdefault("cache_size", 8 * 128)  # 8 lines: tiny, forces evictions
    return SystemConfig.scaled(n_procs=n, **kw)


@pytest.mark.parametrize("proto", PROTOCOLS)
class TestSingleProcessor:
    def test_read_only_program(self, proto):
        m = Machine(cfg(1), protocol=proto)
        seg = m.space.alloc(4096, "a")

        def prog(pid):
            yield (READ_RUN, seg.base, 64, 8)
            yield (READ_RUN, seg.base, 64, 8)  # second pass: all hits

        r = m.run([prog(0)])
        st = r.stats.procs[0]
        assert st.reads == 128
        # 4096 bytes / 128-byte lines touched by 64*8=512 bytes -> 4 lines.
        assert st.read_misses == 4
        assert st.finish_time > 128

    def test_write_program_completes(self, proto):
        m = Machine(cfg(1), protocol=proto)
        seg = m.space.alloc(4096, "a")

        def prog(pid):
            yield (WRITE_RUN, seg.base, 64, 8)
            yield (FENCE,)

        r = m.run([prog(0)])
        st = r.stats.procs[0]
        assert st.writes == 64
        assert st.misses > 0

    def test_compute_advances_time(self, proto):
        m = Machine(cfg(1), protocol=proto)

        def prog(pid):
            yield (COMPUTE, 5000)

        r = m.run([prog(0)])
        assert r.stats.procs[0].finish_time >= 5000
        assert r.stats.procs[0].cpu_cycles >= 5000

    def test_rw_run(self, proto):
        m = Machine(cfg(1), protocol=proto)
        seg = m.space.alloc(4096, "a")

        def prog(pid):
            yield (RW_RUN, seg.base, 32, 8)
            yield (FENCE,)

        r = m.run([prog(0)])
        st = r.stats.procs[0]
        assert st.reads == 32 and st.writes == 32


@pytest.mark.parametrize("proto", PROTOCOLS)
class TestMultiProcessor:
    def test_barrier_joins_everyone(self, proto):
        n = 4
        m = Machine(cfg(n), protocol=proto)

        def prog(pid):
            yield (COMPUTE, 100 * (pid + 1))
            yield (BARRIER, 0)

        r = m.run([prog(p) for p in range(n)])
        # Everyone leaves the barrier after the slowest arrival.
        finish = [p.finish_time for p in r.stats.procs]
        assert min(finish) >= 400
        # Earlier arrivals accumulated sync wait.
        assert r.stats.procs[0].sync_stall > r.stats.procs[3].sync_stall

    def test_lock_mutual_progress(self, proto):
        n = 4
        m = Machine(cfg(n), protocol=proto)
        seg = m.space.alloc(4096, "shared")

        def prog(pid):
            for _ in range(3):
                yield (ACQUIRE, 7)
                yield (READ, seg.base)
                yield (WRITE, seg.base)
                yield (RELEASE, 7)
            yield (BARRIER, 0)

        r = m.run([prog(p) for p in range(n)])
        assert all(p.done for p in (m.nodes[i].proc for i in range(n)))
        total_acq = sum(p.acquires for p in r.stats.procs)
        assert total_acq == 12

    def test_producer_consumer_flag(self, proto):
        """Producer writes data then releases a lock the consumer takes."""
        n = 2
        m = Machine(cfg(n), protocol=proto)
        data = m.space.alloc(4096, "data")

        def producer(pid):
            yield (ACQUIRE, 1)
            yield (WRITE_RUN, data.base, 16, 8)
            yield (RELEASE, 1)
            yield (BARRIER, 0)

        def consumer(pid):
            yield (COMPUTE, 20000)  # ensure producer went first
            yield (ACQUIRE, 1)
            yield (READ_RUN, data.base, 16, 8)
            yield (RELEASE, 1)
            yield (BARRIER, 0)

        r = m.run([producer(0), consumer(1)])
        assert r.stats.procs[1].reads == 16

    def test_false_sharing_pattern_completes(self, proto):
        """Two writers in disjoint words of the same line, no sync."""
        n = 2
        m = Machine(cfg(n), protocol=proto)
        seg = m.space.alloc(4096, "line")

        def prog(pid):
            for _ in range(50):
                yield (WRITE, seg.base + 8 * pid)
                yield (READ, seg.base + 8 * pid)
            yield (BARRIER, 0)

        r = m.run([prog(p) for p in range(n)])
        assert r.stats.procs[0].writes == 50
        assert r.stats.procs[1].writes == 50


@pytest.mark.parametrize("proto", PROTOCOLS)
def test_determinism(proto):
    """Identical configurations produce identical cycle counts."""

    def build():
        m = Machine(cfg(4), protocol=proto)
        seg = m.space.alloc(8192, "a")

        def prog(pid):
            yield (RW_RUN, seg.base + pid * 32, 64, 8)
            yield (BARRIER, 0)
            yield (READ_RUN, seg.base, 64, 8)
            yield (BARRIER, 1)

        return m.run([prog(p) for p in range(4)])

    a, b = build(), build()
    assert a.exec_time == b.exec_time
    assert a.traffic.total_messages == b.traffic.total_messages
    for pa, pb in zip(a.stats.procs, b.stats.procs):
        assert pa.finish_time == pb.finish_time
        assert pa.misses == pb.misses


def test_unknown_protocol_rejected():
    with pytest.raises(ValueError):
        Machine(cfg(2), protocol="mesif")


def test_wrong_program_count_rejected():
    m = Machine(cfg(2), protocol="lrc")
    with pytest.raises(ValueError):
        m.run([iter(())])


def test_machine_single_use():
    m = Machine(cfg(1), protocol="lrc")

    def prog(pid):
        yield (COMPUTE, 10)

    m.run([prog(0)])
    with pytest.raises(RuntimeError):
        m.run([prog(0)])
