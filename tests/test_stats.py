"""Tests for cycle-bucket counters and aggregation."""

from repro.stats import MachineStats, ProcStats


class TestProcStats:
    def test_cpu_is_derived(self):
        p = ProcStats()
        p.finish_time = 1000
        p.read_stall = 200
        p.wb_stall = 100
        p.sync_stall = 300
        assert p.cpu_cycles == 400

    def test_miss_rate(self):
        p = ProcStats()
        p.reads = 80
        p.writes = 20
        p.read_misses = 5
        p.write_misses = 3
        p.upgrade_misses = 2
        assert p.references == 100
        assert p.misses == 10
        assert p.miss_rate == 0.1

    def test_miss_rate_no_refs(self):
        assert ProcStats().miss_rate == 0.0


class TestMachineStats:
    def make(self):
        m = MachineStats(3)
        for i, p in enumerate(m.procs):
            p.finish_time = 1000 * (i + 1)
            p.read_stall = 100 * (i + 1)
            p.reads = 50
            p.read_misses = i
        return m

    def test_exec_time_is_max(self):
        assert self.make().exec_time == 3000

    def test_total_cycles_is_sum(self):
        assert self.make().total_cycles == 6000

    def test_breakdown_sums_to_total(self):
        m = self.make()
        b = m.breakdown()
        assert sum(b.values()) == m.total_cycles

    def test_breakdown_normalized(self):
        m = self.make()
        b = m.breakdown_normalized(6000)
        assert abs(sum(b.values()) - 1.0) < 1e-12

    def test_aggregate_miss_rate(self):
        m = self.make()
        assert m.references == 150
        assert m.misses == 3
        assert m.miss_rate == 3 / 150

    def test_summary_keys(self):
        s = self.make().summary()
        for k in ("exec_time", "total_cycles", "miss_rate", "cpu", "read", "write", "sync"):
            assert k in s
