"""Tests for the cache, write buffer, and coalescing buffer."""

import pytest

from repro.cache import INVALID, RO, RW, Cache, CoalescingBuffer, WriteBuffer
from repro.config import SystemConfig


def small_cache(n_lines=8):
    cfg = SystemConfig.scaled(n_procs=4, cache_size=n_lines * 128)
    return Cache(cfg)


class TestCache:
    def test_initially_empty(self):
        c = small_cache()
        assert c.lookup(0) == INVALID
        assert c.resident_blocks() == []

    def test_install_and_lookup(self):
        c = small_cache()
        assert c.install(3, RO) is None
        assert c.lookup(3) == RO
        assert c.resident(3)

    def test_direct_mapped_conflict_evicts(self):
        c = small_cache(n_lines=8)
        c.install(1, RO)
        victim = c.install(1 + 8, RW)  # same set
        assert victim == (1, RO)
        assert c.lookup(1) == INVALID
        assert c.lookup(9) == RW

    def test_install_same_block_no_eviction(self):
        c = small_cache()
        c.install(5, RO)
        assert c.install(5, RW) is None
        assert c.lookup(5) == RW

    def test_victim_of_preview(self):
        c = small_cache(n_lines=8)
        c.install(2, RW)
        assert c.victim_of(2 + 8) == (2, RW)
        assert c.victim_of(3) is None
        # Preview must not mutate.
        assert c.lookup(2) == RW

    def test_upgrade(self):
        c = small_cache()
        c.install(4, RO)
        c.upgrade(4)
        assert c.lookup(4) == RW

    def test_upgrade_missing_raises(self):
        c = small_cache()
        with pytest.raises(KeyError):
            c.upgrade(4)

    def test_downgrade(self):
        c = small_cache()
        c.install(4, RW)
        c.downgrade(4)
        assert c.lookup(4) == RO

    def test_invalidate(self):
        c = small_cache()
        c.install(4, RO)
        assert c.invalidate(4)
        assert c.lookup(4) == INVALID
        assert not c.invalidate(4)  # already gone
        assert c.coherence_invalidations == 1

    def test_eviction_counter(self):
        c = small_cache(n_lines=8)
        c.install(0, RO)
        c.install(8, RO)
        c.install(16, RO)
        assert c.evictions == 2

    def test_clear(self):
        c = small_cache()
        c.install(1, RO)
        c.install(2, RW)
        c.clear()
        assert c.resident_blocks() == []

    def test_rejects_non_power_of_two_sets(self):
        cfg = SystemConfig.scaled(n_procs=4, cache_size=3 * 128)
        with pytest.raises(ValueError):
            Cache(cfg)

    def test_whole_block_tags_distinguish_conflicting_blocks(self):
        c = small_cache(n_lines=8)
        c.install(8, RO)
        assert c.lookup(16) == INVALID  # same set, different block


class TestWriteBuffer:
    def test_add_and_coalesce(self):
        wb = WriteBuffer(4)
        assert wb.add(10, 0)
        assert wb.add(10, 3)  # coalesces
        assert len(wb) == 1
        assert wb.coalesced == 1

    def test_fifo_order(self):
        wb = WriteBuffer(4)
        wb.add(1, 0)
        wb.add(2, 0)
        assert wb.head() == 1
        assert wb.retire_head() == {0}
        assert wb.head() == 2

    def test_full_rejects_new_entries(self):
        wb = WriteBuffer(2)
        assert wb.add(1, 0)
        assert wb.add(2, 0)
        assert wb.full
        assert not wb.add(3, 0)
        # But coalescing into an existing entry still works when full.
        assert wb.add(1, 5)

    def test_contains_for_read_bypass(self):
        wb = WriteBuffer(4)
        wb.add(7, 2)
        assert wb.contains(7)
        assert not wb.contains(8)

    def test_retire_frees_slot(self):
        wb = WriteBuffer(1)
        wb.add(1, 0)
        assert not wb.add(2, 0)
        wb.retire_head()
        assert wb.add(2, 0)

    def test_empty_flag(self):
        wb = WriteBuffer(4)
        assert wb.empty
        wb.add(1, 0)
        assert not wb.empty

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            WriteBuffer(0)

    def test_fifo_is_a_deque(self):
        # O(1) head retirement: list.pop(0) was O(n) per retire.
        from collections import deque

        wb = WriteBuffer(64)
        for b in range(64):
            wb.add(b, 0)
        assert isinstance(wb.order, deque)
        retired = []
        while not wb.empty:
            retired.append(wb.head())
            wb.retire_head()
        assert retired == list(range(64))


class TestCoalescingBuffer:
    def test_merge_same_block(self):
        cb = CoalescingBuffer(4)
        assert cb.add(5, {0, 1}) is None
        assert cb.add(5, {2}) is None
        assert cb.words[5] == {0, 1, 2}
        assert cb.merges == 1

    def test_capacity_displaces_fifo_victim(self):
        cb = CoalescingBuffer(2)
        cb.add(1, {0})
        cb.add(2, {0})
        victim = cb.add(3, {0})
        assert victim == (1, {0})
        assert not cb.contains(1)
        assert cb.contains(2) and cb.contains(3)

    def test_drain_returns_all_fifo(self):
        cb = CoalescingBuffer(4)
        cb.add(1, {0})
        cb.add(2, {1})
        out = cb.drain()
        assert out == [(1, {0}), (2, {1})]
        assert cb.empty

    def test_remove_specific_block(self):
        cb = CoalescingBuffer(4)
        cb.add(1, {0, 2})
        assert cb.remove(1) == {0, 2}
        assert cb.remove(1) is None
        assert cb.empty

    def test_add_copies_word_set(self):
        cb = CoalescingBuffer(4)
        ws = {0}
        cb.add(1, ws)
        ws.add(99)
        assert cb.words[1] == {0}

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            CoalescingBuffer(0)

    def test_fifo_is_a_deque(self):
        from collections import deque

        cb = CoalescingBuffer(8)
        for b in range(12):
            cb.add(b, {0})
        assert isinstance(cb.order, deque)
        assert list(cb.order) == list(range(4, 12))  # oldest 4 displaced
