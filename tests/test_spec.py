"""Tests for the ExperimentSpec currency (fingerprints, round-trips,
back-compat with the run_experiment keyword API)."""

import pytest

from repro.harness import experiments
from repro.harness.experiments import clear_cache, run_experiment, run_spec
from repro.harness.spec import SPEC_VERSION, ExperimentSpec


class TestConstruction:
    def test_overrides_normalized_from_dict(self):
        a = ExperimentSpec("mp3d", "lrc", overrides={"line_size": 64, "mem_bw": 4.0})
        b = ExperimentSpec(
            "mp3d", "lrc", overrides=(("mem_bw", 4.0), ("line_size", 64))
        )
        assert a == b
        assert hash(a) == hash(b)
        assert a.overrides == (("line_size", 64), ("mem_bw", 4.0))

    def test_specs_are_hashable_and_comparable(self):
        a = ExperimentSpec("mp3d", "lrc", n_procs=4, small=True)
        b = ExperimentSpec("mp3d", "lrc", n_procs=4, small=True)
        c = ExperimentSpec("mp3d", "erc", n_procs=4, small=True)
        assert a == b and a is not b
        assert len({a, b, c}) == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ExperimentSpec("mp3d", "lrc", kind="quantum")

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError, match="application"):
            ExperimentSpec("linpack", "lrc")

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="protocol"):
            ExperimentSpec("mp3d", "mesi")

    def test_bad_n_procs_rejected(self):
        with pytest.raises(ValueError, match="n_procs"):
            ExperimentSpec("mp3d", "lrc", n_procs=0)

    def test_with_replaces_fields(self):
        a = ExperimentSpec("mp3d", "lrc", n_procs=4)
        b = a.with_(protocol="erc")
        assert b.protocol == "erc" and b.app == "mp3d" and b.n_procs == 4
        assert a.protocol == "lrc"  # frozen original untouched


class TestDerived:
    def test_config_applies_kind_and_overrides(self):
        default = ExperimentSpec("mp3d", "lrc", n_procs=8, overrides={"line_size": 64})
        future = ExperimentSpec("mp3d", "lrc", kind="future", n_procs=8)
        assert default.config().line_size == 64
        assert default.config().n_procs == 8
        assert future.config().mem_setup == 40
        assert future.config().line_size == 256

    def test_app_params_follow_small(self):
        big = ExperimentSpec("gauss", "lrc")
        small = ExperimentSpec("gauss", "lrc", small=True)
        assert big.app_params()["n"] > small.app_params()["n"]

    def test_label_mentions_distinguishing_fields(self):
        s = ExperimentSpec(
            "mp3d", "lrc", kind="future", n_procs=8, classify=True, small=True,
            overrides={"line_size": 64},
        )
        for needle in ("mp3d", "lrc", "future", "p=8", "classify", "small", "line_size=64"):
            assert needle in s.label()


class TestFingerprint:
    def test_pinned_values(self):
        # Pinned: silent fingerprint drift would orphan every stored
        # result.  A deliberate change must bump SPEC_VERSION.
        assert SPEC_VERSION == 3
        s = ExperimentSpec("mp3d", "lrc", n_procs=4, small=True)
        assert s.fingerprint() == "de8f70eba74e2ded53ead757"
        o = ExperimentSpec("mp3d", "lrc", n_procs=4, small=True,
                           overrides={"line_size": 64})
        assert o.fingerprint() == "449d7ac385ec01df322fc34f"

    def test_equal_specs_equal_fingerprints(self):
        a = ExperimentSpec("fft", "erc", overrides={"mem_bw": 4.0})
        b = ExperimentSpec("fft", "erc", overrides=(("mem_bw", 4.0),))
        assert a.fingerprint() == b.fingerprint()

    def test_every_field_is_significant(self):
        base = ExperimentSpec("mp3d", "lrc", n_procs=4, small=True)
        variants = [
            base.with_(app="gauss"),
            base.with_(protocol="erc"),
            base.with_(kind="future"),
            base.with_(n_procs=8),
            base.with_(classify=True),
            base.with_(small=False),
            base.with_(overrides=(("line_size", 64),)),
        ]
        prints = {v.fingerprint() for v in variants}
        assert base.fingerprint() not in prints
        assert len(prints) == len(variants)

    def test_roundtrip_through_dict(self):
        s = ExperimentSpec(
            "cholesky", "lrc-ext", kind="future", n_procs=8, classify=True,
            small=True, overrides={"mem_setup": 40},
        )
        back = ExperimentSpec.from_dict(s.to_dict())
        assert back == s
        assert back.fingerprint() == s.fingerprint()


class TestTransientFields:
    def test_check_invariants_not_fingerprinted(self):
        # The checker is pure observation: a checked and an unchecked
        # spec must share one result-store slot and one memo entry.
        base = ExperimentSpec("mp3d", "lrc", n_procs=4, small=True)
        checked = base.with_(check_invariants=True)
        assert checked.check_invariants
        assert checked.fingerprint() == base.fingerprint()
        assert checked == base
        assert hash(checked) == hash(base)

    def test_to_dict_roundtrips_check_invariants(self):
        s = ExperimentSpec("mp3d", "lrc", small=True, check_invariants=True)
        d = s.to_dict()
        assert d["check_invariants"] is True
        assert ExperimentSpec.from_dict(d).check_invariants

    def test_from_dict_accepts_old_dicts(self):
        # Dicts persisted before the field existed must still load.
        s = ExperimentSpec("mp3d", "lrc", small=True)
        d = s.to_dict()
        d.pop("check_invariants")
        back = ExperimentSpec.from_dict(d)
        assert back == s
        assert not back.check_invariants


class TestBackCompat:
    def test_run_experiment_builds_the_same_memo_entry(self):
        clear_cache()
        r1 = run_experiment("mp3d", "lrc", n_procs=4, small=True, line_size=64)
        spec = ExperimentSpec(
            "mp3d", "lrc", n_procs=4, small=True, overrides={"line_size": 64}
        )
        r2 = run_spec(spec)
        assert r1 is r2  # same memo entry: one simulation, two front doors

    def test_cache_module_attr_is_deprecated(self):
        with pytest.warns(DeprecationWarning, match="_CACHE"):
            cache = experiments._CACHE
        assert cache is experiments._MEMO

    def test_unknown_module_attr_still_raises(self):
        with pytest.raises(AttributeError):
            experiments._NOT_A_THING


class TestSeedDeterminism:
    """Everything downstream of a spec is a pure function of it.

    The only RNG sites in src/ are seeded from ``config.seed`` (apps via
    ``np.random.default_rng(config.seed + salt)``, the conformance
    generator via ``random.Random(seed)``), so two identical specs must
    produce identical fingerprints *and* bit-identical RunResults from
    independent machine instances.
    """

    @pytest.mark.parametrize("app,proto", [
        ("mp3d", "lrc"),          # heavy np.random use in the front end
        ("barnes", "erc"),        # rng-built quadtrees
        ("fuzz", "lrc-ext"),      # random.Random program generation
    ])
    def test_identical_specs_identical_results(self, app, proto):
        a = ExperimentSpec(app, proto, n_procs=4, small=True,
                           overrides={"seed": 42})
        b = ExperimentSpec(app, proto, n_procs=4, small=True,
                           overrides={"seed": 42})
        assert a.fingerprint() == b.fingerprint()
        # Fresh runs, no memo: bit-identical numbers all the way down.
        assert a.run().to_dict() == b.run().to_dict()

    def test_seed_override_changes_fingerprint_and_result(self):
        a = ExperimentSpec("fuzz", "lrc", n_procs=4, small=True,
                           overrides={"seed": 1})
        b = ExperimentSpec("fuzz", "lrc", n_procs=4, small=True,
                           overrides={"seed": 2})
        assert a.fingerprint() != b.fingerprint()
        assert a.run().to_dict() != b.run().to_dict()

    def test_quality_model_seed_determinism(self):
        import numpy as np

        from repro.apps.mp3d_quality import run_quality_model

        a = run_quality_model(particles=128, steps=3, mode="lazy", seed=42)
        b = run_quality_model(particles=128, steps=3, mode="lazy", seed=42)
        assert np.array_equal(a, b)
