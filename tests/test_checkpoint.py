"""Checkpoint/restore tests (DESIGN.md §15).

The core guarantee under test: a machine snapshotted at a quiescent
point and restored resumes **bit-identically** — same cycle counts,
traffic, and classifier output as the uninterrupted run — with the
invariant checker on and a phase-scripted fault plan active.  Plus the
envelope: versioned, checksummed, atomic on disk, loud about corruption.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.machine import Machine
from repro.engine.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    CheckpointUnsupported,
    restore_machine,
    snapshot_machine,
    snapshot_path,
)
from repro.faults.plan import FaultPhase, FaultPlan
from repro.harness.presets import APP_PRESETS_SMALL, bench_config
from repro.program.stream import recorded_stream
from repro.protocols import all_names

#: A plan with base rates *and* a scripted outage window, so restored
#: runs must reproduce the injector's PRNG stream and phase boundaries.
PHASED = FaultPlan(
    drop=0.01,
    dup=0.01,
    seed=5,
    phases=(FaultPhase(start=2000, end=9000, drop=0.04, delay=0.03),),
)


def _stream(cfg):
    return recorded_stream("kvstore", APP_PRESETS_SMALL["kvstore"], cfg)


def _machine(cfg, protocol, faults=None, shards=2):
    return Machine(
        cfg,
        protocol=protocol,
        shards=shards,
        check_invariants=True,
        faults=faults,
        stall_cycles=0,
    )


#: Uninterrupted reference results, keyed by (protocol, faulted) — each
#: hypothesis example needs the same reference, so run it once.
_REF = {}


def _reference(cfg, protocol, faults):
    key = (protocol, faults is not None)
    if key not in _REF:
        _REF[key] = _machine(cfg, protocol, faults).replay(_stream(cfg)).to_dict()
    return _REF[key]


class TestBitIdentity:
    """Tentpole: ``restore(snapshot(m))`` resumes bit-identically."""

    @settings(max_examples=6, deadline=None)
    @given(
        protocol=st.sampled_from(sorted(all_names())),
        epoch=st.integers(min_value=1, max_value=12),
        faulted=st.booleans(),
    )
    def test_sharded_restore_is_bit_identical(self, protocol, epoch, faulted):
        faults = PHASED if faulted else None
        cfg = bench_config(n_procs=8)
        ref = _reference(cfg, protocol, faults)

        m = _machine(cfg, protocol, faults)
        taken = {}

        def hook(_t):
            taken["epochs"] = taken.get("epochs", 0) + 1
            if taken["epochs"] == epoch and "ckpt" not in taken:
                taken["ckpt"] = m.snapshot()

        m.sim.barrier_hook = hook
        # Taking a snapshot must never perturb the running machine.
        assert m.replay(_stream(cfg)).to_dict() == ref
        if "ckpt" not in taken:
            return  # the run finished in fewer epochs than the draw
        resumed = Machine.restore(taken["ckpt"]).resume().to_dict()
        assert resumed == ref

    def test_serial_restore_is_bit_identical(self):
        cfg = bench_config(n_procs=4)
        ref = Machine(cfg, protocol="lrc").replay(_stream(cfg)).to_dict()
        m = Machine(cfg, protocol="lrc")
        taken = {}
        m.sim.at(5000, lambda: taken.setdefault("ckpt", m.snapshot()))
        assert m.replay(_stream(cfg)).to_dict() == ref
        ckpt = taken["ckpt"]
        assert ckpt.epoch == -1 and ckpt.now == 5000
        assert Machine.restore(ckpt).resume().to_dict() == ref

    def test_restore_round_trips_through_disk(self, tmp_path):
        cfg = bench_config(n_procs=4)
        ref = Machine(cfg, protocol="sc").replay(_stream(cfg)).to_dict()
        m = Machine(cfg, protocol="sc")
        taken = {}
        m.sim.at(5000, lambda: taken.setdefault("ckpt", m.snapshot()))
        m.replay(_stream(cfg))
        path = taken["ckpt"].save(snapshot_path(tmp_path, "mid"))
        assert Machine.restore(Checkpoint.load(path)).resume().to_dict() == ref


class TestEnvelope:
    """Checkpoint files are versioned, checksummed, and loud when bad."""

    def _fresh_checkpoint(self):
        return snapshot_machine(Machine(bench_config(n_procs=4), protocol="sc"))

    def test_file_roundtrip(self, tmp_path):
        cp = self._fresh_checkpoint()
        path = cp.save(snapshot_path(tmp_path, "seed"))
        back = Checkpoint.load(path)
        assert back == cp
        assert back.version == CHECKPOINT_VERSION
        assert restore_machine(back).config.n_procs == 4

    def test_corrupt_payload_is_refused(self, tmp_path):
        path = self._fresh_checkpoint().save(snapshot_path(tmp_path, "c"))
        raw = bytearray(path.read_bytes())
        i = raw.index(b"\n") + 10  # a payload byte, past the header
        raw[i] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="corrupt"):
            Checkpoint.load(path)

    def test_truncated_file_is_refused(self, tmp_path):
        path = self._fresh_checkpoint().save(snapshot_path(tmp_path, "t"))
        path.write_bytes(path.read_bytes()[:-16])
        with pytest.raises(CheckpointError, match="truncated"):
            Checkpoint.load(path)

    def test_non_checkpoint_file_is_refused(self, tmp_path):
        path = tmp_path / "nope.ckpt"
        path.write_bytes(b'{"magic":"something-else"}\n')
        with pytest.raises(CheckpointError, match="not a checkpoint"):
            Checkpoint.load(path)
        path.write_bytes(b"\x00\x01 not json\n")
        with pytest.raises(CheckpointError, match="header"):
            Checkpoint.load(path)

    def test_missing_file_is_refused(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            Checkpoint.load(tmp_path / "absent.ckpt")


class TestUnsupported:
    def test_generator_engine_machine_is_refused(self):
        m = Machine(bench_config(n_procs=4), protocol="sc")

        def program():
            yield ("read", 0)

        m.nodes[0].proc.set_program(program())
        with pytest.raises(CheckpointUnsupported, match="generator"):
            snapshot_machine(m)

    def test_snapshot_requires_a_machine_backref(self):
        from repro.engine.simulator import Simulator

        with pytest.raises(CheckpointError, match="machine"):
            Simulator().snapshot()
