"""Application-level tests: structure, determinism, and completion."""

import pytest

from repro import Machine, SystemConfig
from repro.apps import APPS, AppContext, BarnesHut, BlockedLU, Cholesky, FFT, Gauss, LocusRoute, MP3D
from repro.apps.barnes import _Quadtree
from repro.apps.mp3d_quality import quality_divergence, run_quality_model

import numpy as np

TINY = {
    "gauss": dict(n=24),
    "fft": dict(m=256),
    "blu": dict(n=24, block=8),
    "barnes": dict(bodies=48, steps=1),
    "cholesky": dict(ncols=40),
    "locusroute": dict(width=32, height=8, wires=24, passes=1),
    "mp3d": dict(particles=128, steps=2, cells=64),
}


def machine(n=4, proto="lrc", **kw):
    kw.setdefault("cache_size", 4096)
    return Machine(SystemConfig.scaled(n_procs=n, **kw), protocol=proto, max_cycles=10**9)


def ctx(n=4, **kw):
    """A machine-free app context (structure-only tests)."""
    kw.setdefault("cache_size", 4096)
    return AppContext(SystemConfig.scaled(n_procs=n, **kw))


def run_app(name, n=4, proto="lrc", **params):
    m = machine(n, proto)
    p = dict(TINY[name]); p.update(params)
    app = APPS[name](AppContext.for_machine(m), **p)
    return m.run([app.program(i) for i in range(n)]), m


class TestRegistry:
    def test_all_apps_registered(self):
        assert set(APPS) == {
            "gauss", "fft", "blu", "barnes", "cholesky", "locusroute", "mp3d",
            "fuzz",  # conformance workload (DESIGN.md §9)
            "kvstore", "taskqueue", "pubsub",  # service workloads (§13)
        }

    @pytest.mark.parametrize("name", sorted(TINY))
    def test_apps_complete_on_all_protocols(self, name):
        for proto in ("sc", "erc", "lrc", "lrc-ext"):
            r, _ = run_app(name, proto=proto)
            assert r.exec_time > 0
            assert r.stats.references > 0

    @pytest.mark.parametrize("name", sorted(TINY))
    def test_apps_deterministic(self, name):
        a, _ = run_app(name)
        b, _ = run_app(name)
        assert a.exec_time == b.exec_time
        assert a.stats.references == b.stats.references
        assert a.traffic.total_messages == b.traffic.total_messages

    @pytest.mark.parametrize("name", sorted(TINY))
    def test_reference_count_protocol_independent(self, name):
        """The front end emits the same workload to every protocol."""
        counts = set()
        for proto in ("sc", "erc", "lrc"):
            r, _ = run_app(name, proto=proto)
            counts.add(r.stats.references)
        assert len(counts) == 1


class TestGauss:
    def test_reference_volume_scales_as_n_cubed(self):
        small, _ = run_app("gauss", n=2, proto="lrc")
        big_m = machine(2)
        app = Gauss(AppContext.for_machine(big_m), n=48)
        big = big_m.run([app.program(i) for i in range(2)])
        ratio = big.stats.references / small.stats.references
        assert 6 < ratio < 11  # (48/24)^3 = 8

    def test_rows_are_line_aligned(self):
        m = ctx(2)
        app = Gauss(m, n=24)
        assert app.row_bytes % m.config.line_size == 0

    def test_every_row_flag_set_exactly_once(self):
        m = ctx(4)
        app = Gauss(m, n=24)
        from repro.program.ops import SET_FLAG
        sets = []
        for pid in range(4):
            sets += [op[1] for op in app.program(pid) if op[0] == SET_FLAG]
        assert sorted(sets) == list(range(app.row_flag, app.row_flag + 23))


class TestFFT:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            FFT(ctx(2), m=100)

    def test_butterfly_coverage(self):
        """Across all processors, every element is rewritten each phase."""
        m = ctx(4)
        app = FFT(m, m=256)
        from repro.program.ops import RW_RUN, BARRIER
        writes_per_phase = [0]
        for pid in range(4):
            phase = 0
            for op in app.program(pid):
                if op[0] == RW_RUN:
                    while len(writes_per_phase) <= phase:
                        writes_per_phase.append(0)
                    if phase < app.log_m:
                        writes_per_phase[phase] += op[2] // 2  # complex elems
                elif op[0] == BARRIER:
                    phase += 1
        for count in writes_per_phase[: app.log_m]:
            assert count == 256


class TestBlockedLU:
    def test_block_must_divide_n(self):
        with pytest.raises(ValueError):
            BlockedLU(ctx(2), n=25, block=8)

    def test_block_misalignment_creates_false_sharing_potential(self):
        m = ctx(4)
        app = BlockedLU(m, n=24, block=12)
        # 12 doubles = 96 bytes: not a multiple of the 128-byte line.
        assert (app.b * 8) % m.config.line_size != 0

    def test_ownership_covers_all_blocks(self):
        m = ctx(4)
        app = BlockedLU(m, n=24, block=8)
        owners = {app.owner(i, j) for i in range(3) for j in range(3)}
        assert owners <= set(range(4))
        assert len(owners) > 1


class TestBarnes:
    def test_quadtree_contains_all_bodies(self):
        rng = np.random.default_rng(1)
        pos = rng.random((64, 2))
        tree = _Quadtree(pos)
        found = []
        stack = [tree.root]
        while stack:
            c = stack.pop()
            found += c.bodies
            stack += [ch for ch in c.children if ch is not None]
        assert sorted(found) == list(range(64))

    def test_insertion_paths_end_at_leaf(self):
        rng = np.random.default_rng(2)
        tree = _Quadtree(rng.random((32, 2)))
        for b, path in enumerate(tree.paths):
            leaf = tree.cells[path[-1]]
            # path cells are connected root-to-leaf
            assert path[0] == tree.root.idx

    def test_traversal_visits_root_and_excludes_self(self):
        rng = np.random.default_rng(3)
        tree = _Quadtree(rng.random((32, 2)))
        cells, bodies = tree.traversal(5)
        assert tree.root.idx in cells
        assert 5 not in bodies

    def test_trees_differ_across_steps(self):
        m = ctx(2)
        app = BarnesHut(m, bodies=48, steps=2)
        assert len(app.trees) == 2
        # positions drifted: traversals differ for some body
        t0 = app.trees[0].traversal(0)
        t1 = app.trees[1].traversal(0)
        assert t0 != t1 or len(app.trees[0].cells) != len(app.trees[1].cells)


class TestCholesky:
    def test_dependencies_point_backward(self):
        m = ctx(4)
        app = Cholesky(m, ncols=40)
        for j, deps in enumerate(app.deps):
            assert all(d < j for d in deps)

    def test_columns_line_aligned(self):
        m = ctx(4)
        app = Cholesky(m, ncols=40)
        for off in app.col_off:
            assert off % m.config.line_size == 0

    def test_first_column_has_no_deps(self):
        m = ctx(4)
        app = Cholesky(m, ncols=40)
        assert app.deps[0] == []


class TestLocusRoute:
    def test_segments_stay_on_grid(self):
        m = ctx(4)
        app = LocusRoute(m, **TINY["locusroute"])
        for wire in app.wire_list:
            for cand in range(app.n_cand):
                for kind, fixed, a, b in app._route_segments(wire, cand):
                    assert a <= b
                    if kind == "h":
                        assert 0 <= fixed < app.h and 0 <= a and b < app.w
                    else:
                        assert 0 <= fixed < app.w and 0 <= a and b < app.h

    def test_route_connects_endpoints(self):
        m = ctx(4)
        app = LocusRoute(m, **TINY["locusroute"])
        for wire in app.wire_list[:10]:
            x1, y1, x2, y2 = wire
            for cand in range(app.n_cand):
                cells = set()
                for kind, fixed, a, b in app._route_segments(wire, cand):
                    for v in range(a, b + 1):
                        cells.add((v, fixed) if kind == "h" else (fixed, v))
                assert (x1, y1) in cells and (x2, y2) in cells


class TestMP3D:
    def test_trajectories_stay_in_cells(self):
        m = ctx(4)
        app = MP3D(m, **TINY["mp3d"])
        assert app.traj.min() >= 0
        assert app.traj.max() < app.n_cells

    def test_partners_share_cell(self):
        m = ctx(4)
        app = MP3D(m, **TINY["mp3d"])
        s, ps = np.nonzero(app.partner >= 0)
        for step, p in zip(s[:50], ps[:50]):
            mate = app.partner[step, p]
            assert app.traj[step, p] == app.traj[step, mate]


class TestMP3DQuality:
    def test_model_deterministic(self):
        a = run_quality_model(particles=128, steps=3, mode="sc")
        b = run_quality_model(particles=128, steps=3, mode="sc")
        assert np.allclose(a, b)

    def test_modes_diverge(self):
        a = run_quality_model(particles=256, steps=5, mode="sc")
        b = run_quality_model(particles=256, steps=5, mode="lazy")
        assert not np.allclose(a, b)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            run_quality_model(mode="tso")

    def test_divergence_shape(self):
        div = quality_divergence(particles=512, steps=5)
        assert set(div) == {"X", "Y", "Z"}
        assert div["X"] > max(div["Y"], div["Z"])
