"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "gauss" in out and "lrc-ext" in out


def test_run_small(capsys):
    assert main(["run", "mp3d", "--protocol", "lrc", "--procs", "4", "--small"]) == 0
    out = capsys.readouterr().out
    assert "miss_rate" in out and "exec_time" in out


def test_compare_small(capsys):
    assert main(["compare", "mp3d", "--procs", "4", "--small"]) == 0
    out = capsys.readouterr().out
    for proto in ("sc", "erc", "lrc", "lrc-ext"):
        assert proto in out


def test_rejects_unknown_app():
    with pytest.raises(SystemExit):
        main(["run", "linpack"])


def test_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        main(["run", "gauss", "--protocol", "mesi"])
