"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "gauss" in out and "lrc-ext" in out


def test_run_small(capsys):
    assert main(["run", "mp3d", "--protocol", "lrc", "--procs", "4", "--small"]) == 0
    out = capsys.readouterr().out
    assert "miss_rate" in out and "exec_time" in out


def test_compare_small(capsys):
    assert main(["compare", "mp3d", "--procs", "4", "--small"]) == 0
    out = capsys.readouterr().out
    for proto in ("sc", "erc", "lrc", "lrc-ext"):
        assert proto in out


def test_rejects_unknown_app():
    with pytest.raises(SystemExit):
        main(["run", "linpack"])


def test_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        main(["run", "gauss", "--protocol", "mesi"])


def test_figures_subset_with_store(tmp_path, capsys):
    from repro.harness.experiments import clear_cache

    store_dir = str(tmp_path / "results")
    argv = [
        "figures", "--only", "t1", "t3", "--procs", "4", "--small",
        "--jobs", "2", "--store-dir", store_dir,
    ]
    clear_cache()
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "Table 1" in cold and "Table 3" in cold
    assert "Miss rates" in cold
    # t3 needs erc/lrc/lrc-ext/tardis for 7 apps = 28 stored results.
    assert len(list((tmp_path / "results").glob("*.json"))) == 28

    # Warm rerun: served from the store, bit-identical output.
    clear_cache()
    assert main(argv) == 0
    assert capsys.readouterr().out == cold


def test_figures_no_store(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["figures", "--only", "f4", "--procs", "4", "--small",
                 "--no-store"]) == 0
    assert "Figure 4" in capsys.readouterr().out
    assert not (tmp_path / ".repro-results").exists()


def test_figures_rejects_unknown_artifact():
    with pytest.raises(SystemExit):
        main(["figures", "--only", "f13"])


# ---------------------------------------------------------------------------
# trace
# ---------------------------------------------------------------------------

def test_trace_clean_run(capsys):
    assert main(["trace", "gauss", "--protocol", "lrc", "--procs", "2",
                 "--small"]) == 0
    out = capsys.readouterr().out
    assert "invariants ok" in out
    assert "msg" in out  # event-kind histogram rendered


def test_trace_jsonl_export(tmp_path, capsys):
    import json

    out_file = tmp_path / "events.jsonl"
    assert main(["trace", "gauss", "--protocol", "sc", "--procs", "2",
                 "--small", "--out", str(out_file)]) == 0
    lines = out_file.read_text().splitlines()
    assert lines
    for line in lines[:20]:
        ev = json.loads(line)
        assert {"seq", "t", "kind", "node"} <= set(ev)
    # seq strictly increasing across the buffer.
    seqs = [json.loads(l)["seq"] for l in lines]
    assert seqs == sorted(seqs)


def test_trace_violation_prints_window(tmp_path, capsys, monkeypatch):
    from repro.protocols import PROTOCOLS
    from tests.test_trace import BrokenReleaseLRC

    monkeypatch.setitem(PROTOCOLS, BrokenReleaseLRC.name, BrokenReleaseLRC)
    assert main(["trace", "gauss", "--protocol", BrokenReleaseLRC.name,
                 "--procs", "2", "--small", "--window", "5"]) == 1
    err = capsys.readouterr().err
    assert "INVARIANT VIOLATION" in err
    assert "event window" in err
    assert "violation" in err  # the anchored event itself is rendered


# ---------------------------------------------------------------------------
# fuzz
# ---------------------------------------------------------------------------

def test_fuzz_clean_exit_zero(capsys):
    assert main(["fuzz", "--seed", "0", "--iters", "2", "--procs", "4",
                 "--n-ops", "30"]) == 0
    assert "all clean" in capsys.readouterr().out


def test_fuzz_single_protocol(capsys):
    assert main(["fuzz", "--seed", "3", "--iters", "1", "--procs", "2",
                 "--n-ops", "30", "--protocols", "lrc"]) == 0
    out = capsys.readouterr().out
    assert "1 protocols (lrc)" in out


def test_fuzz_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        main(["fuzz", "--protocols", "mesi"])


def test_fuzz_broken_protocol_report_and_replay(tmp_path, capsys, monkeypatch):
    import json

    from repro.conformance import ProgramSpec
    from repro.protocols import PROTOCOLS
    from tests.test_trace import BrokenReleaseLRC

    monkeypatch.setitem(PROTOCOLS, BrokenReleaseLRC.name, BrokenReleaseLRC)
    out_file = tmp_path / "fuzz.json"
    assert main(["fuzz", "--seed", "0", "--iters", "1", "--procs", "4",
                 "--n-ops", "40", "--protocols", BrokenReleaseLRC.name,
                 "--out", str(out_file)]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out and "release fired" in out
    assert "violation" in out  # trace window printed under the failure

    report = json.loads(out_file.read_text())
    assert len(report["failures"]) == 1
    mini = ProgramSpec.from_dict(report["failures"][0]["minimized"])
    assert mini.op_count() <= 30

    # Replay path re-runs the reproducer and still fails.
    assert main(["fuzz", "--replay", str(out_file)]) == 1
    assert "STILL FAILS" in capsys.readouterr().err


def test_fuzz_no_minimize_skips_minimization(tmp_path, capsys, monkeypatch):
    import json

    from repro.protocols import PROTOCOLS
    from tests.test_trace import BrokenReleaseLRC

    monkeypatch.setitem(PROTOCOLS, BrokenReleaseLRC.name, BrokenReleaseLRC)
    out_file = tmp_path / "fuzz.json"
    assert main(["fuzz", "--seed", "0", "--iters", "1", "--procs", "4",
                 "--n-ops", "40", "--protocols", BrokenReleaseLRC.name,
                 "--no-minimize", "--out", str(out_file)]) == 1
    capsys.readouterr()
    report = json.loads(out_file.read_text())
    assert report["failures"][0]["minimized"] is None


def test_fuzz_resume_skips_journaled_iterations(tmp_path, capsys):
    store = str(tmp_path / "rs")
    base = ["fuzz", "--seed", "0", "--iters", "3", "--procs", "4",
            "--n-ops", "30", "--protocols", "lrc", "--store-dir", store]
    assert main(base) == 0
    first = capsys.readouterr().out
    assert "all clean" in first
    assert main(base + ["--resume"]) == 0
    resumed = capsys.readouterr()
    assert "3/3 iterations journaled" in resumed.err
    assert "all clean" in resumed.out


def test_scenarios_resume_reuses_journal(tmp_path, capsys):
    store = str(tmp_path / "rs")
    base = ["scenarios", "run", "baseline_perfect", "--procs", "4",
            "--protocols", "sc", "lrc", "--store-dir", store]
    assert main(base) == 0
    capsys.readouterr()
    assert main(base + ["--resume"]) == 0
    resumed = capsys.readouterr()
    assert resumed.err.count("journaled, skipping") == 2
