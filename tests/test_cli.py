"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "gauss" in out and "lrc-ext" in out


def test_run_small(capsys):
    assert main(["run", "mp3d", "--protocol", "lrc", "--procs", "4", "--small"]) == 0
    out = capsys.readouterr().out
    assert "miss_rate" in out and "exec_time" in out


def test_compare_small(capsys):
    assert main(["compare", "mp3d", "--procs", "4", "--small"]) == 0
    out = capsys.readouterr().out
    for proto in ("sc", "erc", "lrc", "lrc-ext"):
        assert proto in out


def test_rejects_unknown_app():
    with pytest.raises(SystemExit):
        main(["run", "linpack"])


def test_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        main(["run", "gauss", "--protocol", "mesi"])


def test_figures_subset_with_store(tmp_path, capsys):
    from repro.harness.experiments import clear_cache

    store_dir = str(tmp_path / "results")
    argv = [
        "figures", "--only", "t1", "t3", "--procs", "4", "--small",
        "--jobs", "2", "--store-dir", store_dir,
    ]
    clear_cache()
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "Table 1" in cold and "Table 3" in cold
    assert "Miss rates" in cold
    # t3 needs erc/lrc/lrc-ext for 7 apps = 21 stored results.
    assert len(list((tmp_path / "results").glob("*.json"))) == 21

    # Warm rerun: served from the store, bit-identical output.
    clear_cache()
    assert main(argv) == 0
    assert capsys.readouterr().out == cold


def test_figures_no_store(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["figures", "--only", "f4", "--procs", "4", "--small",
                 "--no-store"]) == 0
    assert "Figure 4" in capsys.readouterr().out
    assert not (tmp_path / ".repro-results").exists()


def test_figures_rejects_unknown_artifact():
    with pytest.raises(SystemExit):
        main(["figures", "--only", "f13"])
