"""Timing-semantics tests: processor accounting, memory, end-to-end costs."""

import pytest

from repro import Machine, SystemConfig
from repro.config import SystemConfig as SC
from repro.mem.dram import MemoryModule
from repro.program.ops import BARRIER, COMPUTE, READ, READ_RUN, WRITE


def cfg(n=2, **kw):
    kw.setdefault("cache_size", 32 * 128)
    return SystemConfig.scaled(n_procs=n, **kw)


class TestMemoryModule:
    def test_read_timing(self):
        m = MemoryModule(SC(), 0)
        assert m.read(0, 128) == 20 + 64

    def test_reads_contend_with_reads(self):
        m = MemoryModule(SC(), 0)
        assert m.read(0, 128) == 84
        assert m.read(10, 128) == 168

    def test_writes_do_not_block_reads(self):
        m = MemoryModule(SC(), 0)
        m.write(0, 128)
        assert m.read(0, 128) == 84  # separate write port

    def test_writes_contend_with_writes(self):
        m = MemoryModule(SC(), 0)
        assert m.write(0, 128) == 84
        assert m.write(0, 128) == 168

    def test_counters(self):
        m = MemoryModule(SC(), 0)
        m.read(0, 128)
        m.write(0, 16)
        assert m.reads == 1 and m.writes == 1
        assert m.busy_cycles == 84 + 28


class TestProcessorAccounting:
    def test_hit_costs_one_cycle(self):
        m = Machine(cfg(1), protocol="lrc")
        seg = m.space.alloc(4096, "d")

        def prog(pid):
            yield (READ, seg.base)          # miss
            yield (READ_RUN, seg.base, 100, 0)  # 100 hits on one word

        r = m.run([prog(0)])
        p = r.stats.procs[0]
        assert p.reads == 101
        # One cycle per hit; the missing reference's issue cycle is folded
        # into its read stall.
        assert p.cpu_cycles == 100

    def test_compute_exact(self):
        m = Machine(cfg(1), protocol="sc")

        def prog(pid):
            yield (COMPUTE, 12345)

        r = m.run([prog(0)])
        assert r.stats.procs[0].finish_time == 12345

    def test_compute_spans_many_quanta(self):
        m = Machine(cfg(1, quantum=10), protocol="sc")

        def prog(pid):
            yield (COMPUTE, 999)
            yield (COMPUTE, 1)

        r = m.run([prog(0)])
        assert r.stats.procs[0].finish_time == 1000

    def test_uncontended_local_fill_cost(self):
        """A read miss on a block homed at the reader costs memory + bus."""
        m = Machine(cfg(1), protocol="erc")
        seg = m.space.alloc(4096, "d", home=0)

        def prog(pid):
            yield (READ, seg.base)

        r = m.run([prog(0)])
        p = r.stats.procs[0]
        c = m.config
        # mem (20 + 64) + local bus fill (64); directory hides behind memory.
        assert p.read_stall == c.memory_time(c.line_size) + c.bus_time(c.line_size)

    def test_remote_fill_costs_more_than_local(self):
        results = {}
        for home in (0, 1):
            m = Machine(cfg(2), protocol="erc")
            seg = m.space.alloc(4096, "d", home=home)

            def reader(pid):
                yield (READ, seg.base)
                yield (BARRIER, 0)

            def idle(pid):
                yield (BARRIER, 0)

            r = m.run([reader(0), idle(1)])
            results[home] = r.stats.procs[0].read_stall
        assert results[1] > results[0]

    def test_quantum_does_not_change_single_proc_time(self):
        times = set()
        for q in (10, 100, 1000):
            m = Machine(cfg(1, quantum=q), protocol="lrc")
            seg = m.space.alloc(8192, "d")

            def prog(pid):
                yield (READ_RUN, seg.base, 256, 8)
                yield (COMPUTE, 500)

            r = m.run([prog(0)])
            times.add(r.exec_time)
        assert len(times) == 1

    @pytest.mark.parametrize("proto", ["sc", "erc", "lrc", "lrc-ext"])
    def test_buckets_partition_finish_time(self, proto):
        m = Machine(cfg(2), protocol=proto)
        seg = m.space.alloc(8192, "d")

        def prog(pid):
            yield (READ_RUN, seg.base, 64, 16)
            yield (WRITE, seg.base + pid * 8)
            yield (COMPUTE, 300)
            yield (BARRIER, 0)

        r = m.run([prog(p) for p in range(2)])
        for p in r.stats.procs:
            assert (
                p.cpu_cycles + p.read_stall + p.wb_stall + p.sync_stall
                == p.finish_time
            )


class TestFutureMachineTiming:
    def test_future_fill_is_costlier_in_cycles(self):
        base = SC.paper()
        fut = SC.future(cache_size=base.cache_size)
        # 256-byte lines at 4 B/cycle with a 40-cycle setup: the fill
        # takes longer despite doubled bandwidth.
        assert fut.memory_time(fut.line_size) > base.memory_time(base.line_size)

    def test_future_control_latency_unchanged(self):
        base, fut = SC.paper(), SC.future()
        assert fut.transit(0, 7, 0) == base.transit(0, 7, 0)
