"""Tests for the fault-injection subsystem: FaultPlan, the machine
wiring (zero-overhead-off), end-to-end recovery under every protocol,
the retransmit cap, and the stall watchdog."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SystemConfig
from repro.core.machine import Machine
from repro.engine.simulator import Simulator
from repro.faults.plan import FaultPlan
from repro.faults.reliable import ReliableFabric
from repro.faults.watchdog import SimulationStall, StallWatchdog
from repro.harness.presets import bench_config
from repro.harness.spec import ExperimentSpec
from repro.network.fabric import Fabric
from repro.network.messages import MsgType

#: A mild plan every protocol must survive transparently.
MILD = FaultPlan(drop=0.02, dup=0.02, delay=0.05)


class TestFaultPlan:
    def test_parse_cli_form(self):
        p = FaultPlan.parse("drop=0.02, dup=0.02, delay=0.05, seed=7")
        assert (p.drop, p.dup, p.delay, p.seed) == (0.02, 0.02, 0.05, 7)

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault field"):
            FaultPlan.parse("dorp=0.5")

    def test_parse_rejects_bad_syntax(self):
        with pytest.raises(ValueError, match="key=value"):
            FaultPlan.parse("drop")

    def test_json_round_trip(self):
        p = FaultPlan(seed=3, drop=0.1, delay=0.2, burst_every=1000,
                      burst_len=100, src=2, channel="ctl")
        back = FaultPlan.from_dict(json.loads(json.dumps(p.to_dict())))
        assert back == p

    def test_rates_validated(self):
        with pytest.raises(ValueError, match="drop"):
            FaultPlan(drop=1.5)
        with pytest.raises(ValueError, match="max_retries"):
            FaultPlan(max_retries=0)
        with pytest.raises(ValueError, match="channel"):
            FaultPlan(channel="bogus")

    def test_active_iff_any_rate_positive(self):
        assert not FaultPlan().active
        assert not FaultPlan(seed=9, burst_every=100, burst_len=10).active
        assert FaultPlan(drop=0.01).active
        assert FaultPlan(reorder=0.01).active

    def test_filter_matching(self):
        p = FaultPlan(drop=0.5, src=1, channel="data")
        assert p.matches(1, 7, "data")
        assert not p.matches(2, 7, "data")
        assert not p.matches(1, 7, "ctl")
        assert FaultPlan().matches(0, 0, "ctl")

    def test_burst_windows(self):
        p = FaultPlan(drop=0.1, burst_every=100, burst_len=10)
        assert p.in_burst(5) and p.in_burst(105)
        assert not p.in_burst(50)
        assert not FaultPlan(drop=0.1).in_burst(5)

    def test_coerce_spellings(self):
        assert FaultPlan.coerce(None) is None
        assert FaultPlan.coerce(MILD) is MILD
        assert FaultPlan.coerce("drop=0.02") == FaultPlan(drop=0.02)
        assert FaultPlan.coerce({"drop": 0.02}) == FaultPlan(drop=0.02)
        with pytest.raises(TypeError):
            FaultPlan.coerce(42)


class TestMachineWiring:
    def test_inert_plan_uses_plain_fabric(self):
        cfg = bench_config(n_procs=4)
        assert type(Machine(cfg, faults=FaultPlan()).fabric) is Fabric
        assert type(Machine(cfg).fabric) is Fabric
        assert isinstance(Machine(cfg, faults=MILD).fabric, ReliableFabric)

    def test_inert_plan_is_bit_identical_to_no_faults(self):
        """The zero-overhead-off guarantee: attaching a zero-rate plan
        changes nothing — same cycles, same traffic, byte for byte."""
        base = ExperimentSpec("mp3d", "lrc", n_procs=4, small=True)
        inert = base.with_(faults=FaultPlan())
        a, b = base.run(), inert.run()
        assert a.exec_time == b.exec_time
        assert a.stats.to_dict() == b.stats.to_dict()
        assert a.traffic.to_dict() == b.traffic.to_dict()

    @pytest.mark.parametrize("protocol", ["sc", "erc", "lrc", "lrc-ext"])
    def test_every_protocol_survives_faults_unmodified(self, protocol):
        spec = ExperimentSpec("mp3d", protocol, n_procs=4, small=True,
                              faults=MILD)
        clean = spec.with_(faults=None).run()
        faulty = spec.run()
        t = faulty.traffic
        # Faults genuinely fired and were genuinely recovered from.
        assert t.drops_injected > 0
        assert t.retransmits > 0
        assert t.bytes[MsgType.RD_ACK] == 0 and t.count[MsgType.RD_ACK] > 0
        # Recovery is transparent: the protocol committed the same work
        # (faults move cycles, never operations).
        for a, b in zip(clean.stats.procs, faulty.stats.procs):
            assert (a.reads, a.writes, a.acquires, a.releases, a.barriers) == \
                   (b.reads, b.writes, b.acquires, b.releases, b.barriers)

    def test_fault_runs_are_deterministic(self):
        spec = ExperimentSpec("gauss", "lrc", n_procs=4, small=True,
                              faults=MILD)
        a, b = spec.run(), spec.run()
        assert a.exec_time == b.exec_time
        assert a.traffic.to_dict() == b.traffic.to_dict()

    def test_different_fault_seed_different_schedule(self):
        spec = ExperimentSpec("gauss", "lrc", n_procs=4, small=True,
                              faults=MILD)
        other = spec.with_(faults=FaultPlan.from_dict(
            {**MILD.to_dict(), "seed": 99}))
        assert spec.run().traffic.to_dict() != other.run().traffic.to_dict()


class TestSpecIntegration:
    def test_no_faults_fingerprint_unchanged(self):
        """A fault-free spec must fingerprint exactly as it did before
        the faults field existed (pinned in test_spec.py); attaching a
        plan must move it."""
        base = ExperimentSpec("mp3d", "lrc", n_procs=4, small=True)
        assert base.with_(faults=MILD).fingerprint() != base.fingerprint()
        assert base.with_(faults=None).fingerprint() == base.fingerprint()

    def test_spec_round_trips_with_faults(self):
        spec = ExperimentSpec("mp3d", "lrc", n_procs=4, small=True,
                              faults="drop=0.1,seed=5")
        back = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert back == spec
        assert back.faults == FaultPlan(drop=0.1, seed=5)
        assert back.fingerprint() == spec.fingerprint()
        assert "faults[drop=0.1,seed=5]" in spec.label()


class TestUpgradeEvictHintRace:
    """Regression for a home-side race the fault campaign exposed
    (seed 3, erc): a node holding a line read-only issued an upgrade,
    then evicted the RO copy while the grant was in flight.  The clean
    EVICT_NOTICE — sent after the WRITE_REQ, so processed after the
    grant was issued — erased the freshly-DIRTY directory entry, while
    the requester re-installed the line exclusively when the grant
    landed: node caches the block, home has no entry.  The home must
    ignore a clean hint from the block's current dirty owner (a real
    dirty eviction arrives as a WRITEBACK, never a hint)."""

    def _directory(self, protocol):
        m = Machine(SystemConfig(n_procs=4), protocol=protocol)
        seg = m.space.alloc(1 << 12, "data")
        block = seg.base >> m.config.line_shift
        home = m.protocol.nodes[m.home_of(block)]
        return m.protocol, home.directory, block

    @pytest.mark.parametrize("protocol", ["sc", "erc"])
    def test_clean_hint_from_dirty_owner_is_ignored(self, protocol):
        from repro.directory.entry import DIRTY

        proto, d, block = self._directory(protocol)
        d.read(block, 3)                  # node 3 holds the line RO,
        d.write(block, 3, has_copy=True)  # then its upgrade is granted.
        assert d.state_of(block) == DIRTY
        # The stale hint for the superseded RO copy arrives at the home.
        proto._h_evict_hint(0, block, 3)
        assert d.state_of(block) == DIRTY
        assert d.entries[block].owner == 3

    def test_hint_from_a_mere_sharer_still_evicts(self):
        from repro.directory.entry import DIRTY, UNCACHED

        proto, d, block = self._directory("erc")
        d.read(block, 1)
        d.write(block, 3, has_copy=False)
        assert d.state_of(block) == DIRTY
        # Node 1's hint (it was invalidated-or-evicted as a sharer) is
        # not from the owner: normal processing.
        proto._h_evict_hint(0, block, 1)
        assert d.state_of(block) == DIRTY  # owner unaffected
        proto._h_evict_hint(0, block, 3)   # owner's *own* hint ignored
        assert d.entries[block].owner == 3
        d.evict(block, 3, dirty=True)      # but a real writeback clears
        assert d.state_of(block) == UNCACHED

    def test_seed3_erc_campaign_iteration_stays_clean(self):
        # The exact campaign iteration that caught the race: iteration 3
        # (seed 3) of ``fuzz --iters 50 --faults drop=.02,dup=.02,delay=.05``.
        from repro.conformance.fuzz import fuzz_iteration

        failures = fuzz_iteration(
            3, 3, 8, 120, ("erc",), do_minimize=False, faults=MILD
        )
        assert failures == []


class TestRetransmitCap:
    def test_total_loss_raises_structured_stall(self):
        cfg = SystemConfig(n_procs=4)
        sim = Simulator()
        fab = ReliableFabric(cfg, sim, FaultPlan(drop=1.0, max_retries=3))
        fab.send(0, 1, MsgType.ACK, 0, lambda t: None)
        with pytest.raises(SimulationStall) as ei:
            sim.run()
        assert ei.value.kind == "retransmit-cap"
        assert fab.stats.retransmits == 3
        assert fab.stats.drops_injected == 4  # initial + 3 retransmits

    def test_backoff_is_exponential(self):
        cfg = SystemConfig(n_procs=4)
        sim = Simulator()
        fab = ReliableFabric(cfg, sim, FaultPlan(drop=1.0, max_retries=3))
        fab.send(0, 1, MsgType.ACK, 0, lambda t: None)
        with pytest.raises(SimulationStall) as ei:
            sim.run()
        # Timer k fires rto<<k after transmission k: 1+2+4+8 base RTOs.
        assert ei.value.cycle == fab.rto * (1 + 2 + 4 + 8)


class TestStallWatchdog:
    def _machine(self):
        return Machine(bench_config(n_procs=4), protocol="lrc",
                       stall_cycles=0)

    def test_busy_queue_without_progress_raises(self):
        m = self._machine()

        def tick():
            m.sim.at(m.sim.now + 100, tick)

        m.sim.at(0, tick)
        StallWatchdog(m, 1_000).arm()
        with pytest.raises(SimulationStall) as ei:
            m.sim.run()
        assert ei.value.kind == "watchdog"
        assert ei.value.cycle >= 1_000

    def test_progress_rearms_instead_of_raising(self):
        m = self._machine()
        stop = 10_000

        def tick():
            m.stats.procs[0].reads += 1  # forward progress
            if m.sim.now < stop:
                m.sim.at(m.sim.now + 100, tick)

        m.sim.at(0, tick)
        StallWatchdog(m, 1_000).arm()
        m.sim.run()  # no stall: the queue drains normally

    def test_drained_queue_is_left_to_deadlock_diagnosis(self):
        """With blocked processors and an *empty* queue the watchdog must
        stand down so Machine.run's DeadlockError names the culprits."""
        m = self._machine()
        StallWatchdog(m, 100).arm()
        m.sim.run()  # only the watchdog's own check is queued: no raise

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            StallWatchdog(self._machine(), 0)

    def test_machine_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_STALL_CYCLES", "12345")
        assert Machine(bench_config(n_procs=4)).stall_cycles == 12345
        monkeypatch.setenv("REPRO_STALL_CYCLES", "")
        assert Machine(bench_config(n_procs=4)).stall_cycles == 0
        assert Machine(bench_config(n_procs=4),
                       stall_cycles=7).stall_cycles == 7

    def test_livelocked_run_raises_through_machine_run(self):
        """End to end: total message loss under a short watchdog budget
        becomes a structured stall out of Machine.run, not a hang."""
        spec = ExperimentSpec(
            "mp3d", "lrc", n_procs=4, small=True,
            faults=FaultPlan(drop=1.0, max_retries=10_000),
        )
        cfg = spec.config()
        from repro.apps import APPS, AppContext

        machine = Machine(cfg, protocol="lrc", faults=spec.faults,
                          stall_cycles=200_000)
        app = APPS["mp3d"](AppContext.for_machine(machine), **spec.app_params())
        with pytest.raises(SimulationStall):
            machine.run([app.program(p) for p in range(cfg.n_procs)])


class TestFaultPhases:
    """Phase-scripted plans: good→bad→good windows over simulated cycles."""

    def test_phase_validation(self):
        from repro.faults.plan import FaultPhase

        with pytest.raises(ValueError, match="start < end"):
            FaultPhase(start=100, end=100)
        with pytest.raises(ValueError, match=">= 0"):
            FaultPhase(start=-1, end=100)
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultPhase(start=0, end=10, drop=1.5)
        with pytest.raises(ValueError, match="unknown FaultPhase fields"):
            FaultPhase.from_dict({"start": 0, "end": 10, "dorp": 0.5})

    def test_plan_rejects_unsorted_or_overlapping_windows(self):
        from repro.faults.plan import FaultPhase

        ok = FaultPlan(phases=(FaultPhase(0, 10, drop=0.1),
                               FaultPhase(10, 20, drop=0.2)))
        assert len(ok.phases) == 2  # adjacent windows are fine
        with pytest.raises(ValueError, match="sorted and non-overlapping"):
            FaultPlan(phases=(FaultPhase(0, 15, drop=0.1),
                              FaultPhase(10, 20, drop=0.2)))
        with pytest.raises(ValueError, match="sorted and non-overlapping"):
            FaultPlan(phases=(FaultPhase(10, 20, drop=0.1),
                              FaultPhase(0, 5, drop=0.2)))

    def test_phase_round_trip_and_label(self):
        p = FaultPlan(seed=5, phases=({"start": 100, "end": 200, "drop": 0.3},))
        back = FaultPlan.from_dict(json.loads(json.dumps(p.to_dict())))
        assert back == p
        assert "phases=1" in p.label()
        # A phase-free plan serializes without the key at all, so old
        # stored plans and spec fingerprints are unchanged.
        assert "phases" not in FaultPlan(drop=0.1).to_dict()

    def test_parse_rejects_phases_key(self):
        with pytest.raises(ValueError, match="scenario JSON"):
            FaultPlan.parse("phases=3")

    def test_rates_at_switches_inside_windows(self):
        from repro.faults.plan import FaultPhase

        p = FaultPlan(drop=0.01, phases=(FaultPhase(100, 200, drop=0.5),
                                         FaultPhase(300, 400, dup=0.25)))
        assert p.rates_at(0) == (0.01, 0.0, 0.0, 0.0)
        assert p.rates_at(100) == (0.5, 0.0, 0.0, 0.0)
        assert p.rates_at(199) == (0.5, 0.0, 0.0, 0.0)
        assert p.rates_at(200) == (0.01, 0.0, 0.0, 0.0)
        assert p.rates_at(350) == (0.0, 0.25, 0.0, 0.0)
        assert p.rates_at(400) == (0.01, 0.0, 0.0, 0.0)

    def test_zero_rate_script_is_inert(self):
        from repro.faults.plan import FaultPhase

        calm = FaultPlan(seed=3, phases=(FaultPhase(0, 10_000),))
        assert not calm.active
        assert FaultPlan(phases=(FaultPhase(0, 10, drop=0.1),)).active

    def test_zero_rate_script_bit_identical_to_faults_off(self):
        from repro.faults.plan import FaultPhase

        base = ExperimentSpec("kvstore", "lrc", n_procs=4, small=True)
        calm = base.with_(
            faults=FaultPlan(seed=9, phases=(FaultPhase(0, 1 << 40),))
        )
        assert base.run().to_dict() == calm.run().to_dict()

    @given(
        bounds=st.lists(
            st.integers(min_value=0, max_value=20_000),
            min_size=2, max_size=8, unique=True,
        ),
        rate=st.floats(min_value=0.3, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        times=st.lists(
            st.integers(min_value=0, max_value=25_000),
            min_size=20, max_size=120,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_injection_outside_phase_windows(self, bounds, rate, seed, times):
        """The property the scenario library's attribution story rests
        on: with zero base rates, every drop/dup/delay the injector
        produces lands at a cycle covered by some phase window."""
        from repro.faults.inject import FaultInjector
        from repro.faults.plan import FaultPhase

        cuts = sorted(bounds)
        phases = tuple(
            FaultPhase(cuts[i], cuts[i + 1], drop=rate, dup=rate, delay=rate)
            for i in range(0, len(cuts) - 1, 2)
        )
        plan = FaultPlan(seed=seed, phases=phases)
        inj = FaultInjector(plan)
        covered = lambda t: any(p.covers(t) for p in phases)
        for i, t in enumerate(times):
            d = inj.decide(src=i % 4, dst=(i + 1) % 4, channel="data", t=t)
            if d.drop or d.dup or d.extra:
                assert covered(t), (
                    f"injection at t={t} outside every phase window "
                    f"{[(p.start, p.end) for p in phases]}"
                )


class TestWorkerKillChaos:
    """``worker_kill`` chaos events on the plan (DESIGN.md §15): parsed,
    serialized, and labeled — but never treated as message faults."""

    def test_parse_cli_form(self):
        p = FaultPlan.parse("worker_kill=90:1;40:0")
        assert p.worker_kill == ((40, 0), (90, 1))  # sorted by epoch

    def test_parse_rejects_negative_events(self):
        with pytest.raises(ValueError, match="worker_kill"):
            FaultPlan(worker_kill=((-1, 0),))
        with pytest.raises(ValueError, match="worker_kill"):
            FaultPlan(worker_kill=((3, -2),))

    def test_chaos_only_plan_is_not_active(self):
        p = FaultPlan(worker_kill=((3, 0),))
        assert not p.active

    def test_to_dict_omits_empty_kills_and_round_trips(self):
        assert "worker_kill" not in FaultPlan(drop=0.01).to_dict()
        p = FaultPlan(drop=0.01, worker_kill=((3, 0), (6, 1)))
        d = p.to_dict()
        assert d["worker_kill"] == [[3, 0], [6, 1]]
        assert FaultPlan.from_dict(json.loads(json.dumps(d))) == p

    def test_label_counts_kills(self):
        assert FaultPlan(worker_kill=((3, 0),)).label() == "kill=1"
        assert "kill=2" in FaultPlan(
            drop=0.02, worker_kill=((3, 0), (6, 1))).label()
