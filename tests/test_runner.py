"""Tests for the parallel experiment engine (determinism, store reuse,
crash retry, timeout handling)."""

import multiprocessing as mp
import os

import pytest

from repro.harness.experiments import all_artifact_specs, clear_cache, prefetch
from repro.harness.runner import (
    ExperimentError,
    run_parallel,
    run_serial,
)
from repro.harness.spec import ExperimentSpec
from repro.results.store import ResultStore

#: The fault-injection tests monkeypatch ExperimentSpec.run and rely on
#: fork()ed workers inheriting the patch.
FORK = "fork" in mp.get_all_start_methods()

SPECS = [
    ExperimentSpec("mp3d", "lrc", n_procs=4, small=True),
    ExperimentSpec("mp3d", "erc", n_procs=4, small=True),
    ExperimentSpec("gauss", "lrc", n_procs=4, small=True),
]


class TestDeterminism:
    def test_pool_matches_serial_bit_for_bit(self, tmp_path):
        """DESIGN.md §7: identical specs -> identical cycle counts,
        whether run in-process or fanned out over worker processes."""
        serial = run_serial(SPECS, store=None)
        pooled = run_parallel(SPECS, jobs=2, store=ResultStore(tmp_path / "rs"))
        assert set(serial) == set(pooled) == set(SPECS)
        for spec in SPECS:
            a, b = serial[spec], pooled[spec]
            assert a.exec_time == b.exec_time
            assert a.stats.total_cycles == b.stats.total_cycles
            assert a.summary() == b.summary()
            assert a.breakdown() == b.breakdown()
            assert a.traffic.as_dict() == b.traffic.as_dict()

    def test_cached_results_match_too(self, tmp_path):
        store = ResultStore(tmp_path / "rs")
        cold = run_parallel(SPECS, jobs=2, store=store)
        warm = run_parallel(SPECS, jobs=2, store=store)
        for spec in SPECS:
            assert cold[spec].summary() == warm[spec].summary()

    def test_duplicate_specs_are_deduplicated(self):
        results = run_serial([SPECS[0], SPECS[0]])
        assert len(results) == 1


class TestStoreReuse:
    @pytest.mark.skipif(not FORK, reason="needs fork() to inject faults")
    def test_warm_store_spawns_no_workers(self, tmp_path, monkeypatch):
        store = ResultStore(tmp_path / "rs")
        run_parallel(SPECS, jobs=2, store=store)
        monkeypatch.setattr(
            ExperimentSpec, "run",
            lambda self: (_ for _ in ()).throw(AssertionError("re-simulated")),
        )
        warm = run_parallel(SPECS, jobs=2, store=store)
        assert set(warm) == set(SPECS)

    def test_prefetch_warms_the_memo(self, tmp_path, monkeypatch):
        clear_cache()
        specs = SPECS[:2]
        prefetch(specs, jobs=2, store=ResultStore(tmp_path / "rs"))
        # Rendering now must not simulate.
        monkeypatch.setattr(
            ExperimentSpec, "run",
            lambda self: (_ for _ in ()).throw(AssertionError("re-simulated")),
        )
        from repro.harness.experiments import run_spec

        for spec in specs:
            assert run_spec(spec, store=None).exec_time > 0
        clear_cache()


class TestArtifactEnumeration:
    def test_all_artifacts_deduplicate_shared_runs(self):
        specs = all_artifact_specs(n_procs=8, small=True)
        assert len(specs) == len(set(specs))
        # f4 and f5 share their sc/erc/lrc runs: the union must be far
        # smaller than the per-artifact sum.
        per_artifact = sum(
            len(all_artifact_specs([k], n_procs=8, small=True))
            for k in ("f4", "f5", "f6", "f7", "f8", "f9", "t2", "t3", "sweep")
        )
        assert len(specs) < per_artifact

    def test_t2_specs_classify(self):
        assert all(s.classify for s in all_artifact_specs(["t2"], n_procs=8))

    def test_future_artifacts_use_future_kind(self):
        assert {s.kind for s in all_artifact_specs(["f8", "f9"], n_procs=8)} == {"future"}

    def test_unknown_artifact_rejected(self):
        from repro.harness.experiments import artifact_specs

        with pytest.raises(ValueError, match="artifact"):
            artifact_specs("f13")


@pytest.mark.skipif(not FORK, reason="needs fork() to inject faults")
class TestFaultHandling:
    def test_crashed_worker_is_retried_once(self, tmp_path, monkeypatch):
        marker = tmp_path / "crashed-once"
        real_run = ExperimentSpec.run

        def crash_first(self):
            if not marker.exists():
                marker.write_text("x")
                os._exit(3)
            return real_run(self)

        monkeypatch.setattr(ExperimentSpec, "run", crash_first)
        results = run_parallel(
            SPECS[:2], jobs=2, store=ResultStore(tmp_path / "rs")
        )
        assert set(results) == set(SPECS[:2])
        assert marker.exists()

    def test_persistent_crash_raises(self, tmp_path, monkeypatch):
        monkeypatch.setattr(ExperimentSpec, "run", lambda self: os._exit(3))
        with pytest.raises(ExperimentError, match="exit code 3"):
            run_parallel(SPECS[:2], jobs=2, store=ResultStore(tmp_path / "rs"))

    def test_timeout_raises_after_retry(self, tmp_path, monkeypatch):
        import time as _time

        monkeypatch.setattr(ExperimentSpec, "run", lambda self: _time.sleep(60))
        with pytest.raises(ExperimentError, match="timed out"):
            run_parallel(
                SPECS[:2], jobs=2, store=ResultStore(tmp_path / "rs"),
                timeout=0.2,
            )

    def test_degraded_serial_path_honors_timeout(self, tmp_path, monkeypatch):
        """jobs=1 used to silently fall back to run_serial, dropping the
        timeout (and retry) guarantees on the floor."""
        import time as _time

        monkeypatch.setattr(ExperimentSpec, "run", lambda self: _time.sleep(60))
        with pytest.raises(ExperimentError, match="timed out"):
            run_parallel(
                SPECS[:2], jobs=1, store=ResultStore(tmp_path / "rs"),
                timeout=0.2,
            )

    def test_single_spec_honors_timeout(self, tmp_path, monkeypatch):
        """A one-element spec list also degrades to jobs=1; the timeout
        must still be supervised."""
        import time as _time

        monkeypatch.setattr(ExperimentSpec, "run", lambda self: _time.sleep(60))
        with pytest.raises(ExperimentError, match="timed out"):
            run_parallel(
                SPECS[:1], jobs=4, store=ResultStore(tmp_path / "rs"),
                timeout=0.2,
            )

    def test_degraded_path_without_timeout_runs_in_process(self, tmp_path):
        results = run_parallel(SPECS[:1], jobs=1, store=None)
        assert set(results) == set(SPECS[:1])
        assert results[SPECS[0]].exec_time > 0

    def test_timeout_kills_the_worker_process(self, tmp_path, monkeypatch):
        """Regression: a timed-out worker must be dead when run_parallel
        returns, not left livelocked in the background."""
        import time as _time

        monkeypatch.setattr(ExperimentSpec, "run", lambda self: _time.sleep(60))
        failures = {}
        store = ResultStore(tmp_path / "rs")
        results = run_parallel(
            SPECS[:2], jobs=2, store=store, timeout=0.2, retries=0,
            on_failure="record", failures_out=failures,
        )
        assert results == {}
        assert not mp.active_children(), "worker outlived its timeout"
        assert set(failures) == set(SPECS[:2])
        for spec in SPECS[:2]:
            failure = store.load_failure(spec)
            assert failure is not None and failure.kind == "timeout"
            assert "timed out" in failure.message


@pytest.mark.skipif(not FORK, reason="needs fork() to monkeypatch workers")
class TestStructuredFailures:
    """A livelocked spec becomes a persisted RunFailure, not a hung pool."""

    #: Total message loss with a tiny retry budget: the reliable layer
    #: raises SimulationStall almost immediately, deterministically.
    LIVELOCKED = ExperimentSpec(
        "mp3d", "lrc", n_procs=4, small=True,
        faults="drop=1.0,max_retries=2",
    )

    def test_record_mode_persists_and_continues(self, tmp_path):
        store = ResultStore(tmp_path / "rs")
        failures = {}
        results = run_parallel(
            [self.LIVELOCKED, SPECS[0]], jobs=2, store=store,
            on_failure="record", failures_out=failures,
        )
        # The healthy spec completed; the livelocked one left a record.
        assert set(results) == {SPECS[0]}
        assert set(failures) == {self.LIVELOCKED}
        persisted = store.load_failure(self.LIVELOCKED)
        assert persisted is not None
        assert persisted.kind == "stall"
        assert "retransmit" in persisted.message
        assert persisted.fingerprint == self.LIVELOCKED.fingerprint()
        assert not mp.active_children()

    def test_raise_mode_reports_the_diagnosis(self, tmp_path):
        with pytest.raises(ExperimentError, match="stall"):
            run_parallel(
                [self.LIVELOCKED], jobs=2, store=ResultStore(tmp_path / "rs"),
                timeout=60,
            )

    def test_structured_failure_is_not_retried(self, tmp_path, monkeypatch):
        """Stalls are deterministic: the pool must not burn its retry
        re-running one (crash retries still happen, tested above)."""
        calls = tmp_path / "calls"
        calls.mkdir()
        real_run = ExperimentSpec.run

        def counting_run(self):
            (calls / str(len(list(calls.iterdir())))).write_text("x")
            return real_run(self)

        monkeypatch.setattr(ExperimentSpec, "run", counting_run)
        failures = {}
        run_parallel(
            [self.LIVELOCKED], jobs=2, store=ResultStore(tmp_path / "rs"),
            retries=1, on_failure="record", failures_out=failures,
        )
        assert len(list(calls.iterdir())) == 1
        assert failures[self.LIVELOCKED].kind == "stall"

    def test_run_serial_record_mode(self, tmp_path):
        store = ResultStore(tmp_path / "rs")
        failures = {}
        results = run_serial(
            [self.LIVELOCKED, SPECS[0]], store=store,
            on_failure="record", failures_out=failures,
        )
        assert set(results) == {SPECS[0]}
        assert store.load_failure(self.LIVELOCKED).kind == "stall"

    def test_run_serial_raise_mode_reraises_original(self):
        from repro.faults.watchdog import SimulationStall

        with pytest.raises(SimulationStall):
            run_serial([self.LIVELOCKED])


class TestRetryBackoff:
    def test_delay_is_bounded_and_jittered(self):
        import random

        from repro.harness.runner import (
            RETRY_BACKOFF_BASE,
            RETRY_BACKOFF_CAP,
            retry_delay,
        )

        rng = random.Random(7)
        for attempt in range(1, 10):
            d = retry_delay(attempt, rng=rng)
            ceiling = min(RETRY_BACKOFF_CAP, RETRY_BACKOFF_BASE * 2 ** (attempt - 1))
            assert 0.5 * ceiling <= d <= 1.5 * ceiling
        # Deep attempts saturate at the cap, never grow unbounded.
        assert retry_delay(50, rng=rng) <= 1.5 * RETRY_BACKOFF_CAP

    def test_reaper_installs_once(self):
        from repro.harness import runner

        runner._install_reaper()
        runner._install_reaper()
        assert runner._REAPER_INSTALLED
