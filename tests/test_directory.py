"""Tests for the Figure 1 lazy directory state machine and the MSI directory."""

from repro.directory import (
    DIRTY,
    LazyDirectory,
    MSIDirectory,
    SHARED,
    UNCACHED,
    WEAK,
)


class TestLazyFigure1Transitions:
    """Every edge of the Figure 1 state diagram."""

    def test_initial_state_uncached(self):
        d = LazyDirectory()
        assert d.state_of(1) == UNCACHED

    def test_uncached_read_to_shared(self):
        d = LazyDirectory()
        out = d.read(1, reader=0)
        assert out.state == SHARED
        assert not out.weak_for_reader
        assert out.notices_to == []

    def test_uncached_write_to_dirty(self):
        d = LazyDirectory()
        out = d.write(1, writer=0, has_copy=False)
        assert out.state == DIRTY
        assert out.needs_data
        assert not out.await_acks

    def test_shared_read_stays_shared(self):
        d = LazyDirectory()
        d.read(1, 0)
        out = d.read(1, 1)
        assert out.state == SHARED

    def test_sole_sharer_write_to_dirty(self):
        d = LazyDirectory()
        d.read(1, 0)
        out = d.write(1, writer=0, has_copy=True)
        assert out.state == DIRTY
        assert not out.needs_data
        assert out.notices_to == []

    def test_shared_write_to_weak_sends_notices(self):
        d = LazyDirectory()
        d.read(1, 0)
        d.read(1, 1)
        d.read(1, 2)
        out = d.write(1, writer=2, has_copy=True)
        assert out.state == WEAK
        assert sorted(out.notices_to) == [0, 1]
        assert out.await_acks

    def test_dirty_read_by_other_to_weak_notifies_writer(self):
        d = LazyDirectory()
        d.write(1, writer=0, has_copy=False)
        out = d.read(1, reader=1)
        assert out.state == WEAK
        assert out.notices_to == [0]
        assert out.weak_for_reader  # reply tells reader block is weak

    def test_dirty_read_by_writer_stays_dirty(self):
        d = LazyDirectory()
        d.write(1, writer=0, has_copy=False)
        out = d.read(1, reader=0)
        assert out.state == DIRTY
        assert out.notices_to == []

    def test_dirty_write_by_other_to_weak(self):
        d = LazyDirectory()
        d.write(1, writer=0, has_copy=False)
        out = d.write(1, writer=1, has_copy=False)
        assert out.state == WEAK
        assert out.notices_to == [0]
        assert d.entry(1).writers == {0, 1}

    def test_dirty_write_by_same_writer_stays_dirty(self):
        d = LazyDirectory()
        d.write(1, writer=0, has_copy=False)
        out = d.write(1, writer=0, has_copy=True)
        assert out.state == DIRTY
        assert out.notices_to == []

    def test_weak_new_reader_marked_notified_not_renotified(self):
        d = LazyDirectory()
        d.read(1, 0)
        d.read(1, 1)
        d.write(1, writer=0, has_copy=True)  # -> WEAK, notice to 1
        out = d.read(1, reader=2)
        assert out.state == WEAK
        assert out.weak_for_reader
        assert out.notices_to == []  # piggybacked on the reply instead
        # 2 is marked notified.  When 2 then *writes*, the one sharer who
        # was never notified — the original writer 0, whose copy now may
        # lack 2's words — gets the (first and only) notice.
        out2 = d.write(1, writer=2, has_copy=True)
        assert out2.notices_to == [0]
        assert out2.weak_for_writer  # two writers now: 2 self-invalidates
        # Nobody is re-notified on yet another write.
        out3 = d.write(1, writer=2, has_copy=True)
        assert out3.notices_to == []

    def test_notified_bit_prevents_duplicate_notices(self):
        d = LazyDirectory()
        d.read(1, 0)
        d.read(1, 1)
        out1 = d.write(1, writer=0, has_copy=True)
        assert out1.notices_to == [1]
        out2 = d.write(1, writer=0, has_copy=True)
        assert out2.notices_to == []

    def test_multiple_concurrent_writers_allowed(self):
        d = LazyDirectory()
        for w in range(4):
            d.write(1, writer=w, has_copy=False)
        assert d.entry(1).n_writers == 4
        assert d.state_of(1) == WEAK


class TestLazyDepartures:
    def test_weak_reverts_to_shared_when_writers_leave(self):
        d = LazyDirectory()
        d.read(1, 0)
        d.read(1, 1)
        d.write(1, writer=1, has_copy=True)  # WEAK
        assert d.remove(1, 1) == SHARED
        assert d.state_of(1) == SHARED

    def test_reverts_to_uncached_when_all_leave(self):
        d = LazyDirectory()
        d.read(1, 0)
        d.read(1, 1)
        d.remove(1, 0)
        assert d.remove(1, 1) == UNCACHED
        # Entry is garbage-collected.
        assert 1 not in d.entries

    def test_dirty_eviction_to_uncached(self):
        d = LazyDirectory()
        d.write(1, writer=0, has_copy=False)
        assert d.remove(1, 0) == UNCACHED

    def test_weak_multi_writer_stays_weak_after_one_leaves(self):
        d = LazyDirectory()
        d.write(1, 0, has_copy=False)
        d.write(1, 1, has_copy=False)
        d.read(1, 2)
        assert d.remove(1, 0) == WEAK  # writer 1 + sharer 2 remain

    def test_remove_unknown_block_is_noop(self):
        d = LazyDirectory()
        assert d.remove(99, 0) == UNCACHED


class TestMSIDirectory:
    def test_read_uncached(self):
        d = MSIDirectory()
        out = d.read(1, 0)
        assert out.state == SHARED
        assert out.forward_to is None

    def test_read_dirty_forwards_to_owner(self):
        d = MSIDirectory()
        d.write(1, writer=0, has_copy=False)
        out = d.read(1, reader=1)
        assert out.forward_to == 0
        assert out.state == SHARED
        assert d.entry(1).sharers == {0, 1}

    def test_read_dirty_by_owner_no_forward(self):
        d = MSIDirectory()
        d.write(1, writer=0, has_copy=False)
        out = d.read(1, reader=0)
        assert out.forward_to is None

    def test_write_invalidates_sharers(self):
        d = MSIDirectory()
        d.read(1, 0)
        d.read(1, 1)
        d.read(1, 2)
        out = d.write(1, writer=0, has_copy=True)
        assert sorted(out.invalidate) == [1, 2]
        assert out.await_acks
        assert d.entry(1).owner == 0
        assert d.entry(1).sharers == {0}

    def test_write_uncached_exclusive_no_acks(self):
        d = MSIDirectory()
        out = d.write(1, writer=0, has_copy=False)
        assert out.needs_data
        assert not out.await_acks
        assert out.invalidate == []

    def test_write_to_dirty_forwards_flush(self):
        d = MSIDirectory()
        d.write(1, writer=0, has_copy=False)
        out = d.write(1, writer=1, has_copy=False)
        assert out.forward_to == 0
        assert d.entry(1).owner == 1

    def test_write_by_current_owner_is_noop(self):
        d = MSIDirectory()
        d.write(1, writer=0, has_copy=False)
        out = d.write(1, writer=0, has_copy=True)
        assert out.forward_to is None
        assert not out.await_acks

    def test_evict_clean(self):
        d = MSIDirectory()
        d.read(1, 0)
        d.read(1, 1)
        assert d.evict(1, 0, dirty=False) == SHARED
        assert d.evict(1, 1, dirty=False) == UNCACHED

    def test_evict_dirty_owner(self):
        d = MSIDirectory()
        d.write(1, writer=0, has_copy=False)
        assert d.evict(1, 0, dirty=True) == UNCACHED

    def test_evict_unknown_block(self):
        d = MSIDirectory()
        assert d.evict(5, 0, dirty=False) == UNCACHED


class TestTardisDirectory:
    def _dir(self):
        from repro.directory.timestamp import TardisDirectory

        return TardisDirectory()

    def test_entries_auto_create_at_zero(self):
        d = self._dir()
        e = d.entry(7)
        assert (e.wts, e.rts) == (0, 0)
        assert d.entry(7) is e

    def test_read_grants_lease_past_reader_pts(self):
        d = self._dir()
        wts, rts = d.read(3, reader_pts=5, lease=10)
        assert wts == 0 and rts == 15

    def test_read_never_shrinks_a_lease(self):
        d = self._dir()
        d.read(3, reader_pts=50, lease=10)       # rts -> 60
        wts, rts = d.read(3, reader_pts=0, lease=10)
        assert rts == 60

    def test_read_lease_starts_at_wts_after_bump(self):
        d = self._dir()
        d.read(3, reader_pts=0, lease=10)        # rts -> 10
        d.bump(3)                                # wts = rts + 1 = 11
        wts, rts = d.read(3, reader_pts=0, lease=5)
        assert wts == 11 and rts == 11           # max(0 + 5, wts)

    def test_bump_moves_wts_past_every_granted_lease(self):
        d = self._dir()
        d.read(3, reader_pts=0, lease=10)
        assert d.bump(3) == 11
        e = d.entry(3)
        assert e.wts == 11 and e.rts == 11
        assert d.bump(3) == 12                   # strictly monotone

    def test_wts_never_exceeds_rts(self):
        d = self._dir()
        for pts in (0, 4, 30):
            d.read(9, reader_pts=pts, lease=7)
            e = d.entry(9)
            assert e.wts <= e.rts
            d.bump(9)
            e = d.entry(9)
            assert e.wts <= e.rts
