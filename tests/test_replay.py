"""Record/replay engine tests (DESIGN.md §11).

Three layers:

* **differential** — the replay engine must be bit-identical to the
  legacy generator engine: same ``RunResult.to_dict()`` across all five
  protocols × the seven seed apps, with and without the miss
  classifier, the invariant checker, and the value model;
* **stream cache** — a protocol sweep records each app exactly once
  (in-process memo), and a second sweep against the same on-disk store
  performs zero record phases; streams round-trip through their
  serialized form and corrupt blobs degrade to cache misses;
* **API** — the redesigned App→Stream surface: ``AppContext``
  construction, the one-release ``App(machine, ...)`` shim, the unified
  ``run_app`` shapes, ``MachineConfig``, and engine selection.
"""

import pytest

from repro import SystemConfig
from repro.apps import AppContext, Gauss
from repro.core import MachineConfig, build_machine, run_app, simulate
from repro.harness.spec import ENGINES, ENV_ENGINE, ExperimentSpec, resolve_engine
from repro.program import stream as stream_mod
from repro.program.stream import RecordedStream, clear_stream_cache
from repro.results.store import ResultStore

PROTOCOLS = ("sc", "erc", "lrc", "lrc-ext", "tardis")
SEED_APPS = ("gauss", "fft", "blu", "barnes", "cholesky", "locusroute", "mp3d")
SERVICE_APPS = ("kvstore", "taskqueue", "pubsub")


def cfg(n=4, **kw):
    kw.setdefault("cache_size", 4096)
    return SystemConfig.scaled(n_procs=n, **kw)


def small_spec(app, proto, **kw):
    return ExperimentSpec(app, proto, n_procs=4, small=True, **kw)


class TestDifferential:
    @pytest.mark.parametrize("app", SEED_APPS)
    def test_engines_bit_identical_across_protocols(self, app):
        for proto in PROTOCOLS:
            spec = small_spec(app, proto)
            gen = spec.run(engine="generator").to_dict()
            rep = spec.run(engine="replay").to_dict()
            assert gen == rep, f"{app}/{proto} diverged"

    @pytest.mark.parametrize("app", SERVICE_APPS)
    def test_service_apps_engines_bit_identical_checked(self, app, monkeypatch):
        # The service workloads ride the same differential guarantee as
        # the SPLASH seven, with the invariant checker observing both
        # engines.
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        for proto in PROTOCOLS:
            spec = small_spec(app, proto)
            gen = spec.run(engine="generator").to_dict()
            rep = spec.run(engine="replay").to_dict()
            assert gen == rep, f"{app}/{proto} diverged"

    def test_engines_bit_identical_on_warm_bench_config(self):
        # The hit-dominated configuration BENCH_engine.json headlines:
        # wide lines and a long quantum exercise the span deadline-split
        # arithmetic hardest.
        over = (("cache_size", 1 << 20), ("line_size", 512), ("quantum", 8000))
        for proto in ("sc", "lrc"):
            spec = small_spec("gauss", proto, overrides=over)
            gen = spec.run(engine="generator").to_dict()
            rep = spec.run(engine="replay").to_dict()
            assert gen == rep

    def test_engines_bit_identical_with_classifier(self):
        spec = small_spec("gauss", "lrc", classify=True)
        gen = spec.run(engine="generator").to_dict()
        rep = spec.run(engine="replay").to_dict()
        assert gen == rep

    def test_checked_replay_equals_unchecked(self, monkeypatch):
        spec = small_spec("gauss", "lrc")
        plain = spec.run(engine="replay").to_dict()
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        checked = spec.run(engine="replay").to_dict()
        assert checked == plain

    def test_value_checked_replay_equals_unchecked(self, monkeypatch):
        spec = small_spec("gauss", "sc")
        plain = spec.run(engine="replay").to_dict()
        monkeypatch.setenv("REPRO_VALUE_CHECK", "1")
        checked = spec.run(engine="replay").to_dict()
        assert checked == plain

    def test_simulate_engines_agree(self):
        a = simulate(Gauss, cfg(), "lrc", n=24)
        b = simulate(Gauss, cfg(), "lrc", engine="generator", n=24)
        assert a.to_dict() == b.to_dict()


class TestStreamCache:
    def test_sweep_records_once_and_store_survives_memo_loss(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        clear_stream_cache()
        start = stream_mod.RECORDINGS
        for proto in PROTOCOLS:
            small_spec("gauss", proto).run(engine="replay")
        assert stream_mod.RECORDINGS == start + 1
        # Drop the in-process memo: the second sweep must come from the
        # on-disk stream tier, not a new record phase.
        clear_stream_cache()
        for proto in PROTOCOLS:
            small_spec("gauss", proto).run(engine="replay")
        assert stream_mod.RECORDINGS == start + 1

    def test_memo_eviction_respects_hit_recency(self, monkeypatch):
        # A memo hit must refresh LRU position: with cap 2, hitting A
        # makes B the eviction victim when C arrives — not A.
        from repro.program.stream import recorded_stream

        monkeypatch.setattr(stream_mod, "_MEMO_CAP", 2)
        clear_stream_cache()
        c = cfg(2)
        recorded_stream("gauss", {"n": 8}, c)   # A
        recorded_stream("gauss", {"n": 9}, c)   # B
        for _ in range(3):
            recorded_stream("gauss", {"n": 8}, c)  # hit A: now MRU
        recorded_stream("gauss", {"n": 10}, c)  # C evicts B, the LRU
        before = stream_mod.RECORDINGS
        recorded_stream("gauss", {"n": 8}, c)   # A: still memoized
        assert stream_mod.RECORDINGS == before
        recorded_stream("gauss", {"n": 9}, c)   # B: evicted, re-records
        assert stream_mod.RECORDINGS == before + 1
        clear_stream_cache()

    def test_stream_roundtrip(self):
        app = Gauss(AppContext(cfg()), n=24)
        s = RecordedStream.record(app)
        s2 = RecordedStream.from_bytes(s.to_bytes())
        assert s2.fingerprint() == s.fingerprint()
        assert s2.meta == s.meta
        for pid in range(4):
            assert s2.tuples(pid) == s.tuples(pid)

    def test_fingerprint_stable_across_records(self):
        a = RecordedStream.record(Gauss(AppContext(cfg()), n=24))
        b = RecordedStream.record(Gauss(AppContext(cfg()), n=24))
        assert a.fingerprint() == b.fingerprint()

    def test_corrupt_blob_is_a_cache_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        s = RecordedStream.record(Gauss(AppContext(cfg()), n=24))
        path = store.save_stream("k", s)
        assert store.load_stream("k") is not None
        path.write_bytes(b"not a stream")
        assert store.load_stream("k") is None


class TestMachineReplay:
    def test_rejects_stream_for_different_machine(self):
        s = RecordedStream.record(Gauss(AppContext(cfg(4)), n=24))
        machine = MachineConfig(config=cfg(2)).build()
        with pytest.raises(ValueError, match="does not fit"):
            machine.replay(s)

    def test_requires_pristine_address_space(self):
        c = cfg()
        s = RecordedStream.record(Gauss(AppContext(c), n=24))
        machine = MachineConfig(config=c).build()
        Gauss(AppContext.for_machine(machine), n=24)  # dirties the space
        with pytest.raises(RuntimeError, match="pristine"):
            machine.replay(s)

    def test_replay_processor_rejects_generator_programs(self):
        from repro.engine.replay import ReplayProcessor

        machine = MachineConfig(config=cfg()).build()
        proc = ReplayProcessor(machine.nodes[0], machine)
        with pytest.raises(RuntimeError):
            proc.set_program(iter(()))


class TestAppApi:
    def test_machine_ctor_shim_warns_and_still_runs(self):
        machine = build_machine(cfg(), protocol="sc")
        with pytest.warns(DeprecationWarning):
            app = Gauss(machine, n=24)
        assert app.machine is machine
        assert run_app(app).exec_time > 0

    def test_run_app_three_shapes_agree(self):
        spec = small_spec("gauss", "sc")
        by_name = run_app("gauss", protocol="sc", n_procs=4, small=True)
        c = spec.machine_config().config
        params = spec.app_params()
        via_ctx = run_app(Gauss(AppContext(c), **params), protocol="sc")
        machine = MachineConfig(config=c, protocol="sc").build()
        via_machine = run_app(Gauss(AppContext.for_machine(machine), **params))
        assert by_name.to_dict() == via_ctx.to_dict() == via_machine.to_dict()

    def test_spec_fields_only_apply_to_names(self):
        app = Gauss(AppContext(cfg()), n=24)
        with pytest.raises(TypeError):
            run_app(app, n_procs=8)

    def test_machine_bound_app_validates_protocol_and_classifier(self):
        machine = build_machine(cfg(), protocol="sc")
        app = Gauss(AppContext.for_machine(machine), n=24)
        with pytest.raises(ValueError, match="running 'sc'"):
            run_app(app, protocol="lrc")
        with pytest.raises(ValueError, match="classifier"):
            run_app(app, classify=True)

    def test_context_app_has_no_machine(self):
        app = Gauss(AppContext(cfg()), n=24)
        assert app.machine is None

    def test_machine_config_consolidates_machine_kwargs(self):
        mc = MachineConfig(config=cfg(), protocol="erc", classify=True)
        machine = mc.build()
        assert machine.protocol_name == "erc"
        assert machine.classifier is not None
        mc2 = mc.with_(protocol="sc", classify=False)
        assert (mc2.protocol, mc2.classify) == ("sc", False)
        assert mc2.config is mc.config

    def test_resolve_engine(self, monkeypatch):
        monkeypatch.delenv(ENV_ENGINE, raising=False)
        assert resolve_engine() == "replay"
        assert resolve_engine("generator") == "generator"
        with pytest.raises(ValueError):
            resolve_engine("vectorized")
        monkeypatch.setenv(ENV_ENGINE, "generator")
        assert resolve_engine() == "generator"
        monkeypatch.setenv(ENV_ENGINE, "bogus")
        with pytest.raises(ValueError):
            resolve_engine()
        assert set(ENGINES) == {"replay", "generator"}
