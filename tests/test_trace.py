"""Tracer and invariant-checker tests.

Covers the :mod:`repro.trace` subsystem itself (ring buffer, export,
violation windows), checker trips against deliberately broken protocol
variants and hand-corrupted state, the regression for the
invalidation-passes-fill race the checker originally surfaced, and the
4-protocols x 7-apps end-of-run sweep asserting that tracing + checking
never change a simulated cycle.
"""

import io
import json
from collections import deque

import pytest

from repro import Machine, SystemConfig
from repro.apps import APPS, AppContext
from repro.harness.presets import APP_ORDER, APP_PRESETS_SMALL, bench_config
from repro.network.messages import MsgType
from repro.program.ops import (
    ACQUIRE,
    BARRIER,
    COMPUTE,
    FENCE,
    READ,
    RELEASE,
    SET_FLAG,
    WAIT_FLAG,
    WRITE,
    WRITE_RUN,
)
from repro.protocols import PROTOCOLS
from repro.protocols.lrc import LRCProtocol
from repro.trace import InvariantChecker, InvariantViolation, Tracer

ALL_PROTOCOLS = ["sc", "erc", "lrc", "lrc-ext", "tardis"]


def cfg(n=4, **kw):
    kw.setdefault("cache_size", 8 * 128)
    return SystemConfig.scaled(n_procs=n, **kw)


class _FakeSim:
    now = 17


# ---------------------------------------------------------------------------
# Tracer unit tests
# ---------------------------------------------------------------------------

class TestTracer:
    def test_ring_keeps_most_recent(self):
        tr = Tracer(_FakeSim(), capacity=4)
        for i in range(10):
            tr.emit("msg", 0, t=i, idx=i)
        assert len(tr) == 4
        assert tr.emitted == 10
        assert tr.dropped == 6
        assert [ev[0] for ev in tr.buf] == [6, 7, 8, 9]

    def test_default_time_is_sim_now(self):
        tr = Tracer(_FakeSim())
        seq = tr.emit("msg", 3)
        assert seq == 0
        assert list(tr.buf)[0][1] == 17

    def test_filters_tail_window(self):
        tr = Tracer(_FakeSim(), capacity=64)
        for i in range(20):
            tr.emit("msg" if i % 2 else "cache_inval", i % 3, t=i)
        assert all(ev[2] == "msg" for ev in tr.events(kind="msg"))
        assert all(ev[3] == 1 for ev in tr.events(node=1))
        assert [ev[0] for ev in tr.tail(3)] == [17, 18, 19]
        assert tr.tail(0) == []
        win = tr.window(10, before=2, after=2)
        assert [ev[0] for ev in win] == [8, 9, 10, 11, 12]

    def test_jsonl_export_round_trips(self):
        tr = Tracer(_FakeSim(), capacity=8)
        tr.emit("wb_add", 1, t=5, block=9, words={3, 1})
        out = io.StringIO()
        assert tr.to_jsonl(out) == 1
        rec = json.loads(out.getvalue())
        assert rec == {
            "seq": 0, "t": 5, "kind": "wb_add", "node": 1,
            "block": 9, "words": [1, 3],
        }
        line = Tracer.format_event(list(tr.buf)[0])
        assert "wb_add" in line and "block=9" in line

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(_FakeSim(), capacity=0)


# ---------------------------------------------------------------------------
# End-to-end tracing: events appear, cycle counts never move
# ---------------------------------------------------------------------------

def _two_proc_programs(seg):
    def prog(pid):
        if pid == 0:
            yield (ACQUIRE, 0)
            yield (WRITE_RUN, seg, 32, 4)
            yield (RELEASE, 0)
            yield (SET_FLAG, 1)
            yield (BARRIER, 9)
        else:
            yield (WAIT_FLAG, 1)
            yield (ACQUIRE, 0)
            yield (READ, seg)
            yield (RELEASE, 0)
            yield (BARRIER, 9)

    return prog


@pytest.mark.parametrize("proto", ALL_PROTOCOLS)
class TestTracingEndToEnd:
    def test_trace_records_protocol_activity(self, proto):
        m = Machine(cfg(2), protocol=proto, trace=True, check_invariants=True)
        seg = m.space.alloc(4096, "a")
        prog = _two_proc_programs(seg.base)
        m.run([prog(0), prog(1)])
        kinds = {ev[2] for ev in m.tracer.buf}
        if proto == "tardis":
            # The timestamp directory has no read/write state machine;
            # its protocol-visible activity is lease grants and bumps.
            assert {"msg", "cache_install", "dir_lease", "dir_bump"} <= kinds
        else:
            assert {"msg", "cache_install", "dir_read", "dir_write"} <= kinds
        # Both sync milestones fired through the guard exactly once per op.
        releases = m.tracer.events(kind="release_fire")
        acquires = m.tracer.events(kind="acquire_done")
        # p0: release, set_flag, barrier; p1: release, barrier = 5 releases.
        assert len(releases) == 5
        # p0: acquire, barrier-exit; p1: wait_flag grant, acquire,
        # barrier-exit = 5 acquire completions.
        assert len(acquires) == 5

    def test_observability_changes_no_cycles(self, proto):
        def run(**obs):
            m = Machine(cfg(2), protocol=proto, **obs)
            seg = m.space.alloc(4096, "a")
            prog = _two_proc_programs(seg.base)
            return m.run([prog(0), prog(1)])

        plain = run()
        observed = run(trace=True, check_invariants=True, check_level="event")
        assert observed.exec_time == plain.exec_time
        assert observed.traffic.total_messages == plain.traffic.total_messages
        assert observed.stats.summary() == plain.stats.summary()


# ---------------------------------------------------------------------------
# The checker trips on deliberately broken protocols / corrupted state
# ---------------------------------------------------------------------------

class BrokenReleaseLRC(LRCProtocol):
    """Fires release continuations without waiting for anything."""

    name = "broken-release"

    def _pre_release(self, node, t, cont):
        cont(t)


class BrokenAcquireLRC(LRCProtocol):
    """Never applies acquire-time invalidations."""

    name = "broken-acquire"

    def _process_pending_invals(self, node, t):
        return t


class TestCheckerTrips:
    def _machine(self, monkeypatch, cls, n=2):
        monkeypatch.setitem(PROTOCOLS, cls.name, cls)
        return Machine(cfg(n), protocol=cls.name, trace=True, check_invariants=True)

    def test_release_fired_early_trips(self, monkeypatch):
        m = self._machine(monkeypatch, BrokenReleaseLRC)
        seg = m.space.alloc(4096, "a")

        def prog(pid):
            if pid == 0:
                yield (ACQUIRE, 0)
                yield (WRITE_RUN, seg.base, 32, 4)
                yield (RELEASE, 0)
            else:
                yield (COMPUTE, 10)

        with pytest.raises(InvariantViolation, match="release fired"):
            m.run([prog(0), prog(1)])

    def test_skipped_acquire_invalidation_trips(self, monkeypatch):
        m = self._machine(monkeypatch, BrokenAcquireLRC)
        seg = m.space.alloc(4096, "a")

        def prog(pid):
            if pid == 1:
                yield (READ, seg.base)        # become a sharer
                yield (BARRIER, 9)
                yield (BARRIER, 10)           # exit processes invals (broken)
            else:
                yield (BARRIER, 9)
                yield (WRITE, seg.base)       # notice goes to the sharer
                yield (FENCE,)                # force it out before the barrier
                yield (BARRIER, 10)

        with pytest.raises(InvariantViolation, match="pending"):
            m.run([prog(0), prog(1)])

    def test_lazy_entry_corruption_trips(self):
        m = Machine(cfg(2), protocol="lrc", check_invariants=True)
        e = m.nodes[0].directory.entry(5)
        e.sharers = {0}
        e.writers = {0, 1}              # writers must be a subset of sharers
        with pytest.raises(InvariantViolation, match="subset"):
            m.checker.scan()

    def test_lazy_state_mismatch_trips(self):
        from repro.directory.entry import WEAK

        m = Machine(cfg(2), protocol="lrc", check_invariants=True)
        e = m.nodes[0].directory.entry(5)
        e.sharers = {0}
        e.state = WEAK                   # one clean sharer cannot be WEAK
        with pytest.raises(InvariantViolation, match="does not match"):
            m.checker.scan()

    def test_negative_acks_and_stranded_requesters_trip(self):
        from repro.directory.entry import SHARED

        m = Machine(cfg(2), protocol="lrc", check_invariants=True)
        e = m.nodes[1].directory.entry(7)
        e.sharers = {0}
        e.state = SHARED
        e.pending_acks = -1
        with pytest.raises(InvariantViolation, match="pending_acks"):
            m.checker.scan()
        e.pending_acks = 0
        e.pending_requesters.append((1, False))
        with pytest.raises(InvariantViolation, match="closed ack collection"):
            m.checker.scan()

    def test_msi_owner_mismatch_trips(self):
        from repro.directory.entry import DIRTY

        m = Machine(cfg(2), protocol="sc", check_invariants=True)
        e = m.nodes[0].directory.entry(3)
        e.state = DIRTY                  # DIRTY requires an owner
        with pytest.raises(InvariantViolation, match="inconsistent with owner"):
            m.checker.scan()

    def test_buffer_desync_trips(self):
        m = Machine(cfg(2), protocol="erc", check_invariants=True)
        m.nodes[0].wb.order.append(12)   # FIFO entry with no word map
        with pytest.raises(InvariantViolation, match="disagree"):
            m.checker.scan()

    def _finished_machine(self, proto="lrc"):
        m = Machine(cfg(2), protocol=proto, trace=True, check_invariants=True)

        def prog(pid):
            yield (COMPUTE, 5)

        m.run([prog(0), prog(1)])
        return m

    def test_held_lock_at_end_trips(self):
        m = self._finished_machine()
        m.nodes[0].lock_state[4] = {"held": True, "queue": deque()}
        with pytest.raises(InvariantViolation, match="still held"):
            m.checker.end_of_run()

    def test_stranded_flag_waiter_trips(self):
        m = self._finished_machine()
        m.nodes[0].lock_state[("f", 2)] = {"set": False, "waiters": deque([1])}
        with pytest.raises(InvariantViolation, match="flag 2"):
            m.checker.end_of_run()

    def test_cache_directory_divergence_trips(self):
        from repro.cache.state import RO

        m = self._finished_machine()
        seg = m.space.alloc(4096, "d")
        block = seg.base // m.config.line_size
        m.nodes[0].cache.install(block, RO)  # resident, unknown to its home
        with pytest.raises(InvariantViolation, match="sharer"):
            m.checker.end_of_run()

    def test_phantom_sharer_trips(self):
        m = self._finished_machine()
        home = m.nodes[0]
        e = home.directory.entry(0)      # block 0 is homed at node 0
        e.sharers = {1}                  # node 1 does not actually cache it
        e.state = 1
        with pytest.raises(InvariantViolation, match="does not cache"):
            m.checker.end_of_run()

    def test_violation_event_anchors_window(self):
        m = self._finished_machine()
        m.nodes[0].lock_state[4] = {"held": True, "queue": deque()}
        with pytest.raises(InvariantViolation) as exc:
            m.checker.end_of_run()
        seq = exc.value.seq
        assert seq is not None
        win = m.tracer.window(seq, before=5, after=5)
        assert any(ev[2] == "violation" and ev[0] == seq for ev in win)

    def test_check_level_validated(self):
        m = Machine(cfg(2), protocol="lrc")
        with pytest.raises(ValueError):
            InvariantChecker(m, level="paranoid")


# ---------------------------------------------------------------------------
# Regression: invalidation-passes-fill race (found by this checker)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("proto", ["sc", "erc"])
def test_fill_race_regression(proto):
    """locusroute/small tripped directory-cache agreement before the
    requester tracked in-flight fills: an invalidation overtook a read
    fill in the network and the stale line stayed resident forever."""
    config = bench_config(n_procs=4)
    m = Machine(config, protocol=proto, check_invariants=True)
    app = APPS["locusroute"](AppContext.for_machine(m), **APP_PRESETS_SMALL["locusroute"])
    m.run([app.program(p) for p in range(4)])  # passes the end-of-run sweep
    assert all(not n.fill_pending and not n.fill_fixup for n in m.nodes)


# ---------------------------------------------------------------------------
# End-of-run sweep: every protocol x every app, observed == unobserved
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("app", APP_ORDER)
@pytest.mark.parametrize("proto", ALL_PROTOCOLS)
def test_invariant_sweep(proto, app):
    def run(**obs):
        m = Machine(bench_config(n_procs=4), protocol=proto, **obs)
        a = APPS[app](AppContext.for_machine(m), **APP_PRESETS_SMALL[app])
        return m.run([a.program(p) for p in range(4)])

    plain = run()
    checked = run(trace=True, check_invariants=True)
    assert checked.exec_time == plain.exec_time
    assert checked.traffic.total_messages == plain.traffic.total_messages
