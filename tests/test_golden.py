"""Golden regression fixtures: exact cycle counts and miss
classifications for small configurations, checked into ``tests/golden/``.

The simulator is deterministic (DESIGN.md §7), so these numbers must be
bit-identical run over run; any drift means a protocol or timing change,
which is either a bug or an intentional change that should be reviewed
and then blessed with::

    PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden
"""

import json
from pathlib import Path

import pytest

from repro.harness import run_experiment

GOLDEN_DIR = Path(__file__).parent / "golden"
PROTOCOLS = ("sc", "erc", "lrc", "lrc-ext", "tardis")

#: Apps snapshotted (small presets keep the run fast): the SPLASH seven
#: plus the service-shaped workloads (DESIGN.md §13).
CASES = (
    "gauss", "fft", "blu", "barnes", "cholesky", "locusroute", "mp3d",
    "kvstore", "taskqueue", "pubsub",
)
N_PROCS = 4


def snapshot(app: str) -> dict:
    out = {"app": app, "n_procs": N_PROCS, "protocols": {}}
    for proto in PROTOCOLS:
        r = run_experiment(
            app, proto, n_procs=N_PROCS, small=True, classify=True,
        )
        out["protocols"][proto] = {
            "exec_time": r.exec_time,
            "references": r.stats.references,
            "misses": r.stats.misses,
            "total_messages": r.traffic.total_messages,
            "classification": r.classifier.to_dict(),
        }
    return out


def diff_lines(want: dict, got: dict, prefix: str = "") -> list:
    lines = []
    for key in sorted(set(want) | set(got)):
        w, g = want.get(key), got.get(key)
        if isinstance(w, dict) and isinstance(g, dict):
            lines += diff_lines(w, g, f"{prefix}{key}.")
        elif w != g:
            lines.append(f"  {prefix}{key}: golden {w!r} != current {g!r}")
    return lines


@pytest.mark.parametrize("app", CASES)
def test_golden_snapshot(app, update_golden):
    path = GOLDEN_DIR / f"{app}_p{N_PROCS}.json"
    got = snapshot(app)
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(got, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"golden fixture rewritten: {path}")
    assert path.exists(), (
        f"missing golden fixture {path}; generate it with "
        f"`pytest tests/test_golden.py --update-golden`"
    )
    want = json.loads(path.read_text())
    if want != got:
        diff = "\n".join(diff_lines(want, got))
        pytest.fail(
            f"{app}: simulator output drifted from {path.name}:\n{diff}\n"
            f"If the change is intentional, re-bless with --update-golden.",
            pytrace=False,
        )
